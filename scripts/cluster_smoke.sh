#!/usr/bin/env bash
# Cluster smoke test: 3 sthistd nodes + 1 sthproxy, mixed load from sthload,
# SIGKILL the loaded table's primary mid-run. Asserts:
#
#   1. sthload exits 0 — zero non-retried client errors across the kill
#      (the binary exits 3 when any operation ended in a hard error);
#   2. the proxy marks the dead target unready (ready_targets drops to 2)
#      within its advertised failover deadline plus probe slack;
#   3. a replacement node started with -warm-from pointing at the proxy
#      restores the dead table's shipped snapshot and rejoins, bringing
#      ready_targets back to 3;
#   4. distributed tracing (-trace-sample 1 on every process) stitches one
#      trace across the kill: an estimate fired right after the SIGKILL keeps
#      BOTH the failed attempt at the dead primary and the successful retry
#      at the failover target;
#   5. a traced feedback assembles end-to-end on the proxy's
#      /debug/trace/spans?trace= endpoint: proxy root + attempt, node route,
#      queue wait, WAL append, fsync and apply, across >= 2 services.
#
# Run via `make cluster-smoke` or directly. Needs curl and jq.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
WORK=$(mktemp -d)
PIDS=()
cleanup() {
    kill "${PIDS[@]}" >/dev/null 2>&1 || true
    wait >/dev/null 2>&1 || true
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- logs ---" >&2
    tail -n 40 "$WORK"/*.log >&2 || true
    exit 1
}

echo "== building sthistd, sthproxy, sthload"
go build -o "$BIN" ./cmd/sthistd ./cmd/sthproxy ./cmd/sthload

PORTS=(18081 18082 18083)
PROXY=http://127.0.0.1:18090

start_node() { # port data-dir [extra flags...]
    local port=$1 dir=$2
    shift 2
    "$BIN/sthistd" -addr "127.0.0.1:$port" -table orders=@gauss:0.02 \
        -buckets 40 -seed 3 -data-dir "$dir" -checkpoint-records 200 \
        -trace-sample 1 \
        "$@" >"$WORK/sthistd-$port.log" 2>&1 &
    echo $!
}

declare -A NODE_PID
for port in "${PORTS[@]}"; do
    NODE_PID[$port]=$(start_node "$port" "$WORK/node-$port")
    PIDS+=("${NODE_PID[$port]}")
done

"$BIN/sthproxy" -addr 127.0.0.1:18090 \
    -target "http://127.0.0.1:${PORTS[0]}" \
    -target "http://127.0.0.1:${PORTS[1]}" \
    -target "http://127.0.0.1:${PORTS[2]}" \
    -probe-interval 100ms -probe-timeout 500ms -trace-sample 1 \
    >"$WORK/sthproxy.log" 2>&1 &
PIDS+=($!)

ready_targets() {
    curl -fsS "$PROXY/cluster" 2>/dev/null | jq -r .ready_targets || echo 0
}

wait_ready_targets() { # want attempts
    local want=$1 attempts=$2
    for _ in $(seq "$attempts"); do
        [ "$(ready_targets)" = "$want" ] && return 0
        sleep 0.25
    done
    fail "proxy never saw $want ready targets (now: $(ready_targets))"
}

echo "== waiting for 3 ready targets behind the proxy"
wait_ready_targets 3 80

PRIMARY=$(curl -fsS "$PROXY/cluster?table=orders" | jq -r '.placement[0]')
PRIMARY_PORT=${PRIMARY##*:}
# Query bodies for the hand-rolled traced requests below, spanning the
# table's advertised domain (same discovery path sthload uses).
QUERY=$(curl -fsS "$PROXY/stats?table=orders" |
    jq -c '{table: "orders", lo: .domain.lo, hi: .domain.hi}') ||
    fail "could not derive a query box from /stats"
FEEDBACK=$(echo "$QUERY" | jq -c '. + {actual: 25}')
DEADLINE_MS=$(curl -fsS "$PROXY/cluster" | jq -r .failover_deadline_ms)
echo "== primary for orders: $PRIMARY (failover deadline ${DEADLINE_MS}ms)"

echo "== starting mixed load through the proxy (10s, kill at t+3s)"
"$BIN/sthload" -target "$PROXY" -tables orders -workers 4 -duration 10s \
    -feedback-ratio 0.2 -seed 7 -op-retries 16 -out "$WORK/load.json" \
    -trace-sample 1 -slowest 3 \
    >"$WORK/sthload.log" 2>&1 &
LOAD_PID=$!
PIDS+=($LOAD_PID)

sleep 3
echo "== SIGKILL primary (pid ${NODE_PID[$PRIMARY_PORT]})"
kill -9 "${NODE_PID[$PRIMARY_PORT]}"
KILLED_AT=$(date +%s%3N)

# Fire a traced estimate immediately, while the monitor still believes the
# dead primary is ready: the proxy must attempt it, fail, and retry a live
# candidate — leaving BOTH attempts in one trace.
FAILOVER_TID=f1a2b3c4d5e6f7a8b9c0d1e2f3a4b5c6
curl -fsS -X POST "$PROXY/estimate" -H 'Content-Type: application/json' \
    -H "traceparent: 00-$FAILOVER_TID-00f067aa0ba902b7-01" \
    -d "$QUERY" >/dev/null ||
    fail "traced estimate across the kill did not succeed"
FAILOVER_TRACE=$(curl -fsS "$PROXY/debug/trace/spans?trace=$FAILOVER_TID") ||
    fail "could not scrape the failover trace"
DEAD_TARGET="http://127.0.0.1:$PRIMARY_PORT"
echo "$FAILOVER_TRACE" | jq -e --arg t "$DEAD_TARGET" \
    '[.spans[] | select(.name == "proxy.attempt")
       | {target: ([.attrs[]? | select(.k == "target").v] | first), err: (.error // "")}]
     | (map(select(.target == $t and .err != "")) | length > 0)
       and (map(select(.target != $t and .err == "")) | length > 0)' >/dev/null ||
    fail "failover trace $FAILOVER_TID lacks the dead-primary attempt plus a successful retry: $(echo "$FAILOVER_TRACE" | jq -c '[.spans[] | {name, error, attrs}]')"
echo "== failover trace has the failed attempt at $DEAD_TARGET and a successful retry"

# Failover detection: ready_targets must drop to 2 within the advertised
# deadline plus generous probe/scheduler slack.
BUDGET_MS=$((DEADLINE_MS + 2000))
while [ "$(ready_targets)" != "2" ]; do
    NOW=$(date +%s%3N)
    [ $((NOW - KILLED_AT)) -gt "$BUDGET_MS" ] &&
        fail "proxy did not mark the dead target unready within ${BUDGET_MS}ms"
    sleep 0.1
done
NOW=$(date +%s%3N)
echo "== proxy detected the dead target in $((NOW - KILLED_AT))ms"

if ! wait "$LOAD_PID"; then
    cat "$WORK/sthload.log" >&2 || true
    fail "sthload reported non-retried client errors across the kill"
fi
echo "== load finished with zero non-retried errors"
jq '{ops, ops_per_sec, estimate: {count: .estimate.count, errors: .estimate.errors, retries: .estimate.retries, p50_ms: .estimate.p50_ms}, feedback: {count: .feedback.count, errors: .feedback.errors, retries: .feedback.retries, p50_ms: .feedback.p50_ms}}' \
    "$WORK/load.json" 2>/dev/null || cat "$WORK/load.json"

grep -q 'slowest .*trace=' "$WORK/sthload.log" ||
    fail "sthload did not print slowest-operation trace IDs"

echo "== tracing one feedback end to end (proxy attempt -> node route -> queue -> WAL append -> fsync)"
PIPELINE_TID=0123456789abcdef0123456789abcdef
curl -fsS -X POST "$PROXY/feedback" -H 'Content-Type: application/json' \
    -H "traceparent: 00-$PIPELINE_TID-00f067aa0ba902b7-01" \
    -d "$FEEDBACK" >/dev/null ||
    fail "traced feedback did not succeed"
PIPELINE_TRACE=$(curl -fsS "$PROXY/debug/trace/spans?trace=$PIPELINE_TID") ||
    fail "could not scrape the assembled feedback trace"
for span in "proxy /feedback" "proxy.attempt" "node /feedback" \
    "feedback.queue" "wal.append" "wal.fsync" "feedback.apply"; do
    echo "$PIPELINE_TRACE" | jq -e --arg n "$span" \
        '[.spans[].name] | index($n) != null' >/dev/null ||
        fail "assembled trace $PIPELINE_TID lacks span \"$span\": $(echo "$PIPELINE_TRACE" | jq -c '[.spans[].name]')"
done
echo "$PIPELINE_TRACE" | jq -e '.services | length >= 2' >/dev/null ||
    fail "assembled trace covers one service only: $(echo "$PIPELINE_TRACE" | jq -c .services)"
echo "== assembled trace: $(echo "$PIPELINE_TRACE" | jq -c '{services, spans: [.spans[].name]}')"

echo "== restarting the dead node warm from the proxy's snapshot ship"
NODE_PID[$PRIMARY_PORT]=$(start_node "$PRIMARY_PORT" "$WORK/node-$PRIMARY_PORT-reborn" -warm-from "$PROXY")
PIDS+=("${NODE_PID[$PRIMARY_PORT]}")
wait_ready_targets 3 80
grep -q "warm-started from" "$WORK/sthistd-$PRIMARY_PORT.log" ||
    fail "replacement node did not warm-start from the shipped snapshot"
echo "== replacement node rejoined; 3 targets ready"

echo "PASS: cluster smoke"
