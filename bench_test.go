package sthist

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§5), plus the tech-report extra and the ablations
// DESIGN.md calls out. Each bench regenerates the experiment's rows/series
// at a reduced scale (see EXPERIMENTS.md for the scale policy and the
// recorded paper-vs-measured comparison); the CLI (`go run ./cmd/sthist
// -exp <id> -scale 1 -train 1000 -eval 1000`) reproduces them at paper
// scale with identical code.
//
// The interesting output is the experiment result itself, which each bench
// prints once via b.Logf (visible with `go test -bench . -v`); wall-clock
// time per iteration doubles as the "Sim. time" measurement of Table 2.

import (
	"bytes"
	"testing"

	"sthist/internal/experiment"
)

// benchConfig is the reduced scale used by every bench: ~1/25th of the
// paper's tuple counts and 150+150 queries.
func benchConfig() experiment.Config {
	cfg := experiment.Defaults()
	cfg.Scale = 0.04
	cfg.TrainQueries = 150
	cfg.EvalQueries = 150
	cfg.Buckets = []int{50, 100, 250}
	return cfg
}

// runExperiment executes the named experiment b.N times, logging the first
// iteration's rendered result.
func runExperiment(b *testing.B, name string, cfg experiment.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := experiment.Run(name, cfg, &buf); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", buf.String())
		}
	}
}

// BenchmarkTable1Datasets regenerates Table 1 (dataset inventory).
func BenchmarkTable1Datasets(b *testing.B) {
	runExperiment(b, "table1", benchConfig())
}

// BenchmarkFig11Cross regenerates Fig. 11: Cross[1%] init vs uninit.
func BenchmarkFig11Cross(b *testing.B) {
	runExperiment(b, "fig11", benchConfig())
}

// BenchmarkFig12Gauss regenerates Fig. 12: Gauss[1%].
func BenchmarkFig12Gauss(b *testing.B) {
	runExperiment(b, "fig12", benchConfig())
}

// BenchmarkFig13Sky regenerates Fig. 13: Sky[1%] incl. reversed init.
func BenchmarkFig13Sky(b *testing.B) {
	runExperiment(b, "fig13", benchConfig())
}

// BenchmarkTable2MineclusParams regenerates Table 2: the MineClus parameter
// sweep with clustering and simulation times.
func BenchmarkTable2MineclusParams(b *testing.B) {
	runExperiment(b, "table2", benchConfig())
}

// BenchmarkFig14Sky2pct regenerates Fig. 14: Sky[2%].
func BenchmarkFig14Sky2pct(b *testing.B) {
	runExperiment(b, "fig14", benchConfig())
}

// BenchmarkTable3HighDimCross regenerates Table 3 (Cross3d/4d/5d inventory).
func BenchmarkTable3HighDimCross(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.01 // Cross5d is 13.5M tuples at scale 1
	runExperiment(b, "table3", cfg)
}

// BenchmarkFig15Dimensionality regenerates Fig. 15: the Cross3d/4d/5d error
// sweep.
func BenchmarkFig15Dimensionality(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.01
	cfg.Buckets = []int{50, 100}
	runExperiment(b, "fig15", cfg)
}

// BenchmarkTable4SkyClusters regenerates Table 4: clusters found in Sky.
func BenchmarkTable4SkyClusters(b *testing.B) {
	runExperiment(b, "table4", benchConfig())
}

// BenchmarkSubspaceBucketSurvival regenerates the §5.3 subspace-bucket
// survival inspection.
func BenchmarkSubspaceBucketSurvival(b *testing.B) {
	cfg := benchConfig()
	cfg.Buckets = []int{100}
	runExperiment(b, "subspace-buckets", cfg)
}

// BenchmarkFig16HeavyTraining regenerates Fig. 16: 19x-trained uninit vs
// initialized.
func BenchmarkFig16HeavyTraining(b *testing.B) {
	cfg := benchConfig()
	cfg.Buckets = []int{50, 100}
	cfg.TrainQueries = 100
	cfg.EvalQueries = 100
	runExperiment(b, "fig16", cfg)
}

// BenchmarkFig17TrainingAmount regenerates Fig. 17: error vs number of
// training queries with learning frozen afterwards.
func BenchmarkFig17TrainingAmount(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.01
	runExperiment(b, "fig17", cfg)
}

// BenchmarkExample1OrderSensitivity measures the §3.1 demonstration: two
// workload orders, different histograms. The heavy lifting is asserted in
// internal/sthole's TestExample1OrderSensitivity; the bench tracks its cost.
func BenchmarkExample1OrderSensitivity(b *testing.B) {
	cfg := benchConfig()
	cfg.Buckets = []int{50}
	cfg.TrainQueries = 60
	cfg.EvalQueries = 100
	runExperiment(b, "ablation-order", cfg)
}

// BenchmarkExtraHighDim regenerates the tech report's 18-dimensional
// experiment.
func BenchmarkExtraHighDim(b *testing.B) {
	cfg := benchConfig()
	cfg.TrainQueries = 100
	cfg.EvalQueries = 100
	runExperiment(b, "extra-highdim", cfg)
}

// BenchmarkAblationInitOrder regenerates the initialization-order ablation.
func BenchmarkAblationInitOrder(b *testing.B) {
	runExperiment(b, "ablation-order", benchConfig())
}

// BenchmarkAblationExtendedBR regenerates the extended-BR vs MBR ablation.
func BenchmarkAblationExtendedBR(b *testing.B) {
	runExperiment(b, "ablation-ebr", benchConfig())
}

// BenchmarkAblationClusterer regenerates the MineClus-vs-CLIQUE initializer
// comparison.
func BenchmarkAblationClusterer(b *testing.B) {
	runExperiment(b, "ablation-clusterer", benchConfig())
}

// BenchmarkBaselineSelfTuning regenerates the ST-grid vs STHoles vs
// initialized STHoles comparison.
func BenchmarkBaselineSelfTuning(b *testing.B) {
	runExperiment(b, "baseline-selftuning", benchConfig())
}

// BenchmarkBaselineStatic regenerates the static-MHIST comparison.
func BenchmarkBaselineStatic(b *testing.B) {
	runExperiment(b, "baseline-static", benchConfig())
}

// BenchmarkWorkloadPatterns regenerates the workload-pattern robustness
// check of §5.1.
func BenchmarkWorkloadPatterns(b *testing.B) {
	runExperiment(b, "workload-patterns", benchConfig())
}

// BenchmarkClusterQuality regenerates the clustering-quality evaluation
// against generator ground truth.
func BenchmarkClusterQuality(b *testing.B) {
	runExperiment(b, "cluster-quality", benchConfig())
}

// BenchmarkPlanQuality regenerates the optimizer plan-regret comparison.
func BenchmarkPlanQuality(b *testing.B) {
	runExperiment(b, "plan-quality", benchConfig())
}

// BenchmarkLearningCurve regenerates the training-trajectory experiment.
func BenchmarkLearningCurve(b *testing.B) {
	runExperiment(b, "learning-curve", benchConfig())
}

// BenchmarkSelectivityProfile regenerates the per-selectivity-band q-error
// breakdown.
func BenchmarkSelectivityProfile(b *testing.B) {
	runExperiment(b, "selectivity-profile", benchConfig())
}

// BenchmarkAnatomy regenerates the histogram structure statistics.
func BenchmarkAnatomy(b *testing.B) {
	runExperiment(b, "anatomy", benchConfig())
}
