// Command sthload is the cluster load generator: an aisloader-style
// mixed-workload driver firing estimate and feedback traffic at a sthistd
// node or a sthproxy tier from a worker pool, bounded by wall time and/or a
// total operation count, and reporting client-observed latency percentiles
// as JSON.
//
// Queries are uniform random ranges inside each table's advertised domain
// (GET /stats). A configurable fraction of estimates are converted into
// feedback by reporting the estimate back as the observed actual, so the
// durable write path is exercised without client-side ground truth.
// Backpressure (429/503 with Retry-After) is honored by sleeping the hinted
// duration and retrying, counted separately from hard errors.
//
// Usage:
//
//	sthload -target http://localhost:8090 -workers 16 -duration 30s -feedback-ratio 0.1
//	sthload -target http://localhost:8080 -total 100000 -tables orders,sky
//
// The exit code is 0 only when no operation ended in a non-retried error —
// so the kill-a-node smoke test can assert "zero non-retried client errors"
// by exit code alone.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sthist/internal/loadgen"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sthload:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("sthload", flag.ContinueOnError)
	target := fs.String("target", "", "base URL of the sthistd or sthproxy to load (required)")
	tables := fs.String("tables", "", "comma-separated tables to exercise (empty = discover via GET /tables)")
	workers := fs.Int("workers", loadgen.DefaultWorkers, "concurrent workers")
	duration := fs.Duration("duration", 0, "wall-time bound (0 with -total = unbounded time; 0 without = 10s)")
	total := fs.Int64("total", 0, "total operation bound across workers (0 = unbounded)")
	ratio := fs.Float64("feedback-ratio", loadgen.DefaultFeedbackRatio,
		"fraction of estimates converted into feedback (estimate:feedback mix; negative disables feedback)")
	opTimeout := fs.Duration("op-timeout", loadgen.DefaultOpTimeout, "per-attempt HTTP timeout")
	opRetries := fs.Int("op-retries", loadgen.DefaultMaxOpRetries, "backpressure retries per operation (negative disables)")
	seed := fs.Int64("seed", 0, "query-generation seed (0 = from clock)")
	traceSample := fs.Float64("trace-sample", 0,
		"probability of head-sampling a distributed trace per operation (0 disables tracing; failed ops always report their trace ID)")
	slowestK := fs.Int("slowest", loadgen.DefaultSlowestK,
		"how many slowest-operation trace IDs to report at exit (needs -trace-sample > 0)")
	jsonOut := fs.String("out", "", "write the JSON report to this file instead of stdout")
	allowErrors := fs.Bool("allow-errors", false, "exit 0 even when operations ended in non-retried errors")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *target == "" {
		return 2, fmt.Errorf("-target is required")
	}
	var tableList []string
	if *tables != "" {
		for _, t := range strings.Split(*tables, ",") {
			if t = strings.TrimSpace(t); t != "" {
				tableList = append(tableList, t)
			}
		}
	}

	r, err := loadgen.New(loadgen.Options{
		BaseURL:       strings.TrimSuffix(*target, "/"),
		Tables:        tableList,
		Workers:       *workers,
		Duration:      *duration,
		Total:         *total,
		FeedbackRatio: *ratio,
		OpTimeout:     *opTimeout,
		MaxOpRetries:  *opRetries,
		Seed:          *seed,
		TraceSample:   *traceSample,
		SlowestK:      *slowestK,
	})
	if err != nil {
		return 2, err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	rep, err := r.Run(ctx)
	if err != nil {
		return 1, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return 1, err
	}
	data = append(data, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return 1, err
		}
	} else if _, err := out.Write(data); err != nil {
		return 1, err
	}
	fmt.Fprintf(os.Stderr, "sthload: %d ops in %v (%.0f ops/s), estimate errors=%d retries=%d, feedback errors=%d retries=%d\n",
		rep.Ops, time.Since(start).Round(time.Millisecond), rep.OpsPerSec,
		rep.Estimate.Errors, rep.Estimate.Retries, rep.Feedback.Errors, rep.Feedback.Retries)
	// The chase-a-slow-query entry points: paste one of these IDs into
	// GET /debug/trace/spans?trace=<id> on the proxy to see the whole story.
	for _, ref := range rep.Slowest {
		fmt.Fprintf(os.Stderr, "sthload: slowest %-10s %8.1fms  trace=%s\n", ref.Op, ref.Ms, ref.TraceID)
	}
	for _, ref := range rep.Failed {
		fmt.Fprintf(os.Stderr, "sthload: FAILED  %-10s           trace=%s\n", ref.Op, ref.TraceID)
	}
	if !*allowErrors && (rep.Estimate.Errors > 0 || rep.Feedback.Errors > 0) {
		return 3, fmt.Errorf("%d non-retried errors (estimate %d, feedback %d)",
			rep.Estimate.Errors+rep.Feedback.Errors, rep.Estimate.Errors, rep.Feedback.Errors)
	}
	return 0, nil
}
