// Command sthist runs the paper's experiments by id and prints the rows or
// series behind each table/figure.
//
// Usage:
//
//	sthist -list
//	sthist -exp fig11                       # reduced default scale
//	sthist -exp fig13 -scale 1 -train 1000 -eval 1000   # paper scale
//	sthist -exp table2 -buckets 50,100,250
//	sthist -all                             # every experiment at the default scale
//	sthist -exp fig11 -cpuprofile cpu.out -memprofile mem.out   # profile a run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"sthist/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sthist:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sthist", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id to run (see -list)")
		all     = fs.Bool("all", false, "run every experiment")
		list    = fs.Bool("list", false, "list experiment ids")
		scale   = fs.Float64("scale", 0, "dataset scale factor (1 = paper scale; default: reduced)")
		train   = fs.Int("train", 0, "training queries (default: reduced; paper uses 1000)")
		eval    = fs.Int("eval", 0, "evaluation queries (default: reduced; paper uses 1000)")
		vol     = fs.Float64("vol", 0, "query volume fraction (default 0.01)")
		seed    = fs.Int64("seed", 0, "random seed (default 1)")
		buckets = fs.String("buckets", "", "comma-separated bucket budgets (default 50,100,150,200,250)")
		outPath = fs.String("out", "", "also write results to this file")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = fs.String("memprofile", "", "write a heap profile after the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		stop, err := experiment.StartCPUProfile(*cpuProf)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "sthist: stopping cpu profile:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := experiment.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "sthist: writing mem profile:", err)
			}
		}()
	}
	if *list {
		for _, n := range experiment.Names() {
			fmt.Println(n)
		}
		return nil
	}
	cfg := experiment.Defaults()
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *train > 0 {
		cfg.TrainQueries = *train
	}
	if *eval > 0 {
		cfg.EvalQueries = *eval
	}
	if *vol > 0 {
		cfg.VolumeFraction = *vol
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *buckets != "" {
		parsed, err := parseInts(*buckets)
		if err != nil {
			return fmt.Errorf("parsing -buckets: %w", err)
		}
		cfg.Buckets = parsed
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	switch {
	case *all:
		for _, name := range experiment.Names() {
			fmt.Fprintf(w, "=== %s ===\n", name)
			start := time.Now()
			if err := experiment.Run(name, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintf(w, "(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		return nil
	case *exp != "":
		return experiment.Run(*exp, cfg, w)
	default:
		fs.Usage()
		return fmt.Errorf("one of -exp, -all or -list is required")
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("bucket budget %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
