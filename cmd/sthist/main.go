// Command sthist runs the paper's experiments by id and prints the rows or
// series behind each table/figure.
//
// Usage:
//
//	sthist -list
//	sthist -exp fig11                       # reduced default scale
//	sthist -exp fig13 -scale 1 -train 1000 -eval 1000   # paper scale
//	sthist -exp table2 -buckets 50,100,250
//	sthist -all                             # every experiment at the default scale
//	sthist -exp fig11 -cpuprofile cpu.out -memprofile mem.out   # profile a run
//	sthist -trace 20                        # traced Cross session, dump last 20 flight-recorder events
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"sthist"
	"sthist/internal/datagen"
	"sthist/internal/experiment"
	"sthist/internal/telemetry"
	"sthist/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sthist:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sthist", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id to run (see -list)")
		all     = fs.Bool("all", false, "run every experiment")
		list    = fs.Bool("list", false, "list experiment ids")
		scale   = fs.Float64("scale", 0, "dataset scale factor (1 = paper scale; default: reduced)")
		train   = fs.Int("train", 0, "training queries (default: reduced; paper uses 1000)")
		eval    = fs.Int("eval", 0, "evaluation queries (default: reduced; paper uses 1000)")
		vol     = fs.Float64("vol", 0, "query volume fraction (default 0.01)")
		seed    = fs.Int64("seed", 0, "random seed (default 1)")
		buckets = fs.String("buckets", "", "comma-separated bucket budgets (default 50,100,150,200,250)")
		outPath = fs.String("out", "", "also write results to this file")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = fs.String("memprofile", "", "write a heap profile after the run to this file")
		trace   = fs.Int("trace", 0, "run a telemetry-instrumented Cross session and dump the last N flight-recorder events as JSON lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		stop, err := experiment.StartCPUProfile(*cpuProf)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "sthist: stopping cpu profile:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := experiment.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "sthist: writing mem profile:", err)
			}
		}()
	}
	if *list {
		for _, n := range experiment.Names() {
			fmt.Println(n)
		}
		return nil
	}
	cfg := experiment.Defaults()
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *train > 0 {
		cfg.TrainQueries = *train
	}
	if *eval > 0 {
		cfg.EvalQueries = *eval
	}
	if *vol > 0 {
		cfg.VolumeFraction = *vol
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *buckets != "" {
		parsed, err := parseInts(*buckets)
		if err != nil {
			return fmt.Errorf("parsing -buckets: %w", err)
		}
		cfg.Buckets = parsed
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = io.MultiWriter(os.Stdout, f)
	}
	switch {
	case *trace > 0:
		return runTrace(*trace, cfg, w)
	case *all:
		for _, name := range experiment.Names() {
			fmt.Fprintf(w, "=== %s ===\n", name)
			start := time.Now()
			if err := experiment.Run(name, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintf(w, "(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		return nil
	case *exp != "":
		return experiment.Run(*exp, cfg, w)
	default:
		fs.Usage()
		return fmt.Errorf("one of -exp, -all, -list or -trace is required")
	}
}

// runTrace drives a Cross feedback session with the flight recorder attached
// and dumps the last n trace events as JSON lines, followed by the rolling
// accuracy and latency quantiles the recorder accumulated.
func runTrace(n int, cfg experiment.Config, w io.Writer) error {
	ds := datagen.Cross(cfg.Scale, cfg.Seed)
	est, err := sthist.Open(ds.Table, sthist.Options{Buckets: cfg.Buckets[len(cfg.Buckets)-1], Seed: cfg.Seed})
	if err != nil {
		return err
	}
	tel := telemetry.New(telemetry.Options{})
	rec := tel.Table(ds.Name)
	est.SetRecorder(rec)

	queries, err := workload.Generate(ds.Domain, workload.Config{
		VolumeFraction: cfg.VolumeFraction, N: cfg.TrainQueries, Seed: cfg.Seed,
	}, ds.Table)
	if err != nil {
		return err
	}
	for _, q := range queries {
		if err := est.Feedback(q, est.TrueCount(q)); err != nil {
			return err
		}
	}

	enc := json.NewEncoder(w)
	for _, ev := range rec.Last(n) {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	rounds, mae, nae := rec.Rolling()
	p50, p95, p99 := rec.Quantiles()
	fmt.Fprintf(w, "# %s: %d rounds traced, rolling(%d) MAE=%.2f NAE=%.4f, feedback p50=%.3gs p95=%.3gs p99=%.3gs\n",
		ds.Name, len(queries), rounds, mae, nae, p50, p95, p99)
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("bucket budget %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
