package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("50, 100,250")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{50, 100, 250}) {
		t.Errorf("parseInts = %v", got)
	}
	if _, err := parseInts("50,x"); err == nil {
		t.Error("non-numeric accepted")
	}
	if _, err := parseInts("0"); err == nil {
		t.Error("non-positive bucket accepted")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresMode(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -exp/-all/-list accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSmallTable3(t *testing.T) {
	if err := run([]string{"-exp", "table3", "-scale", "0.001", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadBuckets(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-buckets", "abc"}); err == nil {
		t.Error("bad -buckets accepted")
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	if err := run([]string{"-exp", "table3", "-scale", "0.001", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if err := run([]string{"-exp", "table3", "-scale", "0.001", "-cpuprofile", filepath.Join(dir, "no", "such", "dir", "cpu.out")}); err == nil {
		t.Error("unwritable cpu profile path accepted")
	}
}

func TestRunOutFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "res.txt")
	if err := run([]string{"-exp", "table3", "-scale", "0.001", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Cross3d") {
		t.Errorf("output file missing results: %s", data)
	}
}
