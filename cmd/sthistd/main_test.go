package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sthist/internal/datagen"
)

func TestSetupValidation(t *testing.T) {
	if _, _, err := setup(nil); err == nil {
		t.Error("no tables accepted")
	}
	if _, _, err := setup([]string{"-table", "bad"}); err == nil {
		t.Error("spec without = accepted")
	}
	if _, _, err := setup([]string{"-table", "=x"}); err == nil {
		t.Error("empty name accepted")
	}
	if _, _, err := setup([]string{"-table", "t=@nope:1"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, _, err := setup([]string{"-table", "t=@cross:x"}); err == nil {
		t.Error("bad scale accepted")
	}
	if _, _, err := setup([]string{"-table", "t=/no/such.csv"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSetupGeneratedAndFileTables(t *testing.T) {
	// One generated table and one file-backed (binary) table.
	ds := datagen.Cross(0.02, 1)
	path := filepath.Join(t.TempDir(), "cross.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Table.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv, addr, err := setup([]string{
		"-addr", ":0",
		"-buckets", "30",
		"-table", "gen=@cross:0.02",
		"-table", "file=" + path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":0" {
		t.Errorf("addr = %q", addr)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "file" || names[1] != "gen" {
		t.Errorf("tables = %v", names)
	}
	// Estimate against the generated table.
	body := strings.NewReader(`{"table":"gen","lo":[450,0],"hi":[550,1000]}`)
	r2, err := http.Post(ts.URL+"/estimate", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("estimate status = %d", r2.StatusCode)
	}
}
