package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sthist"
	"sthist/internal/datagen"
	"sthist/internal/wal"
)

func TestSetupValidation(t *testing.T) {
	cases := map[string][]string{
		"no-tables":        nil,
		"spec-without-eq":  {"-table", "bad"},
		"empty-name":       {"-table", "=x"},
		"unknown-dataset":  {"-table", "t=@nope:1"},
		"bad-scale":        {"-table", "t=@cross:x"},
		"missing-file":     {"-table", "t=/no/such.csv"},
		"bad-fsync":        {"-table", "t=@cross:0.02", "-fsync", "sometimes"},
		"bad-queue-depth":  {"-table", "t=@cross:0.02", "-feedback-queue", "0"},
		"bad-batch-max":    {"-table", "t=@cross:0.02", "-feedback-batch", "0"},
		"bad-batch-window": {"-table", "t=@cross:0.02", "-batch-window", "-1s"},
		"drift-sans-telem": {"-table", "t=@cross:0.02", "-drift", "-telemetry=false"},
		"bad-reseed-ratio": {"-table", "t=@cross:0.02", "-drift", "-reseed-ratio", "2"},
		"bad-drift-floor":  {"-table", "t=@cross:0.02", "-drift", "-drift-reservoir", "4", "-drift-min-rounds", "1"},
	}
	for name, args := range cases {
		if _, err := setup(args); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSetupGeneratedAndFileTables(t *testing.T) {
	// One generated table and one file-backed (binary) table.
	ds := datagen.Cross(0.02, 1)
	path := filepath.Join(t.TempDir(), "cross.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Table.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d, err := setup([]string{
		"-addr", ":0",
		"-buckets", "30",
		"-table", "gen=@cross:0.02",
		"-table", "file=" + path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.addr != ":0" {
		t.Errorf("addr = %q", d.cfg.addr)
	}
	if len(d.logs) != 0 {
		t.Errorf("durability enabled without -data-dir: %d logs", len(d.logs))
	}
	ts := httptest.NewServer(d.srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "file" || names[1] != "gen" {
		t.Errorf("tables = %v", names)
	}
	// Estimate against the generated table.
	body := strings.NewReader(`{"table":"gen","lo":[450,0],"hi":[550,1000]}`)
	r2, err := http.Post(ts.URL+"/estimate", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("estimate status = %d", r2.StatusCode)
	}
}

// estimateOf returns the raw estimate for a fixed probe query.
func estimateOf(t *testing.T, url string, lo, hi [2]float64) float64 {
	t.Helper()
	body := fmt.Sprintf(`{"table":"gen","lo":[%g,%g],"hi":[%g,%g]}`, lo[0], lo[1], hi[0], hi[1])
	resp, err := http.Post(url+"/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status = %d", resp.StatusCode)
	}
	var out struct {
		Estimate float64 `json:"estimate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Estimate
}

// TestRestartRecoversDurableState is the daemon-level recovery round trip:
// serve feedback with -data-dir set, checkpoint mid-stream, tear the server
// down, set it up again from the same directory, and require bit-identical
// estimates from the recovered process.
func TestRestartRecoversDurableState(t *testing.T) {
	dataDir := t.TempDir()
	args := []string{
		"-table", "gen=@cross:0.02",
		"-buckets", "30",
		"-seed", "7",
		"-data-dir", dataDir,
		"-fsync", "none", // keep the test fast; durability is wal's own tests' job
		"-feedback-queue", "64",
		"-feedback-batch", "8",
	}
	d1, err := setup(args)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.logs) != 1 {
		t.Fatalf("expected 1 durable table, got %d", len(d1.logs))
	}
	ts := httptest.NewServer(d1.srv.Handler())

	feedbacks := [][4]float64{
		{100, 100, 300, 300}, {400, 0, 600, 1000}, {0, 400, 1000, 600},
		{200, 200, 500, 500}, {600, 600, 900, 900}, {50, 50, 150, 950},
		{300, 100, 700, 400}, {100, 700, 400, 950}, {450, 450, 550, 550},
	}
	post := func(i int, f [4]float64) {
		t.Helper()
		body := fmt.Sprintf(`{"table":"gen","lo":[%g,%g],"hi":[%g,%g],"actual":%d}`,
			f[0], f[1], f[2], f[3], 100+i*37)
		resp, err := http.Post(ts.URL+"/feedback", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feedback %d: status = %d", i, resp.StatusCode)
		}
	}
	for i, f := range feedbacks[:6] {
		post(i, f)
	}
	// Rotate a checkpoint mid-stream so recovery exercises snapshot + tail.
	if err := d1.srv.Checkpoint("gen"); err != nil {
		t.Fatal(err)
	}
	for i, f := range feedbacks[6:] {
		post(6+i, f)
	}

	probes := [][4]float64{
		{450, 0, 550, 1000}, {0, 450, 1000, 550}, {100, 100, 900, 900}, {250, 250, 350, 350},
	}
	want := make([]float64, len(probes))
	for i, p := range probes {
		want[i] = estimateOf(t, ts.URL, [2]float64{p[0], p[1]}, [2]float64{p[2], p[3]})
	}
	ts.Close()
	d1.srv.DrainFeedback()
	d1.closeLogs()

	// "Restart": a second setup from the same flags and data directory.
	d2, err := setup(args)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.closeLogs()
	defer d2.srv.DrainFeedback()
	ts2 := httptest.NewServer(d2.srv.Handler())
	defer ts2.Close()

	for i, p := range probes {
		got := estimateOf(t, ts2.URL, [2]float64{p[0], p[1]}, [2]float64{p[2], p[3]})
		if math.Float64bits(got) != math.Float64bits(want[i]) {
			t.Errorf("probe %d: recovered estimate %v != pre-restart %v", i, got, want[i])
		}
	}

	// The recovered WAL continues the sequence instead of restarting it.
	sr, err := http.Get(ts2.URL + "/stats?table=gen")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats struct {
		WAL struct {
			Enabled bool   `json:"enabled"`
			LastSeq uint64 `json:"last_seq"`
		} `json:"wal"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.WAL.Enabled || stats.WAL.LastSeq != uint64(len(feedbacks)) {
		t.Errorf("recovered wal stats = %+v, want enabled with last_seq %d", stats.WAL, len(feedbacks))
	}
}

// TestSetupDriftEnabled wires -drift through setup and checks the loop is
// live on every registered table via /stats.
func TestSetupDriftEnabled(t *testing.T) {
	d, err := setup([]string{
		"-addr", ":0",
		"-buckets", "30",
		"-table", "gen=@cross:0.02",
		"-drift",
		"-drift-nae", "0.4",
		"-drift-window", "2",
		"-reseed-probation", "16",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.cfg.drift || d.cfg.driftCfg.NAEThreshold != 0.4 || d.cfg.driftCfg.Sustain != 2 || d.cfg.driftCfg.Probation != 16 {
		t.Fatalf("drift config not plumbed: %+v", d.cfg.driftCfg)
	}
	ts := httptest.NewServer(d.srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats?table=gen")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Drift struct {
			Enabled bool   `json:"enabled"`
			State   string `json:"state"`
		} `json:"drift"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Drift.Enabled || stats.Drift.State != "watching" {
		t.Errorf("drift stats = %+v, want enabled and watching", stats.Drift)
	}
}

// TestReplayReseedRecord plants a journaled re-seed promotion in the WAL and
// requires the daemon to restore the adopted histogram bit-identically: the
// recovered estimator must answer with the donor's numbers, not the ones a
// fresh data-seeded build would produce.
func TestReplayReseedRecord(t *testing.T) {
	dataDir := t.TempDir()
	args := []string{
		"-table", "gen=@cross:0.02",
		"-buckets", "30",
		"-seed", "7",
		"-data-dir", dataDir,
		"-fsync", "none",
	}

	// Donor: same table, different seed, plus feedback — a histogram the
	// data-seeded build cannot coincidentally equal.
	ds := datagen.Cross(0.02, 1)
	donor, err := sthist.Open(ds.Table, sthist.Options{Buckets: 30, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	q, err := sthist.NewRect([]float64{400, 0}, []float64{600, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.Feedback(q, 123); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := donor.SaveHistogram(&blob); err != nil {
		t.Fatal(err)
	}

	// Plant the promotion record in the table's (otherwise empty) log.
	l, _, err := wal.Open(filepath.Join(dataDir, "gen"), wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(wal.Record{Kind: wal.KindReseed, Blob: blob.Bytes()}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	d, err := setup(args)
	if err != nil {
		t.Fatal(err)
	}
	defer d.closeLogs()
	defer d.srv.DrainFeedback()
	ts := httptest.NewServer(d.srv.Handler())
	defer ts.Close()

	probes := [][4]float64{
		{450, 0, 550, 1000}, {0, 450, 1000, 550}, {100, 100, 900, 900},
	}
	for i, p := range probes {
		pq, err := sthist.NewRect([]float64{p[0], p[1]}, []float64{p[2], p[3]})
		if err != nil {
			t.Fatal(err)
		}
		want := donor.Estimate(pq)
		got := estimateOf(t, ts.URL, [2]float64{p[0], p[1]}, [2]float64{p[2], p[3]})
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("probe %d: recovered estimate %v != donor %v", i, got, want)
		}
	}
}
