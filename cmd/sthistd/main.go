// Command sthistd serves self-tuning selectivity estimators over HTTP.
// Tables come from CSV/binary files or the paper's generators; each gets a
// subspace-cluster-initialized histogram. Clients estimate via POST
// /estimate and keep the histograms fresh via POST /feedback (see
// internal/httpapi for the routes).
//
// Usage:
//
//	sthistd -addr :8080 -table orders=orders.csv -table sky=@sky:0.02
//
// A table spec is NAME=PATH for a file, or NAME=@DATASET:SCALE for a
// generated dataset.
//
// With -data-dir set, every table becomes crash-safe: accepted feedback is
// appended to a per-table write-ahead log under <data-dir>/<table>/ before
// it is applied, and the histogram is checkpointed periodically (see
// internal/wal). On startup the daemon restores the latest checkpoint and
// replays the log tail, so a crash or kill loses at most the records after
// the last fsync.
//
// Feedback is group-committed: each table has a single writer goroutine
// draining a bounded queue (-feedback-queue), so concurrent requests
// coalesce into one WAL append + fsync per batch (-feedback-batch caps the
// batch, -batch-window optionally waits for stragglers). A full queue
// answers 429 with Retry-After instead of buffering unboundedly.
//
// With -warm-from set (and -data-dir), a freshly provisioned node promotes
// itself from a live peer before serving: each table with no local durable
// state fetches GET /snapshot from the given base URL and restores the
// archive into its WAL directory, so recovery proceeds from the source's
// checkpoint + WAL tail exactly as if the source's directory had been copied.
// Tables that already have local state skip the fetch.
//
// With -drift set, each table additionally runs the drift-adaptation loop
// (see internal/drift): a detector watches the rolling NAE from telemetry
// and, when the error stays above -drift-nae for -drift-window consecutive
// rounds, re-clusters a reservoir of recent feedback into a candidate
// histogram, shadow-scores it against the live one for -reseed-probation
// rounds, and atomically promotes it if it wins. Promotions are journaled to
// the WAL as reseed records, so recovery replays them exactly.
//
// SIGINT/SIGTERM trigger a graceful shutdown: /healthz flips to 503,
// in-flight requests drain, the feedback queues commit their tails, and
// every table is checkpointed before the process exits — feedback that was
// answered 200 is on disk. Drift interacts cleanly with the drain: a
// promotion that happened is already journaled (and captured by the final
// checkpoint), while an unresolved probation or in-flight candidate build is
// simply discarded — if the drift is real, the detector fires again after
// restart once the feedback floor is met.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sthist"
	"sthist/internal/datagen"
	"sthist/internal/dataset"
	"sthist/internal/drift"
	"sthist/internal/httpapi"
	"sthist/internal/telemetry"
	"sthist/internal/trace"
	"sthist/internal/wal"
)

// tableSpecs collects repeated -table flags.
type tableSpecs []string

func (t *tableSpecs) String() string { return strings.Join(*t, ",") }

func (t *tableSpecs) Set(v string) error {
	*t = append(*t, v)
	return nil
}

// config is the parsed command line.
type config struct {
	addr          string
	debugAddr     string
	dataDir       string
	warmFrom      string
	fsync         string
	ckptInterval  time.Duration
	ckptRecords   int
	readTimeout   time.Duration
	writeTimeout  time.Duration
	maxBody       int64
	shutdownGrace time.Duration
	queueDepth    int
	batchMax      int
	batchWindow   time.Duration
	drift         bool
	driftCfg      drift.Config
}

// daemon is the assembled server: the HTTP surface plus the write-ahead
// logs it must checkpoint and close on the way down.
type daemon struct {
	srv  *httpapi.Server
	cfg  config
	logs map[string]*wal.Log
	tel  *telemetry.Telemetry
}

func main() {
	d, err := setup(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sthistd:", err)
		os.Exit(1)
	}
	if err := d.run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "sthistd:", err)
		os.Exit(1)
	}
}

// setup parses flags, loads every table (recovering durable state when
// -data-dir is set) and returns the ready daemon.
func setup(args []string) (*daemon, error) {
	fs := flag.NewFlagSet("sthistd", flag.ContinueOnError)
	var specs tableSpecs
	fs.Var(&specs, "table", "table spec NAME=PATH or NAME=@DATASET:SCALE (repeatable)")
	addr := fs.String("addr", ":8080", "listen address")
	buckets := fs.Int("buckets", 100, "histogram bucket budget per table")
	seed := fs.Int64("seed", 1, "clustering seed")
	validateEvery := fs.Int("validate-every", sthist.DefaultValidateEvery,
		"verify histogram invariants every N feedbacks (negative disables)")
	dataDir := fs.String("data-dir", "", "directory for per-table WAL + checkpoints (empty = no durability)")
	warmFrom := fs.String("warm-from", "",
		"base URL of a live sthistd or sthproxy to warm-start from: each durable table with no local state fetches GET /snapshot and restores it before recovery (replica promotion)")
	fsync := fs.String("fsync", "always", "WAL fsync policy: always or none")
	ckptInterval := fs.Duration("checkpoint-interval", 30*time.Second, "how often to consider checkpointing")
	ckptRecords := fs.Int("checkpoint-records", 1024, "checkpoint a table once this many records accumulate in its WAL")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
	writeTimeout := fs.Duration("write-timeout", 10*time.Second, "HTTP write timeout")
	maxBody := fs.Int64("max-body", httpapi.DefaultMaxBodyBytes, "maximum request body size in bytes")
	shutdownGrace := fs.Duration("shutdown-grace", 15*time.Second, "how long to drain in-flight requests on shutdown")
	queueDepth := fs.Int("feedback-queue", httpapi.DefaultFeedbackQueueDepth,
		"per-table feedback queue depth; a full queue answers 429")
	batchMax := fs.Int("feedback-batch", httpapi.DefaultFeedbackBatchMax,
		"maximum observations per feedback group commit")
	batchWindow := fs.Duration("batch-window", 0,
		"how long the feedback writer waits for stragglers before committing a batch (0 = commit immediately)")
	telemetryOn := fs.Bool("telemetry", true, "enable metrics, flight recorder and rolling accuracy tracking")
	traceSample := fs.Float64("trace-sample", 0,
		"probability of head-sampling a distributed trace per request (0 disables tracing, 1 traces everything; slow and failed traces are tail-retained regardless)")
	slowQuery := fs.Duration("slow-query", telemetry.DefaultSlowThreshold, "log feedback rounds at or above this latency (0 disables)")
	traceEvents := fs.Int("trace-events", telemetry.DefaultTraceEvents, "flight-recorder ring capacity per table")
	debugAddr := fs.String("debug-addr", "", "separate listen address for /debug/pprof, /metrics and /debug/trace (empty = off)")
	driftOn := fs.Bool("drift", false, "enable drift-adaptive re-seeding (requires -telemetry)")
	driftDefaults := drift.DefaultConfig()
	driftNAE := fs.Float64("drift-nae", driftDefaults.NAEThreshold,
		"rolling NAE above which the workload counts as drifted")
	driftWindow := fs.Int("drift-window", driftDefaults.Sustain,
		"consecutive over-threshold rounds before the detector fires")
	driftMinRounds := fs.Int("drift-min-rounds", driftDefaults.MinRounds,
		"feedback rounds the rolling window must cover before the detector arms")
	driftCooldown := fs.Int("drift-cooldown", driftDefaults.Cooldown,
		"rounds ignored after a probation resolves before the detector can fire again")
	driftReservoir := fs.Int("drift-reservoir", driftDefaults.ReservoirSize,
		"feedback reservoir capacity the re-seeder clusters")
	reseedProbation := fs.Int("reseed-probation", driftDefaults.Probation,
		"rounds a re-seeded candidate is shadow-scored before promote/reject")
	reseedRatio := fs.Float64("reseed-ratio", driftDefaults.PromoteRatio,
		"promote the candidate when its probation error is <= ratio * live error")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("at least one -table is required")
	}
	var sync wal.SyncPolicy
	switch *fsync {
	case "always":
		sync = wal.SyncAlways
	case "none":
		sync = wal.SyncNever
	default:
		return nil, fmt.Errorf("bad -fsync %q (want always or none)", *fsync)
	}
	if *queueDepth < 1 {
		return nil, fmt.Errorf("bad -feedback-queue %d (want >= 1)", *queueDepth)
	}
	if *batchMax < 1 {
		return nil, fmt.Errorf("bad -feedback-batch %d (want >= 1)", *batchMax)
	}
	if *batchWindow < 0 {
		return nil, fmt.Errorf("bad -batch-window %v (want >= 0)", *batchWindow)
	}
	if *traceSample < 0 || *traceSample > 1 {
		return nil, fmt.Errorf("bad -trace-sample %v (want 0..1)", *traceSample)
	}
	dcfg := drift.Config{
		NAEThreshold:  *driftNAE,
		Sustain:       *driftWindow,
		MinRounds:     *driftMinRounds,
		Cooldown:      *driftCooldown,
		ReservoirSize: *driftReservoir,
		Probation:     *reseedProbation,
		PromoteRatio:  *reseedRatio,
	}
	if *driftOn {
		if !*telemetryOn {
			return nil, fmt.Errorf("-drift needs -telemetry (the detector reads the rolling NAE)")
		}
		if err := dcfg.Sanitize(); err != nil {
			return nil, err
		}
	}

	d := &daemon{
		srv: httpapi.NewServer(),
		cfg: config{
			addr:          *addr,
			debugAddr:     *debugAddr,
			dataDir:       *dataDir,
			warmFrom:      *warmFrom,
			fsync:         *fsync,
			ckptInterval:  *ckptInterval,
			ckptRecords:   *ckptRecords,
			readTimeout:   *readTimeout,
			writeTimeout:  *writeTimeout,
			maxBody:       *maxBody,
			shutdownGrace: *shutdownGrace,
			queueDepth:    *queueDepth,
			batchMax:      *batchMax,
			batchWindow:   *batchWindow,
			drift:         *driftOn,
			driftCfg:      dcfg,
		},
		logs: make(map[string]*wal.Log),
	}
	d.srv.SetMaxBodyBytes(*maxBody)
	// Queue settings apply to tables registered afterwards, so they must be
	// in place before the -table loop below.
	d.srv.SetFeedbackQueue(*queueDepth, *batchMax)
	d.srv.SetBatchWindow(*batchWindow)
	if *telemetryOn {
		slow := *slowQuery
		if slow == 0 {
			slow = -1 // Options: negative disables, zero means default
		}
		d.tel = telemetry.New(telemetry.Options{TraceEvents: *traceEvents, SlowThreshold: slow})
		d.srv.EnableTelemetry(d.tel)
	}
	if *traceSample > 0 {
		// Slow-trace tail retention follows the same threshold that flags a
		// feedback round as slow in the logs, so an exemplar and its log line
		// agree on what "slow" means.
		slow := *slowQuery
		if slow == 0 {
			slow = -1
		}
		d.srv.SetTracer(trace.New(trace.Options{
			Service:       "sthistd:" + *addr,
			SampleRate:    *traceSample,
			SlowThreshold: slow,
		}))
	}

	opts := sthist.Options{Buckets: *buckets, Seed: *seed, ValidateEvery: *validateEvery}
	for _, spec := range specs {
		name, src, ok := strings.Cut(spec, "=")
		if !ok || name == "" || src == "" {
			d.closeLogs()
			return nil, fmt.Errorf("bad table spec %q (want NAME=PATH or NAME=@DATASET:SCALE)", spec)
		}
		tab, err := loadTable(src, *seed)
		if err != nil {
			d.closeLogs()
			return nil, fmt.Errorf("loading table %q: %w", name, err)
		}
		if *dataDir == "" {
			est, err := sthist.Open(tab, opts)
			if err != nil {
				d.closeLogs()
				return nil, fmt.Errorf("opening estimator for %q: %w", name, err)
			}
			if err := d.srv.Register(name, est); err != nil {
				d.closeLogs()
				return nil, err
			}
		} else {
			if d.cfg.warmFrom != "" {
				d.warmTable(name)
			}
			if err := d.openDurable(name, tab, opts, sync); err != nil {
				d.closeLogs()
				return nil, err
			}
		}
		if d.cfg.drift {
			if err := d.srv.EnableDrift(name, d.cfg.driftCfg); err != nil {
				d.closeLogs()
				return nil, fmt.Errorf("enabling drift for %q: %w", name, err)
			}
		}
	}
	return d, nil
}

// warmTable is the replica-promotion path: when the table has no local
// durable state yet, fetch a snapshot archive from -warm-from and restore it
// into the table's WAL directory. Recovery then proceeds normally from the
// restored checkpoint + WAL tail, bit-identical to recovering the source's
// own directory. Failures are logged and non-fatal — the table just starts
// cold, which is the same behavior as no -warm-from at all.
func (d *daemon) warmTable(name string) {
	dir := filepath.Join(d.cfg.dataDir, name)
	if wal.HasState(dir) {
		log.Printf("sthistd: table %q: local state exists; skipping warm-from", name)
		return
	}
	url := strings.TrimSuffix(d.cfg.warmFrom, "/") + "/snapshot?table=" + name
	client := &http.Client{Timeout: 30 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		log.Printf("sthistd: table %q: warm-from request invalid (%v); starting cold", name, err)
		return
	}
	trace.InjectContext(ctx, req)
	resp, err := client.Do(req)
	if err != nil {
		log.Printf("sthistd: table %q: warm-from fetch failed (%v); starting cold", name, err)
		return
	}
	defer func() { _ = resp.Body.Close() }() // best-effort fetch; errors already surfaced below
	if resp.StatusCode != http.StatusOK {
		log.Printf("sthistd: table %q: warm-from source answered %d; starting cold", name, resp.StatusCode)
		return
	}
	if err := wal.RestoreArchive(dir, wal.Options{}, resp.Body); err != nil {
		log.Printf("sthistd: table %q: warm-from restore rejected (%v); starting cold", name, err)
		return
	}
	log.Printf("sthistd: table %q: warm-started from %s (last seq %s)", name, d.cfg.warmFrom, resp.Header.Get("X-Sthist-Last-Seq"))
}

// openDurable opens the table's WAL directory, restores the latest
// checkpoint (or re-seeds the histogram from the data when there is none),
// replays the surviving log tail and registers the recovered estimator.
func (d *daemon) openDurable(name string, tab *sthist.Table, opts sthist.Options, sync wal.SyncPolicy) error {
	dir := filepath.Join(d.cfg.dataDir, name)
	wopts := wal.Options{Sync: sync}
	if d.tel != nil {
		wopts.Observer = d.tel.WAL(name)
	}
	l, rc, err := wal.Open(dir, wopts)
	if err != nil {
		return fmt.Errorf("opening wal for %q: %w", name, err)
	}
	if rc.SnapshotErr != nil {
		log.Printf("sthistd: table %q: checkpoint unreadable (%v); re-seeding from data and replaying the log", name, rc.SnapshotErr)
	}
	if rc.Torn {
		log.Printf("sthistd: table %q: torn record at log tail truncated (crash mid-write)", name)
	}
	if rc.Skipped > 0 {
		log.Printf("sthistd: table %q: skipped %d corrupt log records", name, rc.Skipped)
	}

	// A usable snapshot makes the clustering pass redundant: the histogram
	// is about to be replaced wholesale by LoadHistogram.
	haveSnap := rc.Snapshot != nil && rc.SnapshotErr == nil
	estOpts := opts
	if haveSnap {
		estOpts.SkipInitialization = true
	}
	est, err := sthist.Open(tab, estOpts)
	if err != nil {
		_ = l.Close()
		return fmt.Errorf("opening estimator for %q: %w", name, err)
	}
	if haveSnap {
		if err := est.LoadHistogram(bytes.NewReader(rc.Snapshot)); err != nil {
			// A checkpoint that fails validation is treated like a missing
			// one: re-seed from the data, then replay.
			log.Printf("sthistd: table %q: rejecting checkpoint snapshot (%v); re-seeding from data", name, err)
			if est, err = sthist.Open(tab, opts); err != nil {
				_ = l.Close()
				return fmt.Errorf("re-opening estimator for %q: %w", name, err)
			}
		}
	}
	replayErrs, reseeds := 0, 0
	for _, r := range rc.Records {
		if r.Kind == wal.KindReseed {
			// A journaled promotion: replace the histogram wholesale, exactly
			// as AdoptHistogram did live. Later feedback records refine it.
			if err := est.LoadHistogram(bytes.NewReader(r.Blob)); err != nil {
				replayErrs++
			} else {
				reseeds++
			}
			continue
		}
		q, err := sthist.NewRect(r.Lo, r.Hi)
		if err != nil {
			replayErrs++
			continue
		}
		if err := est.Feedback(q, r.Actual); err != nil {
			replayErrs++
		}
	}
	if reseeds > 0 {
		log.Printf("sthistd: table %q: replayed %d re-seed promotion(s)", name, reseeds)
	}
	if replayErrs > 0 {
		log.Printf("sthistd: table %q: %d of %d replayed records rejected", name, replayErrs, len(rc.Records))
	}
	if len(rc.Records) > 0 || rc.Snapshot != nil {
		log.Printf("sthistd: table %q: recovered checkpoint=%v, replayed %d records (last seq %d)",
			name, haveSnap, len(rc.Records), l.LastSeq())
	}
	if err := d.srv.RegisterDurable(name, est, l); err != nil {
		_ = l.Close()
		return err
	}
	d.logs[name] = l
	return nil
}

func (d *daemon) closeLogs() {
	for name, l := range d.logs {
		if err := l.Close(); err != nil {
			log.Printf("sthistd: closing wal for %q: %v", name, err)
		}
	}
}

// run serves until the context is cancelled or a signal arrives, then
// drains, checkpoints every durable table and closes the logs.
func (d *daemon) run(ctx context.Context) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{
		Addr:         d.cfg.addr,
		Handler:      d.srv.Handler(),
		ReadTimeout:  d.cfg.readTimeout,
		WriteTimeout: d.cfg.writeTimeout,
	}

	// Shutdown-path gauges: how long the last ticker checkpoint pass took,
	// and how long the SIGTERM drain took (set once, on the way down, so a
	// final scrape — or a test — can read it).
	var ckptPassDur, drainDur *telemetry.Gauge
	if d.tel != nil {
		reg := d.tel.Registry()
		ckptPassDur = reg.Gauge("sthist_checkpoint_pass_duration_seconds",
			"Duration of the last periodic checkpoint pass over all due tables.", nil)
		drainDur = reg.Gauge("sthist_drain_duration_seconds",
			"Duration of the in-flight request drain during graceful shutdown.", nil)
	}

	// Periodic checkpointing: rotate any WAL that accumulated enough
	// records, and retry failed ones (a successful checkpoint heals a WAL
	// whose append errored).
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		t := time.NewTicker(d.cfg.ckptInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				start := time.Now()
				if err := d.srv.CheckpointDue(d.cfg.ckptRecords); err != nil {
					log.Printf("sthistd: checkpoint: %v", err)
				}
				if ckptPassDur != nil {
					ckptPassDur.Set(time.Since(start).Seconds())
				}
			}
		}
	}()

	// Optional debug listener: pprof plus the observability routes, on an
	// address that can stay firewalled off from estimator traffic.
	var ds *http.Server
	if d.cfg.debugAddr != "" {
		ds = &http.Server{Addr: d.cfg.debugAddr, Handler: d.debugHandler()}
		go func() {
			if err := ds.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("sthistd: debug listener: %v", err)
			}
		}()
		log.Printf("sthistd debug listener on %s", d.cfg.debugAddr)
	}

	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	log.Printf("sthistd listening on %s (durable tables: %d)", d.cfg.addr, len(d.logs))

	select {
	case err := <-errc:
		d.srv.DrainFeedback()
		d.closeLogs()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop advertising readiness, drain in-flight
	// requests, then checkpoint so the WAL tail is empty on a clean exit.
	log.Printf("sthistd: shutting down")
	d.srv.SetDraining(true)
	shCtx, cancel := context.WithTimeout(context.Background(), d.cfg.shutdownGrace)
	defer cancel()
	drainStart := time.Now()
	if err := hs.Shutdown(shCtx); err != nil {
		log.Printf("sthistd: drain: %v", err)
	}
	if drainDur != nil {
		drainDur.Set(time.Since(drainStart).Seconds())
		log.Printf("sthistd: drained in %v", time.Since(drainStart).Round(time.Millisecond))
	}
	// HTTP drain done: no new feedback can arrive. Commit every queued tail
	// (each acknowledged observation reaches the WAL) before the final
	// checkpoint empties the logs.
	d.srv.DrainFeedback()
	<-ckptDone
	if err := d.srv.CheckpointAll(); err != nil {
		log.Printf("sthistd: final checkpoint: %v", err)
	}
	if ds != nil {
		_ = ds.Close()
	}
	d.closeLogs()
	log.Printf("sthistd: bye")
	return nil
}

// debugHandler mounts net/http/pprof alongside the telemetry routes on the
// -debug-addr listener.
func (d *daemon) debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if d.tel != nil {
		mux.Handle("/metrics", d.tel.MetricsHandler())
		mux.Handle("/debug/trace", d.tel.TraceHandler())
	}
	return mux
}

// loadTable reads a CSV/binary file, or generates @DATASET:SCALE.
func loadTable(src string, seed int64) (*sthist.Table, error) {
	if strings.HasPrefix(src, "@") {
		dsName, scaleStr, _ := strings.Cut(strings.TrimPrefix(src, "@"), ":")
		scale := 0.02
		if scaleStr != "" {
			v, err := strconv.ParseFloat(scaleStr, 64)
			if err != nil {
				return nil, fmt.Errorf("bad scale %q: %w", scaleStr, err)
			}
			scale = v
		}
		ds, err := datagen.ByName(dsName, scale, seed)
		if err != nil {
			return nil, err
		}
		return ds.Table, nil
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only handle
	if strings.HasSuffix(src, ".bin") {
		return dataset.ReadBinary(f)
	}
	return sthist.LoadCSV(f)
}
