// Command sthistd serves self-tuning selectivity estimators over HTTP.
// Tables come from CSV/binary files or the paper's generators; each gets a
// subspace-cluster-initialized histogram. Clients estimate via POST
// /estimate and keep the histograms fresh via POST /feedback (see
// internal/httpapi for the routes).
//
// Usage:
//
//	sthistd -addr :8080 -table orders=orders.csv -table sky=@sky:0.02
//
// A table spec is NAME=PATH for a file, or NAME=@DATASET:SCALE for a
// generated dataset.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"sthist"
	"sthist/internal/datagen"
	"sthist/internal/dataset"
	"sthist/internal/httpapi"
)

// tableSpecs collects repeated -table flags.
type tableSpecs []string

func (t *tableSpecs) String() string { return strings.Join(*t, ",") }

func (t *tableSpecs) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	srv, addr, err := setup(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sthistd:", err)
		os.Exit(1)
	}
	log.Printf("sthistd listening on %s", addr)
	log.Fatal(http.ListenAndServe(addr, srv.Handler()))
}

// setup parses flags, loads every table and returns the ready server.
func setup(args []string) (*httpapi.Server, string, error) {
	fs := flag.NewFlagSet("sthistd", flag.ContinueOnError)
	var specs tableSpecs
	fs.Var(&specs, "table", "table spec NAME=PATH or NAME=@DATASET:SCALE (repeatable)")
	addr := fs.String("addr", ":8080", "listen address")
	buckets := fs.Int("buckets", 100, "histogram bucket budget per table")
	seed := fs.Int64("seed", 1, "clustering seed")
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}
	if len(specs) == 0 {
		return nil, "", fmt.Errorf("at least one -table is required")
	}
	srv := httpapi.NewServer()
	for _, spec := range specs {
		name, src, ok := strings.Cut(spec, "=")
		if !ok || name == "" || src == "" {
			return nil, "", fmt.Errorf("bad table spec %q (want NAME=PATH or NAME=@DATASET:SCALE)", spec)
		}
		tab, err := loadTable(src, *seed)
		if err != nil {
			return nil, "", fmt.Errorf("loading table %q: %w", name, err)
		}
		est, err := sthist.Open(tab, sthist.Options{Buckets: *buckets, Seed: *seed})
		if err != nil {
			return nil, "", fmt.Errorf("opening estimator for %q: %w", name, err)
		}
		if err := srv.Register(name, est); err != nil {
			return nil, "", err
		}
	}
	return srv, *addr, nil
}

// loadTable reads a CSV/binary file, or generates @DATASET:SCALE.
func loadTable(src string, seed int64) (*sthist.Table, error) {
	if strings.HasPrefix(src, "@") {
		dsName, scaleStr, _ := strings.Cut(strings.TrimPrefix(src, "@"), ":")
		scale := 0.02
		if scaleStr != "" {
			v, err := strconv.ParseFloat(scaleStr, 64)
			if err != nil {
				return nil, fmt.Errorf("bad scale %q: %w", scaleStr, err)
			}
			scale = v
		}
		ds, err := datagen.ByName(dsName, scale, seed)
		if err != nil {
			return nil, err
		}
		return ds.Table, nil
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(src, ".bin") {
		return dataset.ReadBinary(f)
	}
	return sthist.LoadCSV(f)
}
