// Command sthlint runs the repo's static-analysis suite (internal/lint) over
// a set of package patterns and reports invariant violations.
//
// Usage:
//
//	sthlint [-json] [-dir d] [packages...]
//
// With no patterns it analyzes ./.... Exit status is 0 when clean, 1 when
// diagnostics were reported, 2 when loading or type-checking failed.
package main

import (
	"flag"
	"fmt"
	"os"

	"sthist/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (CI annotation format)")
	dir := flag.String("dir", "", "directory to run the go command in (default: current directory)")
	list := flag.Bool("checks", false, "list the registered analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sthlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "sthlint:", err)
			os.Exit(2)
		}
	} else {
		if err := lint.WriteText(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "sthlint:", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "sthlint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
