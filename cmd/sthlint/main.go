// Command sthlint runs the repo's static-analysis suite (internal/lint) over
// a set of package patterns and reports invariant violations.
//
// Usage:
//
//	sthlint [-json] [-sarif out.sarif] [-baseline file] [-write-baseline file]
//	        [-fix] [-dir d] [packages...]
//
// With no patterns it analyzes ./.... A -baseline file subtracts the
// committed ledger of known findings, so only NEW violations fail the run;
// -write-baseline regenerates that ledger. -fix applies every suggested fix
// to disk and re-runs the suite over the patched tree. -sarif additionally
// writes a SARIF 2.1.0 artifact for GitHub code-scanning annotations.
//
// Exit status is 0 when clean (after baseline subtraction), 1 when
// diagnostics were reported, 2 when loading or type-checking failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sthist/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (CI annotation format)")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 report to this file")
	baselinePath := flag.String("baseline", "", "subtract the findings recorded in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "write the current findings to this baseline file and exit clean")
	fix := flag.Bool("fix", false, "apply suggested fixes to disk, then re-run over the patched tree")
	dir := flag.String("dir", "", "directory to run the go command in (default: current directory)")
	list := flag.Bool("checks", false, "list the registered analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sthlint:", err)
		os.Exit(2)
	}
	root := *dir
	if root == "" {
		var err error
		if root, err = os.Getwd(); err != nil {
			fail(err)
		}
	}
	if abs, err := filepath.Abs(root); err == nil {
		root = abs
	}

	run := func() []lint.Diagnostic {
		pkgs, err := lint.Load(*dir, flag.Args()...)
		if err != nil {
			fail(err)
		}
		return lint.Run(pkgs, analyzers)
	}

	diags := run()
	if *fix {
		changed, err := lint.ApplyFixes(diags)
		if err != nil {
			fail(err)
		}
		if len(changed) > 0 {
			fmt.Fprintf(os.Stderr, "sthlint: applied fixes to %d file(s); re-running\n", len(changed))
			diags = run()
		}
	}

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, root, diags); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "sthlint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fail(err)
		}
		var stale int
		diags, stale = base.Filter(root, diags)
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "sthlint: %d baseline entr(ies) no longer match; regenerate %s to burn them down\n", stale, *baselinePath)
		}
	}

	if *sarifOut != "" {
		f, err := os.Create(*sarifOut)
		if err != nil {
			fail(err)
		}
		werr := lint.WriteSARIF(f, root, analyzers, diags)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fail(werr)
		}
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fail(err)
		}
	} else {
		if err := lint.WriteText(os.Stdout, diags); err != nil {
			fail(err)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "sthlint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
