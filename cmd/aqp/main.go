// Command aqp is an interactive approximate query processor: it loads a CSV
// table (or generates one of the paper's datasets), builds a
// subspace-cluster-initialized self-tuning histogram over it, and answers
// COUNT(*) range predicates from the histogram alone — optionally verifying
// against the data and feeding the truth back so the histogram keeps
// learning.
//
// Usage:
//
//	aqp -csv data.csv
//	aqp -dataset sky -scale 0.02
//
// Then type predicates, one per line:
//
//	x BETWEEN 100 AND 300 AND y >= 500
//	ra >= 200 AND dec <= 400
//
// Commands: \q quit, \buckets dump the histogram, \stats show counters,
// \save <path> / \load <path> persist and restore the trained histogram.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sthist"
	"sthist/internal/datagen"
	"sthist/internal/dataset"
	"sthist/internal/predicate"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aqp:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("aqp", flag.ContinueOnError)
	var (
		csvPath = fs.String("csv", "", "input file: CSV with a header row, or the binary format (.bin) written by datagen")
		dsName  = fs.String("dataset", "", "generate a paper dataset instead: cross, gauss, sky, ...")
		scale   = fs.Float64("scale", 0.02, "dataset scale when using -dataset")
		buckets = fs.Int("buckets", 100, "histogram bucket budget")
		seed    = fs.Int64("seed", 1, "clustering seed")
		verify  = fs.Bool("verify", true, "also report the true count and feed it back")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tab *sthist.Table
	switch {
	case *csvPath != "":
		f, err := os.Open(*csvPath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(*csvPath, ".bin") {
			tab, err = dataset.ReadBinary(f)
		} else {
			tab, err = sthist.LoadCSV(f)
		}
		_ = f.Close()
		if err != nil {
			return err
		}
	case *dsName != "":
		ds, err := datagen.ByName(*dsName, *scale, *seed)
		if err != nil {
			return err
		}
		tab = ds.Table
	default:
		return fmt.Errorf("one of -csv or -dataset is required")
	}

	start := time.Now()
	est, err := sthist.Open(tab, sthist.Options{Buckets: *buckets, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %d tuples, %d columns (%s); %d clusters found, %d initial buckets (%v)\n",
		tab.Len(), tab.Dims(), strings.Join(tab.Names(), ", "),
		len(est.Clusters()), est.Histogram().BucketCount(), time.Since(start).Round(time.Millisecond))
	fmt.Fprintln(out, `type a predicate (e.g. "x1 BETWEEN 100 AND 300"), \buckets, \stats, \save <path>, \load <path> or \q`)

	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "aqp> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return nil
		case line == `\buckets`:
			est.Histogram().Dump(out)
			continue
		case line == `\stats`:
			s := est.Histogram().Stats
			fmt.Fprintf(out, "queries=%d drills=%d skipped=%d merges(parent-child)=%d merges(sibling)=%d buckets=%d/%d\n",
				s.Queries, s.Drills, s.SkippedExactDrills, s.ParentChildMerges, s.SiblingMerges,
				est.Histogram().BucketCount(), est.Histogram().MaxBuckets())
			continue
		case strings.HasPrefix(line, `\save `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
			if err := saveHistogram(est, path); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "histogram saved to", path)
			}
			continue
		case strings.HasPrefix(line, `\load `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\load `))
			if err := loadHistogram(est, path); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "histogram loaded from", path)
			}
			continue
		}
		q, err := predicate.Parse(line, tab.Names(), est.Domain())
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			continue
		}
		t0 := time.Now()
		approx := est.Estimate(q)
		dt := time.Since(t0)
		if *verify {
			truth := est.TrueCount(q)
			fmt.Fprintf(out, "approx COUNT(*) = %.0f   (true %.0f, sel %.4f, %v)\n",
				approx, truth, est.Selectivity(q), dt.Round(time.Microsecond))
			est.FeedbackWith(q, est.TrueCount)
		} else {
			fmt.Fprintf(out, "approx COUNT(*) = %.0f   (sel %.4f, %v)\n", approx, est.Selectivity(q), dt.Round(time.Microsecond))
		}
	}
}

func saveHistogram(est *sthist.Estimator, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return est.SaveHistogram(f)
}

func loadHistogram(est *sthist.Estimator, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return est.LoadHistogram(f)
}
