package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sthist/internal/datagen"
)

func TestRunRequiresSource(t *testing.T) {
	if err := run(nil, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("missing -csv/-dataset accepted")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "nope"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunMissingCSV(t *testing.T) {
	if err := run([]string{"-csv", "/no/such/file.csv"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("missing CSV accepted")
	}
}

func TestRunSession(t *testing.T) {
	input := strings.Join([]string{
		"x1 BETWEEN 400 AND 600",
		`\stats`,
		"x1 >= 475 AND x1 <= 525 AND x2 BETWEEN 0 AND 1000",
		"bogus >= 1",
		`\q`,
	}, "\n")
	var out bytes.Buffer
	err := run([]string{"-dataset", "cross", "-scale", "0.05", "-seed", "2"}, strings.NewReader(input), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "approx COUNT(*)") {
		t.Errorf("no estimates in output:\n%s", s)
	}
	if !strings.Contains(s, "queries=") {
		t.Errorf("\\stats produced no counters:\n%s", s)
	}
	if !strings.Contains(s, "unknown column") {
		t.Errorf("bad predicate not reported:\n%s", s)
	}
}

func TestRunEOFEndsSession(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "cross", "-scale", "0.02"}, strings.NewReader("x1 >= 0\n"), &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunBinaryInput(t *testing.T) {
	ds, err := datagen.ByName("cross", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cross.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Table.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"-csv", path}, strings.NewReader("x1 >= 400\n\\q\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "approx COUNT(*)") {
		t.Errorf("no estimate from binary input:\n%s", out.String())
	}
}

func TestRunSaveLoadCommands(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	input := strings.Join([]string{
		"x1 BETWEEN 400 AND 600",
		`\save ` + path,
		`\load ` + path,
		`\load /no/such/file.json`,
		`\q`,
	}, "\n")
	var out bytes.Buffer
	if err := run([]string{"-dataset", "cross", "-scale", "0.05"}, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "histogram saved to") || !strings.Contains(s, "histogram loaded from") {
		t.Errorf("save/load commands failed:\n%s", s)
	}
	if !strings.Contains(s, "error:") {
		t.Errorf("missing-file load did not report an error:\n%s", s)
	}
}
