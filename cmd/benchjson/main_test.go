package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: sthist/internal/sthole
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEstimate/buckets=50-8         	  761455	      1576 ns/op	       0 B/op	       0 allocs/op
BenchmarkDrill/buckets=250-8           	     193	   6208443 ns/op	 1332467 B/op	   20983 allocs/op
BenchmarkDrillSteady/buckets=1000-8    	    5542	    216214 ns/op	     740 B/op	      46 allocs/op
PASS
ok  	sthist/internal/sthole	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput([]byte(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	drill, ok := got["BenchmarkDrill/buckets=250"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if drill.NsPerOp != 6208443 || drill.BytesPerOp != 1332467 || drill.AllocsPerOp != 20983 {
		t.Errorf("BenchmarkDrill parsed as %+v", drill)
	}
	est := got["BenchmarkEstimate/buckets=50"]
	if est.NsPerOp != 1576 || est.AllocsPerOp != 0 {
		t.Errorf("BenchmarkEstimate parsed as %+v", est)
	}
}

const sampleMetricBench = `goos: linux
BenchmarkFeedbackThroughput-8 	    2000	    196867 ns/op	         0.3095 fsyncs/op	         3.231 obs/batch
PASS
`

func TestParseBenchOutputCapturesCustomMetrics(t *testing.T) {
	got, err := parseBenchOutput([]byte(sampleMetricBench))
	if err != nil {
		t.Fatal(err)
	}
	res, ok := got["BenchmarkFeedbackThroughput"]
	if !ok {
		t.Fatalf("parsed %v", got)
	}
	if res.Extra["fsyncs/op"] != 0.3095 || res.Extra["obs/batch"] != 3.231 {
		t.Errorf("custom metrics parsed as %+v", res.Extra)
	}
}

func TestMetricGuard(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleMetricBench), 0o644); err != nil {
		t.Fatal(err)
	}
	base := []string{"-input", in, "-out", out,
		"-guard-metric-bench", "BenchmarkFeedbackThroughput", "-guard-metric", "fsyncs/op"}
	if err := run(append(base, "-guard-metric-max", "1"), io.Discard); err != nil {
		t.Errorf("fsyncs/op 0.3095 < 1 rejected: %v", err)
	}
	if err := run(append(base, "-guard-metric-max", "0.25"), io.Discard); err == nil {
		t.Error("fsyncs/op 0.3095 >= 0.25 accepted")
	}
	if err := run([]string{"-input", in, "-out", out,
		"-guard-metric-bench", "BenchmarkFeedbackThroughput", "-guard-metric", "nope/op"}, io.Discard); err == nil {
		t.Error("missing metric accepted")
	}
}

func TestParseBenchOutputSkipsNonBenchLines(t *testing.T) {
	got, err := parseBenchOutput([]byte("PASS\nok\tsthist\t1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %v from non-bench output", got)
	}
}

// TestRunMergesLabels: a second run with a different label must keep the
// first label's results — this is how baseline and current coexist.
func TestRunMergesLabels(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"baseline", "current"} {
		if err := run([]string{"-input", in, "-label", label, "-out", out}, io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file benchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"baseline", "current"} {
		runres, ok := file.Runs[label]
		if !ok {
			t.Fatalf("label %q missing from %s", label, data)
		}
		if runres["BenchmarkDrill/buckets=250"].NsPerOp != 6208443 {
			t.Errorf("label %q has wrong drill result: %+v", label, runres)
		}
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", in, "-out", filepath.Join(dir, "out.json")}, io.Discard); err == nil {
		t.Error("empty bench output accepted")
	}
}
