// Command benchjson runs the sthole/geom micro-benchmarks and records their
// ns/op, B/op and allocs/op in a JSON file, so the repository carries a
// perf trajectory that later PRs can be measured against.
//
// Results are stored per label; re-running with the same label overwrites
// that label and leaves the others untouched, which is how a file holds a
// "baseline" (pre-change) and a "current" (post-change) run side by side:
//
//	benchjson -label baseline -out results/BENCH_sthole.json   # before
//	benchjson -label current  -out results/BENCH_sthole.json   # after
//
// With -input the tool parses a saved `go test -bench` output instead of
// running the benchmarks itself.
//
// The guard flags turn a run into a regression gate: after recording, the
// subject benchmark's ns/op is compared against the base benchmark's and the
// tool exits nonzero when the ratio exceeds -guard-max-ratio. CI uses this to
// keep telemetry overhead under its budget:
//
//	benchjson -pkg . -bench 'BenchmarkFeedbackRound$' \
//	  -guard-base 'BenchmarkFeedbackRound/telemetry=off' \
//	  -guard-subject 'BenchmarkFeedbackRound/telemetry=on' \
//	  -guard-max-ratio 1.05 -out results/BENCH_telemetry.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// benchResult is one benchmark's measurement. Extra holds custom metrics
// emitted with b.ReportMetric (e.g. "fsyncs/op"), keyed by their unit.
type benchResult struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchFile is the on-disk layout: one named run per label.
type benchFile struct {
	Package string                            `json:"package"`
	Runs    map[string]map[string]benchResult `json:"runs"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out         = fs.String("out", "results/BENCH_sthole.json", "JSON file to create or update")
		label       = fs.String("label", "current", "label to store this run under")
		pkg         = fs.String("pkg", "./internal/sthole", "package holding the benchmarks")
		benchRe     = fs.String("bench", "BenchmarkDrill$|BenchmarkDrillSteady$|BenchmarkEstimate$", "benchmark regexp passed to go test")
		benchtime   = fs.String("benchtime", "1s", "benchtime passed to go test")
		count       = fs.Int("count", 1, "benchmark repetitions passed to go test; the fastest run is kept")
		input       = fs.String("input", "", "parse this saved `go test -bench` output instead of running go test")
		guardBase   = fs.String("guard-base", "", "benchmark name to use as the guard baseline")
		guardSubj   = fs.String("guard-subject", "", "benchmark name whose ns/op must stay within guard-max-ratio of the baseline")
		guardMax    = fs.Float64("guard-max-ratio", 1.05, "maximum allowed subject/base ns/op ratio")
		metricBench = fs.String("guard-metric-bench", "", "benchmark name whose custom metric is gated")
		metricName  = fs.String("guard-metric", "", "custom metric unit to gate (e.g. fsyncs/op)")
		metricMax   = fs.Float64("guard-metric-max", 1, "exclusive upper bound for the gated metric")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*guardBase == "") != (*guardSubj == "") {
		return fmt.Errorf("-guard-base and -guard-subject must be set together")
	}
	if (*metricBench == "") != (*metricName == "") {
		return fmt.Errorf("-guard-metric-bench and -guard-metric must be set together")
	}

	var raw []byte
	if *input != "" {
		var err error
		raw, err = os.ReadFile(*input)
		if err != nil {
			return err
		}
	} else {
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", *benchRe, "-benchmem",
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg)
		var buf bytes.Buffer
		cmd.Stdout = io.MultiWriter(&buf, stdout)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("running benchmarks: %w", err)
		}
		raw = buf.Bytes()
	}

	results, err := parseBenchOutput(raw)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}

	file := benchFile{Package: *pkg, Runs: map[string]map[string]benchResult{}}
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &file); err != nil {
			return fmt.Errorf("existing %s is not a benchjson file: %w", *out, err)
		}
	}
	if file.Runs == nil {
		file.Runs = map[string]map[string]benchResult{}
	}
	file.Runs[*label] = results

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "recorded %d benchmarks under %q in %s\n", len(names), *label, *out)

	if *guardBase != "" {
		base, ok := results[*guardBase]
		if !ok {
			return fmt.Errorf("guard base %q not among the recorded benchmarks", *guardBase)
		}
		subj, ok := results[*guardSubj]
		if !ok {
			return fmt.Errorf("guard subject %q not among the recorded benchmarks", *guardSubj)
		}
		if base.NsPerOp <= 0 {
			return fmt.Errorf("guard base %q has non-positive ns/op", *guardBase)
		}
		ratio := subj.NsPerOp / base.NsPerOp
		fmt.Fprintf(stdout, "guard: %s / %s = %.4f (max %.4f)\n", *guardSubj, *guardBase, ratio, *guardMax)
		if ratio > *guardMax {
			return fmt.Errorf("guard failed: %s is %.1f%% slower than %s (budget %.1f%%)",
				*guardSubj, (ratio-1)*100, *guardBase, (*guardMax-1)*100)
		}
	}
	if *metricBench != "" {
		res, ok := results[*metricBench]
		if !ok {
			return fmt.Errorf("guard-metric bench %q not among the recorded benchmarks", *metricBench)
		}
		v, ok := res.Extra[*metricName]
		if !ok {
			return fmt.Errorf("benchmark %q did not report metric %q", *metricBench, *metricName)
		}
		fmt.Fprintf(stdout, "guard: %s %s = %g (must stay below %g)\n", *metricBench, *metricName, v, *metricMax)
		if v >= *metricMax {
			return fmt.Errorf("guard failed: %s %s = %g, must stay below %g", *metricBench, *metricName, v, *metricMax)
		}
	}
	return nil
}

// parseBenchOutput extracts results from standard `go test -bench -benchmem`
// output. Lines look like:
//
//	BenchmarkDrill/buckets=250-8   225   6208443 ns/op   1332467 B/op   20983 allocs/op
//
// The GOMAXPROCS suffix (-8) is stripped so results are comparable across
// machines. When -count repeats a benchmark, the fastest ns/op run is kept:
// the minimum is the least noise-contaminated estimate, which matters when
// the results feed the regression guard.
func parseBenchOutput(raw []byte) (map[string]benchResult, error) {
	results := map[string]benchResult{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res benchResult
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: bad value %q", line, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seen = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				// Any other unit is a custom b.ReportMetric metric
				// ("fsyncs/op", "p50-overhead-ratio", ...).
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[fields[i+1]] = v
			}
		}
		if seen {
			if prev, ok := results[name]; !ok || res.NsPerOp < prev.NsPerOp {
				results[name] = res
			}
		}
	}
	return results, sc.Err()
}
