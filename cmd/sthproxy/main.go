// Command sthproxy is the stateless routing tier in front of a fleet of
// sthistd nodes. Tables are placed on a consistent-hash ring (deterministic:
// any identically-configured proxy routes identically), target health is
// tracked by /readyz probes with hysteresis, and traffic degrades gracefully
// under node loss:
//
//   - POST /estimate: routed to the table's primary, retried with jittered
//     exponential backoff on the replica candidates, hedged to the first
//     replica when the primary is slow. A replica-served answer is marked
//     X-Sthist-Stale: true.
//   - POST /feedback: routed to the table's first ready candidate, exactly
//     once (not idempotent); 429/503 backpressure and Retry-After pass
//     through untouched.
//   - GET /stats, /snapshot, /tables: proxied reads. Snapshot ships are
//     timed into sthist_proxy_snapshot_ship_seconds.
//   - GET /livez, /readyz, /healthz, /cluster, /metrics: the proxy's own
//     surface. The proxy is ready while at least one target is.
//
// Usage:
//
//	sthproxy -addr :8090 -target http://n1:8080 -target http://n2:8080 -target http://n3:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sthist/internal/cluster"
	"sthist/internal/trace"
)

// targetList collects repeated -target flags.
type targetList []string

func (t *targetList) String() string { return strings.Join(*t, ",") }

func (t *targetList) Set(v string) error {
	*t = append(*t, strings.TrimSuffix(v, "/"))
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sthproxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sthproxy", flag.ContinueOnError)
	var targets targetList
	fs.Var(&targets, "target", "sthistd base URL (repeatable; at least one required)")
	addr := fs.String("addr", ":8090", "listen address")
	vnodes := fs.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per target on the ring")
	replicas := fs.Int("replicas", cluster.DefaultReplicas, "candidate targets per table (primary + fallbacks)")
	reqTimeout := fs.Duration("request-timeout", cluster.DefaultRequestTimeout, "per-upstream-attempt timeout")
	maxRetries := fs.Int("max-retries", cluster.DefaultMaxRetries, "extra attempts for idempotent reads (0 disables)")
	retryBase := fs.Duration("retry-base", cluster.DefaultRetryBase, "base of the jittered exponential retry backoff")
	retryMax := fs.Duration("retry-max", cluster.DefaultRetryMax, "backoff cap")
	hedgeAfter := fs.Duration("hedge-after", cluster.DefaultHedgeAfter, "fire a hedge estimate at a replica after this long (negative disables)")
	probeInterval := fs.Duration("probe-interval", cluster.DefaultProbeInterval, "readiness probe interval")
	probeTimeout := fs.Duration("probe-timeout", cluster.DefaultProbeTimeout, "readiness probe timeout")
	downAfter := fs.Int("down-after", cluster.DefaultDownAfter, "consecutive failed probes before a target is unready")
	upAfter := fs.Int("up-after", cluster.DefaultUpAfter, "consecutive successful probes before a target is ready")
	traceSample := fs.Float64("trace-sample", 0,
		"probability of head-sampling a distributed trace per proxied request (0 disables tracing; error and slow traces are tail-retained regardless)")
	traceSlow := fs.Duration("trace-slow", trace.DefaultSlowThreshold,
		"tail-retain any trace containing a span at or above this latency (0 = default, negative disables)")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second, "HTTP write timeout (snapshot ships ride this)")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second, "in-flight drain budget on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(targets) == 0 {
		return fmt.Errorf("at least one -target is required")
	}
	if *traceSample < 0 || *traceSample > 1 {
		return fmt.Errorf("bad -trace-sample %v (want 0..1)", *traceSample)
	}
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Options{
			Service:       "sthproxy",
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
		})
	}

	p, err := cluster.NewProxy(cluster.ProxyOptions{
		Targets:        targets,
		Vnodes:         *vnodes,
		Replicas:       *replicas,
		RequestTimeout: *reqTimeout,
		MaxRetries:     *maxRetries,
		RetryBase:      *retryBase,
		RetryMax:       *retryMax,
		HedgeAfter:     *hedgeAfter,
		Tracer:         tracer,
		Health: cluster.MonitorOptions{
			Interval:  *probeInterval,
			Timeout:   *probeTimeout,
			DownAfter: *downAfter,
			UpAfter:   *upAfter,
			OnChange: func(target string, ready bool) {
				state := "ready"
				if !ready {
					state = "UNREADY"
				}
				log.Printf("sthproxy: target %s is now %s", target, state)
			},
		},
	})
	if err != nil {
		return err
	}
	p.Start()
	defer p.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{
		Addr:         *addr,
		Handler:      p.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	log.Printf("sthproxy listening on %s (%d targets, %d ready, failover deadline %v)",
		*addr, len(targets), p.Monitor().ReadyCount(), p.Monitor().FailoverDeadline())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("sthproxy: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		log.Printf("sthproxy: drain: %v", err)
	}
	log.Printf("sthproxy: bye")
	return nil
}
