package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sthist/internal/dataset"
)

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cross.csv")
	if err := run([]string{"-dataset", "cross", "-scale", "0.01", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tab, err := dataset.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 220 || tab.Dims() != 2 {
		t.Errorf("CSV round trip: %dx%d", tab.Len(), tab.Dims())
	}
}

func TestRunInfo(t *testing.T) {
	if err := run([]string{"-dataset", "gauss", "-scale", "0.005", "-info"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "nope"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunBadOutPath(t *testing.T) {
	if err := run([]string{"-dataset", "cross", "-scale", "0.01", "-out", filepath.Join(t.TempDir(), "no", "such", "dir", "x.csv")}); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	err := run([]string{"-bogus"})
	if err == nil || !strings.Contains(err.Error(), "flag") {
		t.Errorf("bad flag not rejected: %v", err)
	}
}

func TestRunBinaryFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cross.bin")
	if err := run([]string{"-dataset", "cross", "-scale", "0.01", "-format", "binary", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tab, err := dataset.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 220 {
		t.Errorf("binary round trip rows = %d", tab.Len())
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run([]string{"-dataset", "cross", "-scale", "0.01", "-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
}
