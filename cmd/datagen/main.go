// Command datagen writes one of the paper's datasets to CSV so it can be
// inspected or consumed by other tools.
//
// Usage:
//
//	datagen -dataset sky -scale 0.1 -out sky.csv
//	datagen -dataset cross -scale 1 > cross.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"sthist/internal/datagen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		name   = fs.String("dataset", "cross", "dataset: cross, cross3d, cross4d, cross5d, gauss, sky, particle")
		scale  = fs.Float64("scale", 0.1, "scale factor (1 = paper-scale tuple counts)")
		seed   = fs.Int64("seed", 1, "generation seed")
		out    = fs.String("out", "", "output file (default stdout)")
		format = fs.String("format", "csv", "output format: csv or binary")
		info   = fs.Bool("info", false, "print the ground-truth cluster inventory instead of CSV")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := datagen.ByName(*name, *scale, *seed)
	if err != nil {
		return err
	}
	if *info {
		fmt.Printf("%s: %d tuples, %d dims, %d clusters, %d noise tuples\n",
			ds.Name, ds.Table.Len(), ds.Table.Dims(), len(ds.Clusters), ds.Noise)
		for i, c := range ds.Clusters {
			fmt.Printf("  C%-3d tuples=%-9d used=%v unused=%v box=%v\n", i, c.Tuples, c.UsedDims, c.UnusedDims, c.Box)
		}
		return nil
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	switch *format {
	case "csv":
		return ds.Table.WriteCSV(w)
	case "binary":
		return ds.Table.WriteBinary(w)
	default:
		return fmt.Errorf("unknown format %q (want csv or binary)", *format)
	}
}
