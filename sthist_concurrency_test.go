package sthist

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"sthist/internal/datagen"
	"sthist/internal/workload"
)

// TestConcurrentHammer exercises every public read path against concurrent
// mutation under the race detector: wait-free readers must never observe a
// torn histogram, only fully published snapshots. The internal-consistency
// probe is Histogram(): whatever snapshot a reader grabs must validate and
// must integrate to its own total tuple count over the domain.
func TestConcurrentHammer(t *testing.T) {
	ds := datagen.Cross(0.04, 1)
	est, err := Open(ds.Table, Options{Buckets: 80, Seed: 1, ValidateEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.MustGenerate(ds.Domain, workload.Config{
		VolumeFraction: 0.01, N: 128, Seed: 9,
	}, ds.Table)
	actuals := make([]float64, len(qs))
	for i, q := range qs {
		actuals[i] = est.TrueCount(q)
	}
	var saved bytes.Buffer
	if err := est.SaveHistogram(&saved); err != nil {
		t.Fatal(err)
	}
	payload := saved.Bytes()
	domain := est.Domain()

	const writers, writerRounds, readers = 2, 250, 4
	errCh := make(chan error, 64)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writerRounds; i++ {
				j := (i*writers + w) % len(qs)
				if i%16 == 7 {
					// Exercise the batch path too.
					obs := []Observation{
						{Query: qs[j], Actual: actuals[j]},
						{Query: qs[(j+1)%len(qs)], Actual: actuals[(j+1)%len(qs)]},
					}
					for k, ferr := range est.FeedbackBatch(obs) {
						if ferr != nil {
							report(fmt.Errorf("writer %d: batch obs %d: %w", w, k, ferr))
						}
					}
					continue
				}
				if ferr := est.Feedback(qs[j], actuals[j]); ferr != nil {
					report(fmt.Errorf("writer %d round %d: %w", w, i, ferr))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if lerr := est.LoadHistogram(bytes.NewReader(payload)); lerr != nil {
				report(fmt.Errorf("load %d: %w", i, lerr))
			}
			if i%10 == 9 {
				est.Quarantine(errors.New("hammer-injected quarantine"))
			}
		}
	}()

	readerDone := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[(i+r)%len(qs)]
				if v := est.Estimate(q); math.IsNaN(v) || v < 0 {
					report(fmt.Errorf("reader %d: estimate = %g", r, v))
				}
				if s := est.Selectivity(q); math.IsNaN(s) || s < 0 || s > 1 {
					report(fmt.Errorf("reader %d: selectivity = %g", r, s))
				}
				if h := est.Health(); h.State != "ok" && h.State != "degraded" {
					report(fmt.Errorf("reader %d: health state %q", r, h.State))
				}
				if st := est.StatsSnapshot(); st.Buckets < 0 || st.Buckets > st.MaxBuckets {
					report(fmt.Errorf("reader %d: stats %+v", r, st))
				}
				// The torn-read probe: any published snapshot is internally
				// consistent — it validates, and integrating it over the whole
				// domain reproduces its own total mass.
				h := est.Histogram()
				if verr := h.Validate(); verr != nil {
					report(fmt.Errorf("reader %d: snapshot invalid: %w", r, verr))
				}
				tot := h.TotalTuples()
				got := h.Estimate(domain)
				if math.Abs(got-tot) > 1e-6*math.Max(1, tot) {
					report(fmt.Errorf("reader %d: domain estimate %g != total %g", r, got, tot))
				}
			}
		}(r)
	}

	wg.Wait()
	close(stop)
	readerWG.Wait()
	close(readerDone)
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestEstimateReadPathZeroAllocs pins the tentpole's read-path property: a
// query served off the published snapshot performs zero heap allocations —
// no lock, no copy, no boxing.
func TestEstimateReadPathZeroAllocs(t *testing.T) {
	est, qs := crossEstimator(t, 100, 64)
	for _, q := range qs { // grow the tree so the walk is non-trivial
		if err := est.Feedback(q, est.TrueCount(q)); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		q := qs[i%len(qs)]
		_ = est.Estimate(q)
		_ = est.Selectivity(q)
		_ = est.StatsSnapshot()
		_ = est.Health()
		i++
	})
	if allocs != 0 {
		t.Errorf("read path allocates %g times per round, want 0", allocs)
	}
}

// BenchmarkEstimateParallel measures concurrent read throughput off the
// published snapshot against the same reads funneled through a reader-writer
// lock — the synchronization the snapshot design replaced. bench-guard gates
// the ratio (see the bench-concurrency make target): on >= 8 cores the
// wait-free path must be at least 4x faster; small machines only check that
// it is no slower.
func BenchmarkEstimateParallel(b *testing.B) {
	est, qs := crossEstimator(b, 250, 256)
	for _, q := range qs {
		if err := est.Feedback(q, est.TrueCount(q)); err != nil {
			b.Fatal(err)
		}
	}
	var seed atomic.Int64
	b.Run("mode=locked", func(b *testing.B) {
		var mu sync.RWMutex
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := int(seed.Add(1)) * 17
			for pb.Next() {
				mu.RLock()
				_ = est.Estimate(qs[i%len(qs)])
				mu.RUnlock()
				i++
			}
		})
	})
	b.Run("mode=snapshot", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := int(seed.Add(1)) * 17
			for pb.Next() {
				_ = est.Estimate(qs[i%len(qs)])
				i++
			}
		})
	})
}
