package sthist

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"sthist/internal/workload"
)

// clusteredTable builds a small 2d table with one dense cluster and noise.
func clusteredTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		tab.MustAppend([]float64{200 + rng.Float64()*100, 600 + rng.Float64()*100})
	}
	for i := 0; i < 200; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	return tab
}

func TestOpenValidation(t *testing.T) {
	tab, _ := NewTable("x")
	if _, err := Open(tab, Options{}); err == nil {
		t.Error("empty table accepted")
	}
}

func TestOpenAndEstimate(t *testing.T) {
	tab := clusteredTable(t)
	est, err := Open(tab, Options{Buckets: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewRect([]float64{200, 600}, []float64{300, 700})
	if err != nil {
		t.Fatal(err)
	}
	got := est.Estimate(cluster)
	want := est.TrueCount(cluster)
	if math.Abs(got-want) > 0.25*want {
		t.Errorf("initialized estimate %g far from truth %g", got, want)
	}
	if s := est.Selectivity(cluster); s < 0.5 || s > 1 {
		t.Errorf("cluster selectivity = %g, want most of the data", s)
	}
	if len(est.Clusters()) == 0 {
		t.Error("no clusters reported")
	}
	if est.Domain().Dims() != 2 {
		t.Error("wrong domain dims")
	}
}

func TestOpenSkipInitialization(t *testing.T) {
	tab := clusteredTable(t)
	est, err := Open(tab, Options{Buckets: 50, SkipInitialization: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.Clusters() != nil {
		t.Error("clusters present despite SkipInitialization")
	}
	if est.Histogram().BucketCount() != 0 {
		t.Error("uninitialized estimator has buckets")
	}
}

func TestFeedbackImprovesEstimates(t *testing.T) {
	tab := clusteredTable(t)
	est, err := Open(tab, Options{Buckets: 50, SkipInitialization: true})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewRect([]float64{200, 600}, []float64{300, 700})
	before := math.Abs(est.Estimate(q) - est.TrueCount(q))
	est.Feedback(q, est.TrueCount(q))
	after := math.Abs(est.Estimate(q) - est.TrueCount(q))
	if after >= before {
		t.Errorf("feedback did not improve the estimate: %g -> %g", before, after)
	}
}

func TestTrainAndErrors(t *testing.T) {
	tab := clusteredTable(t)
	init, err := Open(tab, Options{Buckets: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	uninit, err := Open(tab, Options{Buckets: 50, SkipInitialization: true})
	if err != nil {
		t.Fatal(err)
	}
	train := workload.MustGenerate(init.Domain(), workload.Config{VolumeFraction: 0.01, N: 150, Seed: 3}, nil)
	eval := workload.MustGenerate(init.Domain(), workload.Config{VolumeFraction: 0.01, N: 150, Seed: 4}, nil)
	init.Train(train)
	uninit.Train(train)
	ni, err := init.NormalizedError(eval)
	if err != nil {
		t.Fatal(err)
	}
	nu, err := uninit.NormalizedError(eval)
	if err != nil {
		t.Fatal(err)
	}
	if ni >= nu {
		t.Errorf("initialized NAE %g not better than uninitialized %g", ni, nu)
	}
	if _, err := init.MeanAbsoluteError(nil); err == nil {
		t.Error("empty eval workload accepted")
	}
}

func TestLoadCSVRoundTrip(t *testing.T) {
	csv := "a,b\n1,2\n3,4\n"
	tab, err := LoadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 || tab.Dims() != 2 {
		t.Errorf("loaded %dx%d", tab.Len(), tab.Dims())
	}
}

func TestDefaultClusterConfig(t *testing.T) {
	cfg := DefaultClusterConfig()
	if cfg.Alpha <= 0 || cfg.Beta <= 0 || cfg.Width <= 0 {
		t.Errorf("bad defaults: %+v", cfg)
	}
}

func TestOpenDegenerateDomain(t *testing.T) {
	// A constant column yields a degenerate bounding box; Open must inflate
	// it rather than fail.
	tab, _ := NewTable("x", "y")
	for i := 0; i < 100; i++ {
		tab.MustAppend([]float64{5, float64(i)})
	}
	est, err := Open(tab, Options{Buckets: 10, SkipInitialization: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.Domain().Volume() <= 0 {
		t.Error("degenerate domain not inflated")
	}
}

func TestConcurrentEstimateAndFeedback(t *testing.T) {
	tab := clusteredTable(t)
	est, err := Open(tab, Options{Buckets: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				lo := []float64{rng.Float64() * 900, rng.Float64() * 900}
				hi := []float64{lo[0] + 50, lo[1] + 50}
				q, err := NewRect(lo, hi)
				if err != nil {
					t.Error(err)
					return
				}
				if seed%2 == 0 {
					if est.Estimate(q) < 0 {
						t.Error("negative estimate")
						return
					}
				} else {
					est.Feedback(q, est.TrueCount(q))
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if err := est.Histogram().Validate(); err != nil {
		t.Error(err)
	}
}

func TestFeedbackWithExactCounts(t *testing.T) {
	tab := clusteredTable(t)
	est, err := Open(tab, Options{Buckets: 50, SkipInitialization: true})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewRect([]float64{200, 600}, []float64{300, 700})
	before := math.Abs(est.Estimate(q) - est.TrueCount(q))
	est.FeedbackWith(q, est.TrueCount)
	after := math.Abs(est.Estimate(q) - est.TrueCount(q))
	if after >= before || after > 1 {
		t.Errorf("exact feedback did not converge: %g -> %g", before, after)
	}
}

func TestSaveLoadHistogram(t *testing.T) {
	tab := clusteredTable(t)
	est, err := Open(tab, Options{Buckets: 40, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewRect([]float64{200, 600}, []float64{300, 700})
	want := est.Estimate(q)

	var buf bytes.Buffer
	if err := est.SaveHistogram(&buf); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(tab, Options{Buckets: 40, SkipInitialization: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadHistogram(&buf); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Estimate(q); math.Abs(got-want) > 1e-9 {
		t.Errorf("estimate after reload = %g, want %g", got, want)
	}
	// Dimension mismatch rejected.
	other, _ := NewTable("a")
	for i := 0; i < 10; i++ {
		other.MustAppend([]float64{float64(i)})
	}
	est1d, err := Open(other, Options{Buckets: 5, SkipInitialization: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := est.SaveHistogram(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := est1d.LoadHistogram(&buf2); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Corrupt input rejected.
	if err := fresh.LoadHistogram(strings.NewReader("{")); err == nil {
		t.Error("corrupt histogram accepted")
	}
}

func TestGenerateWorkload(t *testing.T) {
	dom, _ := NewRect([]float64{0, 0}, []float64{100, 100})
	qs, err := GenerateWorkload(dom, 0.01, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if !dom.Contains(q) {
			t.Errorf("query %v escapes the domain", q)
		}
	}
	if _, err := GenerateWorkload(dom, 0, 5, 1); err == nil {
		t.Error("zero volume accepted")
	}
}
