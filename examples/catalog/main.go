// Multi-table catalog scenario (the SASH framework the paper cites as
// [18]): several tables share one histogram memory budget; the catalog
// manager observes which estimates keep missing and reallocates buckets
// toward the table that needs them, persisting everything as JSON.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"sthist/internal/catalog"
	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/index"
	"sthist/internal/mineclus"
	"sthist/internal/workload"
)

func run(w io.Writer) error {
	rng := rand.New(rand.NewSource(1))
	dom := geom.MustRect([]float64{0, 0}, []float64{1000, 1000})

	// "orders" is heavily clustered (hard to estimate), "sensors" is
	// uniform (easy).
	orders := dataset.MustNew("amount", "ts")
	for i := 0; i < 6000; i++ {
		cx := float64((i%3)*300 + 100)
		orders.MustAppend([]float64{cx + rng.Float64()*80, 100 + rng.Float64()*120})
	}
	sensors := dataset.MustNew("temp", "hum")
	for i := 0; i < 6000; i++ {
		sensors.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}

	cfg := catalog.DefaultConfig()
	cfg.TotalBuckets = 160
	cfg.RebalanceEvery = 100
	m, err := catalog.NewManager(cfg)
	if err != nil {
		return err
	}
	mcfg := mineclus.DefaultConfig()
	mcfg.Width = 60
	if err := m.Register("orders", orders, dom, true, mcfg); err != nil {
		return err
	}
	if err := m.Register("sensors", sensors, dom, false, mcfg); err != nil {
		return err
	}
	ob, _ := m.Buckets("orders")
	sb, _ := m.Buckets("sensors")
	fmt.Fprintf(w, "initial budget split: orders=%d sensors=%d (of %d total)\n", ob, sb, cfg.TotalBuckets)

	// Query feedback: both tables get the same amount of traffic; the
	// catalog watches the errors.
	oIdx, err := index.BuildKDTree(orders)
	if err != nil {
		return err
	}
	sIdx, err := index.BuildKDTree(sensors)
	if err != nil {
		return err
	}
	qs := workload.MustGenerate(dom, workload.Config{VolumeFraction: 0.01, N: 300, Seed: 2}, nil)
	for _, q := range qs {
		if err := m.Feedback("orders", q, float64(oIdx.Count(q))); err != nil {
			return err
		}
		if err := m.Feedback("sensors", q, float64(sIdx.Count(q))); err != nil {
			return err
		}
	}
	ob, _ = m.Buckets("orders")
	sb, _ = m.Buckets("sensors")
	fmt.Fprintf(w, "after %d feedback queries:  orders=%d sensors=%d (error-driven reallocation)\n", len(qs), ob, sb)

	// Persist and reload the whole catalog.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return err
	}
	m2, err := catalog.NewManager(cfg)
	if err != nil {
		return err
	}
	if err := m2.Load(&buf); err != nil {
		return err
	}
	probe := geom.MustRect([]float64{100, 100}, []float64{200, 220})
	a, _ := m.Estimate("orders", probe)
	b, _ := m2.Estimate("orders", probe)
	fmt.Fprintf(w, "catalog persisted and reloaded: estimate %0.f == %0.f\n", a, b)
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
