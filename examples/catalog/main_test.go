package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"initial budget split", "error-driven reallocation", "persisted and reloaded"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}
