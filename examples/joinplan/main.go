// Join planning scenario: the optimizer needs (a) single-table access-path
// choices and (b) the size of R ⋈ S to order joins. Both come from the
// self-tuning histograms — no extra statistics. This example builds two
// correlated tables, estimates the equi-join size from histogram marginals,
// and shows the access paths chosen per table.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"sthist"
	"sthist/internal/joinest"
	"sthist/internal/optimizer"
)

func run(w io.Writer) error {
	rng := rand.New(rand.NewSource(3))

	// orders(customer, amount): customers 0..999, big customers (id < 50)
	// place most orders.
	orders, err := sthist.NewTable("customer", "amount")
	if err != nil {
		return err
	}
	for i := 0; i < 30000; i++ {
		c := rng.Intn(1000)
		if rng.Float64() < 0.5 {
			c = rng.Intn(50)
		}
		orders.MustAppend([]float64{float64(c), rng.Float64() * 500})
	}
	// complaints(customer, severity): filed almost exclusively by the same
	// big customers — the correlation an independence assumption misses.
	complaints, err := sthist.NewTable("customer", "severity")
	if err != nil {
		return err
	}
	for i := 0; i < 3000; i++ {
		c := rng.Intn(1000)
		if rng.Float64() < 0.9 {
			c = rng.Intn(50)
		}
		complaints.MustAppend([]float64{float64(c), float64(rng.Intn(5))})
	}

	ordersEst, err := sthist.Open(orders, sthist.Options{Buckets: 80, Seed: 4})
	if err != nil {
		return err
	}
	complaintsEst, err := sthist.Open(complaints, sthist.Options{Buckets: 80, Seed: 5})
	if err != nil {
		return err
	}

	// Join-size estimate from histogram marginals on the customer key.
	// Integer keys: grid centered on keys with unit width (see joinest).
	oDom := ordersEst.Domain().Clone()
	cDom := complaintsEst.Domain().Clone()
	oDom.Lo[0], oDom.Hi[0] = -0.5, 999.5
	cDom.Lo[0], cDom.Hi[0] = -0.5, 999.5
	est, err := joinest.EstimateEquiJoin(ordersEst, oDom, 0, complaintsEst, cDom, 0, 1000)
	if err != nil {
		return err
	}
	truth := trueJoin(orders, complaints)
	flat := float64(orders.Len()) * float64(complaints.Len()) / 1000 // independence guess
	fmt.Fprintf(w, "join size |orders ⋈ complaints| on customer:\n")
	fmt.Fprintf(w, "  true:               %12.0f\n", truth)
	fmt.Fprintf(w, "  histogram marginals:%12.0f\n", est)
	fmt.Fprintf(w, "  independence guess: %12.0f (misses the shared-hot-customers correlation)\n", flat)

	// Access paths for a selective and a wide predicate on orders.
	tab := optimizer.Table{
		Name:        "orders",
		Tuples:      float64(orders.Len()),
		Domain:      ordersEst.Domain(),
		IndexedDims: []int{0},
		Est:         ordersEst,
	}
	selective, err := sthist.NewRect([]float64{900, 490}, []float64{905, 500})
	if err != nil {
		return err
	}
	wide, err := sthist.NewRect([]float64{0, 0}, []float64{999, 400})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\naccess paths on orders:\n")
	fmt.Fprintf(w, "  rare customers, top amounts -> %v\n", optimizer.ChooseScan(tab, selective))
	fmt.Fprintf(w, "  most of the table           -> %v\n", optimizer.ChooseScan(tab, wide))
	return nil
}

// trueJoin counts the exact equi-join size on column 0 of both tables.
func trueJoin(r, s *sthist.Table) float64 {
	counts := map[float64]float64{}
	for i := 0; i < r.Len(); i++ {
		counts[r.Value(i, 0)]++
	}
	total := 0.0
	for i := 0; i < s.Len(); i++ {
		total += counts[s.Value(i, 0)]
	}
	return total
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
