package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"red Ferraris", "Beetles", "init xerr"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestErrFactor(t *testing.T) {
	for _, c := range []struct{ est, truth, want float64 }{
		{10, 100, 10}, {100, 10, 10}, {0, 0, 1}, {50, 50, 1},
	} {
		if got := errFactor(c.est, c.truth); got != c.want {
			t.Errorf("errFactor(%g,%g) = %g, want %g", c.est, c.truth, got, c.want)
		}
	}
}
