// Query optimization scenario from the paper's introduction: a
// Cars(model, manufacturer, year, color) relation with LOCAL correlations —
// model implies manufacturer, some models were only built in certain years,
// and one manufacturer's cars are mostly one color. Categorical attributes
// are mapped to integers (paper, footnote 1).
//
// The example shows why the optimizer cares: with a good selectivity
// estimate it picks an index seek for a selective predicate and a scan for a
// non-selective one; a bad estimate flips the decision. We compare the
// initialized estimator against an uninitialized self-tuning histogram after
// identical training.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"sthist"
	"sthist/internal/baseline"
	"sthist/internal/datagen"
)

// errFactor is the multiplicative estimation error (q-error), floored at 1.
func errFactor(est, truth float64) float64 {
	lo, hi := est, truth
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 1 {
		lo = 1
	}
	if hi < 1 {
		hi = 1
	}
	return hi / lo
}

func run(w io.Writer) error {
	tab := datagen.CarsSim(1.0, 11).Table
	// Local correlations like "Ferraris are red" need the clustering to
	// reward extra dimensions strongly (low beta) and use widths matched to
	// the attribute granularity.
	ccfg := sthist.DefaultClusterConfig()
	ccfg.Beta = 0.1
	ccfg.Width = 0
	ccfg.Widths = []float64{30, 1.2, 4, 0.8} // model, manufacturer, year, color
	initialized, err := sthist.Open(tab, sthist.Options{Buckets: 120, Seed: 3, Clustering: ccfg})
	if err != nil {
		return err
	}
	// The classic optimizer default: per-attribute equi-depth histograms
	// under the attribute value independence (AVI) assumption.
	avi, err := baseline.BuildAVI(tab, 32)
	if err != nil {
		return err
	}
	uninitialized, err := sthist.Open(tab, sthist.Options{Buckets: 120, SkipInitialization: true})
	if err != nil {
		return err
	}

	// Identical light training for both (the paper's point: the initialized
	// histogram needs far less training to be useful).
	rng := rand.New(rand.NewSource(4))
	var train []sthist.Rect
	for i := 0; i < 150; i++ {
		m := rng.Float64() * 950
		y := 1990 + rng.Float64()*30
		c := rng.Float64() * 10
		q, err := sthist.NewRect(
			[]float64{m, m / 25, y, c},
			[]float64{m + 50, m/25 + 2, y + 5, c + 2},
		)
		if err != nil {
			return err
		}
		train = append(train, q)
	}
	initialized.Train(train)
	uninitialized.Train(train)

	queries := []struct {
		name string
		lo   []float64
		hi   []float64
	}{
		// Equality on an integer-mapped categorical attribute is the range
		// [v, v+1): a zero-width interval has zero volume and zero estimate
		// under any density model.
		{"red Ferraris (model 175-199, color=1)", []float64{175, 7, 1990, 1}, []float64{199.99, 7.99, 2025, 1.99}},
		{"Beetles after 2010 (model=300)", []float64{300, 12, 2010, 0}, []float64{300.99, 12.99, 2025, 12}},
		{"any car from the 2000s", []float64{0, 0, 2000, 0}, []float64{1000, 40, 2010, 12}},
	}
	total := float64(tab.Len())
	fmt.Fprintf(w, "%-42s %10s %10s %10s %10s %9s %9s %9s\n",
		"predicate", "true", "init est", "uninit est", "AVI est", "init xerr", "unin xerr", "AVI xerr")
	for _, q := range queries {
		r, err := sthist.NewRect(q.lo, q.hi)
		if err != nil {
			return err
		}
		truth := initialized.TrueCount(r)
		ei := initialized.Estimate(r)
		eu := uninitialized.Estimate(r)
		ea := avi.Estimate(r)
		fmt.Fprintf(w, "%-42s %10.0f %10.0f %10.0f %10.0f %9.1f %9.1f %9.1f\n",
			q.name, truth, ei, eu, ea, errFactor(ei, truth), errFactor(eu, truth), errFactor(ea, truth))
	}
	fmt.Fprintln(w, "\n(xerr is the multiplicative error max(est,true)/min(est,true); optimizers live and die by it;")
	fmt.Fprintln(w, " a plan flips from index seek to scan when the estimate crosses ~"+fmt.Sprintf("%.0f", 0.01*total)+" rows)")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
