// Observability walkthrough: serve a self-tuning histogram over HTTP with
// the telemetry plane enabled, stream a Cross workload through /feedback,
// and watch the instruments react — the rolling NAE (Eq. 10) decays as the
// histogram drills holes, /metrics exposes Prometheus series, and
// /debug/trace replays the last feedback rounds with drill/merge detail.
//
// The second act arms the drift loop and then shifts the data distribution
// mid-run (every cluster translated by 30% of the domain): the rolling NAE
// spikes, the detector fires, a candidate is re-clustered from the feedback
// reservoir, shadow-scored, and promoted — visible in /stats drift state and
// the sthist_drift_* / sthist_reseed_* metrics as the error recovers.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"sthist"
	"sthist/internal/datagen"
	"sthist/internal/dataset"
	"sthist/internal/drift"
	"sthist/internal/geom"
	"sthist/internal/httpapi"
	"sthist/internal/index"
	"sthist/internal/telemetry"
	"sthist/internal/workload"
)

// shiftTable returns a copy of tab with every coordinate rotated by frac of
// the domain side (modulo the domain): the same tuples, every cluster
// somewhere else — a pure distribution shift.
func shiftTable(tab *dataset.Table, dom geom.Rect, frac float64) *dataset.Table {
	d := tab.Dims()
	out := dataset.MustNew(tab.Names()...)
	out.Grow(tab.Len())
	row := make([]float64, d)
	for i := 0; i < tab.Len(); i++ {
		for j := 0; j < d; j++ {
			lo, side := dom.Lo[j], dom.Hi[j]-dom.Lo[j]
			v := tab.Value(i, j) - lo + frac*side
			for v >= side {
				v -= side
			}
			row[j] = lo + v
		}
		out.MustAppend(row)
	}
	return out
}

func run(w io.Writer) error {
	// A clustered dataset and an uninitialized histogram: accuracy starts
	// poor, so the learning curve is visible in the rolling error.
	ds := datagen.Cross(0.04, 1)
	est, err := sthist.Open(ds.Table, sthist.Options{
		Buckets: 100, Seed: 1, SkipInitialization: true,
	})
	if err != nil {
		return err
	}

	tel := telemetry.New(telemetry.Options{Window: 100, SlowThreshold: -1})
	srv := httpapi.NewServer()
	srv.EnableTelemetry(tel)
	if err := srv.Register(ds.Name, est); err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Stream query feedback through the HTTP API, exactly as a query
	// engine would, and sample the rolling NAE every 100 rounds.
	qs := workload.MustGenerate(ds.Domain, workload.Config{
		VolumeFraction: 0.01, N: 400, Seed: 7,
	}, ds.Table)
	rec := tel.Table(ds.Name)
	fmt.Fprintf(w, "rolling NAE over the last %d rounds (Eq. 10), sampled as the histogram learns:\n", 100)
	for i, q := range qs {
		body, err := json.Marshal(map[string]any{
			"table":  ds.Name,
			"lo":     q.Lo,
			"hi":     q.Hi,
			"actual": est.TrueCount(q),
		})
		if err != nil {
			return err
		}
		resp, err := http.Post(ts.URL+"/feedback", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("feedback round %d: status %d", i, resp.StatusCode)
		}
		if (i+1)%100 == 0 {
			n, mae, nae := rec.Rolling()
			fmt.Fprintf(w, "  after %3d rounds: NAE=%.4f MAE=%.2f (window=%d)\n", i+1, nae, mae, n)
		}
	}

	// Scrape /metrics like Prometheus would and show a few series.
	metrics, err := get(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nselected /metrics series:")
	for _, line := range strings.Split(metrics, "\n") {
		for _, prefix := range []string{
			"sthist_feedback_rounds_total",
			"sthist_buckets{",
			"sthist_tree_depth{",
			"sthist_rolling_nae{",
			"sthist_merges_total{",
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Fprintf(w, "  %s\n", line)
			}
		}
	}

	// Replay the flight recorder: the last rounds with drill/merge detail.
	trace, err := get(ts.URL + "/debug/trace?table=" + ds.Name + "&n=2")
	if err != nil {
		return err
	}
	var tr struct {
		Events []telemetry.TraceEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(trace), &tr); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nflight recorder (/debug/trace, newest rounds):")
	for _, ev := range tr.Events {
		fmt.Fprintf(w, "  round %d: est=%.1f actual=%.0f drills=%d merges=%d\n",
			ev.Seq, ev.Estimate, ev.Actual, ev.Drills, len(ev.Merges))
	}

	// Act two: arm the drift loop, then shift the distribution under the
	// running server. The histogram's structure is now wrong everywhere; the
	// detector notices via the rolling NAE and re-seeds from feedback.
	dcfg := drift.DefaultConfig()
	dcfg.NAEThreshold = 0.5
	dcfg.MinRounds = 50
	dcfg.Cooldown = 60
	dcfg.Probation = 40
	dcfg.MinReservoir = 24
	dcfg.ClusterWidthFrac = 0.04
	if err := srv.EnableDrift(ds.Name, dcfg); err != nil {
		return err
	}
	shifted := shiftTable(ds.Table, ds.Domain, 0.3)
	idx, err := index.BuildKDTree(shifted)
	if err != nil {
		return err
	}
	shiftQs := workload.MustGenerate(ds.Domain, workload.Config{
		VolumeFraction: 0.01, N: 600, Seed: 8,
	}, shifted)
	fmt.Fprintf(w, "\ndistribution shift injected (clusters translated 30%%); drift loop armed at NAE > %.2f:\n", dcfg.NAEThreshold)
	for i, q := range shiftQs {
		body, err := json.Marshal(map[string]any{
			"table":  ds.Name,
			"lo":     q.Lo,
			"hi":     q.Hi,
			"actual": float64(idx.Count(q)),
		})
		if err != nil {
			return err
		}
		resp, err := http.Post(ts.URL+"/feedback", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("shifted feedback round %d: status %d", i, resp.StatusCode)
		}
		if (i+1)%100 == 0 {
			stats, err := get(ts.URL + "/stats?table=" + ds.Name)
			if err != nil {
				return err
			}
			var st struct {
				Drift struct {
					State    string `json:"state"`
					Triggers uint64 `json:"triggers"`
					Promoted uint64 `json:"promoted"`
					Rejected uint64 `json:"rejected"`
				} `json:"drift"`
			}
			if err := json.Unmarshal([]byte(stats), &st); err != nil {
				return err
			}
			_, _, nae := rec.Rolling()
			fmt.Fprintf(w, "  after %3d shifted rounds: NAE=%.4f drift=%s triggers=%d promoted=%d rejected=%d\n",
				i+1, nae, st.Drift.State, st.Drift.Triggers, st.Drift.Promoted, st.Drift.Rejected)
		}
	}

	metrics, err = get(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\ndrift /metrics series after the shift:")
	for _, line := range strings.Split(metrics, "\n") {
		for _, prefix := range []string{
			"sthist_drift_triggers_total",
			"sthist_reseed_promoted_total",
			"sthist_reseed_rejected_total",
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Fprintf(w, "  %s\n", line)
			}
		}
	}
	return nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(data), nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
