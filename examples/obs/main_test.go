package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"rolling NAE",
		"sthist_feedback_rounds_total",
		"sthist_rolling_nae{",
		"flight recorder",
		"distribution shift injected",
		"sthist_drift_triggers_total",
		"sthist_reseed_promoted_total",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// The learning must be visible: the first sampled NAE exceeds the last
	// of the stationary act.
	naes := regexp.MustCompile(`NAE=([0-9.]+)`).FindAllStringSubmatch(
		s[:strings.Index(s, "distribution shift")], -1)
	if len(naes) < 2 {
		t.Fatalf("expected several NAE samples, got %d:\n%s", len(naes), s)
	}
	first, last := naes[0][1], naes[len(naes)-1][1]
	if !(last < first) { // string compare works: fixed %.4f width
		t.Errorf("rolling NAE did not decay: first=%s last=%s", first, last)
	}
	// The drift act must detect the shift and recover: at least one trigger
	// and one promotion, and the final shifted-era NAE below the first.
	shifts := regexp.MustCompile(`NAE=([0-9.]+) drift=`).FindAllStringSubmatch(s, -1)
	if len(shifts) < 2 {
		t.Fatalf("expected several shifted-era samples, got %d:\n%s", len(shifts), s)
	}
	if sfirst, slast := shifts[0][1], shifts[len(shifts)-1][1]; !(slast < sfirst) {
		t.Errorf("shifted-era NAE did not recover: first=%s last=%s", sfirst, slast)
	}
	if !regexp.MustCompile(`sthist_reseed_promoted_total\{[^}]*\} [1-9]`).MatchString(s) {
		t.Errorf("no promotion recorded in /metrics:\n%s", s)
	}
}
