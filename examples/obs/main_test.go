package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"rolling NAE",
		"sthist_feedback_rounds_total",
		"sthist_rolling_nae{",
		"flight recorder",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// The learning must be visible: the first sampled NAE exceeds the last.
	naes := regexp.MustCompile(`NAE=([0-9.]+)`).FindAllStringSubmatch(s, -1)
	if len(naes) < 2 {
		t.Fatalf("expected several NAE samples, got %d:\n%s", len(naes), s)
	}
	first, last := naes[0][1], naes[len(naes)-1][1]
	if !(last < first) { // string compare works: fixed %.4f width
		t.Errorf("rolling NAE did not decay: first=%s last=%s", first, last)
	}
}
