// Quickstart: build a small table, open a self-tuning estimator initialized
// by subspace clustering, ask for estimates, and refine with feedback.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"sthist"
)

func run(w io.Writer) error {
	// A tiny sales relation: (price, quantity). Most orders cluster around
	// low price / low quantity; a promotional burst sits at high quantity
	// for mid prices.
	tab, err := sthist.NewTable("price", "quantity")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8000; i++ {
		tab.MustAppend([]float64{10 + rng.Float64()*40, 1 + rng.Float64()*5})
	}
	for i := 0; i < 2000; i++ {
		tab.MustAppend([]float64{45 + rng.Float64()*15, 80 + rng.Float64()*40})
	}

	est, err := sthist.Open(tab, sthist.Options{Buckets: 64, Seed: 7})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "opened estimator: %d tuples, %d clusters found, %d initial buckets\n",
		tab.Len(), len(est.Clusters()), est.Histogram().BucketCount())

	// Estimate the selectivity of: WHERE price BETWEEN 45 AND 60 AND
	// quantity BETWEEN 80 AND 120 (the promo burst).
	promo, err := sthist.NewRect([]float64{45, 80}, []float64{60, 120})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "promo predicate: estimate=%.0f true=%.0f selectivity=%.3f\n",
		est.Estimate(promo), est.TrueCount(promo), est.Selectivity(promo))

	// Self-tuning: execute queries, feed the observed cardinalities back.
	for i := 0; i < 50; i++ {
		lo := []float64{rng.Float64() * 50, rng.Float64() * 100}
		hi := []float64{lo[0] + 10, lo[1] + 20}
		q, err := sthist.NewRect(lo, hi)
		if err != nil {
			return err
		}
		actual := est.TrueCount(q) // in a DBMS: the executed query's row count
		est.Feedback(q, actual)
	}
	fmt.Fprintf(w, "after 50 feedback queries: promo estimate=%.0f (true %.0f)\n",
		est.Estimate(promo), est.TrueCount(promo))
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
