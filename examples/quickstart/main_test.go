package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"opened estimator", "promo predicate", "after 50 feedback queries"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}
