// Data-drift scenario: the paper's introduction notes that self-tuning
// histograms "stay up-to-date to the data, i.e., unlike static histograms,
// one does not need to re-build them regularly". This example demonstrates
// exactly that: a static MHIST histogram and a self-tuning estimator are
// both built over the ORIGINAL data; then the data drifts (a new cluster
// appears, an old one evaporates). The static histogram goes stale, while
// the self-tuning histogram repairs itself from feedback alone.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"os"

	"sthist"
	"sthist/internal/index"
	"sthist/internal/mhist"
	"sthist/internal/workload"
)

func makeTable(newCluster bool, rng *rand.Rand) *sthist.Table {
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		log.Fatal(err)
	}
	if !newCluster {
		// Original data: cluster A only.
		for i := 0; i < 4000; i++ {
			tab.MustAppend([]float64{150 + rng.Float64()*120, 200 + rng.Float64()*120})
		}
	} else {
		// After drift: A evaporated to a quarter, B appeared.
		for i := 0; i < 1000; i++ {
			tab.MustAppend([]float64{150 + rng.Float64()*120, 200 + rng.Float64()*120})
		}
		for i := 0; i < 3000; i++ {
			tab.MustAppend([]float64{700 + rng.Float64()*120, 650 + rng.Float64()*120})
		}
	}
	for i := 0; i < 400; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	return tab
}

func run(w io.Writer) error {
	rng := rand.New(rand.NewSource(1))
	oldTab := makeTable(false, rng)
	newTab := makeTable(true, rng)

	dom, err := sthist.NewRect([]float64{0, 0}, []float64{1000, 1000})
	if err != nil {
		return err
	}
	// Both estimators are built over the OLD data.
	static, err := mhist.Build(oldTab, dom, 60)
	if err != nil {
		return err
	}
	selfTuning, err := sthist.Open(oldTab, sthist.Options{Buckets: 60, Seed: 2, Domain: dom})
	if err != nil {
		return err
	}

	// The world changes: queries now run against the NEW data.
	newIdx, err := index.BuildKDTree(newTab)
	if err != nil {
		return err
	}
	truth := func(q sthist.Rect) float64 { return float64(newIdx.Count(q)) }

	evalQueries := workload.MustGenerate(dom, workload.Config{VolumeFraction: 0.02, N: 300, Seed: 3}, nil)
	mae := func(est func(sthist.Rect) float64) float64 {
		sum := 0.0
		for _, q := range evalQueries {
			sum += math.Abs(est(q) - truth(q))
		}
		return sum / float64(len(evalQueries))
	}

	fmt.Fprintln(w, "both histograms were built on the OLD data; the data has drifted:")
	fmt.Fprintf(w, "  static MHIST error:      %8.1f tuples/query\n", mae(static.Estimate))
	fmt.Fprintf(w, "  self-tuning error:       %8.1f tuples/query (before any feedback)\n", mae(selfTuning.Estimate))

	// The self-tuning histogram sees query feedback from the new world.
	// A real executor streams the query result, so STHoles can count the
	// tuples falling into each candidate sub-rectangle exactly; FeedbackWith
	// models that (truth is the count over the drifted data).
	feedback := workload.MustGenerate(dom, workload.Config{VolumeFraction: 0.02, N: 400, Seed: 4}, nil)
	for _, q := range feedback {
		selfTuning.FeedbackWith(q, truth)
	}
	fmt.Fprintf(w, "\nafter %d feedback queries against the drifted data:\n", len(feedback))
	fmt.Fprintf(w, "  static MHIST error:      %8.1f tuples/query (stale — needs a rebuild)\n", mae(static.Estimate))
	fmt.Fprintf(w, "  self-tuning error:       %8.1f tuples/query (repaired itself)\n", mae(selfTuning.Estimate))

	b, err := sthist.NewRect([]float64{700, 650}, []float64{820, 770})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nthe new cluster B (true count %.0f): static estimates %.0f, self-tuning %.0f\n",
		truth(b), static.Estimate(b), selfTuning.Estimate(b))
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
