// Sensitivity to learning (§3.1): the same training queries in different
// orders leave an uninitialized self-tuning histogram with visibly different
// error, while the initialized histogram barely moves — Definition 1's
// delta-sensitivity, demonstrated end to end.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"sthist"
	"sthist/internal/datagen"
	"sthist/internal/workload"
)

func run(w io.Writer) error {
	ds := datagen.Gauss(0.05, 31) // 5,500 tuples, subspace Gaussian bells
	fmt.Fprintf(w, "dataset: %s, %d tuples, %d dims\n", ds.Name, ds.Table.Len(), ds.Table.Dims())

	train := workload.MustGenerate(ds.Domain, workload.Config{VolumeFraction: 0.01, N: 120, Seed: 1}, nil)
	eval := workload.MustGenerate(ds.Domain, workload.Config{VolumeFraction: 0.01, N: 300, Seed: 2}, nil)

	trainAndEval := func(initialized bool, queries []sthist.Rect) (float64, error) {
		opts := sthist.Options{Buckets: 60, Seed: 5, Domain: ds.Domain}
		opts.SkipInitialization = !initialized
		if initialized {
			ccfg := sthist.DefaultClusterConfig()
			ccfg.Width = 60
			opts.Clustering = ccfg
		}
		est, err := sthist.Open(ds.Table, opts)
		if err != nil {
			return 0, err
		}
		est.Train(queries)
		return est.NormalizedError(eval)
	}

	const permutations = 8
	fmt.Fprintf(w, "\ntraining with %d queries in %d different orders:\n", len(train), permutations)
	fmt.Fprintf(w, "%-6s %14s %14s\n", "order", "uninitialized", "initialized")
	var uMin, uMax = math.Inf(1), math.Inf(-1)
	var iMin, iMax = math.Inf(1), math.Inf(-1)
	for p := 0; p < permutations; p++ {
		wl := train
		if p > 0 {
			wl = workload.Permute(train, int64(100+p))
		}
		u, err := trainAndEval(false, wl)
		if err != nil {
			return err
		}
		i, err := trainAndEval(true, wl)
		if err != nil {
			return err
		}
		uMin, uMax = math.Min(uMin, u), math.Max(uMax, u)
		iMin, iMax = math.Min(iMin, i), math.Max(iMax, i)
		fmt.Fprintf(w, "%-6d %14.4f %14.4f\n", p, u, i)
	}
	fmt.Fprintf(w, "\nerror spread across permutations (max - min):\n")
	fmt.Fprintf(w, "  uninitialized: %.4f (%.0f%% of its best error)\n", uMax-uMin, 100*(uMax-uMin)/uMin)
	fmt.Fprintf(w, "  initialized:   %.4f (%.0f%% of its best error)\n", iMax-iMin, 100*(iMax-iMin)/iMin)
	fmt.Fprintln(w, "\ninitialization makes the histogram robust to the order of learning queries (§4.2.1)")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
