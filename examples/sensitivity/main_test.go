package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "error spread across permutations") {
		t.Errorf("output missing spread summary:\n%s", s)
	}
}
