// Sky survey scenario (§5): approximate query answering over a synthetic
// stand-in for the Sloan Digital Sky Survey extract used by the paper —
// 7 attributes (two sky coordinates, five filter magnitudes) with both
// full-dimensional and subspace clusters. The example prints the cluster
// inventory MineClus discovers (the analogue of the paper's Table 4) and
// compares initialized vs uninitialized accuracy after training.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"sthist"
	"sthist/internal/datagen"
	"sthist/internal/workload"
)

func run(w io.Writer) error {
	// 1/50th of the paper's 1.7M tuples keeps this example snappy; raise
	// the scale for a full-size run.
	ds := datagen.SkySim(0.02, 5)
	fmt.Fprintf(w, "generated %s: %d tuples, %d dims (%d ground-truth clusters)\n",
		ds.Name, ds.Table.Len(), ds.Table.Dims(), len(ds.Clusters))

	ccfg := sthist.DefaultClusterConfig()
	ccfg.Width = 80
	est, err := sthist.Open(ds.Table, sthist.Options{Buckets: 100, Clustering: ccfg, Seed: 9, Domain: ds.Domain})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "\nclusters found (descending importance), cf. the paper's Table 4:")
	fmt.Fprintf(w, "%-8s %-10s %-20s\n", "cluster", "tuples", "unused dimensions")
	for i, c := range est.Clusters() {
		unused := c.UnusedDims(ds.Table.Dims())
		label := "none (full-dimensional)"
		if len(unused) > 0 {
			oneBased := make([]int, len(unused))
			for j, d := range unused {
				oneBased[j] = d + 1
			}
			label = fmt.Sprint(oneBased)
		}
		fmt.Fprintf(w, "C%-7d %-10d %-20s\n", i, len(c.Rows), label)
		if i == 14 && len(est.Clusters()) > 16 {
			fmt.Fprintf(w, "... and %d more\n", len(est.Clusters())-15)
			break
		}
	}

	// Train both variants with the same 1%-volume workload and compare.
	uninit, err := sthist.Open(ds.Table, sthist.Options{Buckets: 100, SkipInitialization: true, Domain: ds.Domain})
	if err != nil {
		return err
	}
	train := workload.MustGenerate(ds.Domain, workload.Config{VolumeFraction: 0.01, N: 300, Seed: 10}, nil)
	eval := workload.MustGenerate(ds.Domain, workload.Config{VolumeFraction: 0.01, N: 300, Seed: 11}, nil)
	est.Train(train)
	uninit.Train(train)

	ni, err := est.NormalizedError(eval)
	if err != nil {
		return err
	}
	nu, err := uninit.NormalizedError(eval)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nnormalized error after %d training queries:\n", len(train))
	fmt.Fprintf(w, "  initialized:   %.3f  (%d subspace buckets alive)\n", ni, len(est.Histogram().SubspaceBuckets()))
	fmt.Fprintf(w, "  uninitialized: %.3f  (%d subspace buckets alive)\n", nu, len(uninit.Histogram().SubspaceBuckets()))

	// Approximate query answering: answer a few aggregates straight from
	// the histogram, no data access.
	rng := rand.New(rand.NewSource(12))
	fmt.Fprintln(w, "\napproximate COUNT(*) answers from the initialized histogram:")
	for i := 0; i < 3; i++ {
		lo := make([]float64, 7)
		hi := make([]float64, 7)
		for d := range lo {
			lo[d] = rng.Float64() * 700
			hi[d] = lo[d] + 250
		}
		q, err := sthist.NewRect(lo, hi)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  q%d: approx=%8.0f true=%8.0f\n", i, est.Estimate(q), est.TrueCount(q))
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
