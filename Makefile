# Convenience targets for the sthist reproduction.

GO ?= go

.PHONY: all build vet lint test race bench bench-micro bench-json bench-guard obs-demo examples experiments cover

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis: noalloc, lockcheck, determinism and errflow
# over every package (see DESIGN.md "Static analysis & enforced invariants").
# Exits non-zero on any un-ignored diagnostic.
lint:
	$(GO) run ./cmd/sthlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper experiment benchmarks (tables/figures at reduced scale); see
# EXPERIMENTS.md. Micro-benchmarks of the maintenance path live in
# bench-micro.
bench:
	$(GO) test -bench . -benchmem ./internal/experiment/... ./cmd/...

# Maintenance-path micro-benchmarks: sthole drill/estimate/merge hot loops
# and the geom kernels backing them.
bench-micro:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sthole/... ./internal/geom/...

# Records the sthole micro-benchmarks in results/BENCH_sthole.json under the
# "current" label (pass LABEL=baseline before a change to stash a baseline).
LABEL ?= current
bench-json:
	$(GO) run ./cmd/benchjson -label $(LABEL) -out results/BENCH_sthole.json

# Telemetry overhead guard: the instrumented feedback round must stay within
# 5% of the uninstrumented one on the Drill@250 workload. benchjson keeps the
# MIN ns/op across -count repeats, so transient machine noise does not fail
# the gate. Results land in results/BENCH_telemetry.json for trending.
bench-guard: vet lint
	$(GO) run ./cmd/benchjson -label $(LABEL) -out results/BENCH_telemetry.json \
		-pkg . -bench 'BenchmarkFeedbackRound$$' -benchtime 2x -count 6 \
		-guard-base 'BenchmarkFeedbackRound/telemetry=off' \
		-guard-subject 'BenchmarkFeedbackRound/telemetry=on' \
		-guard-max-ratio 1.05

# Observability walkthrough: rolling NAE decay + /metrics + /debug/trace.
obs-demo:
	$(GO) run ./examples/obs

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/queryopt
	$(GO) run ./examples/skysurvey
	$(GO) run ./examples/sensitivity
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/catalog
	$(GO) run ./examples/joinplan
	$(GO) run ./examples/obs

experiments:
	$(GO) run ./cmd/sthist -all

cover:
	$(GO) test -cover ./...
