# Convenience targets for the sthist reproduction.

GO ?= go

.PHONY: all build vet test race bench examples experiments cover

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerates every paper table/figure at reduced scale; see EXPERIMENTS.md.
bench:
	$(GO) test -bench . -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/queryopt
	$(GO) run ./examples/skysurvey
	$(GO) run ./examples/sensitivity
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/catalog
	$(GO) run ./examples/joinplan

experiments:
	$(GO) run ./cmd/sthist -all

cover:
	$(GO) test -cover ./...
