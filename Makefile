# Convenience targets for the sthist reproduction.

GO ?= go

.PHONY: all build vet test race bench bench-micro bench-json examples experiments cover

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper experiment benchmarks (tables/figures at reduced scale); see
# EXPERIMENTS.md. Micro-benchmarks of the maintenance path live in
# bench-micro.
bench:
	$(GO) test -bench . -benchmem ./internal/experiment/... ./cmd/...

# Maintenance-path micro-benchmarks: sthole drill/estimate/merge hot loops
# and the geom kernels backing them.
bench-micro:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sthole/... ./internal/geom/...

# Records the sthole micro-benchmarks in results/BENCH_sthole.json under the
# "current" label (pass LABEL=baseline before a change to stash a baseline).
LABEL ?= current
bench-json:
	$(GO) run ./cmd/benchjson -label $(LABEL) -out results/BENCH_sthole.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/queryopt
	$(GO) run ./examples/skysurvey
	$(GO) run ./examples/sensitivity
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/catalog
	$(GO) run ./examples/joinplan

experiments:
	$(GO) run ./cmd/sthist -all

cover:
	$(GO) test -cover ./...
