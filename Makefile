# Convenience targets for the sthist reproduction.

GO ?= go

.PHONY: all build vet lint lint-fix lint-sarif test race bench bench-micro bench-json bench-guard bench-concurrency bench-drift bench-trace bench-cluster cluster-smoke obs-demo examples experiments cover

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis over every package (see DESIGN.md "Static
# analysis & enforced invariants"): the typed sthlint driver with the
# noalloc, lockcheck, lockorder, determinism, errflow, walorder, ctxflow,
# leakcheck, publish and spanend analyzers. Exits non-zero on any finding
# that is neither ignored in source nor recorded in the committed baseline.
lint:
	$(GO) run ./cmd/sthlint -baseline .sthlint-baseline.json ./...

# Applies the suggested fixes (error discards, deferred closes, span End,
# traceparent injection) in place, then re-lints the changed tree.
lint-fix:
	$(GO) run ./cmd/sthlint -baseline .sthlint-baseline.json -fix ./...

# Writes the SARIF 2.1.0 report CI uploads for code-scanning annotations.
lint-sarif:
	$(GO) run ./cmd/sthlint -baseline .sthlint-baseline.json -sarif sthlint.sarif ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper experiment benchmarks (tables/figures at reduced scale); see
# EXPERIMENTS.md. Micro-benchmarks of the maintenance path live in
# bench-micro.
bench:
	$(GO) test -bench . -benchmem ./internal/experiment/... ./cmd/...

# Maintenance-path micro-benchmarks: sthole drill/estimate/merge hot loops
# and the geom kernels backing them.
bench-micro:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sthole/... ./internal/geom/...

# Records the sthole micro-benchmarks in results/BENCH_sthole.json under the
# "current" label (pass LABEL=baseline before a change to stash a baseline).
LABEL ?= current
bench-json:
	$(GO) run ./cmd/benchjson -label $(LABEL) -out results/BENCH_sthole.json

# Telemetry overhead guard: the instrumented feedback round must stay within
# 5% of the uninstrumented one on the Drill@250 workload. benchjson keeps the
# MIN ns/op across -count repeats, so transient machine noise does not fail
# the gate. Results land in results/BENCH_telemetry.json for trending.
bench-guard: vet lint
	$(GO) run ./cmd/benchjson -label $(LABEL) -out results/BENCH_telemetry.json \
		-pkg . -bench 'BenchmarkFeedbackRound$$' -benchtime 2x -count 6 \
		-guard-base 'BenchmarkFeedbackRound/telemetry=off' \
		-guard-subject 'BenchmarkFeedbackRound/telemetry=on' \
		-guard-max-ratio 1.05

# Concurrency guards for the snapshot-publish estimator and the group-commit
# feedback pipeline; results land in results/BENCH_concurrency.json.
#
# Read path: on a machine with >= 8 cores the wait-free snapshot reads must
# be at least 4x faster than the same reads behind a reader-writer lock
# (ratio <= 0.25). Smaller machines cannot show lock contention, so they
# only check that dropping the lock did not make reads slower (<= 1.25 with
# min-of-6 noise suppression).
#
# Write path: concurrent durable feedback must group-commit — strictly fewer
# than one fsync per accepted observation.
NPROC := $(shell nproc 2>/dev/null || echo 1)
READ_RATIO := $(shell [ $(NPROC) -ge 8 ] && echo 0.25 || echo 1.25)
bench-concurrency:
	$(GO) run ./cmd/benchjson -label estimate -out results/BENCH_concurrency.json \
		-pkg . -bench 'BenchmarkEstimateParallel$$' -benchtime 1s -count 6 \
		-guard-base 'BenchmarkEstimateParallel/mode=locked' \
		-guard-subject 'BenchmarkEstimateParallel/mode=snapshot' \
		-guard-max-ratio $(READ_RATIO)
	$(GO) run ./cmd/benchjson -label feedback -out results/BENCH_concurrency.json \
		-pkg ./internal/httpapi -bench 'BenchmarkFeedbackThroughput$$' -benchtime 2000x -count 3 \
		-guard-metric-bench 'BenchmarkFeedbackThroughput' \
		-guard-metric 'fsyncs/op' -guard-metric-max 1

# Drift overhead guard: a drift-enabled table whose workload is NOT drifting
# must pay < 5% on the feedback path for the detector tick + reservoir sample
# it runs per commit. Results land in results/BENCH_drift.json. sthlint runs
# in the same step so the drift code stays inside the repo's invariants.
bench-drift: lint
	$(GO) run ./cmd/benchjson -label $(LABEL) -out results/BENCH_drift.json \
		-pkg ./internal/httpapi -bench 'BenchmarkFeedbackDrift$$' -benchtime 300x -count 6 \
		-guard-base 'BenchmarkFeedbackDrift/drift=off' \
		-guard-subject 'BenchmarkFeedbackDrift/drift=on' \
		-guard-max-ratio 1.05

# Tracing overhead guard: always-on tracing (sample rate 1 — the worst case;
# production head-samples a fraction) must cost < 5% on the feedback hot path
# for the root span, queue-wait child, per-batch stage spans and ring flush.
# Results land in results/BENCH_trace.json. sthlint rides along so the spanend
# lifecycle check gates the same step.
bench-trace: lint
	$(GO) run ./cmd/benchjson -label $(LABEL) -out results/BENCH_trace.json \
		-pkg ./internal/httpapi -bench 'BenchmarkFeedbackTrace$$' -benchtime 300x -count 6 \
		-guard-base 'BenchmarkFeedbackTrace/trace=off' \
		-guard-subject 'BenchmarkFeedbackTrace/trace=on' \
		-guard-max-ratio 1.05

# Proxy-overhead guard: the mixed estimate/feedback workload through the
# sthproxy tier must cost < 10% extra at p50 versus hitting the table's
# primary directly, measured against backends with a production-scale
# service-time floor (see internal/cluster/bench_test.go for why the raw
# loopback numbers are recorded but not gated). Results land in
# results/BENCH_cluster.json.
bench-cluster: lint
	$(GO) run ./cmd/benchjson -label $(LABEL) -out results/BENCH_cluster.json \
		-pkg ./internal/cluster -bench 'BenchmarkProxyOverhead$$' -benchtime 1x -count 4 \
		-guard-metric-bench 'BenchmarkProxyOverhead' \
		-guard-metric 'p50-overhead-ratio' -guard-metric-max 1.10

# End-to-end cluster smoke: 3 sthistd + 1 sthproxy, mixed load from sthload,
# SIGKILL one target mid-run, assert zero non-retried client errors and
# recovery. Same script CI runs.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Observability walkthrough: rolling NAE decay + /metrics + /debug/trace.
obs-demo:
	$(GO) run ./examples/obs

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/queryopt
	$(GO) run ./examples/skysurvey
	$(GO) run ./examples/sensitivity
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/catalog
	$(GO) run ./examples/joinplan
	$(GO) run ./examples/obs

experiments:
	$(GO) run ./cmd/sthist -all

cover:
	$(GO) test -cover ./...
