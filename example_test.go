package sthist_test

import (
	"fmt"
	"log"
	"strings"

	"sthist"
)

// ExampleOpen builds an estimator over a tiny table and asks for a
// selectivity estimate.
func ExampleOpen() {
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		log.Fatal(err)
	}
	// A 10x10 block of tuples in [0,10)^2 and one outlier fixing the domain.
	for i := 0; i < 100; i++ {
		tab.MustAppend([]float64{float64(i % 10), float64(i / 10)})
	}
	tab.MustAppend([]float64{100, 100})

	est, err := sthist.Open(tab, sthist.Options{Buckets: 16, SkipInitialization: true})
	if err != nil {
		log.Fatal(err)
	}
	q, err := sthist.NewRect([]float64{0, 0}, []float64{9, 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true count in the block: %.0f\n", est.TrueCount(q))
	// Output:
	// true count in the block: 100
}

// ExampleEstimator_Feedback shows the self-tuning loop: estimate, execute,
// feed the observed cardinality back, estimate again.
func ExampleEstimator_Feedback() {
	tab, err := sthist.NewTable("price")
	if err != nil {
		log.Fatal(err)
	}
	// 900 cheap orders, 100 expensive ones.
	for i := 0; i < 900; i++ {
		tab.MustAppend([]float64{float64(i%50 + 10)})
	}
	for i := 0; i < 100; i++ {
		tab.MustAppend([]float64{float64(i%50 + 500)})
	}
	est, err := sthist.Open(tab, sthist.Options{Buckets: 8, SkipInitialization: true})
	if err != nil {
		log.Fatal(err)
	}
	q, err := sthist.NewRect([]float64{500}, []float64{550})
	if err != nil {
		log.Fatal(err)
	}
	truth := est.TrueCount(q)
	before := est.Estimate(q)
	est.Feedback(q, truth) // in a DBMS: the executed row count
	after := est.Estimate(q)
	fmt.Printf("feedback improved the estimate: %v\n", abs(after-truth) < abs(before-truth))
	// Output:
	// feedback improved the estimate: true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ExampleLoadCSV loads a table from CSV text.
func ExampleLoadCSV() {
	csv := "ra,dec\n1.5,-2.25\n3.25,4\n"
	tab, err := sthist.LoadCSV(strings.NewReader(csv))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tuples, columns %v\n", tab.Len(), tab.Names())
	// Output:
	// 2 tuples, columns [ra dec]
}
