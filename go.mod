module sthist

go 1.22
