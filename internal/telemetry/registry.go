// Package telemetry is the observability plane of the serving stack: a
// lock-cheap metrics registry with Prometheus text-format exposition, a
// fixed-size flight recorder that captures one structured trace event per
// feedback round, and online accuracy tracking (rolling-window mean absolute
// and normalized error, Eq. 9/10 of the paper, computed incrementally from
// the live feedback stream instead of an offline evaluation workload).
//
// The package is stdlib-only and race-safe. Instrument hot paths are
// implemented with atomics; the registry mutex is only taken when an
// instrument is first created and during exposition. Callers cache the
// returned instrument pointers, so steady-state recording never touches a
// lock or allocates.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a log-bucketed distribution: observations are counted into
// fixed upper-bound buckets (cumulative on exposition, Prometheus style) and
// summed, so both promql quantiles and the in-process Quantile estimator
// work off the same counters. All methods are safe for concurrent use and
// allocation-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	// ex holds the latest trace-ID exemplar per bucket (len(bounds)+1, the
	// last slot is +Inf). Exemplars ride alongside the counters and are
	// exposed over the trace endpoints, never in the text exposition — the
	// Prometheus text 0.0.4 output is pinned by golden file and stays
	// byte-identical whether or not tracing runs.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it, so a bad
// latency bucket resolves to a concrete request (GET /debug/trace/spans).
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// BucketExemplar is one bucket's exemplar with its upper bound (+Inf is
// math.Inf(1)).
type BucketExemplar struct {
	UpperBound float64 `json:"le"`
	TraceID    string  `json:"trace_id"`
	Value      float64 `json:"value"`
}

// ExponentialBuckets returns n ascending upper bounds starting at start and
// growing by factor — the log-bucketed layout used for latencies and merge
// penalties.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// LatencyBuckets spans 1µs to ~67s in doubling steps, in seconds.
func LatencyBuckets() []float64 { return ExponentialBuckets(1e-6, 2, 27) }

// PenaltyBuckets spans merge penalties from 1 tuple to ~16M in 4x steps.
func PenaltyBuckets() []float64 { return ExponentialBuckets(1, 4, 13) }

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{
		bounds: cp,
		counts: make([]atomic.Uint64, len(bounds)),
		ex:     make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Binary search over a handful of bounds; cheaper than it looks and
	// branch-predictable for clustered observations.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveEx records one value and, when traceID is non-empty, stamps it as
// the bucket's exemplar (last writer wins; readers use Exemplars).
func (h *Histogram) ObserveEx(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.ex[i].Store(&Exemplar{TraceID: traceID, Value: v})
}

// Exemplars returns the buckets that currently carry an exemplar, ascending
// by upper bound. Empty (not nil) when tracing never stamped one.
func (h *Histogram) Exemplars() []BucketExemplar {
	out := make([]BucketExemplar, 0, len(h.ex))
	for i := range h.ex {
		e := h.ex[i].Load()
		if e == nil {
			continue
		}
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out = append(out, BucketExemplar{UpperBound: ub, TraceID: e.TraceID, Value: e.Value})
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts by
// linear interpolation inside the selected bucket. It returns 0 when nothing
// was observed. Estimates are monotone in q (property-tested).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	lower := 0.0
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if c > 0 && float64(cum)+float64(c) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(b-lower)
		}
		cum += c
		lower = b
	}
	// Rank falls into the +Inf overflow bucket: the best bound we can give is
	// the largest finite boundary.
	return lower
}

// snapshot reads the bucket counters for exposition. The exposed _count is
// derived from these counts by the renderer rather than read from h.count,
// so concurrent Observe calls cannot make +Inf and _count disagree.
func (h *Histogram) snapshot() (counts []uint64, inf uint64, sum float64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.inf.Load(), h.Sum()
}

// metric type names used in the TYPE comment of the exposition.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instrument inside a family.
type series struct {
	labels string // pre-rendered `k1="v1",k2="v2"` (escaped, sorted by key)
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	typ    string
	series map[string]*series
}

// Registry holds named metric families and renders them in Prometheus text
// format. Instrument creation is idempotent: asking for the same name+labels
// returns the existing instrument; asking for an existing name with a
// different type panics (a wiring bug, not a runtime condition).
type Registry struct {
	mu         sync.Mutex
	fams       map[string]*family // guarded by mu
	collectors []func()           // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Labels is an ordered set of label key/value pairs. Keys must be valid
// Prometheus label names; values are escaped on exposition.
type Labels []Label

// Label is one key/value pair.
type Label struct{ Key, Value string }

// L is shorthand for a single-label set.
func L(key, value string) Labels { return Labels{{key, value}} }

// renderLabels returns the canonical, escaped `k="v"` form, sorted by key.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	cp := make(Labels, len(ls))
	copy(cp, ls)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	var b strings.Builder
	for i, l := range cp {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline as the
// Prometheus text format requires.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// lookupLocked finds or creates the series for name+labels. r.mu must be
// held by the caller.
func (r *Registry) lookupLocked(name, help, typ string, labels Labels) *series {
	key := renderLabels(labels)
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// Counter returns (creating if needed) the counter for name+labels.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookupLocked(name, help, typeCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookupLocked(name, help, typeGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns (creating if needed) the histogram for name+labels with
// the given upper bounds. Bounds are fixed by the first creation.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookupLocked(name, help, typeHistogram, labels)
	if s.h == nil {
		s.h = newHistogram(bounds)
	}
	return s.h
}

// RegisterCollector adds a callback run at the start of every exposition,
// before the metric families are rendered. Used for gauges whose value is a
// snapshot of external state (bucket count, tree depth) rather than an event
// stream.
func (r *Registry) RegisterCollector(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}
