package telemetry

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sthist/internal/geom"
)

func testRound(est, actual, trivial float64, d time.Duration) Round {
	return Round{
		Query:    geom.MustRect([]float64{0, 0}, []float64{10, 10}),
		Estimate: est,
		Actual:   actual,
		Trivial:  trivial,
		Drills:   2,
		Skipped:  1,
		Merges: []MergeOp{
			{Kind: MergeKindParentChild, Penalty: 3, Nanos: 100},
			{Kind: MergeKindSibling, Penalty: 7, Nanos: 200},
		},
		Duration: d,
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.RecordRound(testRound(1, 2, 3, time.Millisecond))
	r.RecordEstimate(time.Millisecond)
	r.RecordQuarantine()
	r.RecordRejected()
	if r.Last(5) != nil || r.Slow(5) != nil {
		t.Error("nil recorder returned events")
	}
	if n, mae, nae := r.Rolling(); n != 0 || mae != 0 || nae != 0 {
		t.Error("nil recorder returned rolling stats")
	}
	var tel *Telemetry
	if tel.Table("x") != nil || tel.Registry() != nil || tel.WAL("x") != nil {
		t.Error("nil telemetry minted instruments")
	}
	var wm *WALMetrics
	wm.ObserveAppend(0, nil)
	wm.ObserveSync(0, nil)
	wm.ObserveCheckpoint(0, nil)
}

// TestWALMetricsErrorAttribution pins that append, fsync and checkpoint
// failures land in their own counters — fsync errors were once misattributed
// to the append-error counter, making degraded durability undiagnosable.
func TestWALMetricsErrorAttribution(t *testing.T) {
	tel := New(Options{})
	wm := tel.WAL("t")
	boom := errors.New("boom")
	wm.ObserveAppend(0, boom)
	wm.ObserveSync(0, boom)
	wm.ObserveSync(0, boom)
	wm.ObserveCheckpoint(0, boom)
	if got := wm.appendErrs.Value(); got != 1 {
		t.Errorf("append errors = %d, want 1", got)
	}
	if got := wm.syncErrs.Value(); got != 2 {
		t.Errorf("fsync errors = %d, want 2", got)
	}
	if got := wm.ckptErrs.Value(); got != 1 {
		t.Errorf("checkpoint errors = %d, want 1", got)
	}
	// Failed observations record no duration.
	if wm.appendDur.Count() != 0 || wm.syncDur.Count() != 0 || wm.ckptDur.Count() != 0 {
		t.Error("failed observations recorded durations")
	}
}

func TestRollingWindowMAEAndNAE(t *testing.T) {
	tel := New(Options{Window: 4, SlowThreshold: -1})
	r := tel.Table("t")
	// |est-actual| = 2 each round; |trivial-actual| = 8 each round.
	for i := 0; i < 3; i++ {
		r.RecordRound(testRound(10, 12, 20, time.Microsecond))
	}
	n, mae, nae := r.Rolling()
	if n != 3 {
		t.Fatalf("window rounds = %d, want 3", n)
	}
	if math.Abs(mae-2) > 1e-12 {
		t.Errorf("MAE = %g, want 2", mae)
	}
	if math.Abs(nae-0.25) > 1e-12 {
		t.Errorf("NAE = %g, want 2/8", nae)
	}
	// Overflow the window with perfect rounds: the old errors must fall out.
	for i := 0; i < 4; i++ {
		r.RecordRound(testRound(5, 5, 9, time.Microsecond))
	}
	n, mae, nae = r.Rolling()
	if n != 4 {
		t.Fatalf("window rounds = %d, want 4 (capacity)", n)
	}
	if mae != 0 || nae != 0 {
		t.Errorf("after perfect rounds MAE=%g NAE=%g, want 0", mae, nae)
	}
	if got := r.rollingMAE.Value(); got != 0 {
		t.Errorf("gauge MAE = %g, want 0", got)
	}
}

func TestFlightRingRetainsLastEvents(t *testing.T) {
	tel := New(Options{TraceEvents: 4, SlowThreshold: -1})
	r := tel.Table("t")
	for i := 0; i < 10; i++ {
		r.RecordRound(testRound(float64(i), 0, 0, time.Microsecond))
	}
	evs := r.Last(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want ring capacity 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest first)", i, ev.Seq, want)
		}
	}
	if evs[3].Estimate != 9 {
		t.Errorf("newest event estimate = %g, want 9", evs[3].Estimate)
	}
	if len(evs[0].Merges) != 2 || evs[0].Merges[0].Kind != MergeKindParentChild {
		t.Errorf("merge detail lost: %+v", evs[0].Merges)
	}
	// Deep copies: mutating the returned slice must not corrupt the ring.
	evs[0].Lo[0] = -999
	if r.Last(0)[0].Lo[0] == -999 {
		t.Error("Last returned a slice aliasing the ring")
	}
	if got := r.Last(2); len(got) != 2 || got[1].Seq != 9 {
		t.Errorf("Last(2) = %d events, newest seq %d", len(got), got[len(got)-1].Seq)
	}
}

func TestSlowRoundLog(t *testing.T) {
	tel := New(Options{SlowThreshold: 10 * time.Millisecond})
	r := tel.Table("t")
	r.RecordRound(testRound(1, 1, 1, time.Millisecond))     // fast
	r.RecordRound(testRound(2, 2, 2, 50*time.Millisecond))  // slow
	r.RecordRound(testRound(3, 3, 3, time.Millisecond))     // fast
	r.RecordRound(testRound(4, 4, 4, 500*time.Millisecond)) // slow
	slow := r.Slow(0)
	if len(slow) != 2 {
		t.Fatalf("slow log has %d events, want 2", len(slow))
	}
	if slow[0].Seq != 1 || slow[1].Seq != 3 {
		t.Errorf("slow seqs = %d,%d want 1,3", slow[0].Seq, slow[1].Seq)
	}
	if !slow[0].Slow {
		t.Error("slow event not flagged")
	}
	if got := r.slowRounds.Value(); got != 2 {
		t.Errorf("slow counter = %d, want 2", got)
	}
	// Disabled threshold: nothing is slow.
	tel2 := New(Options{SlowThreshold: -1})
	r2 := tel2.Table("t")
	r2.RecordRound(testRound(1, 1, 1, time.Hour))
	if len(r2.Slow(0)) != 0 {
		t.Error("disabled slow threshold still logged")
	}
}

func TestCountersFeedInstruments(t *testing.T) {
	tel := New(Options{})
	r := tel.Table("t")
	r.RecordRound(testRound(1, 2, 3, time.Millisecond))
	r.RecordEstimate(time.Microsecond)
	r.RecordQuarantine()
	r.RecordRejected()
	if r.rounds.Value() != 1 || r.drills.Value() != 2 || r.skipped.Value() != 1 {
		t.Errorf("round counters = %d/%d/%d", r.rounds.Value(), r.drills.Value(), r.skipped.Value())
	}
	if r.mergesPC.Value() != 1 || r.mergesSib.Value() != 1 {
		t.Errorf("merge counters = %d/%d", r.mergesPC.Value(), r.mergesSib.Value())
	}
	if r.mergePenalty.Count() != 2 || r.mergePenalty.Sum() != 10 {
		t.Errorf("penalty histogram count=%d sum=%g", r.mergePenalty.Count(), r.mergePenalty.Sum())
	}
	if r.estimates.Value() != 1 || r.quarantines.Value() != 1 || r.rejected.Value() != 1 {
		t.Errorf("estimate/quarantine/reject = %d/%d/%d", r.estimates.Value(), r.quarantines.Value(), r.rejected.Value())
	}
	p50, p95, p99 := r.Quantiles()
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: %g %g %g", p50, p95, p99)
	}
}

func TestTableIsIdempotentAndRecordersSorted(t *testing.T) {
	tel := New(Options{})
	a := tel.Table("b-table")
	if tel.Table("b-table") != a {
		t.Error("Table minted a second recorder for the same name")
	}
	tel.Table("a-table")
	recs := tel.Recorders()
	if len(recs) != 2 || recs[0].Table() != "a-table" || recs[1].Table() != "b-table" {
		t.Errorf("Recorders() = %v", recs)
	}
}

func TestTraceHandler(t *testing.T) {
	tel := New(Options{SlowThreshold: 10 * time.Millisecond})
	r := tel.Table("cross")
	for i := 0; i < 5; i++ {
		r.RecordRound(testRound(float64(i), 1, 1, time.Millisecond))
	}
	r.RecordRound(testRound(9, 1, 1, time.Second)) // slow
	srv := httptest.NewServer(tel.TraceHandler())
	defer srv.Close()

	var body struct {
		Table  string       `json:"table"`
		Events []TraceEvent `json:"events"`
	}
	getJSON := func(url string, wantStatus int) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s status = %d, want %d", url, resp.StatusCode, wantStatus)
		}
		if wantStatus == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
		}
	}
	getJSON(srv.URL+"?table=cross&n=3", http.StatusOK)
	if body.Table != "cross" || len(body.Events) != 3 {
		t.Fatalf("table=%q events=%d, want cross/3", body.Table, len(body.Events))
	}
	if body.Events[2].Seq != 5 || len(body.Events[2].Merges) != 2 {
		t.Errorf("newest event seq=%d merges=%d", body.Events[2].Seq, len(body.Events[2].Merges))
	}
	getJSON(srv.URL+"?table=cross&slow=1", http.StatusOK)
	if len(body.Events) != 1 || !body.Events[0].Slow {
		t.Errorf("slow query returned %d events", len(body.Events))
	}
	getJSON(srv.URL+"?table=unknown", http.StatusBadRequest)
	getJSON(srv.URL+"?table=cross&n=-1", http.StatusBadRequest)
}
