package telemetry

import "time"

// WALMetrics records write-ahead-log durability timings. It structurally
// satisfies wal.Observer without this package importing internal/wal (the
// caller wires it into wal.Options), keeping telemetry dependency-free.
// A nil *WALMetrics records nothing.
type WALMetrics struct {
	appendDur  *Histogram
	syncDur    *Histogram
	ckptDur    *Histogram
	appendErrs *Counter
	syncErrs   *Counter
	ckptErrs   *Counter
	lastCkptAt *Gauge
	lastCkptS  *Gauge
}

// WAL returns (creating if needed) the WAL metrics for the named table.
// Returns nil on a nil Telemetry.
func (t *Telemetry) WAL(table string) *WALMetrics {
	if t == nil {
		return nil
	}
	lbl := L("table", table)
	return &WALMetrics{
		appendDur:  t.reg.Histogram("sthist_wal_append_duration_seconds", "WAL record append latency (framing + write, excluding fsync).", LatencyBuckets(), lbl),
		syncDur:    t.reg.Histogram("sthist_wal_fsync_duration_seconds", "WAL fsync latency.", LatencyBuckets(), lbl),
		ckptDur:    t.reg.Histogram("sthist_wal_checkpoint_duration_seconds", "WAL checkpoint rotation latency (snapshot write + segment swap + manifest commit).", LatencyBuckets(), lbl),
		appendErrs: t.reg.Counter("sthist_wal_append_errors_total", "Failed WAL appends (feedback served anyway, durability degraded).", lbl),
		syncErrs:   t.reg.Counter("sthist_wal_fsync_errors_total", "Failed WAL fsyncs (feedback served anyway, durability degraded).", lbl),
		ckptErrs:   t.reg.Counter("sthist_wal_checkpoint_errors_total", "Failed WAL checkpoints.", lbl),
		lastCkptAt: t.reg.Gauge("sthist_last_checkpoint_timestamp_seconds", "Unix time of the last successful checkpoint.", lbl),
		lastCkptS:  t.reg.Gauge("sthist_last_checkpoint_duration_seconds", "Duration of the last successful checkpoint.", lbl),
	}
}

// ObserveAppend records one append (frame + write, excluding fsync).
func (m *WALMetrics) ObserveAppend(d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.appendErrs.Inc()
		return
	}
	m.appendDur.Observe(d.Seconds())
}

// ObserveSync records one fsync.
func (m *WALMetrics) ObserveSync(d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.syncErrs.Inc()
		return
	}
	m.syncDur.Observe(d.Seconds())
}

// ObserveCheckpoint records one checkpoint rotation.
func (m *WALMetrics) ObserveCheckpoint(d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.ckptErrs.Inc()
		return
	}
	m.ckptDur.Observe(d.Seconds())
	m.lastCkptAt.Set(float64(time.Now().UnixNano()) / 1e9)
	m.lastCkptS.Set(d.Seconds())
}
