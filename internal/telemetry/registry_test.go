package telemetry

import (
	"bufio"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestInstrumentsAreIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c_total", "help", L("t", "a"))
	c2 := r.Counter("c_total", "other help ignored", L("t", "a"))
	if c1 != c2 {
		t.Error("same name+labels returned different counters")
	}
	if c3 := r.Counter("c_total", "help", L("t", "b")); c3 == c1 {
		t.Error("different labels returned the same counter")
	}
	g1 := r.Gauge("g", "help", nil)
	if g2 := r.Gauge("g", "help", nil); g1 != g2 {
		t.Error("same gauge not shared")
	}
	h1 := r.Histogram("h", "help", []float64{1, 2}, nil)
	if h2 := r.Histogram("h", "help", []float64{5, 6}, nil); h1 != h2 {
		t.Error("same histogram not shared")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering m as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("m", "help", nil)
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help", Labels{{"z", "1"}, {"a", "2"}})
	b := r.Counter("c_total", "help", Labels{{"a", "2"}, {"z", "1"}})
	if a != b {
		t.Error("label order changed series identity")
	}
}

func TestExponentialBucketsValidation(t *testing.T) {
	b := ExponentialBuckets(1, 2, 3)
	want := []float64{1, 2, 4}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExponentialBuckets(0, 2, 3) },
		func() { ExponentialBuckets(1, 1, 3) },
		func() { ExponentialBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid bucket spec did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.5, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5 (NaN dropped)", h.Count())
	}
	if got := h.Sum(); got != 556 {
		t.Errorf("sum = %g, want 556", got)
	}
	if h.counts[0].Load() != 2 || h.counts[1].Load() != 1 || h.counts[2].Load() != 1 || h.inf.Load() != 1 {
		t.Errorf("bucket counts = [%d %d %d] inf=%d", h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load(), h.inf.Load())
	}
}

// TestQuantileMonotone is the testing/quick property the issue asks for:
// whatever was observed, the quantile estimate never decreases as q grows.
func TestQuantileMonotone(t *testing.T) {
	property := func(obs []float64, qa, qb float64) bool {
		h := newHistogram(LatencyBuckets())
		for _, v := range obs {
			h.Observe(math.Abs(v))
		}
		qa, qb = math.Abs(math.Mod(qa, 1)), math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuantileEmptyAndClamped(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(1.5)
	if h.Quantile(-1) > h.Quantile(2) {
		t.Error("clamped quantiles out of order")
	}
}

// TestGoldenExposition pins the full text exposition: HELP/TYPE lines, label
// escaping, cumulative buckets with +Inf, _sum/_count, and deterministic
// family/series ordering. Regenerate with `go test ./internal/telemetry
// -run TestGoldenExposition -update`.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sthist_requests_total", "Requests by route.", Labels{{"route", "/estimate"}, {"code", "200"}})
	c.Add(7)
	r.Counter("sthist_requests_total", "Requests by route.", Labels{{"route", "/feedback"}, {"code", "400"}}).Inc()
	// A label value exercising every escape: backslash, quote, newline.
	r.Counter("sthist_escapes_total", `Help with a \ backslash`+"\nand newline.", L("path", "a\\b\"c\nd")).Inc()
	g := r.Gauge("sthist_rolling_nae", "Rolling NAE.", L("table", "cross"))
	g.Set(0.25)
	h := r.Histogram("sthist_feedback_duration_seconds", "Feedback latency.", []float64{0.001, 0.01, 0.1}, L("table", "cross"))
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	collected := false
	r.RegisterCollector(func() { collected = true })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !collected {
		t.Error("collector did not run during exposition")
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	checkExpositionInvariants(t, got)
}

// checkExpositionInvariants parses a text exposition and verifies the
// histogram contract: bucket counts are cumulative (non-decreasing in le,
// ending at +Inf) and the +Inf bucket equals _count. Label values with
// embedded commas are out of scope for this helper.
func checkExpositionInvariants(t *testing.T, exposition string) {
	t.Helper()
	bucketRe := regexp.MustCompile(`^(\w+)_bucket\{(.*)\} (\S+)$`)
	countRe := regexp.MustCompile(`^(\w+)_count(?:\{(.*)\})? (\S+)$`)
	type histState struct {
		lastCum float64
		infCum  float64
		sawInf  bool
	}
	buckets := map[string]*histState{}
	counts := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			name, labelStr, valStr := m[1], m[2], m[3]
			val, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			le := ""
			var rest []string
			for _, l := range strings.Split(labelStr, ",") {
				if v, ok := strings.CutPrefix(l, `le="`); ok {
					le = strings.TrimSuffix(v, `"`)
				} else if l != "" {
					rest = append(rest, l)
				}
			}
			key := name + "{" + strings.Join(rest, ",") + "}"
			st := buckets[key]
			if st == nil {
				st = &histState{}
				buckets[key] = st
			}
			if val < st.lastCum {
				t.Errorf("%s: bucket le=%s count %g below previous %g (not cumulative)", key, le, val, st.lastCum)
			}
			st.lastCum = val
			if le == "+Inf" {
				st.infCum, st.sawInf = val, true
			}
		} else if m := countRe.FindStringSubmatch(line); m != nil {
			val, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("unparseable count line %q: %v", line, err)
			}
			counts[m[1]+"{"+m[2]+"}"] = val
		}
	}
	if len(buckets) == 0 {
		t.Fatal("exposition contains no histogram buckets")
	}
	for key, st := range buckets {
		if !st.sawInf {
			t.Errorf("histogram %s has no +Inf bucket", key)
			continue
		}
		count, ok := counts[key]
		if !ok {
			t.Errorf("histogram %s has buckets but no _count series", key)
			continue
		}
		if st.infCum != count {
			t.Errorf("histogram %s: +Inf bucket %g != _count %g", key, st.infCum, count)
		}
	}
}

// TestExpositionConcurrentWithSeriesCreation is the regression test for a
// crash found in review: rendering iterated each family's live series map
// outside the registry lock, so a /metrics scrape concurrent with a lazily
// minted series (e.g. the first request producing a new status code) was a
// concurrent map iteration + write — a Go runtime fatal error. Run with
// -race; pre-fix this also crashed without it.
func TestExpositionConcurrentWithSeriesCreation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sthist_hammer_seconds", "Lazily labeled histogram.", []float64{0.001, 0.1}, L("code", "200"))
	const goroutines, perG = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// New label values keep inserting series into both families
				// while scrapes render them; concurrent observations stress
				// the histogram snapshot consistency as well.
				code := strconv.Itoa(g*perG + i)
				r.Counter("sthist_hammer_total", "Lazily labeled counter.", L("code", code)).Inc()
				r.Histogram("sthist_hammer_seconds", "Lazily labeled histogram.", []float64{0.001, 0.1}, L("code", code)).Observe(0.01)
				h.Observe(float64(i) * 1e-4)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	// Writers are done; one final scrape must satisfy every exposition
	// invariant (cumulative buckets, +Inf == _count).
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkExpositionInvariants(t, b.String())
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		`back\slash`: `back\\slash`,
		`qu"ote`:     `qu\"ote`,
		"new\nline":  `new\nline`,
	}
	for in, want := range cases {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}
