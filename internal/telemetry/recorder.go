package telemetry

import (
	"sync"
	"time"

	"sthist/internal/geom"
)

// MergeKindParentChild / MergeKindSibling name the two STHoles merge kinds
// in trace events and metric labels.
const (
	MergeKindParentChild = "parent-child"
	MergeKindSibling     = "sibling"
)

// MergeOp is one merge executed during a feedback round.
type MergeOp struct {
	Kind    string  `json:"kind"`
	Penalty float64 `json:"penalty"`
	Nanos   int64   `json:"ns"`
}

// TraceEvent is one feedback round as captured by the flight recorder: the
// query rectangle, what the histogram believed before the round, the
// observed truth, the maintenance work the round triggered, and nanosecond
// timings.
type TraceEvent struct {
	Seq           uint64    `json:"seq"`
	Time          time.Time `json:"time"`
	Lo            []float64 `json:"lo"`
	Hi            []float64 `json:"hi"`
	Estimate      float64   `json:"estimate"`
	Actual        float64   `json:"actual"`
	AbsError      float64   `json:"abs_error"`
	Drills        int       `json:"drills"`
	SkippedDrills int       `json:"skipped_drills"`
	Merges        []MergeOp `json:"merges,omitempty"`
	Nanos         int64     `json:"ns"`
	Slow          bool      `json:"slow,omitempty"`
}

// Round is the input to Recorder.RecordRound: one feedback round observed by
// the estimator. Query and Merges are borrowed for the duration of the call
// (the recorder copies what it keeps), so the caller can reuse scratch
// buffers.
type Round struct {
	Query    geom.Rect
	Estimate float64 // estimate before the round
	Actual   float64 // observed true cardinality
	Trivial  float64 // 1-bucket (uniform) estimate, the NAE denominator term
	Drills   int
	Skipped  int
	Merges   []MergeOp
	Duration time.Duration
}

// Recorder captures one table's feedback-round telemetry: the flight ring,
// the slow-round log, the rolling accuracy windows and the per-table
// instruments. A nil *Recorder is valid and records nothing.
type Recorder struct {
	table string

	mu       sync.Mutex
	ring     []TraceEvent  // fixed capacity; ring[next%cap] is the next slot; guarded by mu
	next     uint64        // total rounds recorded; guarded by mu
	slowRing []TraceEvent  // guarded by mu
	slowNext uint64        // guarded by mu
	slowThr  time.Duration // immutable after construction

	// Rolling accuracy windows: |est-actual| and |trivial-actual| over the
	// last window rounds, with incrementally maintained sums. Rolling
	// MAE = sumAbs/n (Eq. 9 over the window); rolling NAE = sumAbs/sumTriv
	// (Eq. 10 — both means share the 1/n factor, so it cancels).
	window  int       // immutable after construction
	absErr  []float64 // guarded by mu
	trivErr []float64 // guarded by mu
	winN    int       // guarded by mu
	winIdx  int       // guarded by mu
	sumAbs  float64   // guarded by mu
	sumTriv float64   // guarded by mu

	// Instruments (shared registry, per-table labels). Always non-nil.
	rounds       *Counter
	drills       *Counter
	skipped      *Counter
	mergesPC     *Counter
	mergesSib    *Counter
	quarantines  *Counter
	rejected     *Counter
	slowRounds   *Counter
	estimates    *Counter
	feedbackDur  *Histogram
	estimateDur  *Histogram
	mergeDur     *Histogram
	mergePenalty *Histogram
	publishDur   *Histogram
	rollingMAE   *Gauge
	rollingNAE   *Gauge
	rollingN     *Gauge
}

// Table returns the table name the recorder serves.
func (r *Recorder) Table() string { return r.table }

// SlowThreshold returns the slow-round threshold.
func (r *Recorder) SlowThreshold() time.Duration { return r.slowThr }

// RecordRound captures one feedback round: it appends a trace event to the
// flight ring (and the slow log when the round exceeded the threshold),
// advances the rolling error windows, and updates the instruments. The ring
// slots reuse their Lo/Hi/Merges backing arrays, so steady-state recording
// allocates only when a round's geometry outgrows the previous occupant of
// its slot.
func (r *Recorder) RecordRound(round Round) {
	if r == nil {
		return
	}
	absErr := round.Estimate - round.Actual
	if absErr < 0 {
		absErr = -absErr
	}
	trivErr := round.Trivial - round.Actual
	if trivErr < 0 {
		trivErr = -trivErr
	}

	r.mu.Lock()
	// Flight ring: overwrite the oldest slot in place.
	ev := &r.ring[r.next%uint64(len(r.ring))]
	fillEvent(ev, r.next, round, absErr, round.Duration >= r.slowThr && r.slowThr > 0)
	r.next++

	if ev.Slow {
		slot := &r.slowRing[r.slowNext%uint64(len(r.slowRing))]
		copyEvent(slot, ev)
		r.slowNext++
	}

	// Rolling windows.
	if r.winN == len(r.absErr) {
		r.sumAbs -= r.absErr[r.winIdx]
		r.sumTriv -= r.trivErr[r.winIdx]
	} else {
		r.winN++
	}
	r.absErr[r.winIdx] = absErr
	r.trivErr[r.winIdx] = trivErr
	r.winIdx = (r.winIdx + 1) % len(r.absErr)
	r.sumAbs += absErr
	r.sumTriv += trivErr
	mae := r.sumAbs / float64(r.winN)
	nae := 0.0
	if r.sumTriv > 0 {
		nae = r.sumAbs / r.sumTriv
	}
	winN := r.winN
	slow := ev.Slow
	r.mu.Unlock()

	// Instruments are atomic; update them outside the ring lock.
	r.rounds.Inc()
	r.drills.Add(uint64(round.Drills))
	r.skipped.Add(uint64(round.Skipped))
	r.feedbackDur.Observe(round.Duration.Seconds())
	for _, m := range round.Merges {
		if m.Kind == MergeKindParentChild {
			r.mergesPC.Inc()
		} else {
			r.mergesSib.Inc()
		}
		r.mergePenalty.Observe(m.Penalty)
		r.mergeDur.Observe(float64(m.Nanos) / 1e9)
	}
	if slow {
		r.slowRounds.Inc()
	}
	r.rollingMAE.Set(mae)
	r.rollingNAE.Set(nae)
	r.rollingN.Set(float64(winN))
}

// fillEvent populates a ring slot in place, reusing its backing arrays.
func fillEvent(ev *TraceEvent, seq uint64, round Round, absErr float64, slow bool) {
	ev.Seq = seq
	ev.Time = time.Now()
	ev.Lo = append(ev.Lo[:0], round.Query.Lo...)
	ev.Hi = append(ev.Hi[:0], round.Query.Hi...)
	ev.Estimate = round.Estimate
	ev.Actual = round.Actual
	ev.AbsError = absErr
	ev.Drills = round.Drills
	ev.SkippedDrills = round.Skipped
	ev.Merges = append(ev.Merges[:0], round.Merges...)
	ev.Nanos = round.Duration.Nanoseconds()
	ev.Slow = slow
}

// copyEvent deep-copies src into dst, reusing dst's backing arrays.
func copyEvent(dst, src *TraceEvent) {
	lo := append(dst.Lo[:0], src.Lo...)
	hi := append(dst.Hi[:0], src.Hi...)
	merges := append(dst.Merges[:0], src.Merges...)
	*dst = *src
	dst.Lo, dst.Hi, dst.Merges = lo, hi, merges
}

// RecordEstimate observes one serving-path estimate latency.
func (r *Recorder) RecordEstimate(d time.Duration) {
	if r == nil {
		return
	}
	r.estimates.Inc()
	r.estimateDur.Observe(d.Seconds())
}

// RecordPublish observes one snapshot publication latency: the cost of
// deep-copying the working tree and swapping it into the serving pointer.
func (r *Recorder) RecordPublish(d time.Duration) {
	if r == nil {
		return
	}
	r.publishDur.Observe(d.Seconds())
}

// RecordQuarantine counts one quarantine event (invariant violation or
// recovered panic that degraded the table to its last good snapshot).
func (r *Recorder) RecordQuarantine() {
	if r == nil {
		return
	}
	r.quarantines.Inc()
}

// RecordRejected counts one rejected feedback observation (validation
// failure before the observation reached the histogram or its WAL).
func (r *Recorder) RecordRejected() {
	if r == nil {
		return
	}
	r.rejected.Inc()
}

// Last returns deep copies of the most recent n trace events, oldest first.
// n <= 0 or n larger than the captured count returns everything retained.
func (r *Recorder) Last(n int) []TraceEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return lastEvents(r.ring, r.next, n)
}

// Slow returns deep copies of the most recent n slow-round events, oldest
// first.
func (r *Recorder) Slow(n int) []TraceEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return lastEvents(r.slowRing, r.slowNext, n)
}

func lastEvents(ring []TraceEvent, next uint64, n int) []TraceEvent {
	have := int(next)
	if uint64(have) != next || have > len(ring) {
		have = len(ring)
	}
	if n <= 0 || n > have {
		n = have
	}
	out := make([]TraceEvent, n)
	for i := 0; i < n; i++ {
		src := &ring[(next-uint64(n-i))%uint64(len(ring))]
		copyEvent(&out[i], src)
	}
	return out
}

// Rolling returns the current rolling-window accuracy: the number of rounds
// in the window, the mean absolute error (Eq. 9) and the normalized absolute
// error (Eq. 10) over those rounds.
func (r *Recorder) Rolling() (n int, mae, nae float64) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.winN == 0 {
		return 0, 0, 0
	}
	mae = r.sumAbs / float64(r.winN)
	if r.sumTriv > 0 {
		nae = r.sumAbs / r.sumTriv
	}
	return r.winN, mae, nae
}

// Quantiles returns the p50/p95/p99 of the feedback-round latency
// distribution, in seconds.
func (r *Recorder) Quantiles() (p50, p95, p99 float64) {
	if r == nil {
		return 0, 0, 0
	}
	return r.feedbackDur.Quantile(0.50), r.feedbackDur.Quantile(0.95), r.feedbackDur.Quantile(0.99)
}
