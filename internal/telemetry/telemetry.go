package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Defaults for Options fields left zero.
const (
	DefaultTraceEvents   = 256
	DefaultSlowThreshold = 50 * time.Millisecond
	DefaultWindow        = 512
)

// Options configures New.
type Options struct {
	// TraceEvents is the flight-recorder ring capacity per table.
	TraceEvents int
	// SlowThreshold flags feedback rounds at or above this latency for the
	// slow-round log. Zero uses the default; negative disables slow logging.
	SlowThreshold time.Duration
	// Window is the rolling accuracy window, in feedback rounds.
	Window int
}

// Telemetry is the shared observability plane: one metrics registry plus a
// per-table flight recorder. A nil *Telemetry is valid and disables
// everything it would otherwise wire.
type Telemetry struct {
	reg  *Registry
	opts Options

	mu     sync.Mutex
	tables map[string]*Recorder // guarded by mu
}

// New returns a telemetry plane with its own registry.
func New(opts Options) *Telemetry {
	if opts.TraceEvents <= 0 {
		opts.TraceEvents = DefaultTraceEvents
	}
	if opts.SlowThreshold == 0 {
		opts.SlowThreshold = DefaultSlowThreshold
	}
	if opts.SlowThreshold < 0 {
		opts.SlowThreshold = 0 // disables slow logging (RecordRound checks > 0)
	}
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	return &Telemetry{reg: NewRegistry(), opts: opts, tables: make(map[string]*Recorder)}
}

// Registry returns the underlying metrics registry (nil-safe).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Table returns (creating if needed) the recorder for the named table. All
// of the recorder's instruments are created eagerly so the hot path never
// touches the registry. Returns nil on a nil Telemetry.
func (t *Telemetry) Table(name string) *Recorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.tables[name]; ok {
		return r
	}
	lbl := L("table", name)
	slowCap := 64
	if slowCap > t.opts.TraceEvents {
		slowCap = t.opts.TraceEvents
	}
	r := &Recorder{
		table:    name,
		ring:     make([]TraceEvent, t.opts.TraceEvents),
		slowRing: make([]TraceEvent, slowCap),
		slowThr:  t.opts.SlowThreshold,
		window:   t.opts.Window,
		absErr:   make([]float64, t.opts.Window),
		trivErr:  make([]float64, t.opts.Window),

		rounds:       t.reg.Counter("sthist_feedback_rounds_total", "Feedback rounds processed.", lbl),
		drills:       t.reg.Counter("sthist_drills_total", "Holes drilled by feedback rounds.", lbl),
		skipped:      t.reg.Counter("sthist_skipped_drills_total", "Drill candidates skipped because the estimate was already exact.", lbl),
		mergesPC:     t.reg.Counter("sthist_merges_total", "Bucket merges executed by budget enforcement.", Labels{{"table", name}, {"kind", MergeKindParentChild}}),
		mergesSib:    t.reg.Counter("sthist_merges_total", "Bucket merges executed by budget enforcement.", Labels{{"table", name}, {"kind", MergeKindSibling}}),
		quarantines:  t.reg.Counter("sthist_quarantines_total", "Histogram quarantine events (invariant violations or recovered panics).", lbl),
		rejected:     t.reg.Counter("sthist_feedback_rejected_total", "Feedback observations rejected by validation.", lbl),
		slowRounds:   t.reg.Counter("sthist_slow_feedback_total", "Feedback rounds at or above the slow threshold.", lbl),
		estimates:    t.reg.Counter("sthist_estimates_total", "Serving-path estimates.", lbl),
		feedbackDur:  t.reg.Histogram("sthist_feedback_duration_seconds", "Feedback round latency (drill + budget enforcement).", LatencyBuckets(), lbl),
		estimateDur:  t.reg.Histogram("sthist_estimate_duration_seconds", "Serving-path estimate latency.", LatencyBuckets(), lbl),
		mergeDur:     t.reg.Histogram("sthist_merge_duration_seconds", "Latency of individual bucket merges.", LatencyBuckets(), lbl),
		mergePenalty: t.reg.Histogram("sthist_merge_penalty", "Penalty (Eq. 2, in tuples) of executed merges.", PenaltyBuckets(), lbl),
		publishDur:   t.reg.Histogram("sthist_snapshot_publish_duration_seconds", "Latency of publishing a new immutable histogram snapshot.", LatencyBuckets(), lbl),
		rollingMAE:   t.reg.Gauge("sthist_rolling_mae", "Rolling-window mean absolute error (Eq. 9) over the live feedback stream.", lbl),
		rollingNAE:   t.reg.Gauge("sthist_rolling_nae", "Rolling-window normalized absolute error (Eq. 10) over the live feedback stream.", lbl),
		rollingN:     t.reg.Gauge("sthist_rolling_window_rounds", "Feedback rounds currently in the rolling accuracy window.", lbl),
	}
	t.tables[name] = r
	return r
}

// Recorders returns the table recorders, sorted by table name.
func (t *Telemetry) Recorders() []*Recorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Recorder, 0, len(t.tables))
	for _, r := range t.tables {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].table < out[j].table })
	return out
}

// lookupTable returns the recorder for name, or nil when absent — unlike
// Table it never creates one (the trace handler must not mint recorders for
// arbitrary query strings).
func (t *Telemetry) lookupTable(name string) *Recorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tables[name]
}

// MetricsHandler serves GET /metrics in Prometheus text format.
func (t *Telemetry) MetricsHandler() http.Handler {
	return t.reg.MetricsHandler()
}

// TraceHandler serves GET /debug/trace?table=T&n=K[&slow=1]: the last K
// flight-recorder events of table T as JSON, oldest first. Without n it
// returns everything retained; with slow=1 it serves the slow-round log
// instead of the full ring. Malformed parameters — an unknown table, a
// non-integer or negative n, a slow value other than 0/1/true/false — are
// rejected with 400 rather than silently defaulted, so a typo in a debug
// session cannot masquerade as an empty result.
func (t *Telemetry) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		name := req.URL.Query().Get("table")
		rec := t.lookupTable(name)
		if rec == nil {
			http.Error(w, fmt.Sprintf("unknown table %q", name), http.StatusBadRequest)
			return
		}
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, fmt.Sprintf("bad n %q", s), http.StatusBadRequest)
				return
			}
			n = v
		}
		slow := false
		switch s := req.URL.Query().Get("slow"); s {
		case "", "0", "false":
		case "1", "true":
			slow = true
		default:
			http.Error(w, fmt.Sprintf("bad slow %q (want 0 or 1)", s), http.StatusBadRequest)
			return
		}
		var events []TraceEvent
		if slow {
			events = rec.Slow(n)
		} else {
			events = rec.Last(n)
		}
		if events == nil {
			events = []TraceEvent{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"table":  name,
			"events": events,
		})
	})
}
