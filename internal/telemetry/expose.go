package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE comments, escaped label values, cumulative
// histogram buckets with the mandatory +Inf bound, and _sum/_count series.
// Output is deterministic — families sorted by name, series by label string
// — so the format is golden-file testable.

// WritePrometheus renders every metric family to w after running the
// registered collectors. It returns the first write error.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	// Collectors take external locks (e.g. an estimator's read lock), so they
	// run outside r.mu.
	for _, fn := range collectors {
		fn()
	}

	// Snapshot families and their series under the lock: series are minted
	// lazily at request time (e.g. the first occurrence of a new status
	// code), so iterating the live maps while rendering would be a
	// concurrent map iteration + write. The series pointers themselves are
	// safe to read after unlocking — instruments are assigned before the
	// creating goroutine releases r.mu, and record/render paths are atomic.
	r.mu.Lock()
	fams := make([]familySnapshot, 0, len(r.fams))
	for _, f := range r.fams {
		fs := familySnapshot{name: f.name, help: f.help, typ: f.typ, series: make([]*series, 0, len(f.series))}
		for _, s := range f.series {
			fs.series = append(fs.series, s)
		}
		sort.Slice(fs.series, func(i, j int) bool { return fs.series[i].labels < fs.series[j].labels })
		fams = append(fams, fs)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if err := renderFamily(&b, f); err != nil {
			return err
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// familySnapshot is one family's state copied out of the registry under its
// lock, so rendering never touches the live series map.
type familySnapshot struct {
	name, help, typ string
	series          []*series // sorted by label string
}

func renderFamily(b *strings.Builder, f familySnapshot) error {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range f.series {
		switch {
		case s.c != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, braced(s.labels), formatUint(s.c.Value()))
		case s.g != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, braced(s.labels), formatFloat(s.g.Value()))
		case s.h != nil:
			renderHistogram(b, f.name, s)
		}
	}
	return nil
}

// renderHistogram emits the cumulative _bucket series, then _sum and _count.
// _count is derived from the bucket counts (the +Inf cumulative value), not
// from the histogram's own count field: under concurrent observation the
// fields are incremented at slightly different times, and deriving makes the
// rendered series self-consistent by construction.
func renderHistogram(b *strings.Builder, name string, s *series) {
	counts, inf, sum := s.h.snapshot()
	cum := uint64(0)
	for i, bound := range s.h.bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %s\n", name, bracedWith(s.labels, "le", formatFloat(bound)), formatUint(cum))
	}
	cum += inf
	fmt.Fprintf(b, "%s_bucket%s %s\n", name, bracedWith(s.labels, "le", "+Inf"), formatUint(cum))
	fmt.Fprintf(b, "%s_sum%s %s\n", name, braced(s.labels), formatFloat(sum))
	fmt.Fprintf(b, "%s_count%s %s\n", name, braced(s.labels), formatUint(cum))
}

// braced wraps a pre-rendered label string in curly braces, or returns ""
// for the unlabeled series.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// bracedWith appends one extra label (already escaped by the caller when
// needed; bound strings contain no escapable characters).
func bracedWith(labels, key, value string) string {
	extra := key + `="` + value + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ContentType is the value served in the Content-Type header of /metrics.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler returns the GET /metrics handler for this registry.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w) // client gone: nothing useful to do
	})
}
