package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE comments, escaped label values, cumulative
// histogram buckets with the mandatory +Inf bound, and _sum/_count series.
// Output is deterministic — families sorted by name, series by label string
// — so the format is golden-file testable.

// WritePrometheus renders every metric family to w after running the
// registered collectors. It returns the first write error.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	// Collectors take external locks (e.g. an estimator's read lock), so they
	// run outside r.mu.
	for _, fn := range collectors {
		fn()
	}

	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if err := renderFamily(&b, f); err != nil {
			return err
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func renderFamily(b *strings.Builder, f *family) error {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		switch {
		case s.c != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, braced(s.labels), formatUint(s.c.Value()))
		case s.g != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, braced(s.labels), formatFloat(s.g.Value()))
		case s.h != nil:
			renderHistogram(b, f.name, s)
		}
	}
	return nil
}

// renderHistogram emits the cumulative _bucket series, then _sum and _count.
func renderHistogram(b *strings.Builder, name string, s *series) {
	counts, inf, count, sum := s.h.snapshot()
	cum := uint64(0)
	for i, bound := range s.h.bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %s\n", name, bracedWith(s.labels, "le", formatFloat(bound)), formatUint(cum))
	}
	cum += inf
	fmt.Fprintf(b, "%s_bucket%s %s\n", name, bracedWith(s.labels, "le", "+Inf"), formatUint(cum))
	fmt.Fprintf(b, "%s_sum%s %s\n", name, braced(s.labels), formatFloat(sum))
	fmt.Fprintf(b, "%s_count%s %s\n", name, braced(s.labels), formatUint(count))
}

// braced wraps a pre-rendered label string in curly braces, or returns ""
// for the unlabeled series.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// bracedWith appends one extra label (already escaped by the caller when
// needed; bound strings contain no escapable characters).
func bracedWith(labels, key, value string) string {
	extra := key + `="` + value + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ContentType is the value served in the Content-Type header of /metrics.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler returns the GET /metrics handler for this registry.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w) // client gone: nothing useful to do
	})
}
