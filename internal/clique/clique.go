// Package clique implements the CLIQUE grid-based subspace clustering
// algorithm (Agrawal, Gehrke, Gunopulos, Raghavan — SIGMOD 1998). The
// paper's predecessor work (Khachatryan et al., SSDBM 2011) compared six
// subspace clustering algorithms as histogram initializers and picked
// MineClus; this package provides the classic alternative so the
// reproduction can run that comparison (`ablation-clusterer`).
//
// CLIQUE partitions every dimension into Xi equal intervals, calls a grid
// cell in a subspace "dense" when it holds at least Tau of the points, grows
// dense units bottom-up with an apriori join (a k-dimensional unit can only
// be dense if all its (k-1)-dimensional projections are), and reports
// connected components of dense units per subspace as clusters.
package clique

import (
	"fmt"
	"math"
	"sort"

	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/mineclus"
)

// Config holds CLIQUE parameters.
type Config struct {
	// Xi is the number of grid intervals per dimension (default 10).
	Xi int
	// Tau is the density threshold: a unit is dense when it holds at least
	// Tau * n points (default 0.01).
	Tau float64
	// MaxDims caps the subspace dimensionality explored (default 4); the
	// candidate lattice grows combinatorially above that.
	MaxDims int
	// Beta weights cluster importance like MineClus' mu so the two
	// algorithms' outputs are order-comparable (default 0.25).
	Beta float64
}

// DefaultConfig returns the defaults above.
func DefaultConfig() Config {
	return Config{Xi: 10, Tau: 0.01, MaxDims: 4, Beta: 0.25}
}

func (c *Config) validate(dims int) error {
	if c.Xi < 2 {
		return fmt.Errorf("clique: xi must be >= 2, got %d", c.Xi)
	}
	if c.Tau <= 0 || c.Tau > 1 {
		return fmt.Errorf("clique: tau must be in (0,1], got %g", c.Tau)
	}
	if c.MaxDims < 1 {
		return fmt.Errorf("clique: maxDims must be >= 1, got %d", c.MaxDims)
	}
	if c.MaxDims > dims {
		c.MaxDims = dims
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		return fmt.Errorf("clique: beta must be in (0,1), got %g", c.Beta)
	}
	return nil
}

// unit identifies one grid cell in a subspace: parallel slices of dimensions
// (ascending) and cell indices.
type unit struct {
	dims  []int
	cells []int
}

func (u unit) key() string {
	b := make([]byte, 0, 4*len(u.dims))
	for i := range u.dims {
		b = append(b, byte(u.dims[i]), byte(u.cells[i]>>8), byte(u.cells[i]), ',')
	}
	return string(b)
}

// dimsKey encodes just the dimension set.
func dimsKey(dims []int) string {
	b := make([]byte, len(dims))
	for i, d := range dims {
		b[i] = byte(d)
	}
	return string(b)
}

// Run executes CLIQUE over the table within the given domain and converts
// the clusters into mineclus.Cluster values (same shape the initializer
// consumes), sorted by descending importance.
func Run(tab *dataset.Table, domain geom.Rect, cfg Config) ([]mineclus.Cluster, error) {
	dims := tab.Dims()
	if err := cfg.validate(dims); err != nil {
		return nil, err
	}
	n := tab.Len()
	if n == 0 {
		return nil, fmt.Errorf("clique: empty table")
	}
	if domain.Dims() != dims {
		return nil, fmt.Errorf("clique: domain dims %d != table dims %d", domain.Dims(), dims)
	}
	minCount := int(math.Ceil(cfg.Tau * float64(n)))
	if minCount < 1 {
		minCount = 1
	}

	// Pre-compute every point's cell index per dimension.
	cells := make([][]int16, dims)
	for d := 0; d < dims; d++ {
		cells[d] = make([]int16, n)
		side := domain.Side(d)
		col := tab.Column(d)
		for i, v := range col {
			c := 0
			if side > 0 {
				c = int(float64(cfg.Xi) * (v - domain.Lo[d]) / side)
			}
			if c < 0 {
				c = 0
			}
			if c >= cfg.Xi {
				c = cfg.Xi - 1
			}
			cells[d][i] = int16(c)
		}
	}

	// Level 1: dense 1-dimensional units.
	dense := make(map[string]int) // unit key -> count
	var denseUnits []unit
	for d := 0; d < dims; d++ {
		counts := make([]int, cfg.Xi)
		for i := 0; i < n; i++ {
			counts[cells[d][i]]++
		}
		for c, cnt := range counts {
			if cnt >= minCount {
				u := unit{dims: []int{d}, cells: []int{c}}
				dense[u.key()] = cnt
				denseUnits = append(denseUnits, u)
			}
		}
	}

	all := append([]unit(nil), denseUnits...)
	prev := denseUnits
	for level := 2; level <= cfg.MaxDims && len(prev) > 1; level++ {
		candidates := aprioriJoin(prev, dense)
		if len(candidates) == 0 {
			break
		}
		// Count candidates grouped by dimension set.
		byDims := make(map[string][]unit)
		for _, u := range candidates {
			k := dimsKey(u.dims)
			byDims[k] = append(byDims[k], u)
		}
		var next []unit
		for _, us := range byDims {
			ds := us[0].dims
			want := make(map[string]*int, len(us))
			counts := make([]int, len(us))
			for i, u := range us {
				want[cellKey(u.cells)] = &counts[i]
			}
			cbuf := make([]int, len(ds))
			for i := 0; i < n; i++ {
				for j, d := range ds {
					cbuf[j] = int(cells[d][i])
				}
				if p, ok := want[cellKey(cbuf)]; ok {
					*p++
				}
			}
			for i, u := range us {
				if counts[i] >= minCount {
					dense[u.key()] = counts[i]
					next = append(next, u)
				}
			}
		}
		all = append(all, next...)
		prev = next
	}

	comps := connectedComponents(all)
	clusters := clustersFromComponents(comps, dense, cells, domain, cfg, n)
	sort.SliceStable(clusters, func(i, j int) bool { return clusters[i].Score > clusters[j].Score })
	return clusters, nil
}

func cellKey(cells []int) string {
	b := make([]byte, 2*len(cells))
	for i, c := range cells {
		b[2*i] = byte(c >> 8)
		b[2*i+1] = byte(c)
	}
	return string(b)
}

// aprioriJoin generates level-(k+1) candidates from level-k dense units:
// join two units sharing their first k-1 dims/cells, then prune candidates
// with any non-dense k-subunit.
func aprioriJoin(prev []unit, dense map[string]int) []unit {
	sorted := append([]unit(nil), prev...)
	sort.Slice(sorted, func(i, j int) bool { return unitLess(sorted[i], sorted[j]) })
	var out []unit
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			a, b := sorted[i], sorted[j]
			if !samePrefix(a, b) {
				break // sorted order: once the prefix differs, no more joins
			}
			lastA, lastB := a.dims[len(a.dims)-1], b.dims[len(b.dims)-1]
			if lastA >= lastB {
				continue
			}
			cand := unit{
				dims:  append(append([]int(nil), a.dims...), lastB),
				cells: append(append([]int(nil), a.cells...), b.cells[len(b.cells)-1]),
			}
			if allSubunitsDense(cand, dense) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func unitLess(a, b unit) bool {
	for i := range a.dims {
		if a.dims[i] != b.dims[i] {
			return a.dims[i] < b.dims[i]
		}
		if a.cells[i] != b.cells[i] {
			return a.cells[i] < b.cells[i]
		}
	}
	return false
}

// samePrefix reports whether a and b agree on all but their last dim/cell.
func samePrefix(a, b unit) bool {
	k := len(a.dims) - 1
	for i := 0; i < k; i++ {
		if a.dims[i] != b.dims[i] || a.cells[i] != b.cells[i] {
			return false
		}
	}
	return true
}

// allSubunitsDense checks apriori monotonicity: every (k-1)-projection of
// cand must be dense.
func allSubunitsDense(cand unit, dense map[string]int) bool {
	k := len(cand.dims)
	sub := unit{dims: make([]int, k-1), cells: make([]int, k-1)}
	for drop := 0; drop < k; drop++ {
		idx := 0
		for i := 0; i < k; i++ {
			if i == drop {
				continue
			}
			sub.dims[idx] = cand.dims[i]
			sub.cells[idx] = cand.cells[i]
			idx++
		}
		if _, ok := dense[sub.key()]; !ok {
			return false
		}
	}
	return true
}

// connectedComponents groups dense units of the SAME subspace that share a
// face (cell indices differing by exactly 1 in one dimension).
func connectedComponents(units []unit) [][]unit {
	bySubspace := make(map[string][]unit)
	for _, u := range units {
		k := dimsKey(u.dims)
		bySubspace[k] = append(bySubspace[k], u)
	}
	var comps [][]unit
	// Deterministic subspace order.
	keys := make([]string, 0, len(bySubspace))
	for k := range bySubspace {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		us := bySubspace[k]
		sort.Slice(us, func(i, j int) bool { return unitLess(us[i], us[j]) })
		index := make(map[string]int, len(us))
		for i, u := range us {
			index[cellKey(u.cells)] = i
		}
		seen := make([]bool, len(us))
		for i := range us {
			if seen[i] {
				continue
			}
			var comp []unit
			stack := []int{i}
			seen[i] = true
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				comp = append(comp, us[cur])
				// Neighbors: +-1 in one cell coordinate.
				for d := range us[cur].cells {
					for _, delta := range []int{-1, 1} {
						nb := append([]int(nil), us[cur].cells...)
						nb[d] += delta
						if j, ok := index[cellKey(nb)]; ok && !seen[j] {
							seen[j] = true
							stack = append(stack, j)
						}
					}
				}
			}
			comps = append(comps, comp)
		}
	}
	return comps
}

// clustersFromComponents converts each connected component into a
// mineclus.Cluster: the component's bounding cells become the box (full
// domain on unused dims), member rows are the points inside the component's
// units, and importance is mu(|rows|, |dims|) with the configured beta.
func clustersFromComponents(comps [][]unit, dense map[string]int, cells [][]int16, domain geom.Rect, cfg Config, n int) []mineclus.Cluster {
	dims := domain.Dims()
	var out []mineclus.Cluster
	gain := 1 / cfg.Beta
	for _, comp := range comps {
		ds := comp[0].dims
		// Bounding cell range per subspace dimension.
		loCell := append([]int(nil), comp[0].cells...)
		hiCell := append([]int(nil), comp[0].cells...)
		unitSet := make(map[string]bool, len(comp))
		for _, u := range comp {
			unitSet[cellKey(u.cells)] = true
			for i, c := range u.cells {
				if c < loCell[i] {
					loCell[i] = c
				}
				if c > hiCell[i] {
					hiCell[i] = c
				}
			}
		}
		// Member rows: points whose cells lie in one of the component's
		// units.
		var rows []int
		cbuf := make([]int, len(ds))
		for i := 0; i < n; i++ {
			for j, d := range ds {
				cbuf[j] = int(cells[d][i])
			}
			if unitSet[cellKey(cbuf)] {
				rows = append(rows, i)
			}
		}
		if len(rows) == 0 {
			continue
		}
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		copy(lo, domain.Lo)
		copy(hi, domain.Hi)
		for i, d := range ds {
			w := domain.Side(d) / float64(cfg.Xi)
			lo[d] = domain.Lo[d] + float64(loCell[i])*w
			hi[d] = domain.Lo[d] + float64(hiCell[i]+1)*w
		}
		score := float64(len(rows))
		for range ds {
			score *= gain
		}
		out = append(out, mineclus.Cluster{
			Dims:  append([]int(nil), ds...),
			Rows:  rows,
			Box:   geom.Rect{Lo: lo, Hi: hi},
			Score: score,
		})
	}
	return out
}
