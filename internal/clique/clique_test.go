package clique

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"sthist/internal/datagen"
	"sthist/internal/dataset"
	"sthist/internal/geom"
)

func TestConfigValidation(t *testing.T) {
	tab := dataset.MustNew("x")
	tab.MustAppend([]float64{1})
	dom := geom.MustRect([]float64{0}, []float64{10})
	bad := []Config{
		{Xi: 1, Tau: 0.1, MaxDims: 2, Beta: 0.25},
		{Xi: 10, Tau: 0, MaxDims: 2, Beta: 0.25},
		{Xi: 10, Tau: 1.5, MaxDims: 2, Beta: 0.25},
		{Xi: 10, Tau: 0.1, MaxDims: 0, Beta: 0.25},
		{Xi: 10, Tau: 0.1, MaxDims: 2, Beta: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(tab, dom, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Run(dataset.MustNew("x"), dom, DefaultConfig()); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := Run(tab, geom.MustRect([]float64{0, 0}, []float64{1, 1}), DefaultConfig()); err == nil {
		t.Error("domain dimension mismatch accepted")
	}
}

func TestRunFindsDenseBlock(t *testing.T) {
	// One dense block plus uniform noise; CLIQUE must report a 2-dim
	// cluster covering the block.
	rng := rand.New(rand.NewSource(1))
	tab := dataset.MustNew("x", "y")
	for i := 0; i < 3000; i++ {
		tab.MustAppend([]float64{300 + rng.Float64()*100, 600 + rng.Float64()*100})
	}
	for i := 0; i < 500; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	dom := geom.MustRect([]float64{0, 0}, []float64{1000, 1000})
	clusters, err := Run(tab, dom, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range clusters {
		if !reflect.DeepEqual(c.Dims, []int{0, 1}) {
			continue
		}
		if c.Box.ContainsPoint(geom.Point{350, 650}) && len(c.Rows) >= 2500 {
			found = true
		}
	}
	if !found {
		t.Errorf("no 2-dim cluster covering the dense block among %d clusters", len(clusters))
	}
	// Importance order.
	for i := 1; i < len(clusters); i++ {
		if clusters[i].Score > clusters[i-1].Score {
			t.Fatalf("clusters not sorted by score")
		}
	}
}

func TestRunFindsSubspaceBars(t *testing.T) {
	ds := datagen.CrossN(3, 0.5, 2)
	cfg := DefaultConfig()
	cfg.Xi = 20
	cfg.Tau = 0.02
	clusters, err := Run(ds.Table, ds.Domain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each bar is dense in exactly one dimension; expect 1-dim clusters on
	// each of the three dims covering the central band.
	covered := map[int]bool{}
	for _, c := range clusters {
		if len(c.Dims) == 1 {
			d := c.Dims[0]
			if c.Box.Lo[d] <= 500 && c.Box.Hi[d] >= 500 {
				covered[d] = true
			}
		}
	}
	for d := 0; d < 3; d++ {
		if !covered[d] {
			t.Errorf("central band on dim %d not found as a 1-dim cluster", d)
		}
	}
}

func TestRunClusterInvariants(t *testing.T) {
	ds := datagen.Gauss(0.02, 3)
	cfg := DefaultConfig()
	cfg.Tau = 0.02
	clusters, err := Run(ds.Table, ds.Domain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatal("no clusters found")
	}
	for ci, c := range clusters {
		if len(c.Dims) < 1 || len(c.Dims) > cfg.MaxDims {
			t.Errorf("cluster %d has %d dims", ci, len(c.Dims))
		}
		if !sort.IntsAreSorted(c.Dims) {
			t.Errorf("cluster %d dims not sorted: %v", ci, c.Dims)
		}
		for _, r := range c.Rows {
			p := ds.Table.Point(r)
			if !c.Box.ContainsPoint(p) {
				t.Fatalf("cluster %d: row %d outside box on dims %v", ci, r, c.Dims)
			}
		}
		// Box spans the domain fully on unused dimensions.
		for _, d := range c.UnusedDims(ds.Table.Dims()) {
			if c.Box.Lo[d] != ds.Domain.Lo[d] || c.Box.Hi[d] != ds.Domain.Hi[d] {
				t.Errorf("cluster %d box does not span unused dim %d", ci, d)
			}
		}
	}
}

func TestAprioriMonotonicity(t *testing.T) {
	// Hand-built dense sets: units {0}:c3 and {1}:c5 dense, so candidate
	// {0,1}:(3,5) is generated; {2} not dense, so no candidate includes it.
	u01 := unit{dims: []int{0}, cells: []int{3}}
	u11 := unit{dims: []int{1}, cells: []int{5}}
	dense := map[string]int{u01.key(): 10, u11.key(): 12}
	cands := aprioriJoin([]unit{u01, u11}, dense)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	if !reflect.DeepEqual(cands[0].dims, []int{0, 1}) || !reflect.DeepEqual(cands[0].cells, []int{3, 5}) {
		t.Errorf("candidate = %+v", cands[0])
	}
	// A pair in the SAME dimension must not join.
	u02 := unit{dims: []int{0}, cells: []int{4}}
	dense[u02.key()] = 9
	cands = aprioriJoin([]unit{u01, u02}, dense)
	for _, c := range cands {
		if c.dims[0] == c.dims[1] {
			t.Errorf("joined two units of the same dimension: %+v", c)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	// Three units in one subspace: cells 2,3 adjacent, cell 7 apart.
	us := []unit{
		{dims: []int{0}, cells: []int{2}},
		{dims: []int{0}, cells: []int{3}},
		{dims: []int{0}, cells: []int{7}},
	}
	comps := connectedComponents(us)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1])}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Errorf("component sizes = %v", sizes)
	}
	// Units in different subspaces never connect.
	us = []unit{
		{dims: []int{0}, cells: []int{2}},
		{dims: []int{1}, cells: []int{2}},
	}
	if comps := connectedComponents(us); len(comps) != 2 {
		t.Errorf("cross-subspace units merged into %d components", len(comps))
	}
}
