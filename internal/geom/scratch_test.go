package geom

import (
	"math/rand"
	"testing"
)

// TestIntoVariantsMatchAllocating: the In-place kernels must produce exactly
// the rectangles their allocating counterparts produce, across random pairs
// and dimensionalities (including degenerate and disjoint rectangles).
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var dst Rect
	for trial := 0; trial < 5000; trial++ {
		dims := 1 + rng.Intn(5)
		r := randRect(rng, dims)
		s := randRect(rng, dims)

		want, wantOK := r.Intersect(s)
		gotOK := r.IntersectInto(s, &dst)
		if gotOK != wantOK {
			t.Fatalf("IntersectInto ok=%v, Intersect ok=%v for %v, %v", gotOK, wantOK, r, s)
		}
		if wantOK && !dst.Equal(want) {
			t.Fatalf("IntersectInto %v != Intersect %v", dst, want)
		}

		r.EncloseInto(s, &dst)
		if want := r.Enclose(s); !dst.Equal(want) {
			t.Fatalf("EncloseInto %v != Enclose %v", dst, want)
		}

		r.ShrinkInto(s, &dst)
		if want := r.Shrink(s); !dst.Equal(want) {
			t.Fatalf("ShrinkInto %v != Shrink %v for r=%v cutter=%v", dst, want, r, s)
		}
	}
}

// TestIntoVariantsAliasing: dst may alias the receiver, which is how the
// drill loop shrinks candidates in place.
func TestIntoVariantsAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 2000; trial++ {
		dims := 1 + rng.Intn(4)
		r := randRect(rng, dims)
		s := randRect(rng, dims)

		want, wantOK := r.Intersect(s)
		got := r.Clone()
		if ok := got.IntersectInto(s, &got); ok != wantOK {
			t.Fatalf("aliased IntersectInto ok=%v want %v", ok, wantOK)
		} else if ok && !got.Equal(want) {
			t.Fatalf("aliased IntersectInto %v != %v", got, want)
		}

		wantEnc := r.Enclose(s)
		got = r.Clone()
		got.EncloseInto(s, &got)
		if !got.Equal(wantEnc) {
			t.Fatalf("aliased EncloseInto %v != %v", got, wantEnc)
		}

		wantShr := r.Shrink(s)
		got = r.Clone()
		got.ShrinkInto(s, &got)
		if !got.Equal(wantShr) {
			t.Fatalf("aliased ShrinkInto %v != %v", got, wantShr)
		}
	}
}

// TestIntoVariantsZeroAlloc: with a warmed destination the kernels must not
// allocate — this is the invariant the sthole drill loop depends on.
func TestIntoVariantsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := randRect(rng, 4)
	s := randRect(rng, 4)
	over := r.Enclose(s) // guaranteed to intersect both
	var dst Rect
	r.CopyInto(&dst) // warm the scratch

	if allocs := testing.AllocsPerRun(100, func() { over.IntersectInto(s, &dst) }); allocs != 0 {
		t.Errorf("IntersectInto allocates %g times, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.EncloseInto(s, &dst) }); allocs != 0 {
		t.Errorf("EncloseInto allocates %g times, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { over.ShrinkInto(s, &dst) }); allocs != 0 {
		t.Errorf("ShrinkInto allocates %g times, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.CopyInto(&dst) }); allocs != 0 {
		t.Errorf("CopyInto allocates %g times, want 0", allocs)
	}
}

// TestShrinkIntoCoveredCollapse: a cutter covering r collapses it to a
// zero-extent slab, matching Shrink.
func TestShrinkIntoCoveredCollapse(t *testing.T) {
	r := MustRect([]float64{2, 2}, []float64{4, 4})
	cutter := MustRect([]float64{0, 0}, []float64{10, 10})
	var dst Rect
	r.ShrinkInto(cutter, &dst)
	if dst.Volume() != 0 {
		t.Errorf("covered ShrinkInto volume = %g, want 0", dst.Volume())
	}
	if want := r.Shrink(cutter); !dst.Equal(want) {
		t.Errorf("covered ShrinkInto %v != Shrink %v", dst, want)
	}
}
