package geom

import "testing"

// These tests pin ShrinkInto's behavior on the degenerate geometries the
// drill loop produces at bucket boundaries — zero-volume rectangles, cutters
// that fully contain the candidate, and cuts that collapse a dimension to a
// point — and assert that every one of them upholds the //sthlint:noalloc
// contract with a warmed destination.

// shrinkAllocs runs r.ShrinkInto(cutter, dst) with warmed scratch and
// returns the steady-state allocation count.
func shrinkAllocs(r, cutter Rect, dst *Rect) float64 {
	r.CopyInto(dst) // warm dst to r's dimensionality
	return testing.AllocsPerRun(100, func() { r.ShrinkInto(cutter, dst) })
}

// TestShrinkIntoZeroVolumeReceiver: IntersectsOpen's per-dimension interval
// test cannot distinguish an empty interior from a thin one, so a
// zero-extent candidate whose slab crosses the cutter still gets cut along a
// live dimension. The estimates downstream depend on ShrinkInto being
// bit-identical to Shrink here, so this pins the actual (slab-cutting)
// semantics rather than an idealized no-op.
func TestShrinkIntoZeroVolumeReceiver(t *testing.T) {
	r := MustRect([]float64{2, 3}, []float64{2, 7}) // zero extent in dim 0
	cutter := MustRect([]float64{1, 4}, []float64{3, 6})
	var dst Rect
	r.ShrinkInto(cutter, &dst)
	if want := r.Shrink(cutter); !dst.Equal(want) {
		t.Errorf("ShrinkInto %v != Shrink %v", dst, want)
	}
	if want := MustRect([]float64{2, 3}, []float64{2, 4}); !dst.Equal(want) {
		t.Errorf("degenerate receiver: got %v, want the dim-1 cut %v", dst, want)
	}
	if dst.Volume() != 0 {
		t.Errorf("degenerate receiver must stay zero-volume, got %v", dst)
	}
	if dst.IntersectsOpen(cutter) {
		t.Errorf("shrunk slab %v still openly intersects cutter %v", dst, cutter)
	}
	if allocs := shrinkAllocs(r, cutter, &dst); allocs != 0 {
		t.Errorf("zero-volume ShrinkInto allocates %g times, want 0", allocs)
	}
}

// TestShrinkIntoZeroVolumeCutter: symmetrically, a zero-extent cutter
// crossing the candidate's interior still forces a cut — the candidate is
// sliced at the cutter's slab, matching Shrink bit for bit.
func TestShrinkIntoZeroVolumeCutter(t *testing.T) {
	r := MustRect([]float64{0, 0}, []float64{4, 4})
	cutter := MustRect([]float64{2, 1}, []float64{2, 3}) // zero extent in dim 0
	var dst Rect
	r.ShrinkInto(cutter, &dst)
	if want := r.Shrink(cutter); !dst.Equal(want) {
		t.Errorf("ShrinkInto %v != Shrink %v", dst, want)
	}
	if want := MustRect([]float64{0, 0}, []float64{2, 4}); !dst.Equal(want) {
		t.Errorf("degenerate cutter: got %v, want the dim-0 slice %v", dst, want)
	}
	if allocs := shrinkAllocs(r, cutter, &dst); allocs != 0 {
		t.Errorf("zero-volume-cutter ShrinkInto allocates %g times, want 0", allocs)
	}
}

// TestShrinkIntoFullContainment covers both containment directions: a cutter
// strictly inside r forces a genuine cut (the cheapest face), while a cutter
// containing r collapses it to a zero-volume slab on dimension 0.
func TestShrinkIntoFullContainment(t *testing.T) {
	outer := MustRect([]float64{0, 0, 0}, []float64{10, 8, 6})
	inner := MustRect([]float64{4, 3, 2}, []float64{6, 5, 4})

	var dst Rect
	outer.ShrinkInto(inner, &dst)
	if want := outer.Shrink(inner); !dst.Equal(want) {
		t.Errorf("cutter-inside ShrinkInto %v != Shrink %v", dst, want)
	}
	if dst.IntersectsOpen(inner) {
		t.Errorf("shrunk candidate %v still openly intersects cutter %v", dst, inner)
	}
	if dst.Volume() <= 0 {
		t.Errorf("cutter-inside shrink should keep positive volume, got %v", dst)
	}
	if allocs := shrinkAllocs(outer, inner, &dst); allocs != 0 {
		t.Errorf("cutter-inside ShrinkInto allocates %g times, want 0", allocs)
	}

	inner.ShrinkInto(outer, &dst)
	if dst.Volume() != 0 {
		t.Errorf("candidate covered by cutter must collapse to zero volume, got %v", dst)
	}
	if dst.Lo[0] != dst.Hi[0] {
		t.Errorf("collapse convention is a zero-extent slab on dim 0, got %v", dst)
	}
	if want := inner.Shrink(outer); !dst.Equal(want) {
		t.Errorf("covered ShrinkInto %v != Shrink %v", dst, want)
	}
	if allocs := shrinkAllocs(inner, outer, &dst); allocs != 0 {
		t.Errorf("covered ShrinkInto allocates %g times, want 0", allocs)
	}
}

// TestShrinkIntoOneDCollapse: in one dimension a partially-overlapping
// cutter slices the candidate down to the uncovered interval, and a cutter
// covering the whole interval collapses it to a point.
func TestShrinkIntoOneDCollapse(t *testing.T) {
	r := MustRect([]float64{0}, []float64{10})

	// Partial overlap from the right: keep the low side.
	cutter := MustRect([]float64{6}, []float64{12})
	var dst Rect
	r.ShrinkInto(cutter, &dst)
	if want := MustRect([]float64{0}, []float64{6}); !dst.Equal(want) {
		t.Errorf("1-d right cut: got %v, want %v", dst, want)
	}

	// Partial overlap from the left: keep the high side.
	cutter = MustRect([]float64{-3}, []float64{4})
	r.ShrinkInto(cutter, &dst)
	if want := MustRect([]float64{4}, []float64{10}); !dst.Equal(want) {
		t.Errorf("1-d left cut: got %v, want %v", dst, want)
	}

	// Cutter covering the whole interval: collapse to a point.
	cutter = MustRect([]float64{-1}, []float64{11})
	r.ShrinkInto(cutter, &dst)
	if dst.Volume() != 0 || dst.Lo[0] != dst.Hi[0] {
		t.Errorf("1-d covered cut should collapse to a point, got %v", dst)
	}
	if want := r.Shrink(cutter); !dst.Equal(want) {
		t.Errorf("1-d covered ShrinkInto %v != Shrink %v", dst, want)
	}
	if allocs := shrinkAllocs(r, cutter, &dst); allocs != 0 {
		t.Errorf("1-d ShrinkInto allocates %g times, want 0", allocs)
	}
}
