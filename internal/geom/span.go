package geom

import "math"

// UnitRect returns the d-dimensional rectangle [0,1]^d.
func UnitRect(d int) Rect {
	lo := make(Point, d)
	hi := make(Point, d)
	for i := range hi {
		hi[i] = 1
	}
	return Rect{Lo: lo, Hi: hi}
}

// CubeAt returns the axis-parallel cube of the given side length centered at
// c, clamped to stay inside domain. The clamping shifts the cube rather than
// truncating it, so the returned query keeps its full volume whenever the
// side fits inside the domain (the workload generators rely on this to
// produce fixed-volume queries near the domain boundary).
func CubeAt(c Point, side float64, domain Rect) Rect {
	lo := make(Point, len(c))
	hi := make(Point, len(c))
	for d := range c {
		l := c[d] - side/2
		h := c[d] + side/2
		if l < domain.Lo[d] {
			h += domain.Lo[d] - l
			l = domain.Lo[d]
		}
		if h > domain.Hi[d] {
			l -= h - domain.Hi[d]
			h = domain.Hi[d]
		}
		// If the side exceeds the domain extent, fall back to the domain.
		if l < domain.Lo[d] {
			l = domain.Lo[d]
		}
		lo[d] = l
		hi[d] = h
	}
	return Rect{Lo: lo, Hi: hi}
}

// BoxAt is CubeAt with per-dimension side lengths.
func BoxAt(c Point, sides []float64, domain Rect) Rect {
	lo := make(Point, len(c))
	hi := make(Point, len(c))
	for d := range c {
		l := c[d] - sides[d]/2
		h := c[d] + sides[d]/2
		if l < domain.Lo[d] {
			h += domain.Lo[d] - l
			l = domain.Lo[d]
		}
		if h > domain.Hi[d] {
			l -= h - domain.Hi[d]
			h = domain.Hi[d]
		}
		if l < domain.Lo[d] {
			l = domain.Lo[d]
		}
		lo[d] = l
		hi[d] = h
	}
	return Rect{Lo: lo, Hi: hi}
}

// SideForVolumeFraction returns the side length of a cube occupying the given
// fraction of domain's volume, assuming the cube scales uniformly relative to
// the domain's per-dimension extents. For a non-cubic domain the returned
// value is a per-dimension slice: side[d] = frac^(1/dims) * extent(d).
func SideForVolumeFraction(domain Rect, frac float64) []float64 {
	dims := domain.Dims()
	scale := math.Pow(frac, 1/float64(dims))
	sides := make([]float64, dims)
	for d := 0; d < dims; d++ {
		sides[d] = scale * domain.Side(d)
	}
	return sides
}

// BoundingRect returns the minimal rectangle containing all points. It
// reports false when points is empty.
func BoundingRect(points []Point) (Rect, bool) {
	if len(points) == 0 {
		return Rect{}, false
	}
	r := Rect{Lo: points[0].Clone(), Hi: points[0].Clone()}
	for _, p := range points[1:] {
		r.ExpandToPoint(p)
	}
	return r, true
}
