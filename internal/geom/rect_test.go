package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rect2(x0, y0, x1, y1 float64) Rect {
	return MustRect([]float64{x0, y0}, []float64{x1, y1})
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect([]float64{0, 0}, []float64{1}); err == nil {
		t.Error("dimensionality mismatch accepted")
	}
	if _, err := NewRect(nil, nil); err == nil {
		t.Error("zero-dimensional rectangle accepted")
	}
	if _, err := NewRect([]float64{1}, []float64{0}); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := NewRect([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("NaN corner accepted")
	}
	if _, err := NewRect([]float64{0, 0}, []float64{1, 1}); err != nil {
		t.Errorf("valid rectangle rejected: %v", err)
	}
	if _, err := NewRect([]float64{1, 1}, []float64{1, 1}); err != nil {
		t.Errorf("degenerate rectangle rejected: %v", err)
	}
}

func TestMustRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRect did not panic on invalid input")
		}
	}()
	MustRect([]float64{1}, []float64{0})
}

func TestVolume(t *testing.T) {
	cases := []struct {
		r    Rect
		want float64
	}{
		{rect2(0, 0, 1, 1), 1},
		{rect2(0, 0, 2, 3), 6},
		{rect2(0, 0, 0, 5), 0},
		{rect2(-1, -1, 1, 1), 4},
		{MustRect([]float64{0, 0, 0}, []float64{2, 2, 2}), 8},
	}
	for _, c := range cases {
		if got := c.r.Volume(); got != c.want {
			t.Errorf("Volume(%v) = %g, want %g", c.r, got, c.want)
		}
	}
}

func TestContainsPoint(t *testing.T) {
	r := rect2(0, 0, 2, 2)
	for _, p := range []Point{{0, 0}, {2, 2}, {1, 1}, {0, 2}} {
		if !r.ContainsPoint(p) {
			t.Errorf("%v should contain %v", r, p)
		}
	}
	for _, p := range []Point{{-0.1, 1}, {1, 2.1}, {3, 3}} {
		if r.ContainsPoint(p) {
			t.Errorf("%v should not contain %v", r, p)
		}
	}
	if r.ContainsPoint(Point{1}) {
		t.Error("dimension-mismatched point reported contained")
	}
}

func TestContainsRect(t *testing.T) {
	outer := rect2(0, 0, 10, 10)
	if !outer.Contains(rect2(1, 1, 9, 9)) {
		t.Error("strict subset not contained")
	}
	if !outer.Contains(outer) {
		t.Error("rect must contain itself")
	}
	if outer.Contains(rect2(5, 5, 11, 9)) {
		t.Error("overflowing rect reported contained")
	}
	if outer.Contains(MustRect([]float64{0}, []float64{1})) {
		t.Error("dimension mismatch reported contained")
	}
}

func TestIntersect(t *testing.T) {
	a := rect2(0, 0, 4, 4)
	b := rect2(2, 2, 6, 6)
	got, ok := a.Intersect(b)
	if !ok || !got.Equal(rect2(2, 2, 4, 4)) {
		t.Errorf("Intersect = %v, %v; want [2,4]x[2,4]", got, ok)
	}
	if _, ok := a.Intersect(rect2(5, 5, 6, 6)); ok {
		t.Error("disjoint rectangles reported intersecting")
	}
	// Touching boundary: closed intersection non-empty, open intersection empty.
	c := rect2(4, 0, 8, 4)
	if !a.Intersects(c) {
		t.Error("touching rectangles should intersect (closed)")
	}
	if a.IntersectsOpen(c) {
		t.Error("touching rectangles must not intersect (open)")
	}
	if v := a.IntersectionVolume(c); v != 0 {
		t.Errorf("touching intersection volume = %g, want 0", v)
	}
	if v := a.IntersectionVolume(b); v != 4 {
		t.Errorf("intersection volume = %g, want 4", v)
	}
}

func TestEnclose(t *testing.T) {
	a := rect2(0, 0, 1, 1)
	b := rect2(3, -2, 4, 0.5)
	got := a.Enclose(b)
	if !got.Equal(rect2(0, -2, 4, 1)) {
		t.Errorf("Enclose = %v", got)
	}
}

func TestShrinkBasic(t *testing.T) {
	// Candidate [0,4]x[0,4]; cutter overlaps the right side. Best cut keeps
	// [0,3]x[0,4] (volume 12) over cutting vertically.
	cand := rect2(0, 0, 4, 4)
	cutter := rect2(3, 1, 5, 3)
	got := cand.Shrink(cutter)
	if !got.Equal(rect2(0, 0, 3, 4)) {
		t.Errorf("Shrink = %v, want [0,3]x[0,4]", got)
	}
	// Disjoint cutter leaves the candidate unchanged.
	got = cand.Shrink(rect2(10, 10, 12, 12))
	if !got.Equal(cand) {
		t.Errorf("Shrink with disjoint cutter = %v", got)
	}
	// Cutter covering the candidate entirely yields a degenerate rectangle.
	got = cand.Shrink(rect2(-1, -1, 5, 5))
	if got.Volume() != 0 {
		t.Errorf("Shrink with covering cutter has volume %g, want 0", got.Volume())
	}
	// Cutter strictly inside: the cut must remove the overlap along one axis.
	got = cand.Shrink(rect2(1, 1, 2, 2))
	if got.IntersectsOpen(rect2(1, 1, 2, 2)) {
		t.Errorf("Shrink result %v still overlaps interior cutter", got)
	}
	if got.Volume() != 8 { // best cut keeps [2,4]x[0,4] or [0,4]x[2,4]
		t.Errorf("Shrink interior volume = %g, want 8", got.Volume())
	}
}

func TestCubeAtClamping(t *testing.T) {
	dom := rect2(0, 0, 10, 10)
	q := CubeAt(Point{0.1, 5}, 2, dom)
	if math.Abs(q.Volume()-4) > 1e-12 {
		t.Errorf("clamped cube volume = %g, want 4", q.Volume())
	}
	if !dom.Contains(q) {
		t.Errorf("clamped cube %v escapes domain", q)
	}
	// Oversized side falls back to the domain extent.
	q = CubeAt(Point{5, 5}, 100, dom)
	if !q.Equal(dom) {
		t.Errorf("oversized cube = %v, want the domain", q)
	}
}

func TestSideForVolumeFraction(t *testing.T) {
	dom := MustRect([]float64{0, 0, 0}, []float64{10, 10, 10})
	sides := SideForVolumeFraction(dom, 0.01)
	want := math.Pow(0.01, 1.0/3) * 10
	for d, s := range sides {
		if math.Abs(s-want) > 1e-12 {
			t.Errorf("side[%d] = %g, want %g", d, s, want)
		}
	}
	// Product of fractional sides equals the requested volume fraction.
	q := BoxAt(Point{5, 5, 5}, sides, dom)
	if math.Abs(q.Volume()/dom.Volume()-0.01) > 1e-9 {
		t.Errorf("volume fraction = %g, want 0.01", q.Volume()/dom.Volume())
	}
}

func TestBoundingRect(t *testing.T) {
	if _, ok := BoundingRect(nil); ok {
		t.Error("empty point set produced a bounding rect")
	}
	r, ok := BoundingRect([]Point{{1, 2}, {-1, 5}, {0, 0}})
	if !ok || !r.Equal(rect2(-1, 0, 1, 5)) {
		t.Errorf("BoundingRect = %v, %v", r, ok)
	}
}

// --- property-based tests -------------------------------------------------

// randRect draws a random rectangle with the given dimensionality inside
// [-50, 50]^dims.
func randRect(rng *rand.Rand, dims int) Rect {
	lo := make(Point, dims)
	hi := make(Point, dims)
	for d := 0; d < dims; d++ {
		a := rng.Float64()*100 - 50
		b := rng.Float64()*100 - 50
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return Rect{Lo: lo, Hi: hi}
}

func TestQuickIntersectionVolumeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		dims := 1 + rng.Intn(5)
		a := randRect(rng, dims)
		b := randRect(rng, dims)
		iv := a.IntersectionVolume(b)
		return iv <= a.Volume()+1e-9 && iv <= b.Volume()+1e-9 && iv >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		dims := 1 + rng.Intn(5)
		a := randRect(rng, dims)
		b := randRect(rng, dims)
		ab, okAB := a.Intersect(b)
		ba, okBA := b.Intersect(a)
		if okAB != okBA {
			return false
		}
		return !okAB || ab.Equal(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectionContainedInBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		dims := 1 + rng.Intn(5)
		a := randRect(rng, dims)
		b := randRect(rng, dims)
		iv, ok := a.Intersect(b)
		return !ok || (a.Contains(iv) && b.Contains(iv))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickEncloseContainsBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		dims := 1 + rng.Intn(5)
		a := randRect(rng, dims)
		b := randRect(rng, dims)
		e := a.Enclose(b)
		return e.Contains(a) && e.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickContainmentTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		dims := 1 + rng.Intn(4)
		a := randRect(rng, dims)
		// b inside a, c inside b, by shrinking toward the center.
		b := a.Clone()
		c := a.Clone()
		for d := 0; d < dims; d++ {
			m := (a.Lo[d] + a.Hi[d]) / 2
			b.Lo[d] = (a.Lo[d] + m) / 2
			b.Hi[d] = (a.Hi[d] + m) / 2
			c.Lo[d] = (b.Lo[d] + m) / 2
			c.Hi[d] = (b.Hi[d] + m) / 2
		}
		return a.Contains(b) && b.Contains(c) && a.Contains(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickShrinkProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		dims := 1 + rng.Intn(4)
		r := randRect(rng, dims)
		cutter := randRect(rng, dims)
		s := r.Shrink(cutter)
		// Shrink output stays inside the input and never overlaps the
		// cutter's interior.
		if !r.Contains(s) {
			return false
		}
		if s.Volume() > 0 && s.IntersectsOpen(cutter) {
			return false
		}
		return s.Volume() <= r.Volume()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickShrinkKeepsMaxVolumeCut(t *testing.T) {
	// The shrink result must be at least as large as every single-dimension
	// cut candidate, because it is defined as the best of them.
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		dims := 1 + rng.Intn(3)
		r := randRect(rng, dims)
		cutter := randRect(rng, dims)
		if !r.IntersectsOpen(cutter) {
			return true
		}
		s := r.Shrink(cutter)
		for d := 0; d < dims; d++ {
			if cutter.Lo[d] > r.Lo[d] {
				cand := r.Clone()
				cand.Hi[d] = math.Min(cand.Hi[d], cutter.Lo[d])
				if cand.Volume() > s.Volume()+1e-9 {
					return false
				}
			}
			if cutter.Hi[d] < r.Hi[d] {
				cand := r.Clone()
				cand.Lo[d] = math.Max(cand.Lo[d], cutter.Hi[d])
				if cand.Volume() > s.Volume()+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRectString(t *testing.T) {
	r := rect2(0, 1, 2, 3)
	if got, want := r.String(), "[0,2]x[1,3]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
