// Package geom provides the n-dimensional axis-parallel geometry primitives
// that every other module in sthist builds on: points, rectangles (boxes),
// volume computation, intersection, containment, enclosure and the
// per-dimension shrinking operation that STHoles uses to turn non-rectangular
// bucket/query intersections into rectangular candidate holes.
//
// All rectangles are closed-open style with respect to containment of points
// on the boundary being permitted on both ends: a point p is inside r when
// Lo[d] <= p[d] <= Hi[d] for every dimension d. Degenerate rectangles (zero
// extent in some dimension) are legal; their volume is zero.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in n-dimensional attribute-value space.
type Point []float64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Rect is an axis-parallel n-dimensional rectangle described by its lower and
// upper corners. Lo and Hi must have the same length and satisfy
// Lo[d] <= Hi[d] for every d; use NewRect to have this validated.
type Rect struct {
	Lo, Hi Point
}

// NewRect builds a rectangle from corner slices, validating that they are
// consistent. The slices are not copied; use Clone if the caller retains them.
func NewRect(lo, hi []float64) (Rect, error) {
	if len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("geom: corner dimensionality mismatch %d vs %d", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Rect{}, fmt.Errorf("geom: zero-dimensional rectangle")
	}
	for d := range lo {
		if math.IsNaN(lo[d]) || math.IsNaN(hi[d]) {
			return Rect{}, fmt.Errorf("geom: NaN corner in dimension %d", d)
		}
		if lo[d] > hi[d] {
			return Rect{}, fmt.Errorf("geom: inverted interval in dimension %d: [%g, %g]", d, lo[d], hi[d])
		}
	}
	return Rect{Lo: lo, Hi: hi}, nil
}

// MustRect is NewRect that panics on invalid input. Intended for literals in
// tests and generators where the input is known-valid.
func MustRect(lo, hi []float64) Rect {
	r, err := NewRect(lo, hi)
	if err != nil {
		panic(err)
	}
	return r
}

// Dims returns the dimensionality of r.
func (r Rect) Dims() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// Side returns the extent of r along dimension d.
func (r Rect) Side(d int) float64 { return r.Hi[d] - r.Lo[d] }

// Volume returns the n-dimensional volume of r. A degenerate rectangle has
// volume zero.
func (r Rect) Volume() float64 {
	v := 1.0
	for d := range r.Lo {
		v *= r.Hi[d] - r.Lo[d]
	}
	return v
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for d := range r.Lo {
		c[d] = (r.Lo[d] + r.Hi[d]) / 2
	}
	return c
}

// ContainsPoint reports whether p lies inside r (boundaries inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	if len(p) != len(r.Lo) {
		return false
	}
	for d := range p {
		if p[d] < r.Lo[d] || p[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Contains reports whether s lies entirely inside r (boundaries inclusive).
func (r Rect) Contains(s Rect) bool {
	if s.Dims() != r.Dims() {
		return false
	}
	for d := range r.Lo {
		if s.Lo[d] < r.Lo[d] || s.Hi[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Equal reports whether r and s describe the same rectangle.
func (r Rect) Equal(s Rect) bool {
	if r.Dims() != s.Dims() {
		return false
	}
	for d := range r.Lo {
		if r.Lo[d] != s.Lo[d] || r.Hi[d] != s.Hi[d] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share any volume or touch. Rectangles
// that only share a boundary intersect with zero-volume overlap.
//
//sthlint:noalloc
func (r Rect) Intersects(s Rect) bool {
	if r.Dims() != s.Dims() {
		return false
	}
	for d := range r.Lo {
		if s.Hi[d] < r.Lo[d] || s.Lo[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// IntersectsOpen reports whether r and s share strictly positive volume,
// i.e. their interiors overlap.
//
//sthlint:noalloc
func (r Rect) IntersectsOpen(s Rect) bool {
	if r.Dims() != s.Dims() {
		return false
	}
	for d := range r.Lo {
		if s.Hi[d] <= r.Lo[d] || s.Lo[d] >= r.Hi[d] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of r and s and whether it is non-empty.
// The result is a fresh rectangle; r and s are unchanged.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	var out Rect
	if !r.IntersectInto(s, &out) {
		return Rect{}, false
	}
	return out, true
}

// setDims resizes r's corner slices to n dimensions, reusing their backing
// arrays when the capacity allows. The slice contents are unspecified after
// the call; callers overwrite every dimension.
func (r *Rect) setDims(n int) {
	if cap(r.Lo) >= n {
		r.Lo = r.Lo[:n]
	} else {
		r.Lo = make(Point, n)
	}
	if cap(r.Hi) >= n {
		r.Hi = r.Hi[:n]
	} else {
		r.Hi = make(Point, n)
	}
}

// CopyInto writes r into dst, reusing dst's corner slices when they have
// sufficient capacity. dst may alias r.
//
//sthlint:noalloc
func (r Rect) CopyInto(dst *Rect) {
	dst.setDims(len(r.Lo))
	copy(dst.Lo, r.Lo)
	copy(dst.Hi, r.Hi)
}

// IntersectInto is the allocation-free variant of Intersect: it writes r ∩ s
// into dst, reusing dst's corner slices when they have sufficient capacity,
// and reports whether the intersection is non-empty (dst is untouched when it
// is empty). dst may alias r or s.
//
//sthlint:noalloc
func (r Rect) IntersectInto(s Rect, dst *Rect) bool {
	if !r.Intersects(s) {
		return false
	}
	dst.setDims(len(r.Lo))
	for d := range r.Lo {
		dst.Lo[d] = math.Max(r.Lo[d], s.Lo[d])
		dst.Hi[d] = math.Min(r.Hi[d], s.Hi[d])
	}
	return true
}

// IntersectionVolume returns Volume(r ∩ s), zero if disjoint.
//
//sthlint:noalloc
func (r Rect) IntersectionVolume(s Rect) float64 {
	v := 1.0
	for d := range r.Lo {
		lo := math.Max(r.Lo[d], s.Lo[d])
		hi := math.Min(r.Hi[d], s.Hi[d])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Enclose returns the minimal rectangle containing both r and s.
func (r Rect) Enclose(s Rect) Rect {
	var out Rect
	r.EncloseInto(s, &out)
	return out
}

// EncloseInto is the allocation-free variant of Enclose: it writes the
// minimal rectangle containing both r and s into dst, reusing dst's corner
// slices when they have sufficient capacity. dst may alias r or s, so a
// rectangle can be grown in place with r.EncloseInto(s, &r).
//
//sthlint:noalloc
func (r Rect) EncloseInto(s Rect, dst *Rect) {
	dst.setDims(len(r.Lo))
	for d := range r.Lo {
		dst.Lo[d] = math.Min(r.Lo[d], s.Lo[d])
		dst.Hi[d] = math.Max(r.Hi[d], s.Hi[d])
	}
}

// ExpandToPoint grows r in place so that it contains p.
func (r *Rect) ExpandToPoint(p Point) {
	for d := range p {
		if p[d] < r.Lo[d] {
			r.Lo[d] = p[d]
		}
		if p[d] > r.Hi[d] {
			r.Hi[d] = p[d]
		}
	}
}

// Shrink returns the largest-volume sub-rectangle of r obtained by cutting r
// along a single dimension so that the result no longer overlaps cutter's
// interior. This is the elementary step of STHoles candidate-hole shrinking:
// when a candidate hole partially intersects an existing child bucket, the
// candidate is cut along the dimension/direction that sacrifices the least
// volume. If cutter does not overlap r's interior, r is returned unchanged.
// If cutter fully covers r in every dimension, the result is a degenerate
// (zero-volume) rectangle produced by the least-bad cut.
func (r Rect) Shrink(cutter Rect) Rect {
	var out Rect
	r.ShrinkInto(cutter, &out)
	return out
}

// ShrinkInto is the allocation-free variant of Shrink: it writes the shrunk
// rectangle into dst, reusing dst's corner slices when they have sufficient
// capacity. dst may alias r, so a candidate hole can be shrunk in place with
// r.ShrinkInto(cutter, &r). The cut chosen is bit-identical to Shrink's: the
// candidate volumes are evaluated with the same per-dimension multiplication
// order, just without materializing the candidate rectangles.
//
//sthlint:noalloc
func (r Rect) ShrinkInto(cutter Rect, dst *Rect) {
	if !r.IntersectsOpen(cutter) {
		r.CopyInto(dst)
		return
	}
	bestVol := -1.0
	bestDim := -1
	bestKeepLow := false
	bestBound := 0.0
	for d := range r.Lo {
		// Cut keeping the low side: r.Hi[d] -> cutter.Lo[d].
		if cutter.Lo[d] > r.Lo[d] {
			hi := math.Min(r.Hi[d], cutter.Lo[d])
			if v := r.volumeWithSide(d, hi-r.Lo[d]); v > bestVol {
				bestVol, bestDim, bestKeepLow, bestBound = v, d, true, hi
			}
		}
		// Cut keeping the high side: r.Lo[d] -> cutter.Hi[d].
		if cutter.Hi[d] < r.Hi[d] {
			lo := math.Max(r.Lo[d], cutter.Hi[d])
			if v := r.volumeWithSide(d, r.Hi[d]-lo); v > bestVol {
				bestVol, bestDim, bestKeepLow, bestBound = v, d, false, lo
			}
		}
	}
	r.CopyInto(dst)
	if bestVol < 0 {
		// cutter covers r in every dimension: collapse r to a zero-extent
		// slab on its first dimension so callers see an empty candidate.
		dst.Hi[0] = dst.Lo[0]
		return
	}
	if bestKeepLow {
		dst.Hi[bestDim] = bestBound
	} else {
		dst.Lo[bestDim] = bestBound
	}
}

// volumeWithSide returns r's volume with the extent on dimension d replaced
// by side, multiplying in the same dimension order as Volume so results are
// bit-identical to evaluating Volume on a modified clone.
//
//sthlint:noalloc
func (r Rect) volumeWithSide(d int, side float64) float64 {
	v := 1.0
	for dd := range r.Lo {
		if dd == d {
			v *= side
		} else {
			v *= r.Hi[dd] - r.Lo[dd]
		}
	}
	return v
}

// String renders r as [lo1,hi1]x[lo2,hi2]x...
func (r Rect) String() string {
	var b strings.Builder
	for d := range r.Lo {
		if d > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "[%g,%g]", r.Lo[d], r.Hi[d])
	}
	return b.String()
}
