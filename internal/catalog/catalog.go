// Package catalog manages a set of self-tuning histograms — one per table —
// under a shared memory budget, in the spirit of the SASH framework (Lim,
// Wang, Vitter — VLDB 2003, reference [18] of the paper): it decides how
// much memory each histogram gets, observes estimation errors from query
// feedback, and periodically reallocates buckets toward the histograms that
// need them most. Histograms persist as JSON.
package catalog

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"sthist/internal/core"
	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/index"
	"sthist/internal/mineclus"
	"sthist/internal/sthole"
)

// Config tunes the manager.
type Config struct {
	// TotalBuckets is the shared bucket budget across all histograms
	// (default 256).
	TotalBuckets int
	// MinBuckets is the floor any histogram keeps (default 16).
	MinBuckets int
	// RebalanceEvery reallocates after that many feedback calls
	// (default 200; 0 disables).
	RebalanceEvery int
	// ErrorHalfLife is the EWMA smoothing for per-table error shares
	// (default 0.9 retention per observation).
	ErrorRetention float64
}

// DefaultConfig returns the defaults above.
func DefaultConfig() Config {
	return Config{TotalBuckets: 256, MinBuckets: 16, RebalanceEvery: 200, ErrorRetention: 0.9}
}

// Manager owns the histograms.
type Manager struct {
	mu        sync.Mutex
	cfg       Config            // guarded by mu
	entries   map[string]*entry // guarded by mu
	order     []string          // guarded by mu; registration order, for deterministic allocation
	feedbacks int               // guarded by mu
}

type entry struct {
	hist *sthole.Histogram
	idx  *index.KDTree // build-time snapshot, used for initialization only
	// errEWMA tracks the relative estimation error observed in feedback.
	errEWMA float64
}

// NewManager creates an empty manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.TotalBuckets < 1 {
		return nil, fmt.Errorf("catalog: total budget must be >= 1")
	}
	if cfg.MinBuckets < 1 {
		return nil, fmt.Errorf("catalog: min buckets must be >= 1")
	}
	if cfg.ErrorRetention <= 0 || cfg.ErrorRetention >= 1 {
		return nil, fmt.Errorf("catalog: error retention must be in (0,1)")
	}
	return &Manager{cfg: cfg, entries: make(map[string]*entry)}, nil
}

// Register builds a histogram for the table. When initialize is true the
// histogram is seeded by MineClus subspace clusters (the paper's method).
// The shared budget is split evenly across registered tables; feedback-driven
// rebalancing adjusts it later.
func (m *Manager) Register(name string, tab *dataset.Table, domain geom.Rect, initialize bool, mcfg mineclus.Config) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[name]; ok {
		return fmt.Errorf("catalog: table %q already registered", name)
	}
	idx, err := index.BuildKDTree(tab)
	if err != nil {
		return fmt.Errorf("catalog: indexing %q: %w", name, err)
	}
	share := m.cfg.TotalBuckets / (len(m.entries) + 1)
	if share < m.cfg.MinBuckets {
		share = m.cfg.MinBuckets
	}
	h, err := sthole.New(domain, share, float64(tab.Len()))
	if err != nil {
		return fmt.Errorf("catalog: histogram for %q: %w", name, err)
	}
	if initialize {
		clusters, err := mineclus.Run(tab, mcfg)
		if err != nil {
			return fmt.Errorf("catalog: clustering %q: %w", name, err)
		}
		exact := func(r geom.Rect) float64 { return float64(idx.Count(r)) }
		if err := core.Initialize(h, clusters, domain, core.Options{Count: exact}); err != nil {
			return fmt.Errorf("catalog: initializing %q: %w", name, err)
		}
	}
	m.entries[name] = &entry{hist: h, idx: idx}
	m.order = append(m.order, name)
	m.rebalanceLocked()
	return nil
}

// Tables returns the registered table names in registration order.
func (m *Manager) Tables() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// Buckets returns the current budget of one histogram.
func (m *Manager) Buckets(name string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[name]
	if !ok {
		return 0, fmt.Errorf("catalog: unknown table %q", name)
	}
	return e.hist.MaxBuckets(), nil
}

// Estimate returns the estimated cardinality of q against the named table.
func (m *Manager) Estimate(name string, q geom.Rect) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[name]
	if !ok {
		return 0, fmt.Errorf("catalog: unknown table %q", name)
	}
	return e.hist.Estimate(q), nil
}

// Feedback reports the true cardinality of an executed query, refines the
// histogram, updates the table's error share, and periodically rebalances
// the budget split.
func (m *Manager) Feedback(name string, q geom.Rect, actual float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[name]
	if !ok {
		return fmt.Errorf("catalog: unknown table %q", name)
	}
	est := e.hist.Estimate(q)
	rel := math.Abs(est-actual) / math.Max(1, actual)
	e.errEWMA = m.cfg.ErrorRetention*e.errEWMA + (1-m.cfg.ErrorRetention)*rel
	vol := q.Volume()
	e.hist.Drill(q, func(r geom.Rect) float64 {
		if vol <= 0 {
			return actual
		}
		return actual * q.IntersectionVolume(r) / vol
	})
	m.feedbacks++
	if m.cfg.RebalanceEvery > 0 && m.feedbacks%m.cfg.RebalanceEvery == 0 {
		m.rebalanceLocked()
	}
	return nil
}

// Rebalance redistributes the shared budget proportionally to each table's
// observed error share (SASH's reallocation idea): histograms that keep
// misestimating get more buckets, at the expense of accurate ones.
func (m *Manager) Rebalance() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rebalanceLocked()
}

func (m *Manager) rebalanceLocked() {
	n := len(m.order)
	if n == 0 {
		return
	}
	floorTotal := m.cfg.MinBuckets * n
	spare := m.cfg.TotalBuckets - floorTotal
	if spare < 0 {
		// Budget cannot honor the floor for every table; fall back to an
		// even split of whatever there is.
		each := m.cfg.TotalBuckets / n
		if each < 1 {
			each = 1
		}
		for _, name := range m.order {
			m.entries[name].hist.SetMaxBuckets(each) //nolint:errcheck // each >= 1
		}
		return
	}
	totalErr := 0.0
	for _, name := range m.order {
		totalErr += m.entries[name].errEWMA
	}
	for _, name := range m.order {
		e := m.entries[name]
		share := 1.0 / float64(n)
		if totalErr > 0 {
			share = e.errEWMA / totalErr
		}
		budget := m.cfg.MinBuckets + int(math.Round(share*float64(spare)))
		if err := e.hist.SetMaxBuckets(budget); err != nil {
			// budget >= MinBuckets >= 1, so this cannot happen; keep the
			// old budget if it somehow does.
			continue
		}
	}
}

// savedEntry is the persisted form of one histogram.
type savedEntry struct {
	Name      string          `json:"name"`
	ErrEWMA   float64         `json:"err_ewma"`
	Histogram json.RawMessage `json:"histogram"`
}

// Save persists every histogram (not the data snapshots) as JSON.
func (m *Manager) Save(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]savedEntry, 0, len(m.order))
	for _, name := range m.order {
		e := m.entries[name]
		raw, err := json.Marshal(e.hist)
		if err != nil {
			return fmt.Errorf("catalog: saving %q: %w", name, err)
		}
		out = append(out, savedEntry{Name: name, ErrEWMA: e.errEWMA, Histogram: raw})
	}
	return json.NewEncoder(w).Encode(out)
}

// Load restores histograms saved by Save. Loaded tables have no data
// snapshot (idx == nil): estimates and feedback work, re-initialization does
// not.
func (m *Manager) Load(r io.Reader) error {
	var in []savedEntry
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("catalog: decoding: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, se := range in {
		if _, ok := m.entries[se.Name]; ok {
			return fmt.Errorf("catalog: table %q already registered", se.Name)
		}
		var h sthole.Histogram
		if err := json.Unmarshal(se.Histogram, &h); err != nil {
			return fmt.Errorf("catalog: loading %q: %w", se.Name, err)
		}
		m.entries[se.Name] = &entry{hist: &h, errEWMA: se.ErrEWMA}
		m.order = append(m.order, se.Name)
	}
	sort.Strings(m.order) // deterministic order after mixed load/register
	return nil
}
