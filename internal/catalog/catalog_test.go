package catalog

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/index"
	"sthist/internal/mineclus"
	"sthist/internal/workload"
)

func dom2() geom.Rect { return geom.MustRect([]float64{0, 0}, []float64{1000, 1000}) }

// uniformTable is easy to estimate; clusteredTable is hard.
func uniformTable(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tab := dataset.MustNew("x", "y")
	for i := 0; i < n; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	return tab
}

func clusteredTable(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tab := dataset.MustNew("x", "y")
	for i := 0; i < n; i++ {
		cx := float64((i%4)*250 + 50)
		cy := float64(((i/4)%4)*250 + 50)
		tab.MustAppend([]float64{cx + rng.Float64()*60, cy + rng.Float64()*60})
	}
	return tab
}

func mcfg() mineclus.Config {
	c := mineclus.DefaultConfig()
	c.Width = 60
	return c
}

func TestNewManagerValidation(t *testing.T) {
	for _, cfg := range []Config{
		{TotalBuckets: 0, MinBuckets: 1, ErrorRetention: 0.9},
		{TotalBuckets: 10, MinBuckets: 0, ErrorRetention: 0.9},
		{TotalBuckets: 10, MinBuckets: 1, ErrorRetention: 0},
		{TotalBuckets: 10, MinBuckets: 1, ErrorRetention: 1},
	} {
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
}

func TestRegisterAndEstimate(t *testing.T) {
	m, err := NewManager(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := clusteredTable(4000, 1)
	if err := m.Register("orders", tab, dom2(), true, mcfg()); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("orders", tab, dom2(), true, mcfg()); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := m.Estimate("nope", dom2()); err == nil {
		t.Error("unknown table accepted")
	}
	got, err := m.Estimate("orders", dom2())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4000) > 40 {
		t.Errorf("domain estimate = %g, want ~4000", got)
	}
	if tables := m.Tables(); len(tables) != 1 || tables[0] != "orders" {
		t.Errorf("Tables = %v", tables)
	}
}

func TestFeedbackRefines(t *testing.T) {
	m, err := NewManager(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := clusteredTable(4000, 2)
	idx, _ := index.BuildKDTree(tab)
	if err := m.Register("t", tab, dom2(), false, mcfg()); err != nil {
		t.Fatal(err)
	}
	q := geom.MustRect([]float64{50, 50}, []float64{110, 110})
	truth := float64(idx.Count(q))
	before, _ := m.Estimate("t", q)
	if err := m.Feedback("t", q, truth); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Estimate("t", q)
	if math.Abs(after-truth) >= math.Abs(before-truth) {
		t.Errorf("feedback did not improve: %g -> %g (truth %g)", before, after, truth)
	}
	if err := m.Feedback("nope", q, 1); err == nil {
		t.Error("feedback for unknown table accepted")
	}
}

func TestRebalanceFavorsErrorProneTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalBuckets = 128
	cfg.MinBuckets = 8
	cfg.RebalanceEvery = 50
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	easy := uniformTable(3000, 3)
	hard := clusteredTable(3000, 4)
	if err := m.Register("easy", easy, dom2(), false, mcfg()); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("hard", hard, dom2(), false, mcfg()); err != nil {
		t.Fatal(err)
	}
	easyIdx, _ := index.BuildKDTree(easy)
	hardIdx, _ := index.BuildKDTree(hard)
	qs := workload.MustGenerate(dom2(), workload.Config{VolumeFraction: 0.01, N: 150, Seed: 5}, nil)
	for _, q := range qs {
		if err := m.Feedback("easy", q, float64(easyIdx.Count(q))); err != nil {
			t.Fatal(err)
		}
		if err := m.Feedback("hard", q, float64(hardIdx.Count(q))); err != nil {
			t.Fatal(err)
		}
	}
	eb, _ := m.Buckets("easy")
	hb, _ := m.Buckets("hard")
	if hb <= eb {
		t.Errorf("hard table got %d buckets, easy %d; rebalancing should favor the error-prone table", hb, eb)
	}
	if eb < cfg.MinBuckets {
		t.Errorf("easy table below the floor: %d", eb)
	}
	if eb+hb > cfg.TotalBuckets+2 { // rounding slack of 1 per table
		t.Errorf("budgets %d+%d exceed the total %d", eb, hb, cfg.TotalBuckets)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := NewManager(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := clusteredTable(2000, 6)
	if err := m.Register("t", tab, dom2(), true, mcfg()); err != nil {
		t.Fatal(err)
	}
	q := geom.MustRect([]float64{40, 40}, []float64{200, 200})
	want, _ := m.Estimate("t", q)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := m2.Estimate("t", q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("estimate after reload = %g, want %g", got, want)
	}
	// Loaded histograms keep accepting feedback.
	if err := m2.Feedback("t", q, 123); err != nil {
		t.Fatal(err)
	}
	// Loading over an existing name fails.
	var buf2 bytes.Buffer
	if err := m.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(&buf2); err == nil {
		t.Error("duplicate load accepted")
	}
}

func TestBudgetFloorFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalBuckets = 10
	cfg.MinBuckets = 8
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if err := m.Register(name, uniformTable(500, 7), dom2(), false, mcfg()); err != nil {
			t.Fatal(err)
		}
	}
	// 3 tables x floor 8 > 10 total: the fallback must still give each >= 1.
	for _, name := range []string{"a", "b", "c"} {
		b, err := m.Buckets(name)
		if err != nil {
			t.Fatal(err)
		}
		if b < 1 {
			t.Errorf("table %s budget %d", name, b)
		}
	}
}
