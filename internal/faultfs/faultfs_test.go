package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	var fsys FS = OS{}
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := ReadFile(fsys, filepath.Join(dir, "b.txt"))
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := fsys.Truncate(filepath.Join(dir, "b.txt"), 2); err != nil {
		t.Fatal(err)
	}
	data, _ = ReadFile(fsys, filepath.Join(dir, "b.txt"))
	if string(data) != "he" {
		t.Fatalf("after truncate: %q", data)
	}
}

func TestInjectorFailNthWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpWrite, Nth: 2, Mode: Fail})
	f, err := in.OpenFile(filepath.Join(dir, "w"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write err = %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("third write failed: %v (faults must fire once)", err)
	}
	if got := in.Count(OpWrite); got != 3 {
		t.Errorf("write count = %d, want 3", got)
	}
	if len(in.Fired()) != 1 {
		t.Errorf("fired = %v, want exactly one", in.Fired())
	}
}

func TestInjectorShortWriteAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{},
		Fault{Op: OpWrite, Nth: 1, Mode: ShortWrite},
		Fault{Op: OpWrite, Nth: 2, Mode: Corrupt},
	)
	path := filepath.Join(dir, "w")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if _, err := f.Write([]byte("XYZW")); err != nil {
		t.Fatalf("corrupt write reported error: %v", err)
	}
	f.Close()
	data, _ := ReadFile(OS{}, path)
	if string(data[:3]) != "abc" {
		t.Errorf("short-write prefix = %q", data[:3])
	}
	if string(data[3:]) == "XYZW" {
		t.Errorf("corrupt write left data intact: %q", data[3:])
	}
	if len(data) != 7 {
		t.Errorf("file length = %d, want 7", len(data))
	}
}

func TestInjectorFailRenameSyncDirAndAny(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpRename, Nth: 1}, Fault{Op: OpSyncDir, Nth: 1})
	src := filepath.Join(dir, "src")
	if f, err := in.OpenFile(src, os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		t.Fatal(err)
	} else {
		f.Close()
	}
	if err := in.Rename(src, filepath.Join(dir, "dst")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename err = %v", err)
	}
	if err := in.SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("syncdir err = %v", err)
	}
	// OpAny counts every mutating op: create + rename + syncdir = 3.
	if got := in.Count(OpAny); got != 3 {
		t.Errorf("any count = %d, want 3", got)
	}

	in2 := NewInjector(OS{}, Fault{Op: OpAny, Nth: 2})
	f, err := in2.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err) // create is op 1
	}
	defer f.Close()
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second mutating op err = %v, want ErrInjected", err)
	}
}
