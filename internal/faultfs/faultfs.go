// Package faultfs abstracts the handful of filesystem operations the
// durability layer (internal/wal) performs behind a narrow interface, so
// tests can substitute an implementation that fails, short-writes, or
// corrupts data at a chosen operation. Production code uses the passthrough
// OS implementation; the fault-injection tests use Injector to prove that
// checkpoint rotation is atomic and that fsync errors are surfaced instead
// of silently dropping durability.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// File is the subset of *os.File the WAL needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
}

// FS is the filesystem surface of the durability layer. All paths are
// interpreted as by the os package.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (fs.FileInfo, error)
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so a preceding rename is durable.
	SyncDir(name string) error
}

// ReadFile reads the whole file through fsys. It exists so callers can stay
// on the injectable interface instead of reaching for os.ReadFile.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only handle
	return io.ReadAll(f)
}

// OS is the passthrough implementation backed by the real filesystem.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }() // read-only handle; Sync error is returned
	return d.Sync()
}

// Op identifies a class of mutating filesystem operations for fault
// matching. Read-only operations (opens without O_CREATE, stats, reads) are
// never counted: a fault schedule stays stable when recovery-time reads are
// added or removed.
type Op string

const (
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpCreate   Op = "create" // OpenFile with os.O_CREATE
	OpTruncate Op = "truncate"
	OpSyncDir  Op = "syncdir"
	// OpAny matches every mutating operation; its counter advances once per
	// mutating op regardless of kind, which lets a test sweep "fail the k-th
	// mutation" across a whole multi-step protocol.
	OpAny Op = "any"
)

// Mode selects what happens when a fault fires.
type Mode int

const (
	// Fail returns ErrInjected without performing the operation.
	Fail Mode = iota
	// ShortWrite performs only the first half of a write and returns
	// ErrInjected (only meaningful for OpWrite; other ops treat it as Fail).
	ShortWrite
	// Corrupt flips one bit of the written payload but reports success
	// (only meaningful for OpWrite; other ops treat it as Fail).
	Corrupt
)

// ErrInjected is returned by operations a fault decided to fail.
var ErrInjected = errors.New("faultfs: injected fault")

// Fault describes one scheduled fault: the Nth (1-based) operation matching
// Op behaves per Mode. Each fault fires at most once.
type Fault struct {
	Op   Op
	Nth  int
	Mode Mode
}

// Injector wraps an FS and applies scheduled faults to mutating operations.
// It is safe for concurrent use.
type Injector struct {
	inner FS

	mu     sync.Mutex
	faults []Fault    // guarded by mu
	counts map[Op]int // guarded by mu
	fired  []Fault    // guarded by mu
}

// NewInjector wraps inner with the given fault schedule. A Fault with
// Nth <= 0 is normalized to 1.
func NewInjector(inner FS, faults ...Fault) *Injector {
	fl := make([]Fault, len(faults))
	copy(fl, faults)
	for i := range fl {
		if fl[i].Nth <= 0 {
			fl[i].Nth = 1
		}
	}
	return &Injector{inner: inner, faults: fl, counts: make(map[Op]int)}
}

// Count returns how many mutating operations of the given kind (or OpAny for
// the total) the injector has seen. Tests use a fault-free injector to
// measure a protocol's operation count before sweeping failures over it.
func (in *Injector) Count(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// Fired returns the faults that have triggered so far.
func (in *Injector) Fired() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Fault, len(in.fired))
	copy(out, in.fired)
	return out
}

// hit records one mutating operation of kind op and returns the fault to
// apply, if any.
func (in *Injector) hit(op Op) *Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	in.counts[OpAny]++
	for i := range in.faults {
		f := &in.faults[i]
		if f.Nth == 0 {
			continue // already fired
		}
		if (f.Op == op && in.counts[op] == f.Nth) ||
			(f.Op == OpAny && in.counts[OpAny] == f.Nth) {
			fired := *f
			f.Nth = 0
			in.fired = append(in.fired, fired)
			return &fired
		}
	}
	return nil
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if f := in.hit(OpCreate); f != nil {
			return nil, fmt.Errorf("%w: create %s", ErrInjected, name)
		}
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{File: f, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if f := in.hit(OpRename); f != nil {
		return fmt.Errorf("%w: rename %s -> %s", ErrInjected, oldpath, newpath)
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if f := in.hit(OpRemove); f != nil {
		return fmt.Errorf("%w: remove %s", ErrInjected, name)
	}
	return in.inner.Remove(name)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) { return in.inner.Stat(name) }

func (in *Injector) Truncate(name string, size int64) error {
	if f := in.hit(OpTruncate); f != nil {
		return fmt.Errorf("%w: truncate %s", ErrInjected, name)
	}
	return in.inner.Truncate(name, size)
}

func (in *Injector) SyncDir(name string) error {
	if f := in.hit(OpSyncDir); f != nil {
		return fmt.Errorf("%w: syncdir %s", ErrInjected, name)
	}
	return in.inner.SyncDir(name)
}

// injFile routes Write and Sync through the injector.
type injFile struct {
	File
	in *Injector
}

func (f *injFile) Write(p []byte) (int, error) {
	fault := f.in.hit(OpWrite)
	if fault == nil {
		return f.File.Write(p)
	}
	switch fault.Mode {
	case ShortWrite:
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: short write to %s", ErrInjected, f.Name())
	case Corrupt:
		q := make([]byte, len(p))
		copy(q, p)
		if len(q) > 0 {
			q[len(q)/2] ^= 0x40
		}
		return f.File.Write(q)
	default:
		return 0, fmt.Errorf("%w: write to %s", ErrInjected, f.Name())
	}
}

func (f *injFile) Sync() error {
	if fault := f.in.hit(OpSync); fault != nil {
		return fmt.Errorf("%w: sync %s", ErrInjected, f.Name())
	}
	return f.File.Sync()
}
