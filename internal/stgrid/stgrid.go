// Package stgrid implements a multidimensional ST-histogram in the spirit of
// Aboulnaga and Chaudhuri ("Self-tuning histograms: building histograms
// without looking at data", SIGMOD 1999) — the self-tuning predecessor that
// STHoles was originally evaluated against. It serves as the second
// self-tuning baseline of this reproduction: a fixed grid whose bucket
// frequencies are refined from query feedback, with periodic restructuring
// that splits high-frequency rows of buckets and merges low-frequency ones.
//
// The grid keeps per-dimension partition boundaries (a "grid histogram"):
// bucket (i1,...,id) covers the cross product of per-dimension intervals.
// After each query, the estimation error is distributed over the buckets
// overlapping the query proportionally to their current frequency (the
// paper's heuristic), damped by a learning rate. Restructuring every R
// queries merges adjacent low-frequency partitions per dimension and splits
// high-frequency ones to keep the partition count constant.
package stgrid

import (
	"fmt"
	"math"
	"sort"

	"sthist/internal/geom"
)

// Config holds ST-histogram parameters.
type Config struct {
	// PartitionsPerDim is the grid resolution per dimension (default 8).
	PartitionsPerDim int
	// LearningRate damps frequency updates (paper's alpha, default 0.5).
	LearningRate float64
	// RestructureEvery triggers restructuring after that many feedback
	// queries (default 200; 0 disables restructuring).
	RestructureEvery int
	// SplitThreshold: partitions holding more than this fraction of the
	// total frequency are split during restructuring (default 0.1).
	SplitThreshold float64
}

// DefaultConfig returns the defaults above.
func DefaultConfig() Config {
	return Config{PartitionsPerDim: 8, LearningRate: 0.5, RestructureEvery: 200, SplitThreshold: 0.1}
}

// Histogram is a self-tuning grid histogram.
type Histogram struct {
	domain geom.Rect
	cfg    Config
	// bounds[d] holds the partition boundaries of dimension d:
	// len = partitions+1, ascending, bounds[d][0] = domain.Lo[d].
	bounds [][]float64
	// freq is the flattened bucket frequency array, row-major over
	// dimensions in order.
	freq    []float64
	queries int
}

// New creates an ST-histogram over the domain holding totalTuples spread
// uniformly.
func New(domain geom.Rect, cfg Config, totalTuples float64) (*Histogram, error) {
	if cfg.PartitionsPerDim < 2 {
		return nil, fmt.Errorf("stgrid: partitions per dim must be >= 2, got %d", cfg.PartitionsPerDim)
	}
	if cfg.LearningRate <= 0 || cfg.LearningRate > 1 {
		return nil, fmt.Errorf("stgrid: learning rate must be in (0,1], got %g", cfg.LearningRate)
	}
	if cfg.SplitThreshold <= 0 || cfg.SplitThreshold > 1 {
		return nil, fmt.Errorf("stgrid: split threshold must be in (0,1], got %g", cfg.SplitThreshold)
	}
	if totalTuples < 0 || math.IsNaN(totalTuples) {
		return nil, fmt.Errorf("stgrid: invalid total %g", totalTuples)
	}
	dims := domain.Dims()
	if dims == 0 || domain.Volume() <= 0 {
		return nil, fmt.Errorf("stgrid: domain %v has no volume", domain)
	}
	size := 1
	for d := 0; d < dims; d++ {
		size *= cfg.PartitionsPerDim
		if size > 1<<22 {
			return nil, fmt.Errorf("stgrid: %d^%d buckets too large", cfg.PartitionsPerDim, dims)
		}
	}
	h := &Histogram{domain: domain.Clone(), cfg: cfg, bounds: make([][]float64, dims), freq: make([]float64, size)}
	for d := 0; d < dims; d++ {
		h.bounds[d] = make([]float64, cfg.PartitionsPerDim+1)
		for i := 0; i <= cfg.PartitionsPerDim; i++ {
			h.bounds[d][i] = domain.Lo[d] + domain.Side(d)*float64(i)/float64(cfg.PartitionsPerDim)
		}
	}
	per := totalTuples / float64(size)
	for i := range h.freq {
		h.freq[i] = per
	}
	return h, nil
}

// MustNew panics on error.
func MustNew(domain geom.Rect, cfg Config, totalTuples float64) *Histogram {
	h, err := New(domain, cfg, totalTuples)
	if err != nil {
		panic(err)
	}
	return h
}

// Buckets returns the total number of grid buckets.
func (h *Histogram) Buckets() int { return len(h.freq) }

// TotalTuples returns the stored frequency mass.
func (h *Histogram) TotalTuples() float64 {
	s := 0.0
	for _, f := range h.freq {
		s += f
	}
	return s
}

// cellWindow is the inclusive index window of partitions overlapping [lo,hi]
// on dimension d, plus per-cell fractional overlaps.
func (h *Histogram) window(d int, lo, hi float64) (int, int) {
	b := h.bounds[d]
	i := sort.SearchFloat64s(b, lo) - 1
	if i < 0 {
		i = 0
	}
	// SearchFloat64s returns first >= lo; partition i covers [b[i], b[i+1]).
	for i > 0 && b[i] > lo {
		i--
	}
	j := sort.SearchFloat64s(b, hi) - 1
	if j >= len(b)-1 {
		j = len(b) - 2
	}
	if j < i {
		j = i
	}
	return i, j
}

// overlapFrac returns the fraction of partition p of dimension d covered by
// [lo,hi].
func (h *Histogram) overlapFrac(d, p int, lo, hi float64) float64 {
	bLo, bHi := h.bounds[d][p], h.bounds[d][p+1]
	l, r := math.Max(lo, bLo), math.Min(hi, bHi)
	if r <= l {
		if bHi == bLo && lo <= bLo && bLo <= hi {
			return 1
		}
		return 0
	}
	if bHi == bLo {
		return 1
	}
	return (r - l) / (bHi - bLo)
}

// forEachOverlap visits every bucket overlapping q with its fractional
// volume overlap.
func (h *Histogram) forEachOverlap(q geom.Rect, visit func(flat int, frac float64)) {
	dims := h.domain.Dims()
	los := make([]int, dims)
	his := make([]int, dims)
	for d := 0; d < dims; d++ {
		if q.Hi[d] < h.domain.Lo[d] || q.Lo[d] > h.domain.Hi[d] {
			return
		}
		los[d], his[d] = h.window(d, q.Lo[d], q.Hi[d])
	}
	idx := append([]int(nil), los...)
	for {
		frac := 1.0
		flat := 0
		for d := 0; d < dims; d++ {
			frac *= h.overlapFrac(d, idx[d], q.Lo[d], q.Hi[d])
			flat = flat*h.partitions(d) + idx[d]
		}
		if frac > 0 {
			visit(flat, frac)
		}
		d := dims - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= his[d] {
				break
			}
			idx[d] = los[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

func (h *Histogram) partitions(d int) int { return len(h.bounds[d]) - 1 }

// Estimate returns the estimated cardinality of q under per-bucket
// uniformity.
func (h *Histogram) Estimate(q geom.Rect) float64 {
	if q.Dims() != h.domain.Dims() {
		return 0
	}
	est := 0.0
	h.forEachOverlap(q, func(flat int, frac float64) {
		est += h.freq[flat] * frac
	})
	return est
}

// Feedback refines the bucket frequencies with the true cardinality of an
// executed query: the estimation error is distributed over the overlapping
// buckets proportionally to their contribution, damped by the learning rate
// (the ST-histogram update rule).
func (h *Histogram) Feedback(q geom.Rect, actual float64) {
	if q.Dims() != h.domain.Dims() || actual < 0 || math.IsNaN(actual) || math.IsInf(actual, 0) {
		return
	}
	est := 0.0
	var hits []bucketHit
	h.forEachOverlap(q, func(flat int, frac float64) {
		est += h.freq[flat] * frac
		hits = append(hits, bucketHit{flat, frac})
	})
	if len(hits) == 0 {
		return
	}
	diff := h.cfg.LearningRate * (actual - est)
	// Distribute proportionally to each bucket's current contribution; when
	// every contribution is zero, distribute by fractional overlap.
	weight := 0.0
	for _, x := range hits {
		weight += h.freq[x.flat] * x.frac
	}
	for _, x := range hits {
		var share float64
		if weight > 0 {
			share = h.freq[x.flat] * x.frac / weight
		} else {
			share = x.frac / fracSum(hits)
		}
		h.freq[x.flat] += diff * share
		if h.freq[x.flat] < 0 {
			h.freq[x.flat] = 0
		}
	}

	h.queries++
	if h.cfg.RestructureEvery > 0 && h.queries%h.cfg.RestructureEvery == 0 {
		h.restructure()
	}
}

// bucketHit records one bucket's fractional overlap with a query.
type bucketHit struct {
	flat int
	frac float64
}

func fracSum(hits []bucketHit) float64 {
	s := 0.0
	for _, x := range hits {
		s += x.frac
	}
	if s == 0 {
		return 1
	}
	return s
}

// restructure rebalances each dimension's partitioning: the marginal
// frequency distribution per dimension is computed, runs of low-frequency
// partitions are merged and high-frequency partitions split, keeping the
// partition count fixed.
func (h *Histogram) restructure() {
	dims := h.domain.Dims()
	total := h.TotalTuples()
	if total <= 0 {
		return
	}
	for d := 0; d < dims; d++ {
		k := h.partitions(d)
		marg := h.marginal(d)
		// Build the empirical CDF over the current partitioning and re-cut
		// it into k equal-mass partitions (equivalent to iterated
		// merge/split until balanced).
		newBounds := make([]float64, k+1)
		newBounds[0] = h.domain.Lo[d]
		newBounds[k] = h.domain.Hi[d]
		cum := 0.0
		target := 1
		for p := 0; p < k && target < k; p++ {
			pLo, pHi := h.bounds[d][p], h.bounds[d][p+1]
			for target < k && cum+marg[p] >= total*float64(target)/float64(k) {
				want := total*float64(target)/float64(k) - cum
				fr := 0.0
				if marg[p] > 0 {
					fr = want / marg[p]
				}
				newBounds[target] = pLo + fr*(pHi-pLo)
				target++
			}
			cum += marg[p]
		}
		for t := target; t < k; t++ {
			newBounds[t] = h.domain.Hi[d]
		}
		sort.Float64s(newBounds)
		h.repartition(d, newBounds)
	}
}

// marginal returns the per-partition frequency sums along dimension d.
func (h *Histogram) marginal(d int) []float64 {
	k := h.partitions(d)
	out := make([]float64, k)
	dims := h.domain.Dims()
	idx := make([]int, dims)
	for flat, f := range h.freq {
		// Decode index d of flat.
		rest := flat
		for dd := dims - 1; dd >= 0; dd-- {
			idx[dd] = rest % h.partitions(dd)
			rest /= h.partitions(dd)
		}
		out[idx[d]] += f
	}
	return out
}

// repartition redistributes frequencies onto new boundaries for dimension d
// assuming uniformity inside old partitions.
func (h *Histogram) repartition(d int, newBounds []float64) {
	dims := h.domain.Dims()
	k := h.partitions(d)
	newFreq := make([]float64, len(h.freq))
	// For every old bucket, split its frequency over the new partitions of
	// dimension d proportionally to interval overlap.
	idx := make([]int, dims)
	for flat, f := range h.freq {
		if f == 0 {
			continue
		}
		rest := flat
		for dd := dims - 1; dd >= 0; dd-- {
			idx[dd] = rest % h.partitions(dd)
			rest /= h.partitions(dd)
		}
		oldLo, oldHi := h.bounds[d][idx[d]], h.bounds[d][idx[d]+1]
		width := oldHi - oldLo
		for np := 0; np < k; np++ {
			l := math.Max(oldLo, newBounds[np])
			r := math.Min(oldHi, newBounds[np+1])
			if r <= l {
				continue
			}
			fr := 1.0
			if width > 0 {
				fr = (r - l) / width
			}
			// Rebuild the flat index with partition np on dimension d.
			nf := 0
			for dd := 0; dd < dims; dd++ {
				p := idx[dd]
				if dd == d {
					p = np
				}
				nf = nf*h.partitions(dd) + p
			}
			newFreq[nf] += f * fr
			if width <= 0 {
				break // degenerate old partition: all mass to the first overlap
			}
		}
	}
	h.bounds[d] = newBounds
	h.freq = newFreq
}
