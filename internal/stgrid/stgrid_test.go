package stgrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sthist/internal/geom"
)

func dom2() geom.Rect { return geom.MustRect([]float64{0, 0}, []float64{100, 100}) }

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{PartitionsPerDim: 1, LearningRate: 0.5, SplitThreshold: 0.1},
		{PartitionsPerDim: 8, LearningRate: 0, SplitThreshold: 0.1},
		{PartitionsPerDim: 8, LearningRate: 1.5, SplitThreshold: 0.1},
		{PartitionsPerDim: 8, LearningRate: 0.5, SplitThreshold: 0},
	}
	for i, cfg := range bad {
		if _, err := New(dom2(), cfg, 100); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(dom2(), DefaultConfig(), -1); err == nil {
		t.Error("negative total accepted")
	}
	if _, err := New(geom.MustRect([]float64{0}, []float64{0}), DefaultConfig(), 1); err == nil {
		t.Error("zero-volume domain accepted")
	}
	// Too many buckets.
	big := DefaultConfig()
	big.PartitionsPerDim = 64
	if _, err := New(geom.UnitRect(6), big, 1); err == nil {
		t.Error("oversized grid accepted")
	}
}

func TestEstimateUniformStart(t *testing.T) {
	h := MustNew(dom2(), DefaultConfig(), 400)
	if got := h.Estimate(dom2()); math.Abs(got-400) > 1e-9 {
		t.Errorf("domain estimate = %g, want 400", got)
	}
	if got := h.Estimate(geom.MustRect([]float64{0, 0}, []float64{50, 50})); math.Abs(got-100) > 1e-9 {
		t.Errorf("quarter estimate = %g, want 100", got)
	}
	if got := h.Estimate(geom.MustRect([]float64{200, 200}, []float64{300, 300})); got != 0 {
		t.Errorf("outside estimate = %g, want 0", got)
	}
	if got := h.Estimate(geom.MustRect([]float64{0}, []float64{1})); got != 0 {
		t.Errorf("dim mismatch estimate = %g, want 0", got)
	}
	if h.Buckets() != 64 {
		t.Errorf("Buckets = %d, want 64", h.Buckets())
	}
}

func TestFeedbackMovesTowardTruth(t *testing.T) {
	h := MustNew(dom2(), DefaultConfig(), 1000)
	q := geom.MustRect([]float64{0, 0}, []float64{25, 25})
	truth := 800.0 // the corner actually holds most of the data
	before := math.Abs(h.Estimate(q) - truth)
	for i := 0; i < 30; i++ {
		h.Feedback(q, truth)
	}
	after := math.Abs(h.Estimate(q) - truth)
	if after > before/4 {
		t.Errorf("feedback did not converge: error %g -> %g", before, after)
	}
}

func TestFeedbackIgnoresInvalid(t *testing.T) {
	h := MustNew(dom2(), DefaultConfig(), 100)
	h.Feedback(geom.MustRect([]float64{0}, []float64{1}), 10)
	h.Feedback(geom.MustRect([]float64{0, 0}, []float64{10, 10}), -5)
	if got := h.Estimate(dom2()); math.Abs(got-100) > 1e-9 {
		t.Errorf("invalid feedback changed the histogram: %g", got)
	}
}

func TestRestructureAdaptsBoundaries(t *testing.T) {
	// All mass sits in a thin slab x in [0,5]. A fixed grid cannot separate
	// it from the rest of its first column (partial-overlap feedback
	// inflates the whole bucket — the very weakness STHoles fixes), but
	// restructuring must shrink that error by moving partition boundaries
	// toward the slab.
	train := func(every int) *Histogram {
		cfg := DefaultConfig()
		cfg.RestructureEvery = every
		h := MustNew(dom2(), cfg, 1000)
		slab := geom.MustRect([]float64{0, 0}, []float64{5, 100})
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				h.Feedback(slab, 1000)
			} else {
				lo := 5 + rng.Float64()*80
				h.Feedback(geom.MustRect([]float64{lo, 0}, []float64{lo + 10, 100}), 0)
			}
		}
		return h
	}
	fixed := train(0)
	adaptive := train(50)
	slab := geom.MustRect([]float64{0, 0}, []float64{5, 100})
	rest := geom.MustRect([]float64{5, 0}, []float64{100, 100})
	if got := adaptive.Estimate(slab); got < 500 {
		t.Errorf("slab estimate = %g after training, want most of the mass", got)
	}
	if fa, ff := adaptive.Estimate(rest), fixed.Estimate(rest); fa >= ff {
		t.Errorf("restructuring did not reduce the spill-over error: %g (adaptive) vs %g (fixed)", fa, ff)
	}
	// Boundaries on dimension 0 concentrated near the slab: the first
	// partition must end well before the uniform cut at 12.5.
	if adaptive.bounds[0][1] > 12.5 {
		t.Errorf("restructuring did not move boundaries toward the slab: %v", adaptive.bounds[0][:3])
	}
}

func TestQuickMassConservedWithoutFeedbackError(t *testing.T) {
	// Feeding back the histogram's own estimates must not change anything.
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		h := MustNew(dom2(), DefaultConfig(), 500)
		for i := 0; i < 20; i++ {
			lo := geom.Point{rng.Float64() * 90, rng.Float64() * 90}
			q := geom.MustRect(lo, geom.Point{lo[0] + 10, lo[1] + 10})
			h.Feedback(q, h.Estimate(q))
		}
		return math.Abs(h.TotalTuples()-500) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickEstimateNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := MustNew(dom2(), DefaultConfig(), 300)
	f := func() bool {
		lo := geom.Point{rng.Float64() * 90, rng.Float64() * 90}
		q := geom.MustRect(lo, geom.Point{lo[0] + rng.Float64()*10, lo[1] + rng.Float64()*10})
		h.Feedback(q, rng.Float64()*100)
		return h.Estimate(q) >= 0 && h.TotalTuples() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFeedbackIgnoresNonFinite(t *testing.T) {
	h := MustNew(dom2(), DefaultConfig(), 100)
	h.Feedback(geom.MustRect([]float64{0, 0}, []float64{10, 10}), math.NaN())
	h.Feedback(geom.MustRect([]float64{0, 0}, []float64{10, 10}), math.Inf(1))
	if got := h.TotalTuples(); math.IsNaN(got) || math.Abs(got-100) > 1e-9 {
		t.Errorf("non-finite feedback changed mass to %g", got)
	}
}
