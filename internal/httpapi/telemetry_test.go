package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sthist"
	"sthist/internal/telemetry"
)

// newTelemetryServer is newTestServer with the observability plane attached.
func newTelemetryServer(t *testing.T) (*Server, *telemetry.Telemetry, *httptest.Server) {
	t.Helper()
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		tab.MustAppend([]float64{200 + rng.Float64()*100, 600 + rng.Float64()*100})
	}
	for i := 0; i < 200; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	est, err := sthist.Open(tab, sthist.Options{Buckets: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	tel := telemetry.New(telemetry.Options{})
	s.EnableTelemetry(tel)
	if err := s.Register("orders", est); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, tel, ts
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := newTelemetryServer(t)
	// Drive one estimate, one good feedback, one rejected feedback.
	q := map[string]any{"table": "orders", "lo": []float64{200, 600}, "hi": []float64{300, 700}}
	post(t, ts.URL+"/estimate", q)
	fb := map[string]any{"table": "orders", "lo": []float64{200, 600}, "hi": []float64{300, 700}, "actual": 2000.0}
	post(t, ts.URL+"/feedback", fb)
	bad := map[string]any{"table": "orders", "lo": []float64{200, 600}, "hi": []float64{300, 700}, "actual": -1.0}
	post(t, ts.URL+"/feedback", bad)

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		`sthist_feedback_rounds_total{table="orders"} 1`,
		`sthist_estimates_total{table="orders"} 1`,
		`sthist_feedback_rejected_total{table="orders"} 1`,
		`sthist_buckets{table="orders"}`,
		`sthist_tree_depth{table="orders"}`,
		`sthist_max_buckets{table="orders"} 40`,
		`sthist_rolling_nae{table="orders"}`,
		`sthist_feedback_duration_seconds_bucket{table="orders",le="+Inf"} 1`,
		`sthist_http_requests_total{code="200",route="/estimate"} 1`,
		`sthist_http_requests_total{code="400",route="/feedback"} 1`,
		`# TYPE sthist_feedback_duration_seconds histogram`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	_, _, ts := newTelemetryServer(t)
	for i := 0; i < 5; i++ {
		fb := map[string]any{
			"table":  "orders",
			"lo":     []float64{float64(i * 100), float64(i * 100)},
			"hi":     []float64{float64(i*100) + 80, float64(i*100) + 80},
			"actual": float64(10 * i),
		}
		post(t, ts.URL+"/feedback", fb)
	}
	code, body := getBody(t, ts.URL+"/debug/trace?table=orders&n=3")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d, body %s", code, body)
	}
	var out struct {
		Table  string                 `json:"table"`
		Events []telemetry.TraceEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Table != "orders" || len(out.Events) != 3 {
		t.Fatalf("trace table=%q events=%d", out.Table, len(out.Events))
	}
	last := out.Events[len(out.Events)-1]
	if last.Actual != 40 {
		t.Errorf("newest event actual = %g, want 40", last.Actual)
	}
	if last.Nanos <= 0 {
		t.Error("trace event has no duration")
	}
	if code, _ := getBody(t, ts.URL+"/debug/trace?table=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown table trace status = %d", code)
	}
}

// TestTelemetryDisabledRoutesAbsent pins that a server without telemetry has
// no /metrics or /debug/trace (they 404 through the mux).
func TestTelemetryDisabledRoutesAbsent(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := getBody(t, ts.URL+"/metrics"); code != http.StatusNotFound {
		t.Errorf("/metrics on a telemetry-less server: status %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/debug/trace?table=orders"); code != http.StatusNotFound {
		t.Errorf("/debug/trace on a telemetry-less server: status %d, want 404", code)
	}
}

// TestStatsConcurrentWithFeedback is the satellite-1 regression test: /stats
// used to read histogram counters without synchronization while /feedback
// mutated them, a data race visible under -race. Hammer /query traffic,
// /stats, /metrics and /healthz in parallel.
func TestStatsConcurrentWithFeedback(t *testing.T) {
	_, _, ts := newTelemetryServer(t)
	const goroutines, iters = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch g % 4 {
				case 0: // feedback: mutates the histogram counters
					body := map[string]any{
						"table":  "orders",
						"lo":     []float64{float64(i % 900), float64(i % 900)},
						"hi":     []float64{float64(i%900) + 50, float64(i%900) + 50},
						"actual": float64(i),
					}
					data, _ := json.Marshal(body)
					resp, err := http.Post(ts.URL+"/feedback", "application/json", bytes.NewReader(data))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				case 1: // estimate
					body := map[string]any{
						"table": "orders",
						"lo":    []float64{float64(i % 900), float64(i % 900)},
						"hi":    []float64{float64(i%900) + 50, float64(i%900) + 50},
					}
					data, _ := json.Marshal(body)
					resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(data))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				case 2: // stats + healthz: reads the same counters
					for _, path := range []string{"/stats?table=orders", "/healthz"} {
						resp, err := http.Get(ts.URL + path)
						if err != nil {
							t.Error(err)
							return
						}
						resp.Body.Close()
					}
				case 3: // metrics scrape: runs the structural collectors
					resp, err := http.Get(ts.URL + "/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
}
