package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"sthist"
	"sthist/internal/wal"
)

// postRaw sends an exact byte body, bypassing json.Marshal (which cannot
// produce the malformed payloads these tests need).
func postRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestFeedbackRejectsMalformedBodies(t *testing.T) {
	_, ts := newTestServer(t)
	cases := map[string]string{
		"missing-actual":   `{"table":"orders","lo":[0,0],"hi":[1,1]}`,
		"negative-actual":  `{"table":"orders","lo":[0,0],"hi":[1,1],"actual":-5}`,
		"huge-actual":      `{"table":"orders","lo":[0,0],"hi":[1,1],"actual":1e999}`,
		"string-actual":    `{"table":"orders","lo":[0,0],"hi":[1,1],"actual":"12"}`,
		"unknown-field":    `{"table":"orders","lo":[0,0],"hi":[1,1],"actal":12}`,
		"truncated":        `{"table":"orders","lo":[0,0]`,
		"not-json":         `hello`,
		"out-of-domain":    `{"table":"orders","lo":[5000,5000],"hi":[6000,6000],"actual":12}`,
		"inverted-rect":    `{"table":"orders","lo":[1,1],"hi":[0,0],"actual":12}`,
		"wrong-dimensions": `{"table":"orders","lo":[0],"hi":[1],"actual":12}`,
		"unregistered":     `{"table":"nope","lo":[0,0],"hi":[1,1],"actual":12}`,
	}
	for name, body := range cases {
		resp := postRaw(t, ts.URL+"/feedback", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Errorf("%s: non-JSON error response: %v", name, err)
		} else if _, ok := out["error"]; !ok {
			t.Errorf("%s: no error field", name)
		}
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetMaxBodyBytes(256)
	pad := strings.Repeat(" ", 512)
	resp := postRaw(t, ts.URL+"/feedback", `{"table":"orders",`+pad+`"lo":[0,0],"hi":[1,1],"actual":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status = %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "exceeds") {
		t.Errorf("error message %q does not mention the size cap", body)
	}
	// Requests under the cap still work.
	resp2 := postRaw(t, ts.URL+"/feedback", `{"table":"orders","lo":[210,610],"hi":[290,690],"actual":500}`)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("small body after cap: status = %d", resp2.StatusCode)
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts := newTestServer(t)
	get := func() (*http.Response, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}
	resp, out := get()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
	var status string
	if err := json.Unmarshal(out["status"], &status); err != nil || status != "ok" {
		t.Errorf("healthz body status = %q (%v)", status, err)
	}

	s.SetDraining(true)
	resp, out = get()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	if err := json.Unmarshal(out["status"], &status); err != nil || status != "draining" {
		t.Errorf("draining body status = %q (%v)", status, err)
	}
	s.SetDraining(false)
	if resp, _ := get(); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after drain cleared: status = %d", resp.StatusCode)
	}
}

// newDegradableServer registers an estimator that validates on every drill so
// a corruption is caught by the very next feedback.
func newDegradableServer(t *testing.T) (*sthist.Estimator, *httptest.Server) {
	t.Helper()
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1500; i++ {
		tab.MustAppend([]float64{100 + rng.Float64()*60, 500 + rng.Float64()*60})
	}
	for i := 0; i < 300; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	est, err := sthist.Open(tab, sthist.Options{Buckets: 30, Seed: 4, ValidateEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	if err := s.Register("orders", est); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return est, ts
}

// TestDegradationVisibleInStats quarantines a table the way the server does
// when a handler recovers a panic, and verifies the degradation is visible
// in /stats and /healthz while the server keeps answering. (The historical
// Box() aliasing hazard is gone: Histogram() now returns an immutable
// snapshot, so writing through an exposed box cannot corrupt serving state.)
func TestDegradationVisibleInStats(t *testing.T) {
	est, ts := newDegradableServer(t)

	if est.Histogram().Validate() != nil {
		t.Fatal("fresh histogram invalid")
	}
	est.Quarantine(errors.New("injected invariant violation"))

	sr, err := http.Get(ts.URL + "/stats?table=orders")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats struct {
		Health sthist.Health `json:"health"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Health.State != "degraded" || stats.Health.Quarantines != 1 {
		t.Fatalf("stats health = %+v, want degraded/1", stats.Health)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz while degraded: status = %d (degraded != down)", hr.StatusCode)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" {
		t.Errorf("healthz status = %q, want degraded", hz.Status)
	}

	// Serving continues: estimates from the restored snapshot are sane.
	er := postRaw(t, ts.URL+"/estimate", `{"table":"orders","lo":[100,500],"hi":[160,560]}`)
	if er.StatusCode != http.StatusOK {
		t.Errorf("estimate while degraded: status = %d", er.StatusCode)
	}

	// Clean traffic clears the degradation.
	resp2 := postRaw(t, ts.URL+"/feedback", `{"table":"orders","lo":[105,505],"hi":[155,555],"actual":380}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("recovery feedback: status = %d", resp2.StatusCode)
	}
	if h := est.Health(); h.State != "ok" {
		t.Errorf("health after clean traffic = %+v", h)
	}
}

// TestDurableRegistrationAndCheckpoint wires a real WAL behind a table and
// exercises the append -> checkpoint -> restart -> recover loop through the
// HTTP surface.
func TestDurableRegistrationAndCheckpoint(t *testing.T) {
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1200; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	open := func() *sthist.Estimator {
		est, err := sthist.Open(tab, sthist.Options{Buckets: 25, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	dir := filepath.Join(t.TempDir(), "orders")
	l, rc, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Snapshot != nil || len(rc.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rc)
	}
	s := NewServer()
	if err := s.RegisterDurable("orders", open(), l); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterDurable("bad", open(), nil); err == nil {
		t.Error("nil wal accepted")
	}
	ts := httptest.NewServer(s.Handler())

	for i := 0; i < 5; i++ {
		resp, out := post(t, ts.URL+"/feedback", map[string]any{
			"table":  "orders",
			"lo":     []float64{float64(i * 100), float64(i * 100)},
			"hi":     []float64{float64(i*100) + 80, float64(i*100) + 80},
			"actual": float64(10 + i),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feedback %d: status = %d", i, resp.StatusCode)
		}
		var seq uint64
		if err := json.Unmarshal(out["seq"], &seq); err != nil || seq != uint64(i+1) {
			t.Fatalf("feedback %d: seq = %s (%v)", i, out["seq"], err)
		}
	}

	// Stats show the durability state.
	sr, err := http.Get(ts.URL + "/stats?table=orders")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		WAL walStats `json:"wal"`
	}
	err = json.NewDecoder(sr.Body).Decode(&stats)
	sr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.WAL.Enabled || stats.WAL.LastSeq != 5 || stats.WAL.RecordsSinceCkpt != 5 || stats.WAL.Failed {
		t.Fatalf("wal stats = %+v", stats.WAL)
	}

	// Below threshold: CheckpointDue leaves the log alone.
	if err := s.CheckpointDue(100); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 5 {
		t.Fatalf("last seq after no-op checkpoint = %d", l.LastSeq())
	}
	// At threshold: the checkpoint rotates and resets the counter.
	if err := s.CheckpointDue(5); err != nil {
		t.Fatal(err)
	}
	sr2, err := http.Get(ts.URL + "/stats?table=orders")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(sr2.Body).Decode(&stats)
	sr2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.WAL.RecordsSinceCkpt != 0 {
		t.Fatalf("records since checkpoint after rotation = %d", stats.WAL.RecordsSinceCkpt)
	}

	// One more feedback after the checkpoint, then "restart".
	if resp, _ := post(t, ts.URL+"/feedback", map[string]any{
		"table": "orders", "lo": []float64{10, 10}, "hi": []float64{90, 90}, "actual": 40.0,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-checkpoint feedback: status = %d", resp.StatusCode)
	}
	ts.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rc2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rc2.Snapshot == nil {
		t.Fatal("restart lost the checkpoint snapshot")
	}
	if len(rc2.Records) != 1 || rc2.Records[0].Seq != 6 {
		t.Fatalf("restart tail = %d records (first seq %d), want 1 record seq 6",
			len(rc2.Records), func() uint64 {
				if len(rc2.Records) > 0 {
					return rc2.Records[0].Seq
				}
				return 0
			}())
	}
	recovered := open()
	if err := recovered.LoadHistogram(bytes.NewReader(rc2.Snapshot)); err != nil {
		t.Fatalf("loading recovered snapshot: %v", err)
	}
}
