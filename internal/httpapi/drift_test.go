package httpapi

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sthist"
	"sthist/internal/drift"
	"sthist/internal/faultfs"
	"sthist/internal/geom"
	"sthist/internal/telemetry"
	"sthist/internal/wal"
)

// shiftedActual is the post-shift ground truth used by the drift tests: the
// relation's 1500 tuples have all moved into [0,100]^2 (uniformly), while
// the estimator was built on tuples uniform over [0,1000]^2.
func shiftedActual(q geom.Rect) float64 {
	cluster := geom.MustRect([]float64{0, 0}, []float64{100, 100})
	return 1500 * q.IntersectionVolume(cluster) / cluster.Volume()
}

// shiftedQuery draws a small query box with its corner uniform in
// [0,span]^2. A small span keeps the workload inside the hot region (easy
// for the incumbent to patch by drilling); a large span makes the workload
// wander, which a 30-bucket incumbent cannot cover.
func shiftedQuery(rng *rand.Rand, span float64) (lo, hi []float64) {
	x, y := rng.Float64()*span, rng.Float64()*span
	return []float64{x, y}, []float64{x + 25, y + 25}
}

// driveRound injects one observation and waits for its commit, so every
// batch has exactly one observation and the drift loop ticks once per call.
func driveRound(t *testing.T, ent *entry, lo, hi []float64, actual float64) {
	t.Helper()
	req := inject(t, ent, lo, hi, actual)
	res := <-req.done
	if res.err != nil {
		t.Fatalf("feedback failed: %v", res.err)
	}
}

// awaitBuild parks until the background candidate build (if any) has
// delivered its result, so the round at which probation starts does not
// depend on scheduling and the whole test run is deterministic.
func awaitBuild(t *testing.T, ent *entry) {
	t.Helper()
	ent.jmu.Lock()
	d := ent.drift
	building := d != nil && d.building
	ent.jmu.Unlock()
	if !building {
		return
	}
	ch := d.buildCh
	deadline := time.Now().Add(30 * time.Second)
	for len(ch) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("candidate build did not finish")
		}
		time.Sleep(time.Millisecond)
	}
}

func newDriftServer(t *testing.T, est *sthist.Estimator, l *wal.Log, cfg drift.Config) (*Server, *entry) {
	t.Helper()
	s := NewServer()
	var err error
	if l != nil {
		err = s.RegisterDurable("orders", est, l)
	} else {
		err = s.Register("orders", est)
	}
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTelemetry(telemetry.New(telemetry.Options{Window: 16}))
	if err := s.EnableDrift("orders", cfg); err != nil {
		t.Fatal(err)
	}
	ent, err := s.lookup("orders")
	if err != nil {
		t.Fatal(err)
	}
	return s, ent
}

// fastDriftConfig fires and resolves quickly so tests stay cheap.
func fastDriftConfig() drift.Config {
	return drift.Config{
		NAEThreshold:    0.5,
		Sustain:         2,
		MinRounds:       8,
		Cooldown:        8,
		Probation:       8,
		PromoteRatio:    1.0,
		ReservoirSize:   128,
		MinReservoir:    8,
		SyntheticPoints: 512,
	}
}

// TestDriftPromotion drives the full loop in the promote direction: a
// distribution shift degrades the rolling NAE, the detector fires, the
// background re-seeder clusters the feedback reservoir, the candidate wins
// its probation, and the swap is journaled to the WAL as a reseed record.
func TestDriftPromotion(t *testing.T) {
	est, err := sthist.Open(uniformTable(t, 1), sthist.Options{Buckets: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "orders")
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, ent := newDriftServer(t, est, l, fastDriftConfig())

	rng := rand.New(rand.NewSource(31))
	var promotedAt int
	for round := 1; round <= 400; round++ {
		lo, hi := shiftedQuery(rng, 250)
		driveRound(t, ent, lo, hi, shiftedActual(geom.MustRect(lo, hi)))
		awaitBuild(t, ent)
		if ds := ent.driftStats(); ds.Promoted >= 1 {
			promotedAt = round
			break
		}
	}
	ds := ent.driftStats()
	if promotedAt == 0 {
		t.Fatalf("no promotion within 400 rounds: %+v", ds)
	}
	if ds.Triggers < 1 || ds.LastOutcome != "promoted" || ds.LastScores == nil {
		t.Fatalf("promotion not booked: %+v", ds)
	}
	if ds.LastScores.CandAbs > ds.LastScores.LiveAbs {
		t.Fatalf("promoted a losing candidate: %+v", *ds.LastScores)
	}
	if ds.State != "cooldown" {
		t.Fatalf("state after promotion = %q, want cooldown", ds.State)
	}

	// The swap must be journaled: exactly one reseed record, with a blob a
	// fresh estimator can load.
	s.DrainFeedback()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rc, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reseeds := 0
	for _, r := range rc.Records {
		if r.Kind == wal.KindReseed {
			reseeds++
			fresh, err := sthist.Open(uniformTable(t, 1), sthist.Options{Buckets: 30, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.LoadHistogram(bytes.NewReader(r.Blob)); err != nil {
				t.Fatalf("journaled blob does not load: %v", err)
			}
		}
	}
	if reseeds != 1 {
		t.Fatalf("found %d reseed records, want 1", reseeds)
	}

	// And the adaptation must have actually helped: the promoted estimator
	// knows the mass sits in the hot corner.
	hot := geom.MustRect([]float64{0, 0}, []float64{100, 100})
	if got := est.Estimate(hot); got < 750 {
		t.Fatalf("post-promotion estimate for the hot region = %.0f, want >= 750 of 1500", got)
	}
}

// TestDriftRejection drives the rollback direction: the live estimator is
// already well-matched to the workload, an over-sensitive threshold still
// fires the detector, and the candidate must LOSE its probation — the
// incumbent keeps serving and no reseed record is journaled.
func TestDriftRejection(t *testing.T) {
	// Build the estimator on the clustered data itself, so the live arm is
	// initialized for exactly the workload it will be scored on.
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	trng := rand.New(rand.NewSource(8))
	for i := 0; i < 1500; i++ {
		tab.MustAppend([]float64{trng.Float64() * 100, trng.Float64() * 100})
	}
	dom := geom.MustRect([]float64{0, 0}, []float64{1000, 1000})
	est, err := sthist.Open(tab, sthist.Options{Buckets: 30, Seed: 2, Domain: dom})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "orders")
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastDriftConfig()
	// Fire on any error at all: the point is to reach probation with a live
	// arm that is hard to beat by the strict margin.
	cfg.NAEThreshold = 1e-9
	cfg.PromoteRatio = 0.05
	_, ent := newDriftServer(t, est, l, cfg)

	rng := rand.New(rand.NewSource(33))
	var rejectedAt int
	for round := 1; round <= 400; round++ {
		lo, hi := shiftedQuery(rng, 125)
		driveRound(t, ent, lo, hi, shiftedActual(geom.MustRect(lo, hi)))
		awaitBuild(t, ent)
		if ds := ent.driftStats(); ds.Rejected >= 1 {
			rejectedAt = round
			break
		}
		if ds := ent.driftStats(); ds.Promoted >= 1 {
			t.Fatalf("candidate beat a well-initialized incumbent by 20x: %+v", ds.LastScores)
		}
	}
	ds := ent.driftStats()
	if rejectedAt == 0 {
		t.Fatalf("no rejection within 400 rounds: %+v", ds)
	}
	if ds.Promoted != 0 || ds.LastOutcome != "rejected" {
		t.Fatalf("rollback not booked: %+v", ds)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rc, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rc.Records {
		if r.Kind == wal.KindReseed {
			t.Fatal("rejected candidate left a reseed record in the WAL")
		}
	}
}

// TestEnableDriftValidation covers the wiring preconditions.
func TestEnableDriftValidation(t *testing.T) {
	est, err := sthist.Open(uniformTable(t, 1), sthist.Options{Buckets: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	if err := s.EnableDrift("orders", drift.Config{}); err == nil {
		t.Error("unknown table accepted")
	}
	if err := s.Register("orders", est); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableDrift("orders", drift.Config{}); err == nil {
		t.Error("drift without telemetry accepted")
	}
	s.EnableTelemetry(telemetry.New(telemetry.Options{}))
	if err := s.EnableDrift("orders", drift.Config{PromoteRatio: 7}); err == nil {
		t.Error("invalid config accepted")
	}
	if err := s.EnableDrift("orders", drift.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableDrift("orders", drift.Config{}); err == nil {
		t.Error("double enable accepted")
	}
	if ds, err := s.lookup("orders"); err != nil || !ds.driftStats().Enabled {
		t.Error("drift not reported enabled")
	}
}

// TestCrashAcrossReseedSwapRecoversBitIdentical extends the batch-boundary
// crash sweep across a histogram swap: the WAL carries feedback, then a
// reseed record, then more feedback, with an injected write fault at every
// boundary. Whatever prefix survives, replaying it the way sthistd does
// (Feedback for feedback records, LoadHistogram for reseed records) must be
// bit-identical to the synchronous reference at that prefix length.
func TestCrashAcrossReseedSwapRecoversBitIdentical(t *testing.T) {
	tab := uniformTable(t, 17)
	open := func() *sthist.Estimator {
		est, err := sthist.Open(tab, sthist.Options{Buckets: 25, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	// A deterministic candidate to promote mid-workload, built from a fixed
	// reservoir exactly like the live loop would.
	resObs := make([]drift.Observation, 0, 32)
	crng := rand.New(rand.NewSource(51))
	for i := 0; i < 32; i++ {
		lo, hi := shiftedQuery(crng, 125)
		q := geom.MustRect(lo, hi)
		resObs = append(resObs, drift.Observation{Query: q, Actual: shiftedActual(q)})
	}
	domain := open().Domain()
	ccfg := drift.DefaultConfig()
	ccfg.MinReservoir = 16 // boxes that missed the cluster carry no mass
	cand, err := drift.BuildCandidate(resObs, domain, 25, 1500, ccfg, 9)
	if err != nil {
		t.Fatal(err)
	}

	const stageSize = 3
	type step struct {
		reseed bool
		lo, hi []float64
		actual float64
	}
	wrng := rand.New(rand.NewSource(29))
	var steps []step
	for i := 0; i < stageSize*2; i++ {
		x, y := wrng.Float64()*800, wrng.Float64()*800
		steps = append(steps, step{lo: []float64{x, y}, hi: []float64{x + 60, y + 60}, actual: float64(5 + i)})
	}
	steps = append(steps, step{reseed: true})
	for i := 0; i < stageSize*2; i++ {
		lo, hi := shiftedQuery(wrng, 125)
		steps = append(steps, step{lo: lo, hi: hi, actual: shiftedActual(geom.MustRect(lo, hi))})
	}

	snap := func(e *sthist.Estimator) []byte {
		var buf bytes.Buffer
		if err := e.SaveHistogram(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// Reference: the synchronous path, snapshotted after every step.
	ref := make([][]byte, len(steps)+1)
	refEst := open()
	ref[0] = snap(refEst)
	for i, st := range steps {
		if st.reseed {
			if err := refEst.AdoptHistogram(cand.Hist.Clone()); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := refEst.Feedback(geom.MustRect(st.lo, st.hi), st.actual); err != nil {
				t.Fatal(err)
			}
		}
		ref[i+1] = snap(refEst)
	}

	total := len(steps)
	sawPartial, sawReseedSurvive, sawPromoteRefused := false, false, false
	// Write 1 is the manifest; the sweep kills every subsequent write once.
	// total+1 writes can never happen (batching only lowers the count), so
	// the last iteration is the crash-free control.
	for crash := 1; crash <= total+2; crash++ {
		dir := filepath.Join(t.TempDir(), "orders")
		inj := faultfs.NewInjector(faultfs.OS{},
			faultfs.Fault{Op: faultfs.OpWrite, Nth: crash + 1, Mode: faultfs.Fail})
		l, _, err := wal.Open(dir, wal.Options{FS: inj, Sync: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		s := NewServer()
		if err := s.RegisterDurable("orders", open(), l); err != nil {
			t.Fatal(err)
		}
		ent, err := s.lookup("orders")
		if err != nil {
			t.Fatal(err)
		}
		for base := 0; base < len(steps); {
			if steps[base].reseed {
				// The promotion path exactly as the drift loop runs it:
				// journal the reseed record, then adopt, under jmu.
				ent.jmu.Lock()
				err := ent.promoteLocked(cand.Hist.Clone())
				ent.jmu.Unlock()
				if err != nil {
					// The injected fault (or the sticky error a previous write
					// failure left behind) hit the reseed append: the
					// promotion must be refused — the estimator keeps serving
					// the old histogram instead of adopting state no replay
					// could ever reproduce.
					if l.Err() == nil {
						t.Fatalf("crash %d: promote refused without a failed log: %v", crash, err)
					}
					sawPromoteRefused = true
				}
				base++
				continue
			}
			reqs := make([]*feedbackReq, 0, stageSize)
			for i := base; i < base+stageSize && i < len(steps) && !steps[i].reseed; i++ {
				reqs = append(reqs, inject(t, ent, steps[i].lo, steps[i].hi, steps[i].actual))
			}
			for _, r := range reqs {
				<-r.done
			}
			base += len(reqs)
		}
		s.DrainFeedback()
		_ = l.Close()

		// "Reboot": recover the WAL and replay like cmd/sthistd does.
		l2, rc2, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatalf("crash %d: reopen: %v", crash, err)
		}
		n := len(rc2.Records)
		if n > total {
			t.Fatalf("crash %d: recovered %d records, more than the %d fed", crash, n, total)
		}
		if n > 0 && n < total {
			sawPartial = true
		}
		if crash == total+2 && n != total {
			t.Fatalf("crash-free control recovered %d records, want %d", n, total)
		}
		recovered := open()
		for i, r := range rc2.Records {
			if r.Seq != uint64(i+1) {
				t.Fatalf("crash %d: record %d has seq %d", crash, i, r.Seq)
			}
			if r.Kind == wal.KindReseed {
				if !steps[i].reseed {
					t.Fatalf("crash %d: record %d is a reseed, step %d is feedback", crash, i, i)
				}
				if err := recovered.LoadHistogram(bytes.NewReader(r.Blob)); err != nil {
					t.Fatalf("crash %d: loading reseed record %d: %v", crash, i, err)
				}
				if n > i {
					sawReseedSurvive = true
				}
				continue
			}
			q, err := sthist.NewRect(r.Lo, r.Hi)
			if err != nil {
				t.Fatal(err)
			}
			if err := recovered.Feedback(q, r.Actual); err != nil {
				t.Fatalf("crash %d: replaying record %d: %v", crash, i, err)
			}
		}
		if got := snap(recovered); !bytes.Equal(got, ref[n]) {
			t.Errorf("crash %d: recovered histogram differs from the synchronous reference after %d steps", crash, n)
		}
		_ = l2.Close()
	}
	if !sawPartial {
		t.Error("sweep never produced a partial prefix")
	}
	if !sawReseedSurvive {
		t.Error("sweep never recovered a surviving reseed record")
	}
	if !sawPromoteRefused {
		t.Error("sweep never refused a promotion on a failed journal append")
	}
}

// TestDriftConcurrentReadsDuringPromotion hammers wait-free reads and HTTP
// estimates while the drift loop detects, builds, scores and promotes.
// Meaningful under -race: it proves the probation bookkeeping and the
// atomic swap never race with concurrent readers.
func TestDriftConcurrentReadsDuringPromotion(t *testing.T) {
	est, err := sthist.Open(uniformTable(t, 1), sthist.Options{Buckets: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, ent := newDriftServer(t, est, nil, fastDriftConfig())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo, hi := shiftedQuery(rng, 250)
				q := geom.MustRect(lo, hi)
				if e := est.Estimate(q); e < 0 {
					t.Errorf("negative estimate %g", e)
					return
				}
				_, _, _ = ent.estimate(q)
			}
		}(g)
	}

	rng := rand.New(rand.NewSource(31))
	for round := 1; round <= 300; round++ {
		lo, hi := shiftedQuery(rng, 250)
		driveRound(t, ent, lo, hi, shiftedActual(geom.MustRect(lo, hi)))
		if ds := ent.driftStats(); ds.Promoted+ds.Rejected >= 1 {
			break
		}
	}
	close(stop)
	wg.Wait()
	ds := ent.driftStats()
	if ds.Triggers == 0 {
		t.Fatalf("drift never triggered under concurrency: %+v", ds)
	}
	if ds.Promoted+ds.Rejected == 0 {
		t.Fatalf("no probation resolved within 300 rounds: %+v", ds)
	}
}
