package httpapi

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"sthist"
	"sthist/internal/wal"
)

// BenchmarkFeedbackThroughput pushes concurrent durable feedback through the
// full HTTP handler with fsync-per-commit enabled and reports how many
// fsyncs each accepted observation cost. Group commit is what makes the
// number interesting: concurrent requests coalesce into one WAL append +
// fsync per batch, so fsyncs/op must land well below 1 (bench-guard gates
// this via results/BENCH_concurrency.json).
func BenchmarkFeedbackThroughput(b *testing.B) {
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	est, err := sthist.Open(tab, sthist.Options{Buckets: 100, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	obs := &syncCounter{}
	l, _, err := wal.Open(filepath.Join(b.TempDir(), "orders"),
		wal.Options{Sync: wal.SyncAlways, Observer: obs})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	s := NewServer()
	if err := s.RegisterDurable("orders", est, l); err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	// Pre-marshal a cycle of valid feedback bodies so the benchmark measures
	// the serving pipeline, not client-side JSON encoding.
	wrng := rand.New(rand.NewSource(23))
	payloads := make([][]byte, 64)
	for i := range payloads {
		x, y := wrng.Float64()*800, wrng.Float64()*800
		body, err := json.Marshal(map[string]any{
			"table":  "orders",
			"lo":     []float64{x, y},
			"hi":     []float64{x + 50 + wrng.Float64()*100, y + 50 + wrng.Float64()*100},
			"actual": float64(5 + i%40),
		})
		if err != nil {
			b.Fatal(err)
		}
		payloads[i] = body
	}

	var next atomic.Int64
	var rejected atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := payloads[int(next.Add(1))%len(payloads)]
			req := httptest.NewRequest("POST", "/feedback", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			switch w.Code {
			case 200:
			case 429:
				rejected.Add(1)
				time.Sleep(time.Millisecond)
			default:
				b.Fatalf("feedback answered %d: %s", w.Code, w.Body.Bytes())
			}
		}
	})
	b.StopTimer()
	s.DrainFeedback()
	appends, syncs := obs.counts()
	accepted := int64(b.N) - rejected.Load()
	if accepted <= 0 {
		b.Fatal("every request was rejected")
	}
	b.ReportMetric(float64(syncs)/float64(accepted), "fsyncs/op")
	b.ReportMetric(float64(accepted)/float64(appends), "obs/batch")
}
