package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sthist"
	"sthist/internal/faultfs"
	"sthist/internal/geom"
	"sthist/internal/telemetry"
	"sthist/internal/wal"
)

// syncCounter tallies WAL durability callbacks so the tests can assert the
// group-commit contract (one append + one fsync per batch) end to end.
type syncCounter struct {
	mu      sync.Mutex
	appends int
	syncs   int
}

func (o *syncCounter) ObserveAppend(time.Duration, error) {
	o.mu.Lock()
	o.appends++
	o.mu.Unlock()
}

func (o *syncCounter) ObserveSync(time.Duration, error) {
	o.mu.Lock()
	o.syncs++
	o.mu.Unlock()
}

func (o *syncCounter) ObserveCheckpoint(time.Duration, error) {}

func (o *syncCounter) counts() (int, int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.appends, o.syncs
}

// gateObserver additionally blocks the first WAL append until released,
// pinning the table's writer goroutine mid-commit at a point the test can
// observe — the only way to stage queue contents deterministically against
// the writer's greedy batch gathering.
type gateObserver struct {
	syncCounter
	once    sync.Once
	entered chan struct{} // closed when the writer reaches the first append
	release chan struct{} // the writer proceeds once this is closed
}

func newGateObserver() *gateObserver {
	return &gateObserver{entered: make(chan struct{}), release: make(chan struct{})}
}

func (o *gateObserver) ObserveAppend(d time.Duration, err error) {
	o.syncCounter.ObserveAppend(d, err)
	o.once.Do(func() { close(o.entered) })
	<-o.release
}

// inject pushes a request straight into the table's queue, bypassing HTTP,
// so tests control batch composition exactly.
func inject(t *testing.T, ent *entry, lo, hi []float64, actual float64) *feedbackReq {
	t.Helper()
	q, err := geom.NewRect(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	req := &feedbackReq{q: q, actual: actual, done: make(chan feedbackResult, 1)}
	select {
	case ent.queue <- req:
	default:
		t.Fatal("queue unexpectedly full")
	}
	return req
}

func uniformTable(t *testing.T, seed int64) *sthist.Table {
	t.Helper()
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 1500; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	return tab
}

// TestFeedbackBackpressure429 fills a tiny feedback queue while the writer is
// pinned mid-commit and checks that the server answers 429 with a
// Retry-After hint instead of buffering unboundedly, counts the rejection,
// and recovers to 200 once the queue drains.
func TestFeedbackBackpressure429(t *testing.T) {
	est, err := sthist.Open(uniformTable(t, 1), sthist.Options{Buckets: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gate := newGateObserver()
	l, _, err := wal.Open(filepath.Join(t.TempDir(), "orders"), wal.Options{Observer: gate})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := NewServer()
	s.SetFeedbackQueue(2, DefaultFeedbackBatchMax)
	tel := telemetry.New(telemetry.Options{})
	s.EnableTelemetry(tel)
	if err := s.RegisterDurable("orders", est, l); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ent, err := s.lookup("orders")
	if err != nil {
		t.Fatal(err)
	}

	// Pin the writer inside its first commit, then fill the 2-slot queue.
	blocker := inject(t, ent, []float64{10, 10}, []float64{60, 60}, 5)
	<-gate.entered
	fillers := []*feedbackReq{
		inject(t, ent, []float64{20, 20}, []float64{70, 70}, 6),
		inject(t, ent, []float64{30, 30}, []float64{80, 80}, 7),
	}

	resp, _ := post(t, ts.URL+"/feedback", map[string]any{
		"table": "orders", "lo": []float64{40, 40}, "hi": []float64{90, 90}, "actual": 8.0,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}

	close(gate.release)
	for _, r := range append(fillers, blocker) {
		if res := <-r.done; res.err != nil {
			t.Fatalf("queued feedback failed after release: %v", res.err)
		}
	}

	// The rejection is visible on /metrics and the pipeline recovered.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(body), `sthist_feedback_backpressure_total{table="orders"} 1`) {
		t.Errorf("backpressure counter not exported:\n%s", body)
	}
	if !strings.Contains(string(body), "sthist_feedback_queue_depth") ||
		!strings.Contains(string(body), "sthist_feedback_batch_size") {
		t.Error("queue depth gauge or batch size histogram not exported")
	}
	resp, _ = post(t, ts.URL+"/feedback", map[string]any{
		"table": "orders", "lo": []float64{40, 40}, "hi": []float64{90, 90}, "actual": 8.0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback after release answered %d, want 200", resp.StatusCode)
	}
}

// TestDrainFeedbackCommitsQueuedTail is the SIGTERM half of graceful
// shutdown: observations accepted before the drain must be committed as
// batches — one WAL append and one fsync per batch, contiguous sequence
// numbers — and feedback arriving after the drain is refused with 503.
func TestDrainFeedbackCommitsQueuedTail(t *testing.T) {
	est, err := sthist.Open(uniformTable(t, 3), sthist.Options{Buckets: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gate := newGateObserver()
	l, _, err := wal.Open(filepath.Join(t.TempDir(), "orders"),
		wal.Options{Sync: wal.SyncAlways, Observer: gate})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := NewServer()
	if err := s.RegisterDurable("orders", est, l); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ent, err := s.lookup("orders")
	if err != nil {
		t.Fatal(err)
	}

	// Pin the writer inside the first commit, queue three more observations,
	// then drain: the writer must wake, group the queued tail into a single
	// batch, commit it, and only then let DrainFeedback return.
	first := inject(t, ent, []float64{10, 10}, []float64{60, 60}, 5)
	<-gate.entered
	tail := []*feedbackReq{
		inject(t, ent, []float64{20, 20}, []float64{70, 70}, 6),
		inject(t, ent, []float64{30, 30}, []float64{80, 80}, 7),
		inject(t, ent, []float64{40, 40}, []float64{90, 90}, 8),
	}
	drained := make(chan struct{})
	go func() {
		s.DrainFeedback()
		close(drained)
	}()
	close(gate.release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("DrainFeedback did not return")
	}

	if res := <-first.done; res.err != nil || res.seq != 1 {
		t.Fatalf("first commit: seq=%d err=%v", res.seq, res.err)
	}
	for i, r := range tail {
		if res := <-r.done; res.err != nil || res.seq != uint64(i+2) {
			t.Fatalf("tail commit %d: seq=%d err=%v", i, res.seq, res.err)
		}
	}
	// Two batches: [first] and the 3-observation tail — two appends and two
	// fsyncs for four observations.
	if appends, syncs := gate.counts(); appends != 2 || syncs != 2 {
		t.Errorf("appends=%d syncs=%d, want 2/2 (group commit)", appends, syncs)
	}
	if l.LastSeq() != 4 {
		t.Errorf("LastSeq after drain = %d, want 4", l.LastSeq())
	}

	resp, out := post(t, ts.URL+"/feedback", map[string]any{
		"table": "orders", "lo": []float64{10, 10}, "hi": []float64{60, 60}, "actual": 5.0,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("feedback after drain answered %d, want 503", resp.StatusCode)
	}
	var msg string
	_ = json.Unmarshal(out["error"], &msg)
	if !strings.Contains(msg, "draining") {
		t.Errorf("error message = %q", msg)
	}
	// Idempotent: a second drain returns immediately.
	s.DrainFeedback()
}

// TestCrashAtBatchBoundaryRecoversBitIdentical drives one workload through
// (a) a plain estimator fed one observation at a time and (b) the server's
// group-commit pipeline with the WAL killed at every append boundary by an
// injected write fault. Whatever prefix survives the crash, replaying it
// into a fresh estimator (the sthistd startup path) must yield a histogram
// bit-identical to the synchronous reference at that prefix length.
func TestCrashAtBatchBoundaryRecoversBitIdentical(t *testing.T) {
	tab := uniformTable(t, 17)
	open := func() *sthist.Estimator {
		est, err := sthist.Open(tab, sthist.Options{Buckets: 25, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	const stageSize, numStages = 3, 4
	const total = stageSize * numStages
	type ob struct {
		lo, hi []float64
		actual float64
	}
	wrng := rand.New(rand.NewSource(29))
	work := make([]ob, total)
	for i := range work {
		x, y := wrng.Float64()*800, wrng.Float64()*800
		w, h := 50+wrng.Float64()*100, 50+wrng.Float64()*100
		work[i] = ob{lo: []float64{x, y}, hi: []float64{x + w, y + h}, actual: float64(5 + i)}
	}

	// Reference: the synchronous path, snapshotted after every observation.
	snap := func(e *sthist.Estimator) []byte {
		var buf bytes.Buffer
		if err := e.SaveHistogram(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := make([][]byte, total+1)
	refEst := open()
	ref[0] = snap(refEst)
	for i, o := range work {
		q, err := geom.NewRect(o.lo, o.hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := refEst.Feedback(q, o.actual); err != nil {
			t.Fatal(err)
		}
		ref[i+1] = snap(refEst)
	}

	// Sweep the crash point across every write the WAL can make: write 1 is
	// the manifest, writes 2.. are batch frames. crash==total+1 never fires
	// and is the crash-free control.
	sawPartial := false
	for crash := 1; crash <= total+1; crash++ {
		dir := filepath.Join(t.TempDir(), "orders")
		inj := faultfs.NewInjector(faultfs.OS{},
			faultfs.Fault{Op: faultfs.OpWrite, Nth: crash + 1, Mode: faultfs.Fail})
		l, _, err := wal.Open(dir, wal.Options{FS: inj, Sync: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		s := NewServer()
		if err := s.RegisterDurable("orders", open(), l); err != nil {
			t.Fatal(err)
		}
		ent, err := s.lookup("orders")
		if err != nil {
			t.Fatal(err)
		}
		// Stage by stage; batch composition inside a stage is up to the
		// writer's gathering, which is exactly what the sweep should cover.
		for st := 0; st < numStages; st++ {
			reqs := make([]*feedbackReq, 0, stageSize)
			for i := st * stageSize; i < (st+1)*stageSize; i++ {
				o := work[i]
				reqs = append(reqs, inject(t, ent, o.lo, o.hi, o.actual))
			}
			for _, r := range reqs {
				<-r.done // apply outcome is covered by the recovery check
			}
		}
		s.DrainFeedback()
		_ = l.Close()

		// "Reboot": recover the WAL and replay like cmd/sthistd does.
		l2, rc2, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatalf("crash %d: reopen: %v", crash, err)
		}
		n := len(rc2.Records)
		if n > total {
			t.Fatalf("crash %d: recovered %d records, more than the %d fed", crash, n, total)
		}
		if crash == 1 && n != 0 {
			t.Fatalf("crash at first frame write recovered %d records", n)
		}
		if crash == total+1 && n != total {
			t.Fatalf("crash-free control recovered %d records, want %d", n, total)
		}
		if n > 0 && n < total {
			sawPartial = true
		}
		recovered := open()
		for i, r := range rc2.Records {
			if r.Seq != uint64(i+1) {
				t.Fatalf("crash %d: record %d has seq %d", crash, i, r.Seq)
			}
			q, err := sthist.NewRect(r.Lo, r.Hi)
			if err != nil {
				t.Fatal(err)
			}
			if err := recovered.Feedback(q, r.Actual); err != nil {
				t.Fatalf("crash %d: replaying record %d: %v", crash, i, err)
			}
		}
		if got := snap(recovered); !bytes.Equal(got, ref[n]) {
			t.Errorf("crash %d: recovered histogram differs from the synchronous reference after %d observations", crash, n)
		}
		_ = l2.Close()
	}
	if !sawPartial {
		t.Error("sweep never produced a partial prefix; batch boundaries were not exercised")
	}
}
