package httpapi

import (
	"encoding/json"
	"fmt"
	"time"

	"sthist"
	"sthist/internal/drift"
	"sthist/internal/reservoir"
	"sthist/internal/telemetry"
	"sthist/internal/wal"
)

// driftCtl is the per-table drift-adaptation loop state. It lives entirely
// inside the table's group-commit path: every field is guarded by entry.jmu,
// and every transition happens in driftStepLocked, which commitBatch calls
// once per batch. The only concurrency is the background candidate build,
// which runs over an immutable reservoir snapshot and delivers its result
// through buildCh (buffered, polled non-blocking by the next batch).
type driftCtl struct {
	cfg drift.Config
	det *drift.Detector
	res *reservoir.Reservoir[drift.Observation]

	shadow   *drift.Shadow // non-nil exactly while a candidate is on probation
	building bool          // a background build is in flight
	buildCh  chan buildResult
	buildSeq int64 // perturbs the build seed so retries explore different medoids

	promoted      uint64
	rejected      uint64
	buildFailures uint64
	lastOutcome   string
	lastScores    drift.Scores
	haveScores    bool

	// Telemetry instruments (nil when telemetry is disabled).
	mTriggers *telemetry.Counter
	mPromoted *telemetry.Counter
	mRejected *telemetry.Counter
	mDuration *telemetry.Histogram
}

// buildResult is what the background re-seeder hands back to the writer.
type buildResult struct {
	cand *drift.Candidate
	err  error
	dur  time.Duration
}

// EnableDrift turns on drift-adaptive re-seeding for a registered table. The
// detector reads the table's rolling NAE from its telemetry recorder, so
// EnableTelemetry must have been called first. cfg zero-fields take defaults
// (drift.DefaultConfig). Enable before serving traffic.
func (s *Server) EnableDrift(name string, cfg drift.Config) error {
	ent, err := s.lookup(name)
	if err != nil {
		return err
	}
	if err := cfg.Sanitize(); err != nil {
		return err
	}
	if ent.rec == nil {
		return fmt.Errorf("httpapi: drift adaptation for %q needs telemetry (call EnableTelemetry first)", name)
	}
	det, err := drift.NewDetector(cfg)
	if err != nil {
		return err
	}
	res, err := reservoir.New[drift.Observation](cfg.ReservoirSize, driftSeed(name))
	if err != nil {
		return err
	}
	d := &driftCtl{cfg: cfg, det: det, res: res, buildCh: make(chan buildResult, 1)}
	s.mu.RLock()
	tel := s.tel
	s.mu.RUnlock()
	if tel != nil {
		reg := tel.Registry()
		lbl := telemetry.L("table", name)
		d.mTriggers = reg.Counter("sthist_drift_triggers_total",
			"Drift detector firings (sustained rolling NAE above threshold).", lbl)
		d.mPromoted = reg.Counter("sthist_reseed_promoted_total",
			"Re-seeded candidate histograms promoted after probation.", lbl)
		d.mRejected = reg.Counter("sthist_reseed_rejected_total",
			"Re-seeded candidate histograms rejected after probation.", lbl)
		d.mDuration = reg.Histogram("sthist_reseed_duration_seconds",
			"Background candidate build duration.", telemetry.LatencyBuckets(), lbl)
	}
	ent.jmu.Lock()
	defer ent.jmu.Unlock()
	if ent.drift != nil {
		return fmt.Errorf("httpapi: drift adaptation already enabled for %q", name)
	}
	ent.drift = d
	return nil
}

// driftSeed derives a stable per-table reservoir seed from the table name,
// so restarts sample the same way without any global randomness.
func driftSeed(name string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	return h
}

// driftPreApplyLocked captures the live estimator's answers for the batch
// BEFORE the feedback is applied — the live arm of the shadow comparison
// must be scored on what the estimator would have answered the optimizer,
// not on what it knows after learning from the very observation being
// scored. Only runs during probation, so the no-drift feedback path pays a
// nil check and nothing else. jmu held.
func (e *entry) driftPreApplyLocked(batch []*feedbackReq) []float64 {
	if e.drift == nil || e.drift.shadow == nil {
		return nil
	}
	ests := e.liveScratch[:0]
	for _, r := range batch {
		ests = append(ests, e.est.Estimate(r.q))
	}
	e.liveScratch = ests
	return ests
}

// driftStepLocked advances the adaptation loop by one committed batch:
// reservoir upkeep, build completion, probation scoring, probation verdict,
// and the detector tick, in that order. jmu held by commitBatch.
func (e *entry) driftStepLocked(obs []sthist.Observation, liveEsts []float64) {
	d := e.drift
	if d == nil {
		return
	}
	for i := range obs {
		d.res.Add(drift.Observation{Query: obs[i].Query, Actual: obs[i].Actual})
	}
	if d.building {
		select {
		case res := <-d.buildCh:
			d.building = false
			if d.mDuration != nil {
				d.mDuration.Observe(res.dur.Seconds())
			}
			e.startProbationLocked(res)
		default:
		}
	}
	if d.shadow != nil && len(liveEsts) == len(obs) {
		dom := e.est.Domain()
		dvol := dom.Volume()
		total := e.est.StatsSnapshot().TotalTuples
		for i := range obs {
			triv := 0.0
			if dvol > 0 {
				triv = total * dom.IntersectionVolume(obs[i].Query) / dvol
			}
			d.shadow.Observe(obs[i].Query, liveEsts[i], triv, obs[i].Actual)
		}
		if d.shadow.Rounds() >= d.cfg.Probation {
			e.resolveProbationLocked()
		}
	}
	n, _, nae := e.rec.Rolling()
	if d.det.Observe(n, nae) {
		if d.mTriggers != nil {
			d.mTriggers.Inc()
		}
		e.startBuildLocked()
	}
}

// startBuildLocked kicks the background re-seeder over a reservoir snapshot.
// The detector stays suppressed until the attempt resolves. jmu held.
func (e *entry) startBuildLocked() {
	d := e.drift
	snap := d.res.Snapshot()
	if len(snap) < d.cfg.MinReservoir {
		d.buildFailures++
		d.lastOutcome = "starved"
		d.det.Rearm()
		return
	}
	d.building = true
	d.buildSeq++
	seed := d.res.Seed() + d.buildSeq
	dom := e.est.Domain()
	st := e.est.StatsSnapshot()
	cfg, ch := d.cfg, d.buildCh
	go func() {
		start := time.Now()
		cand, err := drift.BuildCandidate(snap, dom, st.MaxBuckets, st.TotalTuples, cfg, seed)
		ch <- buildResult{cand: cand, err: err, dur: time.Since(start)}
	}()
}

// startProbationLocked receives a finished build and opens the shadow
// comparison, or books the failure and rearms the detector. jmu held.
func (e *entry) startProbationLocked(res buildResult) {
	d := e.drift
	if res.err != nil {
		d.buildFailures++
		d.lastOutcome = "build-failed"
		d.det.Rearm()
		return
	}
	sh, err := drift.NewShadow(res.cand.Hist, e.est.Domain(), e.est.StatsSnapshot().TotalTuples)
	if err != nil {
		d.buildFailures++
		d.lastOutcome = "build-failed"
		d.det.Rearm()
		return
	}
	d.shadow = sh
}

// resolveProbationLocked closes the probation window: promote the candidate
// if it beat the live arm, drop it otherwise. Either way the detector rearms
// (starting its cooldown) and the shadow state is released. jmu held.
func (e *entry) resolveProbationLocked() {
	d := e.drift
	sc := d.shadow.Scores()
	d.lastScores, d.haveScores = sc, true
	cand := d.shadow.Candidate()
	d.shadow = nil
	d.det.Rearm()
	if !sc.Promote(d.cfg.PromoteRatio) {
		d.rejected++
		d.lastOutcome = "rejected"
		if d.mRejected != nil {
			d.mRejected.Inc()
		}
		return
	}
	if err := e.promoteLocked(cand); err != nil {
		d.buildFailures++
		d.lastOutcome = "promote-failed"
		return
	}
	d.promoted++
	d.lastOutcome = "promoted"
	if d.mPromoted != nil {
		d.mPromoted.Inc()
	}
}

// promoteLocked installs the winning candidate: journal the replacement to
// the WAL first (a reseed record carrying the serialized histogram), then
// swap it in with one atomic snapshot publish. The candidate is validated
// before the journal write, so once the record is durable the adoption
// cannot fail — recovery replaying the record lands on exactly the
// histogram the serving path switched to.
//
// Unlike the feedback path, a failed journal append must REJECT the
// promotion: feedback records are individually small corrections whose loss
// degrades durability, but a reseed swaps the entire served histogram. WAL
// errors are sticky until a successful checkpoint, so adopting after a failed
// append would serve a histogram that no replay can ever reproduce — the next
// crash silently rolls the table back to the pre-reseed shape. The caller
// books the failure and rearms the detector, which retries once the log
// recovers. jmu held.
func (e *entry) promoteLocked(cand *sthist.Histogram) error {
	if err := cand.Validate(); err != nil {
		return fmt.Errorf("candidate failed post-probation validation: %w", err)
	}
	if cand.Dims() != e.est.Domain().Dims() {
		return fmt.Errorf("candidate has %d dims, domain %d", cand.Dims(), e.est.Domain().Dims())
	}
	if e.log != nil {
		blob, err := json.Marshal(cand)
		if err != nil {
			return fmt.Errorf("serializing candidate: %w", err)
		}
		if _, err := e.log.Append(wal.Record{Kind: wal.KindReseed, Blob: blob}); err != nil {
			e.appendErrors++
			return fmt.Errorf("journaling reseed: %w", err)
		}
		e.sinceCkpt++
	}
	return e.est.AdoptHistogram(cand)
}

// driftState names the loop's current phase for /stats and /healthz.
func (d *driftCtl) stateLocked() string {
	switch {
	case d.building:
		return "building"
	case d.shadow != nil:
		return "probation"
	case d.det.Suppressed():
		// Fired but the build/probation handoff has not landed yet.
		return "building"
	case d.det.Cooldown() > 0:
		return "cooldown"
	default:
		return "watching"
	}
}

// driftStats is the drift block of /stats and /healthz.
type driftStats struct {
	Enabled         bool          `json:"enabled"`
	State           string        `json:"state,omitempty"`
	Triggers        uint64        `json:"triggers,omitempty"`
	Promoted        uint64        `json:"promoted,omitempty"`
	Rejected        uint64        `json:"rejected,omitempty"`
	BuildFailures   uint64        `json:"build_failures,omitempty"`
	Reservoir       int           `json:"reservoir,omitempty"`
	ReservoirSeen   uint64        `json:"reservoir_seen,omitempty"`
	ProbationRounds int           `json:"probation_rounds,omitempty"`
	LastOutcome     string        `json:"last_outcome,omitempty"`
	LastScores      *drift.Scores `json:"last_scores,omitempty"`
}

func (e *entry) driftStats() driftStats {
	e.jmu.Lock()
	defer e.jmu.Unlock()
	d := e.drift
	if d == nil {
		return driftStats{}
	}
	ds := driftStats{
		Enabled:       true,
		State:         d.stateLocked(),
		Triggers:      d.det.Triggers(),
		Promoted:      d.promoted,
		Rejected:      d.rejected,
		BuildFailures: d.buildFailures,
		Reservoir:     d.res.Len(),
		ReservoirSeen: d.res.Seen(),
		LastOutcome:   d.lastOutcome,
	}
	if d.shadow != nil {
		ds.ProbationRounds = d.shadow.Rounds()
	}
	if d.haveScores {
		sc := d.lastScores
		ds.LastScores = &sc
	}
	return ds
}
