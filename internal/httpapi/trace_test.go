package httpapi

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"sthist"
	"sthist/internal/telemetry"
	"sthist/internal/trace"
	"sthist/internal/wal"
)

// newTracedServer builds a durable one-table server with tracing at sample
// rate 1, so every request's trace is retained and stage spans are
// observable.
func newTracedServer(t *testing.T) (*Server, *httptest.Server, *trace.Tracer) {
	t.Helper()
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	est, err := sthist.Open(tab, sthist.Options{Buckets: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open(filepath.Join(t.TempDir(), "orders"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	if err := s.RegisterDurable("orders", est, l); err != nil {
		t.Fatal(err)
	}
	s.EnableTelemetry(telemetry.New(telemetry.Options{}))
	tr := trace.New(trace.Options{Service: "node-test", SampleRate: 1, Seed: 7})
	s.SetTracer(tr)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.DrainFeedback()
		_ = l.Close()
	})
	return s, ts, tr
}

func getSpans(t *testing.T, base, traceID string) []trace.SpanData {
	t.Helper()
	resp, err := http.Get(base + "/debug/trace/spans?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spans endpoint status = %d", resp.StatusCode)
	}
	var out struct {
		Service string           `json:"service"`
		Spans   []trace.SpanData `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Spans
}

func spanNames(spans []trace.SpanData) map[string]trace.SpanData {
	m := make(map[string]trace.SpanData, len(spans))
	for _, sp := range spans {
		m[sp.Name] = sp
	}
	return m
}

func TestTraceMiddlewareStampsTraceID(t *testing.T) {
	_, ts, _ := newTracedServer(t)

	// Without a traceparent the node starts a fresh trace and stamps its ID.
	resp, _ := post(t, ts.URL+"/estimate", map[string]any{
		"table": "orders", "lo": []float64{0, 0}, "hi": []float64{100, 100},
	})
	id := resp.Header.Get(trace.TraceIDHeader)
	if !trace.ValidTraceIDString(id) {
		t.Fatalf("fresh request: bad %s %q", trace.TraceIDHeader, id)
	}

	// With a traceparent the node must continue the caller's trace.
	const want = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/tables", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.TraceparentHeader, "00-"+want+"-00f067aa0ba902b7-01")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(trace.TraceIDHeader); got != want {
		t.Fatalf("continued trace ID = %q, want %q", got, want)
	}
}

func TestFeedbackStageSpans(t *testing.T) {
	_, ts, _ := newTracedServer(t)

	const traceID = "0123456789abcdef0123456789abcdef"
	body := map[string]any{
		"table": "orders", "lo": []float64{0, 0}, "hi": []float64{100, 100}, "actual": 42,
	}
	data, _ := json.Marshal(body)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/feedback", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.TraceparentHeader, "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback status = %d", resp.StatusCode)
	}

	spans := getSpans(t, ts.URL, traceID)
	byName := spanNames(spans)
	root, ok := byName["node /feedback"]
	if !ok {
		t.Fatalf("no node root span; got %d spans: %+v", len(spans), byName)
	}
	if root.TraceID != traceID {
		t.Errorf("root trace ID = %q, want %q", root.TraceID, traceID)
	}
	if root.ParentID != "00f067aa0ba902b7" {
		t.Errorf("root parent = %q, want caller span ID", root.ParentID)
	}
	for _, stage := range []string{"feedback.queue", "wal.append", "wal.fsync", "feedback.apply"} {
		sp, ok := byName[stage]
		if !ok {
			t.Errorf("missing stage span %q", stage)
			continue
		}
		if sp.ParentID != root.SpanID {
			t.Errorf("%s parent = %q, want root %q", stage, sp.ParentID, root.SpanID)
		}
		if sp.TraceID != traceID {
			t.Errorf("%s trace ID = %q", stage, sp.TraceID)
		}
	}
	if sp := byName["wal.append"]; sp.Error != "" {
		t.Errorf("wal.append unexpectedly failed: %q", sp.Error)
	}
}

func TestTraceSpansEndpointValidation(t *testing.T) {
	_, ts, _ := newTracedServer(t)
	cases := []struct {
		url  string
		code int
	}{
		{"/debug/trace/spans", http.StatusOK},
		{"/debug/trace/spans?n=5", http.StatusOK},
		{"/debug/trace/spans?trace=0123456789abcdef0123456789abcdef", http.StatusOK},
		{"/debug/trace/spans?trace=XYZ", http.StatusBadRequest},
		{"/debug/trace/spans?trace=0123", http.StatusBadRequest},
		{"/debug/trace/spans?n=-1", http.StatusBadRequest},
		{"/debug/trace/spans?n=abc", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("GET %s = %d, want %d", c.url, resp.StatusCode, c.code)
		}
	}
}

func TestTraceSpansEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t) // no tracer attached
	resp, err := http.Get(ts.URL + "/debug/trace/spans")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("spans endpoint without tracer = %d, want 404", resp.StatusCode)
	}
}

func TestTraceExemplars(t *testing.T) {
	_, ts, _ := newTracedServer(t)

	// Sampled requests stamp exemplars on the route latency histogram.
	post(t, ts.URL+"/estimate", map[string]any{
		"table": "orders", "lo": []float64{0, 0}, "hi": []float64{50, 50},
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/debug/trace/exemplars")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Routes map[string][]telemetry.BucketExemplar `json:"routes"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if exs := out.Routes["/estimate"]; len(exs) > 0 {
			if !trace.ValidTraceIDString(exs[0].TraceID) {
				t.Fatalf("exemplar carries bad trace ID %q", exs[0].TraceID)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no exemplar appeared for /estimate")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
