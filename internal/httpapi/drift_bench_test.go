package httpapi

import (
	"math/rand"
	"testing"

	"sthist"
	"sthist/internal/drift"
	"sthist/internal/geom"
	"sthist/internal/telemetry"
)

// BenchmarkFeedbackDrift measures what arming the drift loop costs a table
// whose workload is NOT drifting: the detector ticks and the reservoir
// samples on every commit, but nothing ever fires, so this is the permanent
// overhead every drift-enabled table pays. bench-drift guards the on/off
// ratio at 1.05 via results/BENCH_drift.json.
func BenchmarkFeedbackDrift(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "drift=off"
		if on {
			name = "drift=on"
		}
		b.Run(name, func(b *testing.B) {
			tab, err := sthist.NewTable("x", "y")
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 2000; i++ {
				tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
			}
			est, err := sthist.Open(tab, sthist.Options{Buckets: 100, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			s := NewServer()
			// Telemetry is on in both arms: drift requires it, and the guard
			// should isolate the drift delta, not re-measure telemetry's.
			s.EnableTelemetry(telemetry.New(telemetry.Options{}))
			if err := s.Register("orders", est); err != nil {
				b.Fatal(err)
			}
			if on {
				cfg := drift.DefaultConfig()
				cfg.NAEThreshold = 1e9 // never fires: steady-state watching only
				if err := s.EnableDrift("orders", cfg); err != nil {
					b.Fatal(err)
				}
			}
			ent, err := s.lookup("orders")
			if err != nil {
				b.Fatal(err)
			}

			// A cycle of fixed queries so both arms replay identical work.
			wrng := rand.New(rand.NewSource(23))
			queries := make([]geom.Rect, 64)
			for i := range queries {
				x, y := wrng.Float64()*800, wrng.Float64()*800
				queries[i] = geom.MustRect(
					[]float64{x, y},
					[]float64{x + 50 + wrng.Float64()*100, y + 50 + wrng.Float64()*100},
				)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ent.enqueue(queries[i%len(queries)], float64(5+i%40)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s.DrainFeedback()
		})
	}
}
