package httpapi

// Tests for the cluster-facing surface: the liveness/readiness split, the
// Retry-After contract on drain 503s, the table domain in /stats (what
// cmd/sthload generates queries from), and snapshot shipping via
// GET /snapshot (what warm replica promotion restores).

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sthist"
	"sthist/internal/wal"
)

func getStatus(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	return resp, body
}

func TestLivezReadyzSplit(t *testing.T) {
	s, ts := newTestServer(t)

	// Serving: both live and ready.
	resp, _ := getStatus(t, ts.URL+"/livez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("livez while serving = %d", resp.StatusCode)
	}
	resp, _ = getStatus(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while serving = %d", resp.StatusCode)
	}

	// Draining: live, NOT ready, with a Retry-After hint.
	s.SetDraining(true)
	resp, _ = getStatus(t, ts.URL+"/livez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("livez while draining = %d; a drain must not look like a dead process", resp.StatusCode)
	}
	resp, body := getStatus(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("readyz 503 carries no Retry-After")
	}
	if !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("readyz body %q does not name the draining state", body)
	}
	resp, _ = getStatus(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("healthz drain 503 carries no Retry-After (the 429 path sets one; the drain path must too)")
	}
	s.SetDraining(false)

	// Recovering/warming (SetReady(false)): live, not ready, "starting".
	s.SetReady(false)
	resp, body = getStatus(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while starting = %d, want 503", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("starting")) {
		t.Fatalf("readyz body %q does not name the starting state", body)
	}
	resp, _ = getStatus(t, ts.URL+"/livez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("livez while starting = %d", resp.StatusCode)
	}
	s.SetReady(true)
	resp, _ = getStatus(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after SetReady(true) = %d", resp.StatusCode)
	}
}

// Feedback rejected because the table is draining must carry Retry-After,
// exactly like the 429 backpressure path.
func TestDrainFeedback503RetryAfter(t *testing.T) {
	s, ts := newTestServer(t)
	s.DrainFeedback()
	fb := map[string]any{"table": "orders", "lo": []float64{200, 600}, "hi": []float64{300, 700}, "actual": 10.0}
	data, err := json.Marshal(fb)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/feedback", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("feedback while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining feedback 503 carries no Retry-After")
	}
}

func TestStatsExposesDomain(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := getStatus(t, ts.URL+"/stats?table=orders")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var stats struct {
		Domain struct {
			Lo []float64 `json:"lo"`
			Hi []float64 `json:"hi"`
		} `json:"domain"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Domain.Lo) != 2 || len(stats.Domain.Hi) != 2 {
		t.Fatalf("domain = %+v, want 2-dimensional corners", stats.Domain)
	}
	for d := range stats.Domain.Lo {
		if stats.Domain.Lo[d] >= stats.Domain.Hi[d] {
			t.Fatalf("degenerate domain %+v", stats.Domain)
		}
	}
}

// newDurableServer registers one durable table backed by a WAL in a temp dir.
func newDurableServer(t *testing.T) (*Server, *httptest.Server, *wal.Log, string) {
	t.Helper()
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	est, err := sthist.Open(tab, sthist.Options{Buckets: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "orders")
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	s := NewServer()
	if err := s.RegisterDurable("orders", est, l); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, l, dir
}

func TestSnapshotEndpointShipsRestorableState(t *testing.T) {
	_, ts, _, srcDir := newDurableServer(t)

	// Accumulate durable feedback so the archive has a WAL tail.
	for i := 0; i < 10; i++ {
		fb := map[string]any{
			"table":  "orders",
			"lo":     []float64{float64(i * 10), float64(i * 10)},
			"hi":     []float64{float64(i*10 + 50), float64(i*10 + 50)},
			"actual": float64(i * 3),
		}
		resp, _ := post(t, ts.URL+"/feedback", fb)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feedback %d status = %d", i, resp.StatusCode)
		}
	}

	resp, archive := getStatus(t, ts.URL+"/snapshot?table=orders")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d (%s)", resp.StatusCode, archive)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Fatalf("snapshot content-type = %q", got)
	}
	if resp.Header.Get("X-Sthist-Last-Seq") != "10" {
		t.Fatalf("X-Sthist-Last-Seq = %q, want 10", resp.Header.Get("X-Sthist-Last-Seq"))
	}

	// Restore into a replica dir and compare the recovered durable state
	// against the source directory: must be bit-identical.
	dstDir := filepath.Join(t.TempDir(), "replica")
	if err := wal.RestoreArchive(dstDir, wal.Options{}, bytes.NewReader(archive)); err != nil {
		t.Fatal(err)
	}
	_, srcRec, err := walOpenClosed(srcDirCopy(t, srcDir))
	if err != nil {
		t.Fatal(err)
	}
	_, dstRec, err := walOpenClosed(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(srcRec.Snapshot, dstRec.Snapshot) {
		t.Fatal("shipped snapshot differs from source checkpoint")
	}
	if !reflect.DeepEqual(srcRec.Records, dstRec.Records) {
		t.Fatalf("shipped WAL tail differs: src %d records, dst %d", len(srcRec.Records), len(dstRec.Records))
	}

	// Unknown table and non-durable errors.
	resp, _ = getStatus(t, ts.URL+"/snapshot?table=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("snapshot of unknown table = %d", resp.StatusCode)
	}
	_, plainTS := newTestServer(t)
	resp, _ = getStatus(t, plainTS.URL+"/snapshot?table=orders")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot of non-durable table = %d, want 404", resp.StatusCode)
	}
}

// srcDirCopy copies a WAL directory so we can open it read-only while the
// serving Log still holds the live segment.
func srcDirCopy(t *testing.T, dir string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "srccopy")
	if err := copyDir(dir, dst); err != nil {
		t.Fatal(err)
	}
	return dst
}

func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func walOpenClosed(dir string) (uint64, *wal.Recovery, error) {
	l, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return 0, nil, err
	}
	seq := l.LastSeq()
	if cerr := l.Close(); cerr != nil {
		return 0, nil, cerr
	}
	return seq, rec, nil
}
