package httpapi

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sthist"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		tab.MustAppend([]float64{200 + rng.Float64()*100, 600 + rng.Float64()*100})
	}
	for i := 0; i < 200; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	est, err := sthist.Open(tab, sthist.Options{Buckets: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	if err := s.Register("orders", est); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestRegisterValidation(t *testing.T) {
	s := NewServer()
	if err := s.Register("", nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.Register("t", nil); err == nil {
		t.Error("nil estimator accepted")
	}
}

func TestTablesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "orders" {
		t.Errorf("tables = %v", names)
	}
	// Wrong method rejected.
	r2, err := http.Post(ts.URL+"/tables", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /tables status = %d", r2.StatusCode)
	}
}

func TestEstimateAndFeedback(t *testing.T) {
	_, ts := newTestServer(t)
	q := map[string]any{"table": "orders", "lo": []float64{200, 600}, "hi": []float64{300, 700}}
	resp, out := post(t, ts.URL+"/estimate", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status = %d", resp.StatusCode)
	}
	var estVal float64
	if err := json.Unmarshal(out["estimate"], &estVal); err != nil {
		t.Fatal(err)
	}
	if estVal < 500 {
		t.Errorf("estimate = %g, expected the cluster's mass", estVal)
	}
	// Feedback with the truth refines the histogram.
	fb := map[string]any{"table": "orders", "lo": []float64{200, 600}, "hi": []float64{300, 700}, "actual": 2000.0}
	resp, _ = post(t, ts.URL+"/feedback", fb)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback status = %d", resp.StatusCode)
	}
	_, out = post(t, ts.URL+"/estimate", q)
	if err := json.Unmarshal(out["estimate"], &estVal); err != nil {
		t.Fatal(err)
	}
	if estVal < 1500 {
		t.Errorf("estimate after feedback = %g, want ~2000", estVal)
	}
}

func TestEstimateErrors(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []map[string]any{
		{"table": "nope", "lo": []float64{0, 0}, "hi": []float64{1, 1}},
		{"table": "orders", "lo": []float64{1, 1}, "hi": []float64{0, 0}},
		{"table": "orders", "lo": []float64{0}, "hi": []float64{1}},
	}
	for i, c := range cases {
		resp, out := post(t, ts.URL+"/estimate", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
		if _, ok := out["error"]; !ok {
			t.Errorf("case %d: no error message", i)
		}
	}
	// Feedback without actual.
	resp, _ := post(t, ts.URL+"/feedback", map[string]any{"table": "orders", "lo": []float64{0, 0}, "hi": []float64{1, 1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("feedback without actual: status = %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats?table=orders")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	var maxBuckets int
	if err := json.Unmarshal(stats["max_buckets"], &maxBuckets); err != nil {
		t.Fatal(err)
	}
	if maxBuckets != 40 {
		t.Errorf("max_buckets = %d", maxBuckets)
	}
	var health struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(stats["health"], &health); err != nil {
		t.Fatal(err)
	}
	if health.State != "ok" {
		t.Errorf("health.state = %q", health.State)
	}
	var ws struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(stats["wal"], &ws); err != nil {
		t.Fatal(err)
	}
	if ws.Enabled {
		t.Error("wal reported enabled on a non-durable table")
	}
	r2, err := http.Get(ts.URL + "/stats?table=nope")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown table stats status = %d", r2.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				body := map[string]any{
					"table": "orders",
					"lo":    []float64{float64(i % 900), float64(i % 900)},
					"hi":    []float64{float64(i%900) + 50, float64(i%900) + 50},
				}
				if g%2 == 0 {
					resp, _ := post(t, ts.URL+"/estimate", body)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("estimate status %d", resp.StatusCode)
						return
					}
				} else {
					body["actual"] = float64(i)
					resp, _ := post(t, ts.URL+"/feedback", body)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("feedback status %d", resp.StatusCode)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
