package httpapi

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"sthist"
	"sthist/internal/geom"
	"sthist/internal/trace"
	"sthist/internal/wal"
)

// Defaults for the per-table feedback pipeline. The queue bounds how much
// accepted-but-uncommitted feedback a table can hold before the server pushes
// back with 429; the batch cap bounds how much one group commit may batch.
const (
	DefaultFeedbackQueueDepth = 1024
	DefaultFeedbackBatchMax   = 256
)

var (
	errQueueFull     = errors.New("feedback queue full; retry later")
	errTableDraining = errors.New("table draining; feedback no longer accepted")
)

// feedbackReq is one validated observation waiting for its group commit.
type feedbackReq struct {
	q      geom.Rect
	actual float64
	done   chan feedbackResult // buffered(1); written exactly once by the writer

	// Tracing (nil when the request is untraced): span is the node-side root
	// span owned by the handler, qspan covers the queue wait and is ended by
	// the writer at commit time. The writer must emit every stage event
	// BEFORE replying on done — the handler ends the root span right after,
	// which flushes the trace.
	span  *trace.Span
	qspan *trace.Span
}

// feedbackResult is the commit outcome handed back to the waiting handler.
type feedbackResult struct {
	seq uint64 // WAL sequence; 0 when the table is not durable or the append failed
	err error
}

// SetFeedbackQueue configures the feedback queue depth and the maximum
// observations per group commit for tables registered afterwards. Values < 1
// keep the current setting.
func (s *Server) SetFeedbackQueue(depth, batchMax int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if depth >= 1 {
		s.queueDepth = depth
	}
	if batchMax >= 1 {
		s.batchMax = batchMax
	}
}

// SetBatchWindow sets how long a table's writer waits for stragglers before
// committing a non-full batch, for tables registered afterwards. Zero (the
// default) commits whatever has queued by the time the writer is free —
// batching then comes purely from natural arrival pressure, and an idle
// table commits each observation with single-record latency. A positive
// window trades that latency for larger batches (fewer fsyncs) under light
// concurrency.
func (s *Server) SetBatchWindow(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d >= 0 {
		s.batchWindow = d
	}
}

// DrainFeedback stops accepting feedback and blocks until every queued
// observation has been committed (WAL-appended, applied, and acknowledged).
// Feedback posted afterwards is answered with 503. Call between shutting
// down the HTTP listener and the final checkpoint so the closing snapshot
// captures the last batch. Safe to call more than once.
func (s *Server) DrainFeedback() {
	s.mu.RLock()
	ents := make([]*entry, 0, len(s.tables))
	for _, ent := range s.tables {
		ents = append(ents, ent)
	}
	s.mu.RUnlock()
	for _, ent := range ents {
		ent.closeQueue()
	}
	for _, ent := range ents {
		<-ent.writerDone
	}
}

// enqueue hands one validated observation to the table's writer goroutine
// and waits for the commit outcome. It fails fast with errQueueFull when the
// queue is at capacity (the handler maps this to 429 + Retry-After) and with
// errTableDraining once DrainFeedback has closed the queue.
func (e *entry) enqueue(q geom.Rect, actual float64, sp *trace.Span) (uint64, error) {
	req := &feedbackReq{q: q, actual: actual, done: make(chan feedbackResult, 1)}
	if sp != nil {
		req.span = sp
		req.qspan = sp.StartChild("feedback.queue")
	}
	e.qmu.RLock()
	if e.qclosed {
		e.qmu.RUnlock()
		req.qspan.SetError(errTableDraining.Error())
		req.qspan.End()
		return 0, errTableDraining
	}
	select {
	case e.queue <- req:
		e.qmu.RUnlock()
	default:
		e.qmu.RUnlock()
		req.qspan.SetError(errQueueFull.Error())
		req.qspan.End()
		return 0, errQueueFull
	}
	res := <-req.done
	return res.seq, res.err
}

// closeQueue stops the writer once the queued tail has been committed.
// Idempotent. Holding qmu for the close means no enqueue can be between its
// qclosed check and its send when the channel closes.
func (e *entry) closeQueue() {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	if e.qclosed {
		return
	}
	e.qclosed = true
	close(e.queue)
}

// writerLoop is the table's single mutation path: it drains the feedback
// queue, groups whatever is waiting into one batch (capped at batchMax), and
// commits the batch with one WAL append + at most one fsync and one
// histogram snapshot publish. Exits when closeQueue has run and the queue is
// empty, so a drain never drops an accepted observation.
func (e *entry) writerLoop() {
	defer close(e.writerDone)
	for {
		req, ok := <-e.queue
		if !ok {
			return
		}
		batch := e.gatherBatch(append(e.reqScratch[:0], req))
		e.commitBatch(batch)
		for i := range batch {
			batch[i] = nil // release the requests; the backing array is reused
		}
		e.reqScratch = batch[:0]
	}
}

// gatherBatch greedily drains queued requests into batch up to batchMax.
// With a positive batch window it also waits up to the window for stragglers
// before settling for a smaller batch.
func (e *entry) gatherBatch(batch []*feedbackReq) []*feedbackReq {
	if e.batchWindow <= 0 {
		for len(batch) < e.batchMax {
			select {
			case r, ok := <-e.queue:
				if !ok {
					return batch
				}
				batch = append(batch, r)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(e.batchWindow)
	defer timer.Stop()
	for len(batch) < e.batchMax {
		select {
		case r, ok := <-e.queue:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// commitBatch turns the batch into one group commit: a single AppendBatch
// (one write, at most one fsync) followed by a single FeedbackBatch apply
// (at most one snapshot publish), all under jmu so a concurrent checkpoint
// can never capture a histogram state ahead of its log position. A failed
// append degrades durability, not availability: the batch is still applied
// and acknowledged without sequence numbers, exactly like the old
// single-record path.
func (e *entry) commitBatch(batch []*feedbackReq) {
	e.jmu.Lock()
	defer e.jmu.Unlock()
	// Queue-wait spans end when their batch reaches the commit.
	traced := false
	for _, r := range batch {
		if r.span != nil {
			traced = true
			r.qspan.End()
		}
	}
	var firstSeq uint64
	appended := false
	var walStart time.Time
	var wt trace.WALTimings
	if e.log != nil {
		recs := e.recScratch[:0]
		for _, r := range batch {
			recs = append(recs, wal.Record{Lo: r.q.Lo, Hi: r.q.Hi, Actual: r.actual})
		}
		e.recScratch = recs
		tap := e.walTap
		if !traced {
			tap = nil
		}
		if tap != nil {
			tap.Take() // drop timings from earlier untraced batches
		}
		var err error
		walStart = time.Now()
		firstSeq, err = e.log.AppendBatch(recs)
		if tap != nil {
			wt = tap.Take()
		}
		if err != nil {
			e.appendErrors += len(batch)
		} else {
			e.sinceCkpt += len(batch)
			appended = true
		}
	}
	obs := e.obsScratch[:0]
	for _, r := range batch {
		obs = append(obs, sthist.Observation{Query: r.q, Actual: r.actual})
	}
	e.obsScratch = obs
	// During probation the shadow comparison needs the live arm's answers
	// from BEFORE this batch is learned; nil (free) otherwise.
	liveEsts := e.driftPreApplyLocked(batch)
	applyStart := time.Now()
	errs, aerr := e.applyBatchLocked(obs)
	applyDur := time.Since(applyStart)
	// For a traced batch the drift step runs before the replies go out so its
	// duration can ride the batch's traces — a handler ends (and flushes) its
	// root span as soon as the reply lands. The step only reads obs/liveEsts,
	// so the order is free to flip; untraced batches keep the reply-first
	// order to get waiters unblocked as early as possible.
	var driftDur time.Duration
	if traced && aerr == nil {
		driftStart := time.Now()
		e.driftStepLocked(obs, liveEsts)
		driftDur = time.Since(driftStart)
	}
	if traced {
		e.emitStageSpansLocked(batch, walStart, wt, applyStart, applyDur, driftDur)
	}
	for i, r := range batch {
		var res feedbackResult
		switch {
		case aerr != nil:
			res.err = aerr
		case errs[i] != nil:
			res.err = errs[i]
		case appended:
			res.seq = firstSeq + uint64(i)
		}
		r.done <- res
	}
	if !traced && aerr == nil {
		e.driftStepLocked(obs, liveEsts)
	}
	e.qmu.RLock()
	bs := e.batchSize
	e.qmu.RUnlock()
	if bs != nil {
		bs.Observe(float64(len(batch)))
	}
}

// emitStageSpansLocked duplicates the batch-level stage timings into every
// traced request of the batch: a group commit's append, fsync, apply and
// drift step belong to each request that rode it, and the "batch" attribute
// records how many shared the cost. Must run before the replies are sent
// (see commitBatch); jmu is held by the caller.
func (e *entry) emitStageSpansLocked(batch []*feedbackReq, walStart time.Time, wt trace.WALTimings, applyStart time.Time, applyDur, driftDur time.Duration) {
	batchAttr := trace.A("batch", strconv.Itoa(len(batch)))
	for _, r := range batch {
		if r.span == nil {
			continue
		}
		if wt.HasAppend {
			msg := ""
			if wt.AppendErr != nil {
				msg = wt.AppendErr.Error()
			}
			r.span.Event("wal.append", walStart, wt.Append, msg, batchAttr)
		}
		if wt.HasSync {
			msg := ""
			if wt.SyncErr != nil {
				msg = wt.SyncErr.Error()
			}
			r.span.Event("wal.fsync", walStart.Add(wt.Append), wt.Sync, msg, batchAttr)
		}
		r.span.Event("feedback.apply", applyStart, applyDur, "", batchAttr)
		if e.drift != nil && driftDur > 0 {
			r.span.Event("drift.shadow", applyStart.Add(applyDur), driftDur, "")
		}
	}
}

// applyBatchLocked feeds the batch to the estimator; jmu is held by the
// caller (commitBatch) so the recovery path may bump panicRecovered
// directly. A panic quarantines the table and fails the whole batch.
func (e *entry) applyBatchLocked(obs []sthist.Observation) (errs []error, err error) {
	defer func() {
		if p := recover(); p != nil {
			e.est.Quarantine(fmt.Errorf("panic during feedback: %v", p))
			e.panicRecovered++
			err = fmt.Errorf("feedback failed; table degraded to last good snapshot")
		}
	}()
	return e.est.FeedbackBatch(obs), nil
}

// notePressure counts one 429 rejection for the backpressure metric. It must
// stay off jmu: 429s are served precisely when the writer is busy inside a
// commit, i.e. while jmu is held.
func (e *entry) notePressure() {
	e.qmu.RLock()
	bp := e.backpressure
	e.qmu.RUnlock()
	if bp != nil {
		bp.Inc()
	}
}
