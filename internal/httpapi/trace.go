package httpapi

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sthist/internal/telemetry"
	"sthist/internal/trace"
)

// SetTracer attaches the distributed-tracing plane: every request gets a
// node-side root span continuing the caller's traceparent (or starting a
// fresh trace), the feedback pipeline records stage spans (queue wait, WAL
// append, fsync, apply, drift shadow), durable tables get a wal.Observer tap
// chained in front of the metrics observer, and Handler() additionally
// serves GET /debug/trace/spans and /debug/trace/exemplars. Call before
// serving traffic. A nil tracer is a no-op.
func (s *Server) SetTracer(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
	for _, ent := range s.tables {
		ent.wireTraceTap()
	}
}

// Tracer returns the attached tracer, or nil.
func (s *Server) Tracer() *trace.Tracer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tracer
}

// wireTraceTap chains a tracing tap in front of whatever observer the
// table's WAL already reports to (telemetry.WALMetrics, typically), so the
// writer goroutine can turn batch append/fsync timings into spans. Idempotent
// per table.
func (e *entry) wireTraceTap() {
	e.jmu.Lock()
	defer e.jmu.Unlock()
	if e.log == nil || e.walTap != nil {
		return
	}
	e.walTap = &trace.WALTap{Next: e.log.CurrentObserver()}
	e.log.SetObserver(e.walTap)
}

// traceMiddleware starts the node-side root span for every request: the
// traceparent header (injected by sthproxy or sthload) is continued when
// present and well-formed, a fresh head-sampled trace is started otherwise,
// and the trace ID is stamped on the response so clients can always quote
// it. Status >= 500 and backpressure 429s mark the span failed, which forces
// tail retention of the whole trace.
func (s *Server) traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := s.Tracer()
		if tr == nil {
			next.ServeHTTP(w, r)
			return
		}
		sc, _ := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
		route := r.URL.Path
		if !instrumentedRoutes[route] {
			route = "other"
		}
		sp := tr.StartRemote(sc, "node "+route)
		defer sp.End()
		w.Header().Set(trace.TraceIDHeader, sp.TraceID())
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(trace.ContextWithSpan(r.Context(), sp)))
		sp.SetAttr("code", strconv.Itoa(sw.code))
		if sw.code >= 500 || sw.code == http.StatusTooManyRequests {
			sp.SetError(http.StatusText(sw.code))
		}
	})
}

// exemplarKeep decides whether this request's trace will plausibly be
// retained (head-sampled, error, or slow) — only then is its ID worth
// stamping as a latency exemplar; a dropped trace would leave dangling IDs
// in /debug/trace/exemplars.
func exemplarKeep(tr *trace.Tracer, sp *trace.Span, code int, d time.Duration) bool {
	if sp == nil {
		return false
	}
	if sp.Context().Sampled || code >= 500 || code == http.StatusTooManyRequests {
		return true
	}
	thr := tr.SlowThreshold()
	return thr > 0 && d >= thr
}

// handleTraceSpans serves GET /debug/trace/spans[?trace=ID|n=K]: the
// process's retained spans as JSON, oldest first. ?trace= filters to one
// trace (the cross-process assembly key sthproxy merges on); ?n= bounds the
// unfiltered listing. Malformed parameters are 400, like /debug/trace.
func (s *Server) handleTraceSpans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	tr := s.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("tracing disabled (start with -trace-sample)"))
		return
	}
	var spans []trace.SpanData
	if id := r.URL.Query().Get("trace"); id != "" {
		if !trace.ValidTraceIDString(id) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace %q (want 32 lowercase hex digits)", id))
			return
		}
		spans = tr.Spans(id)
	} else {
		n := 0
		if sn := r.URL.Query().Get("n"); sn != "" {
			v, err := strconv.Atoi(sn)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", sn))
				return
			}
			n = v
		}
		spans = tr.Recent(n)
	}
	if spans == nil {
		spans = []trace.SpanData{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"service": tr.Service(),
		"spans":   spans,
	})
}

// handleTraceExemplars serves GET /debug/trace/exemplars: per-route latency
// buckets that currently carry a trace-ID exemplar, so a bad p99 bucket in
// sthist_http_request_duration_seconds resolves to a concrete trace without
// leaving the debug plane. The text /metrics exposition never carries these.
func (s *Server) handleTraceExemplars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	s.mu.RLock()
	durs := s.routeDurs
	s.mu.RUnlock()
	routes := make(map[string][]telemetry.BucketExemplar, len(durs))
	for route, h := range durs {
		if ex := h.Exemplars(); len(ex) > 0 {
			routes[route] = ex
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"routes": routes})
}
