// Package httpapi exposes a catalog of self-tuning estimators over HTTP, so
// non-Go clients (an optimizer prototype, a notebook, a dashboard) can ask
// for cardinality estimates and stream query feedback back. JSON in, JSON
// out; one estimator per registered table.
//
//	GET  /tables                         -> ["orders", "sensors"]
//	POST /estimate {"table","lo","hi"}   -> {"estimate","selectivity"}
//	POST /feedback {"table","lo","hi","actual"} -> {"ok":true,"seq":n}
//	GET  /stats?table=orders             -> maintenance counters + health + wal state
//	GET  /healthz                        -> readiness + per-table health
//	GET  /livez                          -> liveness (200 while the process serves)
//	GET  /readyz                         -> readiness only (503 while draining/recovering)
//	GET  /snapshot?table=orders          -> checkpoint+WAL archive for replica shipping
//
// The server is hardened for unattended operation: request bodies are
// size-capped, malformed or non-finite feedback is rejected with 400, and a
// panic inside an estimator quarantines that table (serving degrades to its
// last good snapshot) instead of killing the process.
//
// Accepted feedback flows through one writer goroutine per table that drains
// a bounded queue and applies observations in batches (group commit): tables
// registered with RegisterDurable get one WAL append + at most one fsync per
// batch, and every batch publishes at most one new histogram snapshot. When
// a table's queue is full the server pushes back with 429 + Retry-After
// instead of buffering unboundedly; DrainFeedback commits the queued tail on
// graceful shutdown, and periodic checkpoints run via Checkpoint /
// CheckpointAll (see internal/wal for the recovery protocol).
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sthist"
	"sthist/internal/geom"
	"sthist/internal/telemetry"
	"sthist/internal/trace"
	"sthist/internal/wal"
)

// DefaultMaxBodyBytes caps request bodies; estimate/feedback requests are a
// few hundred bytes even at high dimensionality.
const DefaultMaxBodyBytes = 1 << 20

// entry is one served table: the estimator, its feedback pipeline, and its
// (optional) durability state. All mutation funnels through one writer
// goroutine (writerLoop) draining a bounded queue; jmu serializes the
// WAL-append + apply pair against checkpoints so a snapshot never captures a
// feedback its log position does not.
type entry struct {
	est *sthist.Estimator
	rec *telemetry.Recorder // nil when telemetry is disabled

	queue        chan *feedbackReq    // bounded feedback queue; send under qmu.RLock, closed by closeQueue
	qmu          sync.RWMutex         // serializes enqueue sends against queue close
	qclosed      bool                 // guarded by qmu
	batchSize    *telemetry.Histogram // observations per group commit; guarded by qmu
	backpressure *telemetry.Counter   // feedback rejected with 429; guarded by qmu
	writerDone   chan struct{}        // closed when writerLoop exits
	batchMax     int                  // max observations per group commit; immutable after register
	batchWindow  time.Duration        // straggler wait before a non-full commit; immutable after register

	// Scratch buffers owned by the writer goroutine; reused across batches so
	// the steady-state commit path stops allocating once warmed.
	reqScratch []*feedbackReq
	recScratch []wal.Record
	obsScratch []sthist.Observation

	// Drift adaptation (nil unless EnableDrift): reservoir, detector,
	// probation shadow, plus the live pre-apply estimate scratch. Guarded by
	// jmu and advanced by the writer inside commitBatch; the only escape is
	// the background candidate build, which works on an immutable snapshot.
	drift       *driftCtl // guarded by jmu
	liveScratch []float64 // writer-owned scratch like reqScratch

	jmu            sync.Mutex
	walTap         *trace.WALTap // tracing tap chained into the WAL observer; guarded by jmu
	log            *wal.Log      // guarded by jmu
	appendErrors   int           // WAL appends that failed (served anyway, durability degraded); guarded by jmu
	sinceCkpt      int           // records appended since the last checkpoint; guarded by jmu
	panicRecovered int           // estimator panics recovered by the handler; guarded by jmu
	lastCkptAt     time.Time     // when the last successful checkpoint finished; guarded by jmu
	lastCkptDur    time.Duration // how long it took; guarded by jmu
}

// Server routes estimator traffic. Register tables before serving; handlers
// are safe for concurrent use (the Estimator itself is synchronized).
type Server struct {
	mu       sync.RWMutex
	tables   map[string]*entry // guarded by mu
	maxBody  int64             // immutable after construction
	draining atomic.Bool
	unready  atomic.Bool          // true while recovering/warming; inverted so the zero value serves
	tel      *telemetry.Telemetry // guarded by mu
	tracer   *trace.Tracer        // guarded by mu

	// routeDurs is the per-route latency histogram set, published by
	// instrumentMiddleware so the exemplar endpoint can enumerate it.
	routeDurs map[string]*telemetry.Histogram // guarded by mu

	queueDepth  int           // feedback queue depth for tables registered later; guarded by mu
	batchMax    int           // max observations per group commit; guarded by mu
	batchWindow time.Duration // straggler wait before a non-full commit; guarded by mu
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		tables:     make(map[string]*entry),
		maxBody:    DefaultMaxBodyBytes,
		queueDepth: DefaultFeedbackQueueDepth,
		batchMax:   DefaultFeedbackBatchMax,
	}
}

// SetMaxBodyBytes overrides the request body cap (values < 1 keep the
// default).
func (s *Server) SetMaxBodyBytes(n int64) {
	if n >= 1 {
		s.maxBody = n
	}
}

// Register adds an estimator under the given table name.
func (s *Server) Register(name string, est *sthist.Estimator) error {
	return s.register(name, est, nil)
}

// RegisterDurable adds an estimator whose accepted feedback is appended to
// the write-ahead log before being applied. The caller owns recovery (replay
// into est before registering) and the log's lifetime; use Checkpoint /
// CheckpointAll to rotate snapshots.
func (s *Server) RegisterDurable(name string, est *sthist.Estimator, l *wal.Log) error {
	if l == nil {
		return fmt.Errorf("httpapi: nil wal for %q", name)
	}
	return s.register(name, est, l)
}

func (s *Server) register(name string, est *sthist.Estimator, l *wal.Log) error {
	if name == "" {
		return fmt.Errorf("httpapi: empty table name")
	}
	if est == nil {
		return fmt.Errorf("httpapi: nil estimator for %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("httpapi: table %q already registered", name)
	}
	ent := &entry{
		est:         est,
		log:         l,
		queue:       make(chan *feedbackReq, s.queueDepth),
		writerDone:  make(chan struct{}),
		batchMax:    s.batchMax,
		batchWindow: s.batchWindow,
	}
	s.tables[name] = ent
	s.wireTelemetryLocked(name, ent)
	if s.tracer != nil {
		ent.wireTraceTap()
	}
	go ent.writerLoop()
	return nil
}

// EnableTelemetry attaches the telemetry plane: every table (already
// registered or registered later) gets a flight recorder wired into its
// estimator plus structural gauges (bucket count, tree depth, subspace
// buckets) collected at scrape time, and Handler() additionally mounts
// GET /metrics and GET /debug/trace and instruments every route with
// request counters and latency histograms. Call before serving traffic.
func (s *Server) EnableTelemetry(t *telemetry.Telemetry) {
	if t == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = t
	for name, ent := range s.tables {
		s.wireTelemetryLocked(name, ent)
	}
}

// wireTelemetryLocked connects one table to the telemetry plane. s.mu held.
func (s *Server) wireTelemetryLocked(name string, ent *entry) {
	if s.tel == nil || ent.rec != nil {
		return
	}
	ent.rec = s.tel.Table(name)
	ent.est.SetRecorder(ent.rec)
	reg := s.tel.Registry()
	lbl := telemetry.L("table", name)
	buckets := reg.Gauge("sthist_buckets", "Non-root buckets currently held.", lbl)
	depth := reg.Gauge("sthist_tree_depth", "Maximum depth of the bucket tree.", lbl)
	subspace := reg.Gauge("sthist_subspace_buckets", "Buckets spanning the full domain on >= 1 dimension.", lbl)
	maxBuckets := reg.Gauge("sthist_max_buckets", "Bucket budget.", lbl)
	qdepth := reg.Gauge("sthist_feedback_queue_depth", "Feedback observations waiting for the table's writer.", lbl)
	ent.qmu.Lock()
	ent.batchSize = reg.Histogram("sthist_feedback_batch_size",
		"Observations per feedback group commit.", telemetry.ExponentialBuckets(1, 2, 12), lbl)
	ent.backpressure = reg.Counter("sthist_feedback_backpressure_total",
		"Feedback requests rejected with 429 because the queue was full.", lbl)
	ent.qmu.Unlock()
	est := ent.est
	queue := ent.queue
	reg.RegisterCollector(func() {
		st := est.StatsSnapshot()
		buckets.Set(float64(st.Buckets))
		depth.Set(float64(st.TreeDepth))
		subspace.Set(float64(st.SubspaceBuckets))
		maxBuckets.Set(float64(st.MaxBuckets))
		qdepth.Set(float64(len(queue)))
	})
}

// Telemetry returns the attached telemetry plane, or nil.
func (s *Server) Telemetry() *telemetry.Telemetry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tel
}

// SetDraining flips the readiness state: while draining, /healthz and
// /readyz return 503 so load balancers stop routing new traffic, but
// in-flight and straggler requests are still served. Called at the start of
// graceful shutdown.
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// SetReady flips the not-draining half of readiness. A server marked
// not-ready (recovering, warming a shipped snapshot, on probation) answers
// /readyz and /healthz with 503 so the proxy tier routes around it, while
// /livez keeps answering 200 — the process is alive, just not serving yet.
// Servers start ready.
func (s *Server) SetReady(r bool) { s.unready.Store(!r) }

// readiness returns the current routing state: "ready", "draining" or
// "starting" (not yet ready).
func (s *Server) readiness() string {
	switch {
	case s.draining.Load():
		return "draining"
	case s.unready.Load():
		return "starting"
	default:
		return "ready"
	}
}

// drainRetryAfterSeconds is the Retry-After hint on readiness 503s: drains
// and warm-ups resolve in seconds, so clients and the proxy should re-probe
// soon rather than back off for minutes.
const drainRetryAfterSeconds = "1"

// Handler returns the HTTP handler with all routes mounted, wrapped in
// panic-recovery middleware: a panic that escapes a handler is answered
// with 500 instead of unwinding the whole server. (Estimator panics are
// additionally caught per-table and quarantine the estimator — see
// entry.estimate and entry.applyBatchLocked.)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/tables", s.handleTables)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/feedback", s.handleFeedback)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/livez", s.handleLivez)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	// The span endpoints are always mounted (they answer 404 until a tracer
	// is attached) so debug tooling has one stable URL space.
	mux.HandleFunc("/debug/trace/spans", s.handleTraceSpans)
	mux.HandleFunc("/debug/trace/exemplars", s.handleTraceExemplars)
	var h http.Handler = mux
	if tel := s.Telemetry(); tel != nil {
		mux.Handle("/metrics", tel.MetricsHandler())
		mux.Handle("/debug/trace", tel.TraceHandler())
		h = s.instrumentMiddleware(tel, h)
	}
	// Tracing wraps instrumentation so the route middleware sees the span in
	// the request context and can stamp latency exemplars with its trace ID.
	h = s.traceMiddleware(h)
	return recoverMiddleware(h)
}

// instrumentedRoutes is the fixed label set of the HTTP metrics; anything
// else (404s, probes) is folded into "other" so scrapes cannot explode the
// label cardinality.
var instrumentedRoutes = map[string]bool{
	"/tables": true, "/estimate": true, "/feedback": true,
	"/stats": true, "/healthz": true, "/metrics": true, "/debug/trace": true,
	"/livez": true, "/readyz": true, "/snapshot": true,
	"/debug/trace/spans": true, "/debug/trace/exemplars": true,
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrumentedCodes is the status-code set whose request counters are minted
// at construction, so the serving hot path never takes the registry mutex or
// renders a label string. Anything else (rare codes) falls back to the
// registry's own locked, idempotent lookup.
var instrumentedCodes = []int{
	http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
	http.StatusMethodNotAllowed, http.StatusTooManyRequests,
	http.StatusInternalServerError, http.StatusServiceUnavailable,
}

const httpRequestsHelp = "HTTP requests by route and status code."

// instrumentMiddleware counts requests by route and status code and records
// per-route latency.
func (s *Server) instrumentMiddleware(tel *telemetry.Telemetry, next http.Handler) http.Handler {
	reg := tel.Registry()
	routes := make([]string, 0, len(instrumentedRoutes)+1)
	for route := range instrumentedRoutes {
		routes = append(routes, route)
	}
	routes = append(routes, "other")
	durs := make(map[string]*telemetry.Histogram, len(routes))
	type routeCode struct {
		route string
		code  int
	}
	// Read-only after construction, so steady-state lookups are lock-free.
	counters := make(map[routeCode]*telemetry.Counter, len(routes)*len(instrumentedCodes))
	for _, route := range routes {
		durs[route] = reg.Histogram("sthist_http_request_duration_seconds",
			"HTTP request latency by route.", telemetry.LatencyBuckets(), telemetry.L("route", route))
		for _, code := range instrumentedCodes {
			counters[routeCode{route, code}] = reg.Counter("sthist_http_requests_total", httpRequestsHelp,
				telemetry.Labels{{Key: "route", Value: route}, {Key: "code", Value: strconv.Itoa(code)}})
		}
	}
	s.mu.Lock()
	s.routeDurs = durs
	s.mu.Unlock()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := r.URL.Path
		if !instrumentedRoutes[route] {
			route = "other"
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		d := time.Since(start)
		// A retained trace's ID rides the latency histogram as an exemplar,
		// linking a bad bucket to a concrete /debug/trace/spans lookup.
		if sp := trace.FromContext(r.Context()); exemplarKeep(s.Tracer(), sp, sw.code, d) {
			durs[route].ObserveEx(d.Seconds(), sp.TraceID())
		} else {
			durs[route].Observe(d.Seconds())
		}
		c := counters[routeCode{route, sw.code}]
		if c == nil {
			c = reg.Counter("sthist_http_requests_total", httpRequestsHelp,
				telemetry.Labels{{Key: "route", Value: route}, {Key: "code", Value: strconv.Itoa(sw.code)}})
		}
		c.Inc()
	})
}

// recoverMiddleware converts an escaped panic into a 500 response.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				log.Printf("httpapi: panic serving %s %s: %v", r.Method, r.URL.Path, p)
				// The handler may have written already; this is best-effort.
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) lookup(name string) (*entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ent, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("unknown table %q", name)
	}
	return ent, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // client gone: nothing useful to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, names)
}

// queryRequest is the shared body of /estimate and /feedback.
type queryRequest struct {
	Table  string    `json:"table"`
	Lo     []float64 `json:"lo"`
	Hi     []float64 `json:"hi"`
	Actual *float64  `json:"actual,omitempty"` // feedback only
}

func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (*entry, geom.Rect, *queryRequest, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	// Unknown fields are client bugs (a misspelled "actual" would otherwise
	// silently drop the observation); reject them loudly.
	dec.DisallowUnknownFields()
	var req queryRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, geom.Rect{}, nil, fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, geom.Rect{}, nil, fmt.Errorf("decoding request: %w", err)
	}
	ent, err := s.lookup(req.Table)
	if err != nil {
		return nil, geom.Rect{}, nil, err
	}
	q, err := geom.NewRect(req.Lo, req.Hi)
	if err != nil {
		return nil, geom.Rect{}, nil, err
	}
	if q.Dims() != ent.est.Domain().Dims() {
		return nil, geom.Rect{}, nil, fmt.Errorf("query has %d dimensions, table %q has %d", q.Dims(), req.Table, ent.est.Domain().Dims())
	}
	return ent, q, &req, nil
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	ent, q, _, err := s.decodeQuery(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	est, sel, err := ent.estimate(q)
	d := time.Since(start)
	ent.rec.RecordEstimate(d)
	if sp := trace.FromContext(r.Context()); sp != nil {
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		sp.Event("estimate.compute", start, d, errMsg)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{
		"estimate":    est,
		"selectivity": sel,
	})
}

// estimate serves an estimate, quarantining the table if the histogram
// panics instead of propagating the panic to the server.
func (e *entry) estimate(q geom.Rect) (est, sel float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			e.est.Quarantine(fmt.Errorf("panic during estimate: %v", p))
			e.jmu.Lock()
			e.panicRecovered++
			e.jmu.Unlock()
			err = fmt.Errorf("estimate failed; table degraded to last good snapshot")
		}
	}()
	return e.est.Estimate(q), e.est.Selectivity(q), nil
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	ent, q, req, err := s.decodeQuery(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Actual == nil {
		ent.rec.RecordRejected()
		writeError(w, http.StatusBadRequest, fmt.Errorf("feedback needs an \"actual\" row count"))
		return
	}
	actual := *req.Actual
	if math.IsNaN(actual) || math.IsInf(actual, 0) || actual < 0 {
		ent.rec.RecordRejected()
		writeError(w, http.StatusBadRequest, fmt.Errorf("feedback \"actual\" must be finite and non-negative, got %g", actual))
		return
	}
	// Full validation (domain overlap etc.) before the record is logged:
	// the WAL must only ever contain replayable feedback.
	if err := ent.est.ValidateFeedback(q, actual); err != nil {
		ent.rec.RecordRejected()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	seq, err := ent.enqueue(q, actual, trace.FromContext(r.Context()))
	switch {
	case errors.Is(err, errQueueFull):
		ent.notePressure()
		// The queue drains at group-commit speed; a second is a generous
		// upper bound for a full queue to clear.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, errTableDraining):
		// Like the 429 path, tell well-behaved clients when to come back:
		// a drain either finishes (the node exits; they reroute) or the
		// node returns to readiness shortly.
		w.Header().Set("Retry-After", drainRetryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := map[string]any{"ok": true}
	if seq > 0 {
		resp["seq"] = seq
	}
	writeJSON(w, http.StatusOK, resp)
}

// Checkpoint snapshots the named table's histogram and rotates its WAL.
// Tables without durability are a no-op.
func (s *Server) Checkpoint(name string) error {
	ent, err := s.lookup(name)
	if err != nil {
		return err
	}
	return ent.checkpoint()
}

func (e *entry) checkpoint() error {
	e.jmu.Lock()
	defer e.jmu.Unlock()
	if e.log == nil {
		return nil
	}
	start := time.Now()
	var buf bytes.Buffer
	if err := e.est.SaveHistogram(&buf); err != nil {
		return fmt.Errorf("snapshotting: %w", err)
	}
	if err := e.log.Checkpoint(buf.Bytes()); err != nil {
		return err
	}
	e.sinceCkpt = 0
	e.lastCkptDur = time.Since(start)
	e.lastCkptAt = time.Now()
	return nil
}

// CheckpointAll checkpoints every durable table, returning the first error
// after attempting all of them.
func (s *Server) CheckpointAll() error {
	var first error
	for _, name := range s.names() {
		if err := s.Checkpoint(name); err != nil && first == nil {
			first = fmt.Errorf("checkpointing %q: %w", name, err)
		}
	}
	return first
}

// CheckpointDue checkpoints the durable tables that have logged at least
// minRecords since their last checkpoint, or whose WAL is in a failed state
// (a successful checkpoint rotates to a fresh segment and heals it).
func (s *Server) CheckpointDue(minRecords int) error {
	var first error
	for _, name := range s.names() {
		ent, err := s.lookup(name)
		if err != nil {
			continue
		}
		ent.jmu.Lock()
		due := ent.log != nil && (ent.sinceCkpt >= minRecords || ent.log.Err() != nil)
		ent.jmu.Unlock()
		if !due {
			continue
		}
		if err := ent.checkpoint(); err != nil && first == nil {
			first = fmt.Errorf("checkpointing %q: %w", name, err)
		}
	}
	return first
}

func (s *Server) names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// walStats is the durability block of /stats and /healthz.
type walStats struct {
	Enabled          bool    `json:"enabled"`
	LastSeq          uint64  `json:"last_seq,omitempty"`
	AppendErrors     int     `json:"append_errors"`
	RecordsSinceCkpt int     `json:"records_since_checkpoint"`
	Failed           bool    `json:"failed"`
	FailedError      string  `json:"failed_error,omitempty"`
	PanicsRecovered  int     `json:"panics_recovered"`
	LastCkptSeconds  float64 `json:"last_checkpoint_seconds,omitempty"` // duration of the last checkpoint
	LastCkptAge      float64 `json:"last_checkpoint_age_seconds,omitempty"`
}

func (e *entry) walStats() walStats {
	e.jmu.Lock()
	defer e.jmu.Unlock()
	ws := walStats{AppendErrors: e.appendErrors, PanicsRecovered: e.panicRecovered}
	if e.log != nil {
		ws.Enabled = true
		ws.LastSeq = e.log.LastSeq()
		ws.RecordsSinceCkpt = e.sinceCkpt
		if err := e.log.Err(); err != nil {
			ws.Failed = true
			ws.FailedError = err.Error()
		}
		if !e.lastCkptAt.IsZero() {
			ws.LastCkptSeconds = e.lastCkptDur.Seconds()
			ws.LastCkptAge = time.Since(e.lastCkptAt).Seconds()
		}
	}
	return ws
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	ent, err := s.lookup(r.URL.Query().Get("table"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// StatsSnapshot copies the counters under the estimator's read lock;
	// reading h.Stats fields directly here would race with feedback rounds.
	st := ent.est.StatsSnapshot()
	// The domain lets clients (cmd/sthload, dashboards) generate valid
	// queries without out-of-band schema knowledge.
	dom := ent.est.Domain()
	writeJSON(w, http.StatusOK, map[string]any{
		"domain":               map[string][]float64{"lo": dom.Lo, "hi": dom.Hi},
		"buckets":              st.Buckets,
		"max_buckets":          st.MaxBuckets,
		"tree_depth":           st.TreeDepth,
		"queries":              st.Queries,
		"drills":               st.Drills,
		"skipped_exact_drills": st.SkippedExactDrills,
		"parent_child_merges":  st.ParentChildMerges,
		"sibling_merges":       st.SiblingMerges,
		"subspace_buckets":     st.SubspaceBuckets,
		"health":               ent.est.Health(),
		"wal":                  ent.walStats(),
		"drift":                ent.driftStats(),
	})
}

// handleHealthz is the detailed health report: 200 while serving, 503 while
// not ready (draining or recovering). The body details per-table degradation
// so dashboards can alert on quarantined tables or failing WALs even though
// the server keeps answering. Routing decisions should use the cheaper
// /readyz; liveness checks use /livez — a node that is live but not ready
// (warming a shipped snapshot, draining) answers 200 there and 503 here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	status := http.StatusOK
	overall := "ok"
	if rd := s.readiness(); rd != "ready" {
		status, overall = http.StatusServiceUnavailable, rd
		w.Header().Set("Retry-After", drainRetryAfterSeconds)
	}
	type tableHealth struct {
		Health sthist.Health `json:"health"`
		WAL    walStats      `json:"wal"`
		Drift  driftStats    `json:"drift"`
	}
	tables := make(map[string]tableHealth)
	for _, name := range s.names() {
		ent, err := s.lookup(name)
		if err != nil {
			continue
		}
		th := tableHealth{Health: ent.est.Health(), WAL: ent.walStats(), Drift: ent.driftStats()}
		if overall == "ok" && (th.Health.State != "ok" || th.WAL.Failed) {
			overall = "degraded"
		}
		tables[name] = th
	}
	writeJSON(w, status, map[string]any{"status": overall, "live": true, "tables": tables})
}

// handleLivez is the liveness probe: 200 whenever the process can serve
// HTTP at all. It deliberately ignores draining, recovery and per-table
// degradation — restarting a node because it is draining would turn every
// graceful shutdown into a crash loop.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "live"})
}

// handleReadyz is the routing probe: 200 only when the node should receive
// traffic. Draining (graceful shutdown) and starting (recovering or warming
// a shipped snapshot) both answer 503 + Retry-After so the proxy tier routes
// around the node while /livez still reports it alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	rd := s.readiness()
	if rd != "ready" {
		w.Header().Set("Retry-After", drainRetryAfterSeconds)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": rd})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": rd})
}

// handleSnapshot ships the table's durable state (checkpoint MANIFEST +
// snapshot + WAL tail) as one self-verifying archive — the transport for
// warm replica promotion (see internal/wal ship protocol and sthistd
// -warm-from). Tables without durability have no portable state to ship and
// answer 404.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	ent, err := s.lookup(r.URL.Query().Get("table"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, lastSeq, err := ent.shipArchive()
	switch {
	case errors.Is(err, errNotDurable):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("X-Sthist-Last-Seq", strconv.FormatUint(lastSeq, 10))
	_, _ = w.Write(data) // client gone: nothing useful to do
}

var errNotDurable = errors.New("table has no durable state to ship (no -data-dir)")

// shipArchive buffers the WAL archive under jmu, so the cut is consistent
// with the feedback pipeline: no group commit or checkpoint rotation can
// interleave with the archived state. Buffering (rather than streaming to
// the client) keeps the jmu hold time bounded by local I/O, not by the
// replica's network speed.
func (e *entry) shipArchive() ([]byte, uint64, error) {
	e.jmu.Lock()
	defer e.jmu.Unlock()
	if e.log == nil {
		return nil, 0, errNotDurable
	}
	var buf bytes.Buffer
	if err := e.log.WriteArchive(&buf); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), e.log.LastSeq(), nil
}
