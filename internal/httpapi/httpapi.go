// Package httpapi exposes a catalog of self-tuning estimators over HTTP, so
// non-Go clients (an optimizer prototype, a notebook, a dashboard) can ask
// for cardinality estimates and stream query feedback back. JSON in, JSON
// out; one estimator per registered table.
//
//	GET  /tables                         -> ["orders", "sensors"]
//	POST /estimate {"table","lo","hi"}   -> {"estimate","selectivity"}
//	POST /feedback {"table","lo","hi","actual"} -> {"ok":true}
//	GET  /stats?table=orders             -> histogram maintenance counters
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"sthist"
	"sthist/internal/geom"
)

// Server routes estimator traffic. Register tables before serving; handlers
// are safe for concurrent use (the Estimator itself is synchronized).
type Server struct {
	mu     sync.RWMutex
	tables map[string]*sthist.Estimator
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{tables: make(map[string]*sthist.Estimator)}
}

// Register adds an estimator under the given table name.
func (s *Server) Register(name string, est *sthist.Estimator) error {
	if name == "" {
		return fmt.Errorf("httpapi: empty table name")
	}
	if est == nil {
		return fmt.Errorf("httpapi: nil estimator for %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("httpapi: table %q already registered", name)
	}
	s.tables[name] = est
	return nil
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/tables", s.handleTables)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/feedback", s.handleFeedback)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) lookup(name string) (*sthist.Estimator, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	est, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("unknown table %q", name)
	}
	return est, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // client gone: nothing useful to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, names)
}

// queryRequest is the shared body of /estimate and /feedback.
type queryRequest struct {
	Table  string    `json:"table"`
	Lo     []float64 `json:"lo"`
	Hi     []float64 `json:"hi"`
	Actual *float64  `json:"actual,omitempty"` // feedback only
}

func (s *Server) decodeQuery(r *http.Request) (*sthist.Estimator, geom.Rect, *queryRequest, error) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, geom.Rect{}, nil, fmt.Errorf("decoding request: %w", err)
	}
	est, err := s.lookup(req.Table)
	if err != nil {
		return nil, geom.Rect{}, nil, err
	}
	q, err := geom.NewRect(req.Lo, req.Hi)
	if err != nil {
		return nil, geom.Rect{}, nil, err
	}
	if q.Dims() != est.Domain().Dims() {
		return nil, geom.Rect{}, nil, fmt.Errorf("query has %d dimensions, table %q has %d", q.Dims(), req.Table, est.Domain().Dims())
	}
	return est, q, &req, nil
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	est, q, _, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{
		"estimate":    est.Estimate(q),
		"selectivity": est.Selectivity(q),
	})
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	est, q, req, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Actual == nil || *req.Actual < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("feedback needs a non-negative \"actual\" row count"))
		return
	}
	est.Feedback(q, *req.Actual)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	est, err := s.lookup(r.URL.Query().Get("table"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	h := est.Histogram()
	writeJSON(w, http.StatusOK, map[string]int{
		"buckets":              h.BucketCount(),
		"max_buckets":          h.MaxBuckets(),
		"queries":              h.Stats.Queries,
		"drills":               h.Stats.Drills,
		"skipped_exact_drills": h.Stats.SkippedExactDrills,
		"parent_child_merges":  h.Stats.ParentChildMerges,
		"sibling_merges":       h.Stats.SiblingMerges,
		"subspace_buckets":     len(h.SubspaceBuckets()),
	})
}
