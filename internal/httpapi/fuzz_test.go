package httpapi

import (
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"sthist"
)

// FuzzDecodeQuery drives the shared request decoder of /estimate and
// /feedback with arbitrary bodies. The seed corpus replays in the normal
// test suite (`go test` runs fuzz targets over their corpus), so every CI
// run re-checks the interesting shapes; `go test -fuzz=FuzzDecodeQuery`
// explores further.
func FuzzDecodeQuery(f *testing.F) {
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		f.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 800; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	est, err := sthist.Open(tab, sthist.Options{Buckets: 15, Seed: 2})
	if err != nil {
		f.Fatal(err)
	}
	s := NewServer()
	if err := s.Register("orders", est); err != nil {
		f.Fatal(err)
	}

	seeds := []string{
		`{"table":"orders","lo":[0,0],"hi":[1,1]}`,
		`{"table":"orders","lo":[0,0],"hi":[1,1],"actual":12}`,
		`{"table":"orders","lo":[0,0],"hi":[1,1],"actual":-1}`,
		`{"table":"orders","lo":[0,0],"hi":[1,1],"actual":1e999}`,
		`{"table":"orders","lo":[1,1],"hi":[0,0]}`,
		`{"table":"orders","lo":[0],"hi":[1]}`,
		`{"table":"orders","lo":[],"hi":[]}`,
		`{"table":"nope","lo":[0,0],"hi":[1,1]}`,
		`{"table":"orders","lo":[0,0],"hi":[1,1],"extra":true}`,
		`{"table":"orders","lo":[0,0]`,
		`[]`,
		`null`,
		``,
		`{"table":"orders","lo":[null,0],"hi":[1,1]}`,
		`{"table":"orders","lo":[-1e308,-1e308],"hi":[1e308,1e308],"actual":0}`,
		strings.Repeat(`[`, 1000),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("POST", "/feedback", strings.NewReader(string(body)))
		ent, q, req, err := s.decodeQuery(w, r)
		if err != nil {
			return // rejected: the invariant is just "no panic"
		}
		// Accepted requests must be fully usable downstream.
		if ent == nil || req == nil {
			t.Fatalf("nil entry/request without error for %q", body)
		}
		if q.Dims() != ent.est.Domain().Dims() {
			t.Fatalf("accepted rect with %d dims for %d-dim table: %q", q.Dims(), ent.est.Domain().Dims(), body)
		}
		for d := 0; d < q.Dims(); d++ {
			if math.IsNaN(q.Lo[d]) || math.IsNaN(q.Hi[d]) || q.Lo[d] > q.Hi[d] {
				t.Fatalf("accepted malformed rect %v for %q", q, body)
			}
		}
		if req.Actual != nil {
			// The decoder leaves actual-validation to the handler, but the
			// value must at least have round-tripped through JSON (finite).
			if math.IsNaN(*req.Actual) || math.IsInf(*req.Actual, 0) {
				t.Fatalf("non-finite actual survived JSON decoding: %q", body)
			}
		}
	})
}
