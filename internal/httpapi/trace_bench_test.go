package httpapi

import (
	"math/rand"
	"testing"

	"sthist"
	"sthist/internal/geom"
	"sthist/internal/telemetry"
	"sthist/internal/trace"
)

// BenchmarkFeedbackTrace measures what always-on tracing at sample rate 1
// costs the feedback hot path: a root span per request, a queue-wait child,
// the per-batch stage events, and the ring flush at End. This is the WORST
// case — production head-samples a small fraction — so the bench-trace guard
// holds the on/off ratio at 1.05 via results/BENCH_trace.json.
func BenchmarkFeedbackTrace(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "trace=off"
		if on {
			name = "trace=on"
		}
		b.Run(name, func(b *testing.B) {
			tab, err := sthist.NewTable("x", "y")
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 2000; i++ {
				tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
			}
			est, err := sthist.Open(tab, sthist.Options{Buckets: 100, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			s := NewServer()
			// Telemetry is on in both arms so the guard isolates tracing's
			// delta, not telemetry's.
			s.EnableTelemetry(telemetry.New(telemetry.Options{}))
			if err := s.Register("orders", est); err != nil {
				b.Fatal(err)
			}
			var tr *trace.Tracer
			if on {
				tr = trace.New(trace.Options{Service: "bench", SampleRate: 1, Seed: 3})
				s.SetTracer(tr)
			}
			ent, err := s.lookup("orders")
			if err != nil {
				b.Fatal(err)
			}

			// A cycle of fixed queries so both arms replay identical work.
			wrng := rand.New(rand.NewSource(23))
			queries := make([]geom.Rect, 64)
			for i := range queries {
				x, y := wrng.Float64()*800, wrng.Float64()*800
				queries[i] = geom.MustRect(
					[]float64{x, y},
					[]float64{x + 50 + wrng.Float64()*100, y + 50 + wrng.Float64()*100},
				)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sp *trace.Span
				if tr != nil {
					sp = tr.StartRoot("node /feedback")
				}
				if _, err := ent.enqueue(queries[i%len(queries)], float64(5+i%40), sp); err != nil {
					b.Fatal(err)
				}
				sp.End()
			}
			b.StopTimer()
			s.DrainFeedback()
		})
	}
}
