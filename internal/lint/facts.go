package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the cross-package fact layer of the typed driver. Analyzers
// running over one package can export facts about that package's functions
// ("this function appends to the WAL", "this goroutine body is stoppable",
// "this function acquires lock X"); analyzers running over a *dependent*
// package later in the load order import those facts to reason across the
// package boundary without re-analyzing foreign source.
//
// Facts are keyed by (check, symbol, fact-name). Symbols are stable strings
// ("sthist/internal/wal.(Log).Append") rather than types.Object identities,
// because the same function is a source-checked object in its home package
// and an export-data object in its importers — the string form is identical
// in both views.
//
// The load order makes this sound: Load returns packages in the go command's
// dependency-first order, so by the time a package is analyzed every fact
// its dependencies can export has already been recorded.

// factStore collects exported facts for one Run, segregated per check so
// analyzers cannot observe each other's facts.
type factStore struct {
	marks map[factKey]bool
}

type factKey struct {
	check  string
	symbol string
	fact   string
}

func newFactStore() *factStore {
	return &factStore{marks: make(map[factKey]bool)}
}

// ExportFact records fact about symbol for the running check. Exporting the
// same fact twice is harmless.
func (p *Pass) ExportFact(symbol, fact string) {
	if symbol == "" {
		return
	}
	p.facts.marks[factKey{p.check, symbol, fact}] = true
}

// ImportFact reports whether fact was exported about symbol by this check,
// in this package or any previously analyzed one.
func (p *Pass) ImportFact(symbol, fact string) bool {
	return p.facts.marks[factKey{p.check, symbol, fact}]
}

// FactSymbols returns every symbol carrying fact for the running check, in
// sorted order (deterministic for Finish-phase graph walks).
func (p *Pass) FactSymbols(fact string) []string {
	var out []string
	for k := range p.facts.marks {
		if k.check == p.check && k.fact == fact {
			out = append(out, k.symbol)
		}
	}
	sort.Strings(out)
	return out
}

// SymbolOf renders obj as a stable cross-package symbol string:
// "pkgpath.Name" for package-level functions and "pkgpath.(Type).Name" for
// methods (pointer receivers are stripped). Objects without a package (nil,
// builtins) get "".
func SymbolOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		return "" // interface or anonymous receiver: no stable symbol
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// calleeObject resolves the types.Object a call expression dispatches to
// (function, method, or nil for indirect/builtin calls).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}
