package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is the committed ledger of known findings. CI fails on any
// diagnostic NOT in the baseline, so new violations cannot land while the
// legacy ones burn down; removing entries is the only direction the file is
// allowed to move in review. Entries are matched as a multiset of
// (check, repo-relative file, message) — line numbers are deliberately
// excluded so unrelated edits above a finding do not churn the ledger.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one tolerated finding.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"` // slash-separated, relative to the repo root
	Message string `json:"message"`
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// so `sthlint -baseline` is safe to wire up before the file exists.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes diags (relativized against root) as a baseline file,
// sorted so regeneration is deterministic and diffs stay reviewable.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	b := Baseline{Findings: make([]BaselineEntry, 0, len(diags))}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineEntry{
			Check: d.Check, File: RelFile(root, d.File), Message: d.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter returns the diagnostics not covered by the baseline, plus the number
// of baseline entries that no longer match anything (fixed findings whose
// entries should be deleted). Matching is multiset-style: one entry absorbs
// one finding.
func (b *Baseline) Filter(root string, diags []Diagnostic) (fresh []Diagnostic, stale int) {
	remaining := make(map[BaselineEntry]int, len(b.Findings))
	for _, e := range b.Findings {
		remaining[e]++
	}
	for _, d := range diags {
		key := BaselineEntry{Check: d.Check, File: RelFile(root, d.File), Message: d.Message}
		if remaining[key] > 0 {
			remaining[key]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, n := range remaining {
		stale += n
	}
	return fresh, stale
}

// RelFile renders file relative to root with forward slashes (the form
// baselines and SARIF artifacts store, stable across machines).
func RelFile(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
