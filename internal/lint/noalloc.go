package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc returns the analyzer enforcing the //sthlint:noalloc contract: a
// function carrying the marker in its doc comment must not contain syntax
// that heap-allocates on every execution. The check is intraprocedural by
// design — amortized-growth helpers like geom's setDims may allocate on the
// cold path and are therefore not annotated; the annotated kernels may call
// them, but may not themselves contain:
//
//   - make / new / composite literals,
//   - append (growth is data-dependent; annotated code uses preallocated
//     scratch written by index instead),
//   - function literals (closure environments escape),
//   - go statements,
//   - conversions of concrete values to interface types (boxing), including
//     implicit ones at call arguments, assignments and returns,
//   - calls to variadic functions that materialize an argument slice,
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions.
func NoAlloc() *Analyzer {
	return &Analyzer{
		Name: "noalloc",
		Doc:  "functions marked //sthlint:noalloc must not contain allocating constructs",
		Run:  runNoAlloc,
	}
}

func runNoAlloc(pass *Pass) {
	for _, fn := range pass.FuncDecls() {
		if fn.Body == nil || !funcDirective(fn, "noalloc") {
			continue
		}
		nc := &noallocChecker{pass: pass, fn: fn}
		ast.Inspect(fn.Body, nc.visit)
	}
}

type noallocChecker struct {
	pass *Pass
	fn   *ast.FuncDecl
}

func (nc *noallocChecker) bad(pos token.Pos, format string, args ...any) {
	nc.pass.Reportf("noalloc", pos, format, args...)
}

func (nc *noallocChecker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CompositeLit:
		nc.bad(n.Pos(), "%s: composite literal allocates", nc.fn.Name.Name)
		return false
	case *ast.FuncLit:
		nc.bad(n.Pos(), "%s: function literal allocates its closure", nc.fn.Name.Name)
		return false
	case *ast.GoStmt:
		nc.bad(n.Pos(), "%s: go statement allocates a goroutine", nc.fn.Name.Name)
	case *ast.CallExpr:
		nc.checkCall(n)
	case *ast.AssignStmt:
		nc.checkAssign(n)
	case *ast.ReturnStmt:
		nc.checkReturn(n)
	case *ast.BinaryExpr:
		nc.checkConcat(n)
	}
	return true
}

// checkCall flags allocating builtins, boxing call arguments, variadic-slice
// materialization, and allocating conversions.
func (nc *noallocChecker) checkCall(call *ast.CallExpr) {
	name := nc.fn.Name.Name
	// Builtins: make, new, append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := nc.pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				nc.bad(call.Pos(), "%s: make allocates", name)
			case "new":
				nc.bad(call.Pos(), "%s: new allocates", name)
			case "append":
				nc.bad(call.Pos(), "%s: append may grow and allocate; write into preallocated scratch instead", name)
			}
			return
		}
	}
	tv, ok := nc.pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	// Conversion T(x): interface boxing and string<->bytes copies.
	if tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst := tv.Type
		src := nc.pass.Info.Types[call.Args[0]].Type
		nc.checkBox(call.Args[0].Pos(), dst, call.Args[0])
		if isStringByteConversion(dst, src) {
			nc.bad(call.Pos(), "%s: conversion between string and byte/rune slice copies and allocates", name)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	// Implicit boxing at parameters, and variadic slice materialization.
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(np - 1).Type() // passing s... forwards the slice
			} else {
				pt = params.At(np - 1).Type().(*types.Slice).Elem()
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt != nil {
			nc.checkBoxTo(arg.Pos(), pt, arg)
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= np {
		nc.bad(call.Pos(), "%s: call to variadic function materializes an argument slice", name)
	}
}

// checkAssign flags boxing on assignment into interface-typed destinations.
func (nc *noallocChecker) checkAssign(as *ast.AssignStmt) {
	n := len(as.Rhs)
	if n != len(as.Lhs) {
		return // comma-ok / multi-value call; conversions there are rare
	}
	for i := 0; i < n; i++ {
		lt := nc.pass.Info.Types[as.Lhs[i]].Type
		if lt == nil {
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := nc.pass.Info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		if lt != nil {
			nc.checkBoxTo(as.Rhs[i].Pos(), lt, as.Rhs[i])
		}
	}
}

// checkReturn flags boxing at return sites.
func (nc *noallocChecker) checkReturn(ret *ast.ReturnStmt) {
	sigTv, ok := nc.pass.Info.Defs[nc.fn.Name]
	if !ok {
		return
	}
	sig, ok := sigTv.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		nc.checkBoxTo(res.Pos(), sig.Results().At(i).Type(), res)
	}
}

// checkConcat flags non-constant string concatenation.
func (nc *noallocChecker) checkConcat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv := nc.pass.Info.Types[b]
	if tv.Type == nil || tv.Value != nil {
		return // non-string or constant-folded
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		nc.bad(b.Pos(), "%s: string concatenation allocates", nc.fn.Name.Name)
	}
}

// checkBoxTo flags expr when assigning it to an interface-typed destination
// boxes a concrete value.
func (nc *noallocChecker) checkBoxTo(pos token.Pos, dst types.Type, expr ast.Expr) {
	if !isInterface(dst) {
		return
	}
	nc.checkBox(pos, dst, expr)
}

func (nc *noallocChecker) checkBox(pos token.Pos, dst types.Type, expr ast.Expr) {
	if !isInterface(dst) {
		return
	}
	tv := nc.pass.Info.Types[expr]
	if tv.Type == nil || isInterface(tv.Type) {
		return // interface-to-interface is a pointer copy
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	nc.bad(pos, "%s: converting %s to interface %s boxes and may allocate",
		nc.fn.Name.Name, types.TypeString(tv.Type, types.RelativeTo(nc.pass.Types)),
		types.TypeString(dst, types.RelativeTo(nc.pass.Types)))
}

// isStringByteConversion reports a conversion between string and []byte or
// []rune in either direction.
func isStringByteConversion(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	return (isStringType(dst) && isByteOrRuneSlice(src)) || (isStringType(src) && isByteOrRuneSlice(dst))
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (basic.Kind() == types.Uint8 || basic.Kind() == types.Int32)
}
