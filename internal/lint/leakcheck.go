package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The leakcheck analyzer audits every `go` statement for a reachable stop,
// so drains and failover cannot strand goroutines. A goroutine body is
// considered stoppable when it:
//
//   - selects or receives on a context's Done channel,
//   - receives from (or ranges over) any channel — something can close it,
//   - calls Done on a sync.WaitGroup that the same package Waits on,
//   - runs a *http.Server ListenAndServe that the package Shuts down or
//     Closes,
//   - or is finite: no loops, and every channel send targets a channel
//     made with a buffer in the enclosing function (a bounded fan-out
//     worker that exits on its own).
//
// Bodies are resolved through function literals, local closure variables
// (`attempt := func(...) {...}; go attempt(...)`), same-package function
// and method declarations, and cross-package targets via the "stoppable"
// fact.
//
// A second rule audits the other side of the contract: a shutdown method
// (Stop/Close/Shutdown/Drain/Wait) that receives from a join channel inside
// a select with a default clause returns without actually waiting — the
// goroutine may still be running when the caller proceeds to tear state
// down.
func LeakCheck() *Analyzer {
	return &Analyzer{
		Name: "leakcheck",
		Doc:  "every go statement needs a reachable stop (ctx.Done, channel close, joined WaitGroup); shutdown methods must block on the join",
		Run:  runLeakCheck,
	}
}

func runLeakCheck(pass *Pass) {
	// Export stoppability facts for every declared function first, so
	// cross-package `go pkg.Fn()` spawns can consult them.
	for _, fd := range pass.FuncDecls() {
		if fd.Body == nil {
			continue
		}
		if bodyHasStopEvidence(pass, fd.Body, nil) {
			if sym := SymbolOf(pass.Info.Defs[fd.Name]); sym != "" {
				pass.ExportFact(sym, "stoppable")
			}
		}
	}
	for _, fd := range pass.FuncDecls() {
		if fd.Body == nil {
			continue
		}
		checkShutdownJoin(pass, fd)
		enclosing := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, enclosing, gs)
			return true
		})
	}
}

func checkGoStmt(pass *Pass, enclosing *ast.FuncDecl, gs *ast.GoStmt) {
	body, foreignSym := resolveGoTarget(pass, enclosing, gs.Call)
	if body == nil {
		if foreignSym != "" && pass.ImportFact(foreignSym, "stoppable") {
			return
		}
		if foreignSym != "" {
			pass.Reportf("leakcheck", gs.Pos(), "goroutine target %s is not known to be stoppable; give it a ctx.Done/stop-channel exit or join it on shutdown", foreignSym)
		}
		// Unresolvable dynamic call (function value parameter): nothing
		// sound to say without whole-program pointer analysis.
		return
	}
	if !bodyHasStopEvidence(pass, body, enclosing) {
		pass.Reportf("leakcheck", gs.Pos(), "goroutine has no reachable stop (no ctx.Done or channel receive, no joined WaitGroup, unbounded body); a drain or failover cannot end it")
	}
}

// resolveGoTarget finds the body the go statement runs: a function literal,
// a local closure variable, or a same-package declaration. For resolvable
// cross-package targets it returns the symbol instead.
func resolveGoTarget(pass *Pass, enclosing *ast.FuncDecl, call *ast.CallExpr) (*ast.BlockStmt, string) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fn.Body, ""
	case *ast.Ident:
		obj := pass.Info.Uses[fn]
		if obj == nil {
			return nil, ""
		}
		if _, isVar := obj.(*types.Var); isVar {
			return closureBody(pass, enclosing, obj), ""
		}
		return declBodyOrSymbol(pass, obj)
	case *ast.SelectorExpr:
		var obj types.Object
		if s, ok := pass.Info.Selections[fn]; ok {
			obj = s.Obj()
		} else {
			obj = pass.Info.Uses[fn.Sel]
		}
		if obj == nil {
			return nil, ""
		}
		return declBodyOrSymbol(pass, obj)
	}
	return nil, ""
}

// declBodyOrSymbol maps a function object to its in-package declaration
// body, or to its cross-package symbol for the fact lookup.
func declBodyOrSymbol(pass *Pass, obj types.Object) (*ast.BlockStmt, string) {
	if obj.Pkg() == pass.Types {
		for _, fd := range pass.FuncDecls() {
			if pass.Info.Defs[fd.Name] == obj {
				return fd.Body, ""
			}
		}
		return nil, ""
	}
	return nil, SymbolOf(obj)
}

// closureBody finds `name := func(...) {...}` in the enclosing function for
// a local function-valued variable.
func closureBody(pass *Pass, enclosing *ast.FuncDecl, obj types.Object) *ast.BlockStmt {
	if enclosing == nil || enclosing.Body == nil {
		return nil
	}
	var body *ast.BlockStmt
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || (pass.Info.Defs[id] != obj && pass.Info.Uses[id] != obj) {
				continue
			}
			if lit, ok := ast.Unparen(assign.Rhs[i]).(*ast.FuncLit); ok {
				body = lit.Body
			}
		}
		return body == nil
	})
	return body
}

// bodyHasStopEvidence implements the stoppability rules. enclosing is the
// spawning function (nil when classifying a declaration in isolation) —
// needed to resolve locally made buffered channels.
func bodyHasStopEvidence(pass *Pass, body *ast.BlockStmt, enclosing *ast.FuncDecl) bool {
	stoppable := false
	hasLoop := false
	allSendsBounded := true
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if r, ok := n.(*ast.RangeStmt); ok && isChannelType(pass.Info.Types[r.X].Type) {
				stoppable = true // ranging a channel ends when it closes
			}
			hasLoop = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				stoppable = true
			}
		case *ast.SelectStmt:
			for _, clause := range x.Body.List {
				if comm, ok := clause.(*ast.CommClause); ok && comm.Comm != nil {
					if _, isSend := comm.Comm.(*ast.SendStmt); !isSend {
						stoppable = true
					}
				}
			}
		case *ast.SendStmt:
			if !isLocallyBufferedChan(pass, enclosing, body, x.Chan) {
				allSendsBounded = false
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done":
					if s, ok := pass.Info.Selections[sel]; ok && namedTypeIn(s.Recv(), "sync", "WaitGroup") {
						if packageWaitsOn(pass, sel.X) {
							stoppable = true
						}
					}
				case "ListenAndServe", "ListenAndServeTLS", "Serve":
					if s, ok := pass.Info.Selections[sel]; ok && namedTypeIn(s.Recv(), "http", "Server") {
						if packageStopsServer(pass) {
							stoppable = true
						}
					}
				}
			}
		}
		return true
	})
	if stoppable {
		return true
	}
	// Finite fire-and-forget: no loops and only bounded sends.
	return !hasLoop && allSendsBounded
}

// isChannelType reports whether t is (or points at) a channel.
func isChannelType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isLocallyBufferedChan reports whether ch resolves to a channel made with
// a buffer in the goroutine body or its enclosing function — sends to it
// cannot block past the buffer, so the goroutine finishes on its own.
func isLocallyBufferedChan(pass *Pass, enclosing *ast.FuncDecl, body *ast.BlockStmt, ch ast.Expr) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	buffered := false
	check := func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || pass.Info.Defs[lid] != obj {
				continue
			}
			if call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr); ok {
				if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "make" && len(call.Args) >= 2 {
					buffered = true
				}
			}
		}
		return !buffered
	}
	if enclosing != nil && enclosing.Body != nil {
		ast.Inspect(enclosing.Body, check)
	} else {
		ast.Inspect(body, check)
	}
	return buffered
}

// packageWaitsOn reports whether the package contains a Wait() call on a
// WaitGroup with the same textual base as wgExpr (e.g. wg.Done in the
// goroutine, wg.Wait in Close).
func packageWaitsOn(pass *Pass, wgExpr ast.Expr) bool {
	want := exprString(wgExpr)
	base := want
	if sel, ok := ast.Unparen(wgExpr).(*ast.SelectorExpr); ok {
		base = sel.Sel.Name // field WaitGroups match on the field name
	}
	for _, n := range pass.Nodes() {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			continue
		}
		s, ok := pass.Info.Selections[sel]
		if !ok || !namedTypeIn(s.Recv(), "sync", "WaitGroup") {
			continue
		}
		got := exprString(sel.X)
		if got == want {
			return true
		}
		if gotSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && gotSel.Sel.Name == base {
			return true
		}
	}
	return false
}

// packageStopsServer reports whether the package calls Shutdown or Close on
// an *http.Server anywhere — the ListenAndServe goroutine then has an
// owner-driven exit.
func packageStopsServer(pass *Pass) bool {
	for _, n := range pass.Nodes() {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Shutdown" && sel.Sel.Name != "Close") {
			continue
		}
		if s, ok := pass.Info.Selections[sel]; ok && namedTypeIn(s.Recv(), "http", "Server") {
			return true
		}
	}
	return false
}

var shutdownMethodNames = map[string]bool{
	"Stop": true, "Close": true, "Shutdown": true, "Drain": true, "Wait": true,
}

// checkShutdownJoin flags the non-blocking-join antipattern: a shutdown
// method that receives from its join channel under a select with a default
// clause, so it can return while the goroutine is still running.
func checkShutdownJoin(pass *Pass, fd *ast.FuncDecl) {
	if !shutdownMethodNames[fd.Name.Name] || fd.Recv == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault, recvPos := false, token.NoPos
		for _, clause := range sel.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if comm.Comm == nil {
				hasDefault = true
				continue
			}
			if fieldChannelRecv(pass, comm.Comm) {
				recvPos = comm.Comm.Pos()
			}
		}
		if hasDefault && recvPos.IsValid() {
			pass.Reportf("leakcheck", recvPos, "%s does a non-blocking receive on the join channel and may return before the goroutine exits; block on the join (guard with a started flag if the goroutine may never have run)", fd.Name.Name)
		}
		return true
	})
}

// fieldChannelRecv reports whether the select comm receives from a channel
// that is a struct field (a goroutine's done/stop channel, not a local).
func fieldChannelRecv(pass *Pass, comm ast.Stmt) bool {
	var x ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		x = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			x = c.Rhs[0]
		}
	}
	un, ok := ast.Unparen(x).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}
