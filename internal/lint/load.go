package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file loads and type-checks every package matched by a set of go
// package patterns, using only the standard library plus the go command:
//
//  1. `go list -deps -export -json <patterns>` enumerates the matched
//     packages and every dependency, and (because of -export) compiles
//     export data for each into the build cache.
//  2. The matched packages' non-test sources are parsed with go/parser
//     (comments retained — the annotation grammar lives in comments).
//  3. Each matched package is type-checked with go/types against the gc
//     export data of its dependencies, via go/importer's "gc" compiler
//     importer with a lookup that opens the files from step 1.
//
// This keeps the analyzer stack zero-dependency (no x/tools) while giving
// every analyzer full type information.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns, with the go command run
// in dir ("" = current directory). Only the matched packages are returned;
// dependencies contribute export data but are not analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	// `go list -deps` emits packages in dependency order (dependencies
	// before dependents). Keep that order: the fact layer relies on a
	// package's dependencies being analyzed first, so facts exported by a
	// helper package are visible when its importers are checked.

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -deps -export -json` and decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, &p)
	}
	return out, nil
}

// newExportImporter returns a types.Importer that resolves import paths via
// the export files produced by `go list -export`.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, imp types.Importer, t *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Name:       t.Name,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
