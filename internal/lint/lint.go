// Package lint is sthist's repo-specific static-analysis suite. It enforces,
// at compile-shape level, the invariants the rest of the codebase only states
// in comments:
//
//   - noalloc: functions annotated //sthlint:noalloc (the geometry kernels
//     and the steady-state feedback path) must not contain constructs that
//     heap-allocate on every call.
//   - lockcheck: struct fields annotated "guarded by <mu>" may only be
//     accessed while <mu> is definitely held (RLock suffices for reads).
//   - determinism: histogram mutation, WAL emission and data output must not
//     be driven by map iteration order, and the pure estimation packages
//     must not read wall-clock time or the global math/rand source.
//   - errflow: error returns of Close/Sync/Write on the durability and
//     response paths must be consumed, and telemetry metric registrations
//     must use sthist_* snake_case names with non-empty help strings.
//   - publish: values handed to an atomic.Pointer Store (the estimator's
//     snapshot-publication point) must be fully built before the Store and
//     never written afterwards, and pointers obtained from Load are
//     read-only views.
//   - spanend: every trace span minted by StartRoot/StartRemote/StartChild
//     must reach End() on all return paths (or visibly escape to an owner
//     that ends it), so no request silently vanishes from the trace rings.
//   - walorder: on the httpapi writer path, estimator state mutations must
//     be dominated by a WAL append, and a reseed swap (AdoptHistogram) must
//     journal its KindReseed record first and refuse the swap if the journal
//     append fails — otherwise recovery silently rolls the table back.
//   - ctxflow: every outbound http.Request built in the cluster tier, the
//     load generator and the daemons must carry a context and flow through
//     traceparent injection before it is sent, and handlers must propagate
//     the inbound request context rather than minting a fresh one.
//   - leakcheck: every `go` statement needs a reachable stop — a ctx.Done
//     or channel receive, a WaitGroup joined in the package, a bounded
//     buffered-send body, or a server with a Shutdown path — and shutdown
//     methods must actually block on the goroutine's exit.
//   - lockorder: the lock-acquisition graph built from guarded-by
//     annotations plus observed Lock orderings (including through calls,
//     cross-package via facts) must stay acyclic, locks must not be
//     re-acquired while held, and every mutex field must name what it
//     guards.
//
// The suite is stdlib-only: packages are parsed with go/parser and
// type-checked with go/types against export data obtained from the go
// command (load.go), consistent with the repo's zero-dependency rule. The
// driver loads the full dependency graph once, analyzes packages in
// dependency order, and lets analyzers export/import facts about functions
// across package boundaries (facts.go), so e.g. "this helper appends to the
// WAL" is visible to callers in other packages.
//
// Diagnostics can be suppressed per line with an escape hatch that forces a
// reason on the author:
//
//	//sthlint:ignore <check> <reason>
//
// placed on the offending line or on the line directly above it. A directive
// without a reason, or naming an unknown check, is itself a diagnostic.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for editors and CI annotators. A
// diagnostic may carry a SuggestedFix applied by `sthlint -fix`.
type Diagnostic struct {
	Check   string        `json:"check"`
	File    string        `json:"file"`
	Line    int           `json:"line"`
	Column  int           `json:"column"`
	Message string        `json:"message"`
	Fix     *SuggestedFix `json:"fix,omitempty"`
}

// SuggestedFix is a mechanical remediation: a set of non-overlapping byte
// edits within the diagnostic's file.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// TextEdit replaces file bytes [Offset, End) with NewText (End == Offset is
// a pure insertion).
type TextEdit struct {
	File    string `json:"file"`
	Offset  int    `json:"offset"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// String renders the classic file:line:col: [check] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Column, d.Check, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	nodes []ast.Node      // lazy shared preorder flatten (inspector.go)
	funcs []*ast.FuncDecl // lazy function index (inspector.go)
}

// Analyzer is one pluggable check. Run sees each package in dependency
// order; the optional Finish hook runs once after every package, for
// whole-program properties (e.g. lock-graph cycles) that no single package
// can decide. Finish diagnostics go through the same suppression filter as
// Run diagnostics.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass)
	Finish func(report func(Diagnostic))
}

// Pass gives an analyzer one package plus a reporting sink and the shared
// cross-package fact store.
type Pass struct {
	*Package
	check  string
	facts  *factStore
	report func(Diagnostic)
}

// Reportf records a diagnostic for the running analyzer at pos.
func (p *Pass) Reportf(check string, pos token.Pos, format string, args ...any) {
	p.report(p.diag(check, pos, nil, format, args...))
}

// ReportFixf records a diagnostic carrying a suggested fix.
func (p *Pass) ReportFixf(check string, pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	p.report(p.diag(check, pos, fix, format, args...))
}

func (p *Pass) diag(check string, pos token.Pos, fix *SuggestedFix, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		Check:   check,
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	}
}

// Analyzers returns the full suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoAlloc(), LockCheck(), Determinism(), ErrFlow(), Publish(), SpanEnd(),
		WALOrder(), CtxFlow(), LeakCheck(), LockOrder(),
	}
}

// checkNames returns the set of valid check names (for directive validation).
func checkNames(analyzers []*Analyzer) map[string]bool {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// ignoreDirective is one parsed //sthlint:ignore comment.
type ignoreDirective struct {
	check  string
	reason string
	file   string
	line   int
}

const ignorePrefix = "//sthlint:ignore"

// collectIgnores parses every //sthlint:ignore directive in the package.
// Malformed directives (no reason, unknown check) are reported via report.
func collectIgnores(pkg *Package, valid map[string]bool, report func(Diagnostic)) []ignoreDirective {
	var dirs []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				check, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				bad := func(format string, args ...any) {
					report(Diagnostic{
						Check: "directive", File: pos.Filename, Line: pos.Line,
						Column: pos.Column, Message: fmt.Sprintf(format, args...),
					})
				}
				switch {
				case check == "":
					bad("ignore directive names no check (want //sthlint:ignore <check> <reason>)")
				case !valid[check]:
					bad("ignore directive names unknown check %q", check)
				case reason == "":
					bad("ignore directive for %q has no reason (want //sthlint:ignore <check> <reason>)", check)
				default:
					dirs = append(dirs, ignoreDirective{check: check, reason: reason, file: pos.Filename, line: pos.Line})
				}
			}
		}
	}
	return dirs
}

// suppressed reports whether d is covered by a directive on its own line or
// the line directly above.
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.check != d.Check || dir.file != d.File {
			continue
		}
		if dir.line == d.Line || dir.line == d.Line-1 {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the packages (which Load returns in
// dependency order, so facts flow from dependencies to dependents), then
// runs each analyzer's Finish hook over the whole program. The surviving
// diagnostics come back sorted by position. Directive errors are never
// suppressible.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	valid := checkNames(analyzers)
	facts := newFactStore()
	var out []Diagnostic
	var allDirs []ignoreDirective
	for _, pkg := range pkgs {
		var raw []Diagnostic
		collect := func(d Diagnostic) { raw = append(raw, d) }
		dirs := collectIgnores(pkg, valid, collect)
		allDirs = append(allDirs, dirs...)
		for _, a := range analyzers {
			pass := &Pass{Package: pkg, check: a.Name, facts: facts, report: collect}
			a.Run(pass)
		}
		for _, d := range raw {
			if d.Check != "directive" && suppressed(d, dirs) {
				continue
			}
			out = append(out, d)
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		a.Finish(func(d Diagnostic) {
			if d.Check != "directive" && suppressed(d, allDirs) {
				return
			}
			out = append(out, d)
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out
}

// WriteJSON renders diagnostics as a JSON array (CI annotation format).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// WriteText renders diagnostics one per line.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// --- shared helpers used by several analyzers ---

// funcDirective reports whether fn's doc comment carries the given
// //sthlint:<name> marker.
func funcDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	marker := "//sthlint:" + name
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// isInterface reports whether t's underlying type is a non-empty-or-empty
// interface (i.e. any interface).
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// namedTypeIn reports whether t (after pointer stripping) is a named type
// with the given name whose package has the given package name.
func namedTypeIn(t types.Type, pkgName, typeName string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != typeName {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// exprString renders e compactly for matching lock bases against accesses.
func exprString(e ast.Expr) string { return types.ExprString(e) }
