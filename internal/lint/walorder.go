package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The walorder analyzer enforces the durability ordering the crash-recovery
// sweeps depend on: on the httpapi writer path, estimator state mutations
// (Feedback, FeedbackBatch, AdoptHistogram) must be dominated by a WAL
// append — either directly in the mutating function, in a helper the
// function calls (tracked via the "appends" fact, across packages), or in
// every caller that reaches it. Reseed swaps get a stricter rule: an
// AdoptHistogram must be preceded by an Append of a KindReseed record, and
// the adoption must be gated on that append succeeding — adopting after a
// failed journal write serves a histogram that recovery silently rolls
// back, forking replay from the served state.
//
// LoadHistogram is deliberately not in the mutator set: it is the recovery
// path, which replays state *from* the WAL and must not journal again.
// Non-durable tables (nil log) share the same code shape, so the dominance
// check is positional: an append that is conditionally skipped when no log
// is configured still counts.

// wevent is one ordered occurrence inside a function body.
type wevent struct {
	kind   int // evAppend, evMutate, evCall
	pos    token.Pos
	reseed bool   // append: record carries KindReseed; mutate: AdoptHistogram
	gated  bool   // append: a failed append returns before anything else runs
	sym    string // call: callee symbol
}

const (
	evAppend = iota
	evMutate
	evCall
)

// wfunc is one function's walorder summary.
type wfunc struct {
	decl    *ast.FuncDecl
	sym     string
	events  []wevent
	appends bool // has a direct append or calls an appending function
}

// WALOrder returns the walorder analyzer.
func WALOrder() *Analyzer {
	return &Analyzer{
		Name: "walorder",
		Doc:  "estimator mutations on the writer path must be dominated by a WAL append; reseed swaps must journal KindReseed first and refuse the swap on append failure",
		Run:  runWALOrder,
	}
}

func runWALOrder(pass *Pass) {
	funcs := make([]*wfunc, 0, len(pass.FuncDecls()))
	bySym := make(map[string]*wfunc)
	for _, fd := range pass.FuncDecls() {
		if fd.Body == nil {
			continue
		}
		wf := &wfunc{decl: fd, sym: SymbolOf(pass.Info.Defs[fd.Name]), events: collectWALEvents(pass, fd)}
		for _, ev := range wf.events {
			if ev.kind == evAppend {
				wf.appends = true
			}
		}
		funcs = append(funcs, wf)
		if wf.sym != "" {
			bySym[wf.sym] = wf
		}
	}

	// appendsSym reports whether sym is known to append: defined here (after
	// the fixpoint below) or exported as a fact by a dependency package.
	appendsSym := func(sym string) bool {
		if wf, ok := bySym[sym]; ok {
			return wf.appends
		}
		return pass.ImportFact(sym, "appends")
	}

	// In-package declaration order is arbitrary, so propagate "calls an
	// appending function" to a fixpoint before classifying call events.
	for changed := true; changed; {
		changed = false
		for _, wf := range funcs {
			if wf.appends {
				continue
			}
			for _, ev := range wf.events {
				if ev.kind == evCall && appendsSym(ev.sym) {
					wf.appends = true
					changed = true
					break
				}
			}
		}
	}
	for _, wf := range funcs {
		if wf.appends && wf.sym != "" {
			pass.ExportFact(wf.sym, "appends")
		}
	}

	if pass.Name != "httpapi" {
		return // facts still flow; diagnostics are scoped to the writer path
	}

	// callSites[sym] lists (caller, index of the call event) for dominance
	// through callers.
	type site struct {
		fn  *wfunc
		idx int
	}
	callSites := make(map[string][]site)
	for _, wf := range funcs {
		for i, ev := range wf.events {
			if ev.kind == evCall {
				callSites[ev.sym] = append(callSites[ev.sym], site{wf, i})
			}
		}
	}
	coversAt := func(wf *wfunc, idx int) bool {
		for _, ev := range wf.events[:idx] {
			if ev.kind == evAppend || (ev.kind == evCall && appendsSym(ev.sym)) {
				return true
			}
		}
		return false
	}
	// coveredByCallers: every in-package call site of sym is preceded by an
	// append, or sits in a function that is itself covered. No call sites
	// (an HTTP handler, an exported entry point) means not covered.
	memo := make(map[string]int) // 0 unknown/in-progress, 1 covered, 2 not
	var coveredByCallers func(sym string) bool
	coveredByCallers = func(sym string) bool {
		switch memo[sym] {
		case 1:
			return true
		case 2:
			return false
		}
		memo[sym] = 2 // cycles are conservatively uncovered
		sites := callSites[sym]
		if len(sites) == 0 {
			return false
		}
		for _, s := range sites {
			if !coversAt(s.fn, s.idx) && !coveredByCallers(s.fn.sym) {
				return false
			}
		}
		memo[sym] = 1
		return true
	}

	for _, wf := range funcs {
		for i, m := range wf.events {
			if m.kind != evMutate {
				continue
			}
			if coversAt(wf, i) {
				if m.reseed {
					checkReseedGate(pass, wf, i)
				}
				continue
			}
			laterAppend := false
			for _, ev := range wf.events[i+1:] {
				if ev.kind == evAppend {
					laterAppend = true
					break
				}
			}
			switch {
			case laterAppend:
				pass.Reportf("walorder", m.pos, "estimator mutation precedes the WAL append; journal first so recovery replays what was served")
			case !coveredByCallers(wf.sym):
				pass.Reportf("walorder", m.pos, "estimator mutation is not dominated by a WAL append on any caller path")
			}
		}
	}
}

// checkReseedGate validates the stricter reseed rule for the AdoptHistogram
// event at index i: the nearest covering event must be a direct append of a
// KindReseed record whose failure path returns before the adoption runs.
// Coverage through an appending helper is accepted as-is (the helper's
// internal shape is its own function's concern).
func checkReseedGate(pass *Pass, wf *wfunc, i int) {
	for j := i - 1; j >= 0; j-- {
		ev := wf.events[j]
		switch {
		case ev.kind == evAppend && !ev.reseed:
			pass.Reportf("walorder", wf.events[i].pos, "reseed adoption must journal a KindReseed record first (nearest append is not a reseed record)")
			return
		case ev.kind == evAppend && !ev.gated:
			pass.Reportf("walorder", wf.events[i].pos, "reseed adoption is not gated on the journal append succeeding; a failed append must reject the promotion, or recovery forks from the served histogram")
			return
		case ev.kind == evAppend:
			return // reseed record, failure path returns: correct shape
		case ev.kind == evCall && pass.ImportFact(ev.sym, "appends"):
			// Covered through an appending helper: in-package facts are
			// exported before diagnostics run, so this also sees them.
			return
		}
	}
}

// collectWALEvents flattens fn's body into ordered append/mutate/call
// events and computes the gating property for each append.
func collectWALEvents(pass *Pass, fn *ast.FuncDecl) []wevent {
	gated := gatedAppendCalls(pass, fn.Body)
	var events []wevent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isWALAppendCall(pass.Info, call):
			events = append(events, wevent{
				kind:   evAppend,
				pos:    call.Pos(),
				reseed: mentionsKindReseed(call),
				gated:  gated[call],
			})
		case isEstimatorMutation(pass.Info, call):
			name := calleeName(call)
			events = append(events, wevent{kind: evMutate, pos: call.Pos(), reseed: name == "AdoptHistogram", sym: name})
		default:
			if obj := calleeObject(pass.Info, call); obj != nil {
				if sym := SymbolOf(obj); sym != "" {
					events = append(events, wevent{kind: evCall, pos: call.Pos(), sym: sym})
				}
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// gatedAppendCalls finds WAL append calls whose error result provably stops
// the function on failure, in the three idiomatic shapes:
//
//	if _, err := l.Append(r); err != nil { ...; return ... }
//	seq, err := l.Append(r)
//	if err != nil { ...; return ... }   // immediately following
//	return l.Append(r)                  // error escapes to the caller
func gatedAppendCalls(pass *Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	gated := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range block.List {
			switch st := s.(type) {
			case *ast.IfStmt:
				if call, errObj := appendAssign(pass.Info, st.Init); call != nil &&
					condUsesObj(pass.Info, st.Cond, errObj) && terminates(st.Body) {
					gated[call] = true
				}
			case *ast.AssignStmt:
				call, errObj := appendAssign(pass.Info, st)
				if call == nil || i+1 >= len(block.List) {
					continue
				}
				if next, ok := block.List[i+1].(*ast.IfStmt); ok &&
					condUsesObj(pass.Info, next.Cond, errObj) && terminates(next.Body) {
					gated[call] = true
				}
			case *ast.ReturnStmt:
				for _, res := range st.Results {
					if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isWALAppendCall(pass.Info, call) {
						gated[call] = true
					}
				}
			}
		}
		return true
	})
	return gated
}

// appendAssign extracts a WAL append call and the error object it assigns
// from an `..., err := l.Append(...)` statement (nil, nil otherwise).
func appendAssign(info *types.Info, s ast.Stmt) (*ast.CallExpr, types.Object) {
	assign, ok := s.(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
		return nil, nil
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || !isWALAppendCall(info, call) {
		return nil, nil
	}
	last, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident)
	if !ok || last.Name == "_" {
		return nil, nil
	}
	if obj := info.Defs[last]; obj != nil {
		return call, obj
	}
	return call, info.Uses[last]
}

func condUsesObj(info *types.Info, cond ast.Expr, obj types.Object) bool {
	if cond == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// terminates reports whether a block's last statement leaves the function.
func terminates(block *ast.BlockStmt) bool {
	if block == nil || len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// isWALAppendCall matches Append/AppendBatch methods on wal.Log.
func isWALAppendCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Append" && sel.Sel.Name != "AppendBatch") {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	return namedTypeIn(s.Recv(), "wal", "Log")
}

// isEstimatorMutation matches the sthist.Estimator methods that change
// served state. LoadHistogram (recovery replay) is intentionally excluded.
func isEstimatorMutation(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Feedback", "FeedbackBatch", "AdoptHistogram":
	default:
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	return namedTypeIn(s.Recv(), "sthist", "Estimator")
}

func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// mentionsKindReseed reports whether any argument expression references an
// identifier or selector named KindReseed (the reseed record constructor).
func mentionsKindReseed(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if x.Name == "KindReseed" {
					found = true
				}
			case *ast.SelectorExpr:
				if x.Sel.Name == "KindReseed" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
