package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The ctxflow analyzer enforces trace context propagation on every network
// hop, scoped to the packages that make outbound requests: the cluster tier
// (proxy, health probes, snapshot shipping), the load generator, and the
// daemons under cmd/. Three request-side rules and one handler-side rule:
//
//  1. http.NewRequest is banned — requests must carry a context
//     (NewRequestWithContext), or cancellation and deadlines cannot reach
//     the wire.
//  2. The context-less conveniences (http.Get, Client.Get/Post/PostForm/
//     Head) are banned for the same reason.
//  3. A request built with NewRequestWithContext must flow through
//     traceparent injection (a call into the trace package with the request
//     as an argument, or a direct Header.Set of the traceparent header)
//     before it is sent with Do. Requests that escape (returned, stored,
//     handed to another function) are assumed to be injected by their new
//     owner.
//  4. A function that receives an *http.Request must not mint a fresh
//     context.Background()/TODO(): the inbound request context carries the
//     trace and the client's cancellation.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "outbound requests must carry a context and traceparent injection; handlers must propagate the inbound context",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(pass *Pass) {
	if !ctxFlowScope(pass) {
		return
	}
	for _, n := range pass.Nodes() {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		if obj := calleeObject(pass.Info, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			switch obj.Name() {
			case "NewRequest":
				pass.Reportf("ctxflow", call.Pos(), "http.NewRequest builds a context-less request; use NewRequestWithContext so cancellation and the traceparent flow to the wire")
			case "Get", "Post", "PostForm", "Head":
				// Only the request-sending entry points: the package-level
				// conveniences and Client methods. Methods on other net/http
				// types (Header.Get, url.Values.Get via http) share the names
				// but send nothing.
				if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
					if s, hasSel := pass.Info.Selections[sel]; hasSel {
						if namedTypeIn(s.Recv(), "http", "Client") {
							pass.Reportf("ctxflow", call.Pos(), "Client.%s sends a context-less request; build with NewRequestWithContext and inject the traceparent", obj.Name())
						}
						continue
					}
				}
				if fn, isFn := obj.(*types.Func); isFn {
					if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() == nil {
						pass.Reportf("ctxflow", call.Pos(), "http.%s sends a context-less request; build with NewRequestWithContext and inject the traceparent", obj.Name())
					}
				}
			}
		}
	}
	for _, fd := range pass.FuncDecls() {
		if fd.Body == nil {
			continue
		}
		checkRequestInjection(pass, fd)
		checkHandlerContext(pass, fd)
	}
}

func ctxFlowScope(pass *Pass) bool {
	switch pass.Name {
	case "cluster", "loadgen":
		return true
	}
	return strings.HasPrefix(pass.ImportPath, "sthist/cmd/")
}

// checkHandlerContext flags context.Background()/TODO() inside functions
// that receive an *http.Request (rule 4).
func checkHandlerContext(pass *Pass, fd *ast.FuncDecl) {
	hasReq := false
	for _, field := range fd.Type.Params.List {
		if t := pass.Info.Types[field.Type].Type; t != nil && namedTypeIn(t, "http", "Request") {
			hasReq = true
		}
	}
	if !hasReq {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := calleeObject(pass.Info, call); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "context" && (obj.Name() == "Background" || obj.Name() == "TODO") {
			pass.Reportf("ctxflow", call.Pos(), "handler mints context.%s; propagate the inbound request context (r.Context()) so the trace and cancellation follow the request", obj.Name())
		}
		return true
	})
}

// checkRequestInjection implements rule 3 for each NewRequestWithContext
// result in fd.
func checkRequestInjection(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(pass.Info, call)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" || obj.Name() != "NewRequestWithContext" {
			return true
		}
		reqIdent, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || reqIdent.Name == "_" {
			return true
		}
		reqObj := pass.Info.Defs[reqIdent]
		if reqObj == nil {
			reqObj = pass.Info.Uses[reqIdent]
		}
		if reqObj == nil {
			return true
		}
		sent, injected, escaped := requestFlow(pass, fd, reqObj)
		if sent && !injected && !escaped {
			fix := injectionFix(pass, fd, assign, call, reqIdent.Name)
			pass.ReportFixf("ctxflow", call.Pos(), fix, "request is sent without traceparent injection; pass it through trace.Inject/InjectContext (or set the traceparent header) before Do")
		}
		return true
	})
}

// requestFlow classifies every use of the request object in fd: sent via
// Do/RoundTrip, injected (trace-package call or traceparent Header.Set), or
// escaped to another owner.
func requestFlow(pass *Pass, fd *ast.FuncDecl, reqObj types.Object) (sent, injected, escaped bool) {
	usesReq := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && (pass.Info.Uses[id] == reqObj) {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			argHasReq := false
			for _, arg := range x.Args {
				if usesReq(arg) {
					argHasReq = true
				}
			}
			sel, isSel := x.Fun.(*ast.SelectorExpr)
			switch {
			case isSel && (sel.Sel.Name == "Do" || sel.Sel.Name == "RoundTrip") && argHasReq:
				sent = true
			case isSel && sel.Sel.Name == "Set" && isHeaderOf(pass, sel.X, reqObj, usesReq):
				if len(x.Args) > 0 && isTraceparentKey(x.Args[0]) {
					injected = true
				}
			case argHasReq:
				if obj := calleeObject(pass.Info, x); obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "trace" {
					injected = true
				} else {
					escaped = true // another function owns propagation now
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if usesReq(res) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if usesReq(elt) {
					escaped = true
				}
			}
		}
		return true
	})
	return sent, injected, escaped
}

// isHeaderOf reports whether e is the Header field of the tracked request
// (req.Header.Set → sel.X is req.Header).
func isHeaderOf(pass *Pass, e ast.Expr, reqObj types.Object, usesReq func(ast.Expr) bool) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Header" && usesReq(sel.X)
}

// isTraceparentKey matches the header-key argument of a Header.Set against
// the W3C traceparent header: the trace.TraceparentHeader constant or the
// literal string.
func isTraceparentKey(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "TraceparentHeader"
	case *ast.Ident:
		return x.Name == "TraceparentHeader"
	case *ast.BasicLit:
		return strings.EqualFold(strings.Trim(x.Value, "`\""), "traceparent")
	}
	return false
}

// injectionFix builds the autofix: insert a trace.InjectContext call on the
// line after the NewRequestWithContext assignment. Only offered when the
// context argument is a plain identifier and the file already imports a
// trace package (the helper is nil- and invalid-safe, so inserting before
// the error check is sound).
func injectionFix(pass *Pass, fd *ast.FuncDecl, assign *ast.AssignStmt, call *ast.CallExpr, reqName string) *SuggestedFix {
	if len(call.Args) == 0 {
		return nil
	}
	ctxIdent, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	file := pass.fileOf(assign)
	if file == nil || !importsTracePackage(file) {
		return nil
	}
	pos := pass.Fset.Position(assign.Pos())
	end := pass.Fset.Position(assign.End())
	indent := strings.Repeat("\t", pos.Column-1)
	return &SuggestedFix{
		Message: "inject the traceparent after building the request",
		Edits: []TextEdit{{
			File:    end.Filename,
			Offset:  end.Offset,
			End:     end.Offset,
			NewText: "\n" + indent + "trace.InjectContext(" + ctxIdent.Name + ", " + reqName + ")",
		}},
	}
}

func importsTracePackage(file *ast.File) bool {
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "sthist/internal/trace" || strings.HasSuffix(path, "/trace") {
			return imp.Name == nil || imp.Name.Name == "trace"
		}
	}
	return false
}
