package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ErrFlow returns the analyzer enforcing error consumption on the durability
// and response paths, plus the telemetry naming contract:
//
//  1. In the durability/response packages (wal, faultfs, httpapi, and the
//     sthistd command) a call to Close, Sync, Write, WriteString or Flush
//     whose last result is an error must not be silently discarded as a bare
//     expression or defer statement. Assigning the result to _ is accepted:
//     it is a visible, reviewable decision. Receivers that cannot fail
//     (bytes.Buffer, strings.Builder) are exempt.
//
//  2. Every metric minted through telemetry.Registry Counter/Gauge/Histogram
//     must use a constant name matching sthist_* snake_case, and a constant,
//     non-empty help string — so the exposition surface is enumerable by
//     grepping for the prefix and every series is documented.
func ErrFlow() *Analyzer {
	return &Analyzer{
		Name: "errflow",
		Doc:  "durability-path error returns must be consumed; metric names must be sthist_* snake_case with help",
		Run:  runErrFlow,
	}
}

// errPathPackages are the package names whose discarded errors are flagged.
var errPathPackages = map[string]bool{
	"wal":     true,
	"faultfs": true,
	"httpapi": true,
}

// errFuncs are the method names whose error results must be consumed.
var errFuncs = map[string]bool{
	"Close":       true,
	"Sync":        true,
	"Write":       true,
	"WriteString": true,
	"Flush":       true,
}

var metricNameRe = regexp.MustCompile(`^sthist_[a-z0-9]+(_[a-z0-9]+)*$`)

func runErrFlow(pass *Pass) {
	if errPathPackages[pass.Name] || strings.HasSuffix(pass.ImportPath, "cmd/sthistd") || pass.Name == "fixture" {
		checkDiscardedErrors(pass)
	}
	checkMetricRegistrations(pass)
}

// checkDiscardedErrors flags bare-statement and deferred calls that drop an
// error result from the watched method set.
func checkDiscardedErrors(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch n := n.(type) {
			case *ast.ExprStmt:
				if c, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					call, how = c, "discarded"
				}
			case *ast.DeferStmt:
				call, how = n.Call, "discarded by defer"
			}
			if call == nil {
				return true
			}
			if name, recv, ok := droppedErrCall(pass, call); ok {
				pass.Reportf("errflow", call.Pos(),
					"error returned by %s.%s is %s; handle it or assign to _ explicitly", recv, name, how)
			}
			return true
		})
	}
}

// droppedErrCall reports whether call is a watched method whose final result
// is an error, returning the method name and a printable receiver.
func droppedErrCall(pass *Pass, call *ast.CallExpr) (name, recv string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || !errFuncs[sel.Sel.Name] {
		return "", "", false
	}
	tv, found := pass.Info.Types[call.Fun]
	if !found || tv.Type == nil {
		return "", "", false
	}
	sig, isSig := tv.Type.Underlying().(*types.Signature)
	if !isSig {
		return "", "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", "", false
	}
	last := res.At(res.Len() - 1).Type()
	named, isNamed := last.(*types.Named)
	if !isNamed || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", "", false
	}
	// Receivers that never fail.
	if rtv, found := pass.Info.Types[sel.X]; found {
		rt := rtv.Type
		if namedTypeIn(rt, "bytes", "Buffer") || namedTypeIn(rt, "strings", "Builder") {
			return "", "", false
		}
	}
	return sel.Sel.Name, exprString(sel.X), true
}

// checkMetricRegistrations validates names and help strings at every
// Registry.Counter/Gauge/Histogram call site.
func checkMetricRegistrations(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.MethodVal {
				return true
			}
			if !namedTypeIn(selection.Recv(), "telemetry", "Registry") {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			if name, ok := constString(pass, call.Args[0]); !ok {
				pass.Reportf("errflow", call.Args[0].Pos(),
					"metric name passed to Registry.%s is not a constant string; the exposition surface must be enumerable", sel.Sel.Name)
			} else if !metricNameRe.MatchString(name) {
				pass.Reportf("errflow", call.Args[0].Pos(),
					"metric name %q does not match the sthist_* snake_case convention", name)
			}
			if help, ok := constString(pass, call.Args[1]); !ok || strings.TrimSpace(help) == "" {
				pass.Reportf("errflow", call.Args[1].Pos(),
					"metric registered via Registry.%s must have a constant, non-empty help string", sel.Sel.Name)
			}
			return true
		})
	}
}

// constString extracts a compile-time string constant from e.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
