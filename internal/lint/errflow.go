package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// ErrFlow returns the analyzer enforcing error consumption on the durability
// and response paths, the telemetry naming contract, and the HTTP response
// body lifecycle:
//
//  1. In the durability/response packages (wal, faultfs, httpapi, the cluster
//     tier, the load generator, the sthistd command and the examples) a call
//     to Close, Sync, Write, WriteString or Flush whose last result is an
//     error must not be silently discarded as a bare expression or defer
//     statement. Assigning the result to _ is accepted: it is a visible,
//     reviewable decision. Receivers that cannot fail (bytes.Buffer,
//     strings.Builder) are exempt. -fix rewrites the trivial forms: a bare
//     statement gains `_ = `, a zero-argument defer is wrapped in a closure
//     that discards explicitly.
//
//  2. Every metric minted through telemetry.Registry Counter/Gauge/Histogram
//     must use a constant name matching sthist_* snake_case, and a constant,
//     non-empty help string — so the exposition surface is enumerable by
//     grepping for the prefix and every series is documented.
//
//  3. In the HTTP client packages (cluster, loadgen, cmd/, examples/) every
//     *http.Response minted by a transport call must have its body closed:
//     either a defer (covers all paths) or an inline Close before every
//     return that follows the nil-guard. Handing resp.Body to another reader
//     does NOT move the close obligation — only handing off the *http.Response
//     itself does. A missed early-error return leaks the connection and, with
//     keep-alives, eventually starves the client pool.
func ErrFlow() *Analyzer {
	return &Analyzer{
		Name: "errflow",
		Doc:  "durability-path error returns and response bodies must be consumed; metric names must be sthist_* snake_case with help",
		Run:  runErrFlow,
	}
}

// errPathPackages are the package names whose discarded errors are flagged.
var errPathPackages = map[string]bool{
	"wal":     true,
	"faultfs": true,
	"httpapi": true,
	"cluster": true,
	"loadgen": true,
}

// errFuncs are the method names whose error results must be consumed.
var errFuncs = map[string]bool{
	"Close":       true,
	"Sync":        true,
	"Write":       true,
	"WriteString": true,
	"Flush":       true,
}

var metricNameRe = regexp.MustCompile(`^sthist_[a-z0-9]+(_[a-z0-9]+)*$`)

func errFlowScope(pass *Pass) bool {
	return errPathPackages[pass.Name] || pass.Name == "fixture" ||
		strings.HasPrefix(pass.ImportPath, "sthist/cmd/") ||
		strings.HasPrefix(pass.ImportPath, "sthist/examples/")
}

// respBodyScope are the packages whose outbound HTTP responses are checked
// for body closes: everything that owns an http.Client.
func respBodyScope(pass *Pass) bool {
	switch pass.Name {
	case "cluster", "loadgen", "fixture":
		return true
	}
	return strings.HasPrefix(pass.ImportPath, "sthist/cmd/") ||
		strings.HasPrefix(pass.ImportPath, "sthist/examples/")
}

func runErrFlow(pass *Pass) {
	if errFlowScope(pass) {
		checkDiscardedErrors(pass)
	}
	if respBodyScope(pass) {
		for _, fn := range pass.FuncDecls() {
			if fn.Body != nil {
				checkResponseBodies(pass, fn)
			}
		}
	}
	checkMetricRegistrations(pass)
}

// checkDiscardedErrors flags bare-statement and deferred calls that drop an
// error result from the watched method set.
func checkDiscardedErrors(pass *Pass) {
	for _, n := range pass.Nodes() {
		var call *ast.CallExpr
		var how string
		var fix *SuggestedFix
		switch n := n.(type) {
		case *ast.ExprStmt:
			if c, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				call, how = c, "discarded"
				fix = discardFix(pass, c)
			}
		case *ast.DeferStmt:
			call, how = n.Call, "discarded by defer"
			fix = deferDiscardFix(pass, n)
		}
		if call == nil {
			continue
		}
		if name, recv, ok := droppedErrCall(pass, call); ok {
			pass.ReportFixf("errflow", call.Pos(), fix,
				"error returned by %s.%s is %s; handle it or assign to _ explicitly", recv, name, how)
		}
	}
}

// discardFix prefixes a bare call statement with `_ = `.
func discardFix(pass *Pass, call *ast.CallExpr) *SuggestedFix {
	p := pass.Fset.Position(call.Pos())
	return &SuggestedFix{
		Message: "discard the error explicitly",
		Edits:   []TextEdit{{File: p.Filename, Offset: p.Offset, End: p.Offset, NewText: "_ = "}},
	}
}

// deferDiscardFix wraps a zero-argument deferred call in a closure that
// discards the error explicitly. Calls with arguments are left alone: the
// closure would change when the arguments are evaluated.
func deferDiscardFix(pass *Pass, d *ast.DeferStmt) *SuggestedFix {
	if len(d.Call.Args) != 0 {
		return nil
	}
	pos := pass.Fset.Position(d.Pos())
	end := pass.Fset.Position(d.End())
	return &SuggestedFix{
		Message: "discard the deferred error explicitly",
		Edits: []TextEdit{{
			File:    pos.Filename,
			Offset:  pos.Offset,
			End:     end.Offset,
			NewText: "defer func() { _ = " + exprString(d.Call) + " }()",
		}},
	}
}

// droppedErrCall reports whether call is a watched method whose final result
// is an error, returning the method name and a printable receiver.
func droppedErrCall(pass *Pass, call *ast.CallExpr) (name, recv string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || !errFuncs[sel.Sel.Name] {
		return "", "", false
	}
	tv, found := pass.Info.Types[call.Fun]
	if !found || tv.Type == nil {
		return "", "", false
	}
	sig, isSig := tv.Type.Underlying().(*types.Signature)
	if !isSig {
		return "", "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", "", false
	}
	last := res.At(res.Len() - 1).Type()
	named, isNamed := last.(*types.Named)
	if !isNamed || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", "", false
	}
	// Receivers that never fail.
	if rtv, found := pass.Info.Types[sel.X]; found {
		rt := rtv.Type
		if namedTypeIn(rt, "bytes", "Buffer") || namedTypeIn(rt, "strings", "Builder") {
			return "", "", false
		}
	}
	return sel.Sel.Name, exprString(sel.X), true
}

// respVar tracks one *http.Response-typed local minted by a transport call.
type respVar struct {
	name     string
	pos      token.Pos // the transport call
	guardEnd token.Pos // end of the nil-guard error check following the mint
	fixFile  string
	fixOff   int    // insertion point for the defer autofix: after the guard
	indent   string // indentation of the minting statement
	hasGuard bool   // a terminating err check follows the mint
	escaped  bool   // the *http.Response itself was handed off
	deferred bool   // a Close is registered via defer
	closes   []token.Pos
}

// checkResponseBodies runs the body-close protocol over one function,
// treating nested literals as part of the same lexical region (like spanend).
func checkResponseBodies(pass *Pass, fn *ast.FuncDecl) {
	vars := make(map[types.Object]*respVar)
	var returns []token.Pos

	// Pass 1: find response mints block-by-block so the statement following
	// the mint (the nil-guard) is visible.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			assign, ok := stmt.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
				continue
			}
			call, ok := httpResponseCall(pass, assign.Rhs[0])
			if !ok {
				continue
			}
			id, ok := assign.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			v := &respVar{name: id.Name, pos: call.Pos(), guardEnd: assign.End()}
			mintPos := pass.Fset.Position(assign.Pos())
			v.indent = strings.Repeat("\t", mintPos.Column-1)
			after := assign.End()
			if i+1 < len(block.List) {
				if guard, ok := block.List[i+1].(*ast.IfStmt); ok && terminates(guard.Body) {
					v.hasGuard = true
					v.guardEnd = guard.End()
					after = guard.End()
				}
			}
			ep := pass.Fset.Position(after)
			v.fixFile, v.fixOff = ep.Filename, ep.Offset
			vars[obj] = v
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	tracked := func(e ast.Expr) *respVar {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			return vars[obj]
		}
		return nil
	}
	// respBodyClose matches <resp>.Body.Close() for a tracked resp.
	respBodyClose := func(n ast.Node) *respVar {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return nil
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return nil
		}
		body, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || body.Sel.Name != "Body" {
			return nil
		}
		return tracked(body.X)
	}
	markEscape := func(e ast.Expr) {
		// Only the whole *http.Response moves the close obligation; handing
		// resp.Body to a reader does not.
		if v := tracked(e); v != nil {
			v.escaped = true
		}
		if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if v := tracked(ue.X); v != nil {
				v.escaped = true
			}
		}
	}

	// Pass 2: collect closes (inline and deferred), escapes, and returns.
	var inDefer func(n ast.Node)
	inDefer = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if v := respBodyClose(m); v != nil {
				v.deferred = true
			}
			return true
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			inDefer(n.Call)
			return false
		case *ast.CallExpr:
			if v := respBodyClose(n); v != nil {
				v.closes = append(v.closes, n.Pos())
				return true
			}
			for _, arg := range n.Args {
				markEscape(arg)
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
			for _, res := range n.Results {
				markEscape(res)
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				markEscape(rhs)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				markEscape(elt)
			}
		case *ast.SendStmt:
			markEscape(n.Value)
		}
		return true
	})

	// Pass 3: judge. A defer covers every path; otherwise each return after
	// the nil-guard needs an inline Close lexically before it.
	for _, v := range vars {
		if v.deferred || v.escaped {
			continue
		}
		if len(v.closes) == 0 {
			pass.ReportFixf("errflow", v.pos, respCloseFix(v),
				"response body of %s is never closed; the connection leaks — defer the Close after the nil-guard", v.name)
			continue
		}
		for _, r := range returns {
			if r <= v.guardEnd {
				continue
			}
			closedBefore := false
			for _, c := range v.closes {
				if c > v.pos && c < r {
					closedBefore = true
					break
				}
			}
			if !closedBefore {
				pass.ReportFixf("errflow", v.pos, respCloseFix(v),
					"response body of %s is not closed on the return path at line %d; a defer after the nil-guard covers early-error returns",
					v.name, pass.Fset.Position(r).Line)
				break
			}
		}
	}
}

// respCloseFix inserts a defer that closes the body (discarding the error
// explicitly, per rule 1) right after the nil-guard. Only offered when the
// guard exists: before it the response may be nil.
func respCloseFix(v *respVar) *SuggestedFix {
	if !v.hasGuard {
		return nil
	}
	return &SuggestedFix{
		Message: "defer the body close after the nil-guard",
		Edits: []TextEdit{{
			File:    v.fixFile,
			Offset:  v.fixOff,
			End:     v.fixOff,
			NewText: "\n" + v.indent + "defer func() { _ = " + v.name + ".Body.Close() }()",
		}},
	}
}

// httpResponseCall reports whether e is a call whose first result is an
// *http.Response.
func httpResponseCall(pass *Pass, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil, false
	}
	first := tv.Type
	if tup, ok := tv.Type.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return nil, false
		}
		first = tup.At(0).Type()
	}
	if _, ok := first.(*types.Pointer); !ok {
		return nil, false
	}
	return call, namedTypeIn(first, "http", "Response")
}

// checkMetricRegistrations validates names and help strings at every
// Registry.Counter/Gauge/Histogram call site.
func checkMetricRegistrations(pass *Pass) {
	for _, n := range pass.Nodes() {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		switch sel.Sel.Name {
		case "Counter", "Gauge", "Histogram":
		default:
			continue
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			continue
		}
		if !namedTypeIn(selection.Recv(), "telemetry", "Registry") {
			continue
		}
		if len(call.Args) < 2 {
			continue
		}
		if name, ok := constString(pass, call.Args[0]); !ok {
			pass.Reportf("errflow", call.Args[0].Pos(),
				"metric name passed to Registry.%s is not a constant string; the exposition surface must be enumerable", sel.Sel.Name)
		} else if !metricNameRe.MatchString(name) {
			pass.Reportf("errflow", call.Args[0].Pos(),
				"metric name %q does not match the sthist_* snake_case convention", name)
		}
		if help, ok := constString(pass, call.Args[1]); !ok || strings.TrimSpace(help) == "" {
			pass.Reportf("errflow", call.Args[1].Pos(),
				"metric registered via Registry.%s must have a constant, non-empty help string", sel.Sel.Name)
		}
	}
}

// constString extracts a compile-time string constant from e.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
