package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Publish returns the analyzer enforcing the snapshot-publication protocol
// the estimator's read path depends on: a value handed to an
// atomic.Pointer's Store (or Swap/CompareAndSwap) is frozen at the moment of
// publication, and a pointer obtained from Load is a read-only view. Readers
// are wait-free precisely because nothing reachable from a published snapshot
// is ever written again; a single post-publish store is a data race the race
// detector only catches when a reader happens to overlap it.
//
// Concretely, within each function body the analyzer reports:
//
//   - a write through a local pointer at a position after that pointer was
//     passed to Store/Swap/CompareAndSwap on an atomic.Pointer (build the
//     snapshot fully, then publish);
//   - a write through a pointer obtained from an atomic.Pointer's Load or
//     Swap, whether held in a variable or written through the call directly
//     (e.snap.Load().f = x).
//
// The analysis is source-position based, not flow based: a Store inside a
// conditional still freezes the pointer for the rest of the function, which
// errs on the side of reporting. Copying a value out of a snapshot
// (st := e.snap.Load().stats) and mutating the copy is fine — only writes
// through the published pointer itself are flagged. The escape hatch is
// //sthlint:ignore publish <reason>.
func Publish() *Analyzer {
	return &Analyzer{
		Name: "publish",
		Doc:  "values published via atomic.Pointer must not be written afterwards; loaded snapshots are read-only",
		Run:  runPublish,
	}
}

func runPublish(pass *Pass) {
	for _, fn := range pass.FuncDecls() {
		if fn.Body == nil {
			continue
		}
		checkPublish(pass, fn.Body)
	}
}

func checkPublish(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: find the publication and load events. published and loaded map
	// a local object to the earliest position at which it became frozen.
	published := make(map[types.Object]token.Pos)
	loaded := make(map[types.Object]token.Pos)
	note := func(m map[types.Object]token.Pos, obj types.Object, pos token.Pos) {
		if obj == nil {
			return
		}
		if prev, ok := m[obj]; !ok || pos < prev {
			m[obj] = pos
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch method, ok := atomicPointerMethod(pass, n); {
			case !ok:
			case (method == "Store" || method == "Swap") && len(n.Args) == 1:
				if id, isIdent := ast.Unparen(n.Args[0]).(*ast.Ident); isIdent {
					note(published, pass.Info.Uses[id], n.Pos())
				}
			case method == "CompareAndSwap" && len(n.Args) == 2:
				if id, isIdent := ast.Unparen(n.Args[1]).(*ast.Ident); isIdent {
					note(published, pass.Info.Uses[id], n.Pos())
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
				if !isCall {
					continue
				}
				if m, ok := atomicPointerMethod(pass, call); !ok || (m != "Load" && m != "Swap") {
					continue
				}
				id, isIdent := n.Lhs[i].(*ast.Ident)
				if !isIdent || id.Name == "_" {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				note(loaded, obj, n.Pos())
			}
		}
		return true
	})
	if len(published) == 0 && len(loaded) == 0 && !containsAtomicLoad(pass, body) {
		return
	}

	// Pass 2: flag writes through frozen pointers.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkPublishedWrite(pass, lhs, published, loaded)
			}
		case *ast.IncDecStmt:
			checkPublishedWrite(pass, n.X, published, loaded)
		}
		return true
	})
}

// checkPublishedWrite inspects one assignment target. A bare identifier is a
// rebinding of the variable, not a write through the pointer, so only
// selector/index/deref chains are considered.
func checkPublishedWrite(pass *Pass, lhs ast.Expr, published, loaded map[types.Object]token.Pos) {
	if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
		return
	}
	obj, viaLoad := publishWriteRoot(pass, lhs)
	switch {
	case viaLoad:
		pass.Reportf("publish", lhs.Pos(),
			"write to %s mutates a snapshot obtained from an atomic Load; published snapshots are read-only", exprString(lhs))
	case obj != nil:
		if pos, ok := loaded[obj]; ok && lhs.Pos() > pos {
			pass.Reportf("publish", lhs.Pos(),
				"write to %s mutates a snapshot obtained from an atomic Load; published snapshots are read-only", exprString(lhs))
		} else if pos, ok := published[obj]; ok && lhs.Pos() > pos {
			pass.Reportf("publish", lhs.Pos(),
				"write to %s after %s was published via atomic Store; build the snapshot fully before publishing", exprString(lhs), obj.Name())
		}
	}
}

// publishWriteRoot unwraps a write target down to its root: the leftmost
// identifier, or — when the chain starts at a call — whether that call is an
// atomic.Pointer Load/Swap (e.snap.Load().f = x).
func publishWriteRoot(pass *Pass, e ast.Expr) (types.Object, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.Info.Uses[x], false
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			if m, ok := atomicPointerMethod(pass, x); ok && (m == "Load" || m == "Swap") {
				return nil, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// containsAtomicLoad reports whether the body writes through an inline
// atomic.Pointer Load anywhere — the one frozen-pointer source pass 1's
// variable tracking cannot see.
func containsAtomicLoad(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if m, ok := atomicPointerMethod(pass, call); ok && (m == "Load" || m == "Swap") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// atomicPointerMethod decodes a call of the form x.M(...) where x is an
// atomic.Pointer and M is one of its publication-relevant methods.
func atomicPointerMethod(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Store", "Load", "Swap", "CompareAndSwap":
	default:
		return "", false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	if !namedTypeIn(selection.Recv(), "atomic", "Pointer") {
		return "", false
	}
	return sel.Sel.Name, true
}
