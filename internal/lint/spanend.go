package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpanEnd returns the analyzer enforcing the tracing lifecycle contract:
// every span minted by StartRoot, StartRemote or StartChild must reach End()
// on all return paths, or the span leaks — its trace never flushes to the
// retention rings and /debug/trace/spans silently loses the request.
//
// The check is lexical, tuned to the repo's two legitimate shapes:
//
//   - a span ended locally must either be covered by a defer sp.End()
//     anywhere in the function, or an sp.End() call must appear between the
//     Start and every return statement that follows it;
//   - a span handed elsewhere to be ended later (stored in a struct field or
//     composite literal, passed as a call argument, returned, sent on a
//     channel, or aliased) is exempt — ownership moved with it.
//
// Discarding the result outright (a bare statement or an assignment to _) is
// always a leak. The trace package itself is exempt: it is the machinery
// under test, not a client of it.
func SpanEnd() *Analyzer {
	return &Analyzer{
		Name: "spanend",
		Doc:  "spans from StartRoot/StartRemote/StartChild must reach End on every return path",
		Run:  runSpanEnd,
	}
}

// spanStartFuncs are the method names that mint a span the caller owns.
var spanStartFuncs = map[string]bool{
	"StartRoot":   true,
	"StartRemote": true,
	"StartChild":  true,
}

func runSpanEnd(pass *Pass) {
	if pass.Name == "trace" {
		return // the tracer implementation mints and buffers spans freely
	}
	for _, fn := range pass.FuncDecls() {
		if fn.Body != nil {
			checkSpanLifecycles(pass, fn.Body)
		}
	}
}

// spanVar tracks one local variable holding a freshly minted span.
type spanVar struct {
	name    string
	pos     token.Pos // the Start call
	assign  ast.Stmt  // the minting statement when it sits directly in body.List
	escaped bool      // ownership moved: field, arg, return, channel, alias
	defersd bool      // covered by a defer <var>.End()
	ends    []token.Pos
}

// checkSpanLifecycles runs the lexical protocol over one function body,
// treating nested function literals as part of the same region (an End inside
// a deferred closure still counts at its lexical position).
func checkSpanLifecycles(pass *Pass, body *ast.BlockStmt) {
	vars := make(map[types.Object]*spanVar)
	var returns []token.Pos
	topLevel := make(map[ast.Stmt]bool, len(body.List))
	for _, s := range body.List {
		topLevel[s] = true
	}

	// Pass 1: find span-start assignments and outright discards.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isSpanStart(pass, call) {
				pass.Reportf("spanend", call.Pos(),
					"span from %s is discarded and never ended; hold it and End() it, or hand it off", spanStartName(call))
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isSpanStart(pass, call) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue // a field or index destination is a hand-off
				}
				if id.Name == "_" {
					pass.Reportf("spanend", call.Pos(),
						"span from %s is assigned to _ and never ended", spanStartName(call))
					continue
				}
				if obj := identObj(pass, id); obj != nil {
					sv := &spanVar{name: id.Name, pos: call.Pos()}
					if topLevel[ast.Stmt(n)] {
						sv.assign = n
					}
					vars[obj] = sv
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				call, ok := ast.Unparen(v).(*ast.CallExpr)
				if !ok || !isSpanStart(pass, call) || i >= len(n.Names) {
					continue
				}
				if obj := identObj(pass, n.Names[i]); obj != nil {
					vars[obj] = &spanVar{name: n.Names[i].Name, pos: call.Pos()}
				}
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2: collect End calls, defers, returns and escapes per variable.
	tracked := func(e ast.Expr) *spanVar {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := identObj(pass, id); obj != nil {
			return vars[obj]
		}
		return nil
	}
	markEscapes := func(exprs []ast.Expr) {
		for _, e := range exprs {
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				e = kv.Value
			}
			if v := tracked(e); v != nil {
				v.escaped = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if v := spanEndCall(pass, n.Call, tracked); v != nil {
				v.defersd = true
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if v := spanEndCall(pass, call, tracked); v != nil {
					v.ends = append(v.ends, call.Pos())
				}
			}
		case *ast.CallExpr:
			markEscapes(n.Args)
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
			markEscapes(n.Results)
		case *ast.AssignStmt:
			markEscapes(n.Rhs) // aliasing or storing into a field/map slot
		case *ast.CompositeLit:
			markEscapes(n.Elts)
		case *ast.SendStmt:
			markEscapes([]ast.Expr{n.Value})
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markEscapes([]ast.Expr{n.X})
			}
		}
		return true
	})

	// Pass 3: judge each span that stayed local.
	for _, v := range vars {
		if v.escaped || v.defersd {
			continue
		}
		if leakPos, leaks := spanLeaks(v, returns); leaks {
			pass.ReportFixf("spanend", leakPos, deferEndFix(pass, v),
				"span %s can leave the function without End(); defer %s.End() after the Start, or End it before each return",
				v.name, v.name)
		}
	}
}

// deferEndFix builds the autofix inserting `defer <name>.End()` on the line
// after the minting statement. Only offered when the mint sits directly in the
// function body (inside a loop or branch a defer would pile up or leak scope).
func deferEndFix(pass *Pass, v *spanVar) *SuggestedFix {
	if v.assign == nil {
		return nil
	}
	pos := pass.Fset.Position(v.assign.Pos())
	end := pass.Fset.Position(v.assign.End())
	indent := strings.Repeat("\t", pos.Column-1)
	return &SuggestedFix{
		Message: "defer the End right after the Start",
		Edits: []TextEdit{{
			File:    end.Filename,
			Offset:  end.Offset,
			End:     end.Offset,
			NewText: "\n" + indent + "defer " + v.name + ".End()",
		}},
	}
}

// spanLeaks reports whether v misses an End on some path: a return after the
// Start with no End between them, or — when no return follows — no End at
// all after the Start.
func spanLeaks(v *spanVar, returns []token.Pos) (token.Pos, bool) {
	endBetween := func(lo, hi token.Pos) bool {
		for _, e := range v.ends {
			if e > lo && (hi == token.NoPos || e < hi) {
				return true
			}
		}
		return false
	}
	sawReturn := false
	for _, r := range returns {
		if r <= v.pos {
			continue
		}
		sawReturn = true
		if !endBetween(v.pos, r) {
			return v.pos, true
		}
	}
	if !sawReturn && !endBetween(v.pos, token.NoPos) {
		return v.pos, true
	}
	return token.NoPos, false
}

// isSpanStart reports whether call is a Start* method returning *trace.Span.
func isSpanStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !spanStartFuncs[sel.Sel.Name] {
		return false
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	return namedTypeIn(tv.Type, "trace", "Span")
}

// spanStartName renders the Start call for diagnostics ("tr.StartRoot").
func spanStartName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return exprString(sel.X) + "." + sel.Sel.Name
	}
	return exprString(call.Fun)
}

// spanEndCall returns the tracked variable when call is <var>.End().
func spanEndCall(pass *Pass, call *ast.CallExpr, tracked func(ast.Expr) *spanVar) *spanVar {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" || len(call.Args) != 0 {
		return nil
	}
	return tracked(sel.X)
}

// identObj resolves an identifier to its object for both := and = forms.
func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}
