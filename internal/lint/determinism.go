package lint

import (
	"go/ast"
	"go/types"
)

// Determinism returns the analyzer enforcing the repo's bit-determinism
// contract: the histogram's final shape must depend only on the feedback
// sequence, never on Go's randomized map iteration order or on ambient
// entropy. Two families of checks:
//
//  1. In the pure estimation packages (geom, sthole, mineclus, stgrid) any
//     use of wall-clock time (time.Now/Since/Until/Tick/After) or of the
//     global math/rand source is flagged. Explicitly seeded sources
//     (rand.New, rand.NewSource, rand.NewZipf, rand.NewPCG, rand.NewChaCha8)
//     stay legal — MineClus is a randomized algorithm, but its randomness
//     must flow from a caller-provided seed.
//
//  2. In every package, a `for ... range m` loop over a map must not drive
//     order-sensitive effects in its body:
//     - inserting into the ranged map itself (the Go spec leaves it
//     unspecified whether the new key is produced — the WritePrometheus
//     crash class),
//     - deleting a key other than the current iteration key,
//     - calling mutating pointer-receiver methods on sthole's Histogram or
//     Bucket (merge/drill scheduling must be sequence-driven),
//     - appending WAL records (wal.Log Append/Checkpoint) or writing to an
//     io.Writer via fmt.Fprint* (emission order would be random).
//
// Sites that are order-independent by construction (e.g. draining a dirty
// set into a totally-ordered heap) carry //sthlint:ignore determinism
// directives with the proof sketch as the reason.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "map iteration must not drive mutation or emission; pure packages must not read clocks or global rand",
		Run:  runDeterminism,
	}
}

// purePackages are the package names (not paths, so fixtures participate)
// whose output must be a pure function of their inputs.
var purePackages = map[string]bool{
	"geom":     true,
	"sthole":   true,
	"mineclus": true,
	"stgrid":   true,
}

// seededRandConstructors are the math/rand entry points that accept or build
// an explicit seed and are therefore allowed in pure packages.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// bannedTimeFuncs are the wall-clock entry points banned in pure packages.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Tick":  true,
	"After": true,
}

func runDeterminism(pass *Pass) {
	if purePackages[pass.Name] {
		checkAmbientEntropy(pass)
	}
	for _, n := range pass.Nodes() {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		checkMapRangeBody(pass, rng)
	}
}

// checkAmbientEntropy flags wall-clock and global-rand uses in a pure
// package by scanning resolved identifier uses (sorted reporting happens in
// Run, so map iteration here is harmless).
func checkAmbientEntropy(pass *Pass) {
	for _, n := range pass.Nodes() {
		id, ok := n.(*ast.Ident)
		if !ok {
			continue
		}
		fn, ok := pass.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf("determinism", id.Pos(),
					"pure package %s reads the wall clock via time.%s; thread timing through the caller", pass.Name, fn.Name())
			}
		case "math/rand", "math/rand/v2":
			// Methods on *rand.Rand carry a receiver — those flow from an
			// explicit source and are fine. Package-level functions use
			// the shared global source.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				continue
			}
			if !seededRandConstructors[fn.Name()] {
				pass.Reportf("determinism", id.Pos(),
					"pure package %s uses the global math/rand source via rand.%s; use an explicitly seeded *rand.Rand", pass.Name, fn.Name())
			}
		}
	}
}

// checkMapRangeBody flags order-sensitive effects inside one map range loop.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	rangedKey := exprString(rng.X)
	var iterKey string
	if id, ok := rng.Key.(*ast.Ident); ok {
		iterKey = id.Name
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if exprString(idx.X) == rangedKey {
					pass.Reportf("determinism", lhs.Pos(),
						"assignment into map %s while ranging over it: the spec leaves iteration of new keys unspecified", rangedKey)
				}
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, n, rangedKey, iterKey)
		}
		return true
	})
}

// checkMapRangeCall inspects one call inside a map-range body.
func checkMapRangeCall(pass *Pass, call *ast.CallExpr, rangedKey, iterKey string) {
	// delete(ranged, k) with k != the iteration key.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(call.Args) == 2 {
			if exprString(call.Args[0]) == rangedKey && exprString(call.Args[1]) != iterKey {
				pass.Reportf("determinism", call.Pos(),
					"delete of a non-current key from map %s while ranging over it is iteration-order dependent", rangedKey)
			}
			return
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// fmt.Fprint* emission inside a map range.
	if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
		if obj.Pkg().Path() == "fmt" && (obj.Name() == "Fprintf" || obj.Name() == "Fprint" || obj.Name() == "Fprintln") {
			pass.Reportf("determinism", call.Pos(),
				"fmt.%s inside a map range emits output in randomized iteration order; collect and sort first", obj.Name())
			return
		}
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return
	}
	recv := selection.Recv()
	// Mutating pointer-receiver methods on Histogram/Bucket.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
			if namedTypeIn(recv, "sthole", "Histogram") || namedTypeIn(recv, "sthole", "Bucket") {
				pass.Reportf("determinism", call.Pos(),
					"pointer-receiver call %s.%s inside a map range may mutate histogram state in iteration order", exprString(sel.X), fn.Name())
				return
			}
		}
	}
	// WAL record emission.
	if namedTypeIn(recv, "wal", "Log") && (fn.Name() == "Append" || fn.Name() == "Checkpoint") {
		pass.Reportf("determinism", call.Pos(),
			"wal.Log.%s inside a map range writes records in randomized iteration order", fn.Name())
	}
}
