package lint

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix carried by diags to the files on
// disk, returning the set of rewritten file paths. Edits are grouped per file
// and applied back-to-front so earlier offsets stay valid; overlapping edits
// within one file are rejected rather than silently mangled (two analyzers
// proposing conflicting rewrites of the same span is a bug to surface, not
// paper over). Re-run the driver after applying: a fix can both resolve its
// own finding and shift later line numbers.
func ApplyFixes(diags []Diagnostic) ([]string, error) {
	perFile := make(map[string][]TextEdit)
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			perFile[e.File] = append(perFile[e.File], e)
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var changed []string
	for _, f := range files {
		edits := perFile[f]
		sort.Slice(edits, func(i, j int) bool { return edits[i].Offset > edits[j].Offset })
		for i := 1; i < len(edits); i++ {
			if edits[i].End > edits[i-1].Offset {
				return changed, fmt.Errorf("lint: conflicting fixes in %s around offset %d", f, edits[i].Offset)
			}
		}
		src, err := os.ReadFile(f)
		if err != nil {
			return changed, err
		}
		for _, e := range edits {
			if e.Offset < 0 || e.End < e.Offset || e.End > len(src) {
				return changed, fmt.Errorf("lint: fix edit out of range in %s (%d..%d of %d bytes)", f, e.Offset, e.End, len(src))
			}
			src = append(src[:e.Offset:e.Offset], append([]byte(e.NewText), src[e.End:]...)...)
		}
		if err := os.WriteFile(f, src, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, f)
	}
	return changed, nil
}

// Fixable counts the diagnostics in diags that carry a suggested fix.
func Fixable(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Fix != nil {
			n++
		}
	}
	return n
}
