package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck returns the analyzer enforcing the "guarded by" annotation: a
// struct field whose field comment contains "guarded by <mu>" may only be
// read while <mu> (or its read half) is definitely held on every path from
// function entry, and only written while the write lock is held.
//
// The lock-state analysis is a conservative abstract interpretation over the
// AST: a lock counts as held after a x.mu.Lock()/RLock() statement and stops
// counting after Unlock()/RUnlock(); branches join by intersection; loop
// bodies are analyzed with the loop-entry state. Lock owners are matched to
// field accesses by the textual form of the base expression (e.mu.Lock()
// guards e.hist), which is exact for the receiver-plus-locals style this
// repo uses.
//
// Escapes, in decreasing order of preference:
//
//   - functions whose name ends in "Locked" assert that the caller holds the
//     lock and are exempt (the repo-wide convention);
//   - accesses through a variable constructed in the same function (x :=
//     &T{...}; x.field = ...) are exempt — unshared until published;
//   - a //sthlint:ignore lockcheck <reason> directive.
//
// Function literals are analyzed with the state at their creation point when
// deferred (they run before the deferred Unlock), and with an empty state
// when started with go or stored for later (another goroutine or a later
// call cannot inherit the current critical section).
func LockCheck() *Analyzer {
	return &Analyzer{
		Name: "lockcheck",
		Doc:  `fields annotated "guarded by <mu>" must only be accessed with <mu> held`,
		Run:  runLockCheck,
	}
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// lockMode is a bitmask of what a held lock permits.
type lockMode uint8

const (
	lockRead  lockMode = 1 << iota // RLock held: reads allowed
	lockWrite                      // Lock held: reads and writes allowed
)

// lockState maps "base.guard" keys to the held mode.
type lockState map[string]lockMode

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersect keeps only locks held in both states (with the weaker mode).
func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if m := va & vb; m != 0 {
				out[k] = m
			}
		}
	}
	return out
}

func runLockCheck(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, fn := range pass.FuncDecls() {
		if fn.Body == nil {
			continue
		}
		if strings.HasSuffix(fn.Name.Name, "Locked") {
			continue // caller-holds-lock helper, by convention
		}
		w := &lockWalker{pass: pass, guards: guards, exempt: constructedLocals(pass, fn)}
		w.stmts(fn.Body.List, make(lockState))
	}
}

// collectGuards maps each annotated field object to the name of its guard
// field, validating that the guard exists in the same struct.
func collectGuards(pass *Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, n := range pass.Nodes() {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		names := make(map[string]bool)
		for _, fld := range st.Fields.List {
			for _, name := range fld.Names {
				names[name.Name] = true
			}
		}
		for _, fld := range st.Fields.List {
			guard := guardAnnotation(fld)
			if guard == "" {
				continue
			}
			if !names[guard] {
				pass.Reportf("lockcheck", fld.Pos(), "guard %q named by annotation is not a field of this struct", guard)
				continue
			}
			for _, name := range fld.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					guards[v] = guard
				}
			}
		}
	}
	return guards
}

// guardAnnotation extracts the guard name from a field's comments.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// constructedLocals returns the objects of local variables initialized from
// a composite literal (or new) in fn — values that are provably unshared
// while the function builds them, so unlocked access is fine.
func constructedLocals(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isConstruction(pass, n.Rhs[i]) {
					continue
				}
				if obj := pass.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) != 0 {
				return true
			}
			for _, id := range n.Names { // var x T: zero value, unshared
				if obj := pass.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isConstruction reports whether e is T{...}, &T{...} or new(T).
func isConstruction(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.Info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "new"
	}
	return false
}

// lockWalker performs the per-function lock-state walk.
type lockWalker struct {
	pass   *Pass
	guards map[*types.Var]string
	exempt map[types.Object]bool
}

// stmts processes a statement list, returning the exit state and whether the
// list definitely terminates (return/panic).
func (w *lockWalker) stmts(list []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *lockWalker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.expr(s.X, st, false), false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st = w.expr(rhs, st, false)
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && s.Tok == token.DEFINE {
				_ = id
				continue // definition, not a field write
			}
			st = w.expr(lhs, st, true)
		}
		return st, false
	case *ast.IncDecStmt:
		return w.expr(s.X, st, true), false
	case *ast.SendStmt:
		st = w.expr(s.Chan, st, false)
		return w.expr(s.Value, st, false), false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = w.expr(v, st, false)
					}
				}
			}
		}
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.expr(r, st, false)
		}
		return st, true
	case *ast.BranchStmt:
		return st, false
	case *ast.BlockStmt:
		return w.stmts(s.List, st.clone())
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st = w.expr(s.Cond, st, false)
		thenSt, thenTerm := w.stmts(s.Body.List, st.clone())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return intersect(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			st = w.expr(s.Cond, st, false)
		}
		bodySt, _ := w.stmts(s.Body.List, st.clone())
		if s.Post != nil {
			w.stmt(s.Post, bodySt)
		}
		if s.Cond == nil {
			// for {}: the only exits are breaks inside the body; keep the
			// entry state as the conservative join.
			return st, false
		}
		return intersect(st, bodySt), false
	case *ast.RangeStmt:
		st = w.expr(s.X, st, false)
		bodySt, _ := w.stmts(s.Body.List, st.clone())
		return intersect(st, bodySt), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st = w.expr(s.Tag, st, false)
		}
		return w.caseClauses(s.Body.List, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st, _ = w.stmt(s.Assign, st)
		return w.caseClauses(s.Body.List, st)
	case *ast.SelectStmt:
		return w.caseClauses(s.Body.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.DeferStmt:
		return w.deferred(s.Call, st), false
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			st = w.expr(a, st, false)
		}
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmts(fl.Body.List, make(lockState)) // runs on another goroutine
		}
		return st, false
	case *ast.EmptyStmt:
		return st, false
	default:
		return st, false
	}
}

// caseClauses joins the bodies of switch/select cases by intersection. A
// switch without a default may fall through entirely, so the entry state
// joins in too.
func (w *lockWalker) caseClauses(clauses []ast.Stmt, st lockState) (lockState, bool) {
	var out lockState
	sawDefault := false
	allTerm := len(clauses) > 0
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				sawDefault = true
			}
			for _, e := range c.List {
				st = w.expr(e, st, false)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				sawDefault = true
			} else {
				w.stmt(c.Comm, st.clone())
			}
			body = c.Body
		}
		caseSt, term := w.stmts(body, st.clone())
		if term {
			continue
		}
		allTerm = false
		if out == nil {
			out = caseSt
		} else {
			out = intersect(out, caseSt)
		}
	}
	if out == nil {
		out = st.clone()
		allTerm = allTerm && sawDefault
		return out, allTerm
	}
	if !sawDefault {
		out = intersect(out, st)
	}
	return out, false
}

// deferred handles a defer: a deferred Unlock keeps the lock held for the
// body; a deferred function literal runs before it, so it is analyzed with
// the registration-point state.
func (w *lockWalker) deferred(call *ast.CallExpr, st lockState) lockState {
	for _, a := range call.Args {
		st = w.expr(a, st, false)
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.stmts(fl.Body.List, st.clone())
		return st
	}
	if key, _, isLock := w.lockEvent(call); isLock && key != "" {
		return st // deferred unlock: lock stays held until return
	}
	st = w.expr(call.Fun, st, false)
	return st
}

// lockEvent decodes base.guard.Lock()/RLock()/Unlock()/RUnlock() calls.
// It returns the state key ("base.guard"), the mode granted (0 for unlocks)
// and whether the call is a lock-shaped event at all.
func (w *lockWalker) lockEvent(call *ast.CallExpr) (key string, mode lockMode, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", 0, false
	}
	key = exprString(sel.X)
	switch sel.Sel.Name {
	case "Lock":
		return key, lockWrite | lockRead, true
	case "RLock":
		return key, lockRead, true
	default:
		return key, 0, true
	}
}

// expr walks an expression, checking guarded accesses and applying lock
// events in evaluation order. write marks the outermost expression as a
// write target.
func (w *lockWalker) expr(e ast.Expr, st lockState, write bool) lockState {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.expr(e.X, st, write)
	case *ast.SelectorExpr:
		st = w.expr(e.X, st, false)
		w.checkAccess(e, st, write)
		return st
	case *ast.CallExpr:
		if key, mode, isLock := w.lockEvent(e); isLock {
			if mode == 0 {
				delete(st, key)
			} else {
				if st == nil {
					st = make(lockState)
				}
				st[key] = st[key] | mode
			}
			return st
		}
		if fl, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			// Immediately-invoked literal: runs here, inherits the state.
			for _, a := range e.Args {
				st = w.expr(a, st, false)
			}
			w.stmts(fl.Body.List, st.clone())
			return st
		}
		st = w.expr(e.Fun, st, false)
		for _, a := range e.Args {
			st = w.expr(a, st, false)
		}
		return st
	case *ast.FuncLit:
		// Stored for later: the critical section cannot be assumed to
		// survive until it runs.
		w.stmts(e.Body.List, make(lockState))
		return st
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.expr(e.X, st, true) // address escapes: treat as write
		}
		return w.expr(e.X, st, false)
	case *ast.BinaryExpr:
		st = w.expr(e.X, st, false)
		return w.expr(e.Y, st, false)
	case *ast.IndexExpr:
		st = w.expr(e.X, st, write)
		return w.expr(e.Index, st, false)
	case *ast.SliceExpr:
		st = w.expr(e.X, st, write)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				st = w.expr(idx, st, false)
			}
		}
		return st
	case *ast.StarExpr:
		return w.expr(e.X, st, write)
	case *ast.TypeAssertExpr:
		return w.expr(e.X, st, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			st = w.expr(el, st, false)
		}
		return st
	case *ast.KeyValueExpr:
		st = w.expr(e.Key, st, false)
		return w.expr(e.Value, st, false)
	default:
		return st
	}
}

// checkAccess validates one selector against the guard table.
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, st lockState, write bool) {
	selection, ok := w.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fld, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, guarded := w.guards[fld]
	if !guarded {
		return
	}
	if w.exempt[rootObject(w.pass, sel.X)] {
		return // constructed locally, unshared
	}
	key := exprString(sel.X) + "." + guard
	mode := st[key]
	access := exprString(sel)
	switch {
	case write && mode&lockWrite == 0 && mode&lockRead != 0:
		w.pass.Reportf("lockcheck", sel.Pos(),
			"write to %s (guarded by %s) with only the read lock held; %s.Lock is required", access, guard, exprString(sel.X)+"."+guard)
	case write && mode == 0:
		w.pass.Reportf("lockcheck", sel.Pos(),
			"write to %s (guarded by %s) without %s.Lock held on every path", access, guard, exprString(sel.X)+"."+guard)
	case !write && mode == 0:
		w.pass.Reportf("lockcheck", sel.Pos(),
			"read of %s (guarded by %s) without %s held on every path", access, guard, exprString(sel.X)+"."+guard)
	}
}

// rootObject resolves the leftmost identifier of a selector chain.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.Info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
