package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads the standalone fixture module under testdata once per
// test binary. The fixture is a real module (its own go.mod) so the loader
// path under test is exactly the one cmd/sthlint uses.
func loadFixture(t *testing.T) []*Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixture module loaded no packages")
	}
	return pkgs
}

var wantRe = regexp.MustCompile(`// want ([a-z ]+)$`)

// collectWants scans the fixture sources for "// want <check>..." comments.
// A trailing comment expects the diagnostics on its own line; a standalone
// comment line expects them on the line above (for diagnostics positioned on
// full-line comments, e.g. malformed directives). Returns a map from
// "file:line" to the sorted list of expected check names.
func collectWants(t *testing.T, pkgs []*Package) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(bytes.NewReader(src))
			line := 0
			for sc.Scan() {
				line++
				m := wantRe.FindStringSubmatch(sc.Text())
				if m == nil {
					continue
				}
				target := line
				if strings.HasPrefix(strings.TrimSpace(sc.Text()), "//") {
					target = line - 1 // standalone comment: expectation is for the line above
				}
				key := fmt.Sprintf("%s:%d", name, target)
				wants[key] = append(wants[key], strings.Fields(m[1])...)
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, w := range wants {
		sort.Strings(w)
	}
	return wants
}

// TestFixtureDiagnostics runs the full suite over the fixture module and
// requires the reported diagnostics to match the // want expectations
// exactly — every known-bad snippet caught, every known-good snippet
// accepted, every escape hatch honored.
func TestFixtureDiagnostics(t *testing.T) {
	pkgs := loadFixture(t)
	wants := collectWants(t, pkgs)

	got := make(map[string][]string)
	for _, d := range Run(pkgs, Analyzers()) {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		got[key] = append(got[key], d.Check)
	}
	for _, g := range got {
		sort.Strings(g)
	}

	for key, w := range wants {
		g := got[key]
		if strings.Join(g, " ") != strings.Join(w, " ") {
			t.Errorf("%s: want checks %v, got %v", key, w, g)
		}
	}
	for key, g := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostics %v", key, g)
		}
	}
}

// TestFixtureRegressions pins the two regressions the CI gate must catch:
// the WritePrometheus map-iteration exposition race and an allocation inside
// a //sthlint:noalloc geometry kernel.
func TestFixtureRegressions(t *testing.T) {
	pkgs := loadFixture(t)
	diags := Run(pkgs, Analyzers())

	find := func(file, check, fragment string) bool {
		for _, d := range diags {
			if filepath.Base(d.File) == file && d.Check == check && strings.Contains(d.Message, fragment) {
				return true
			}
		}
		return false
	}
	if !find("telemetry.go", "lockcheck", "r.fams") {
		t.Error("WritePrometheus regression: unlocked read of the family map not caught by lockcheck")
	}
	if !find("telemetry.go", "determinism", "map range") {
		t.Error("WritePrometheus regression: map-iteration-ordered exposition not caught by determinism")
	}
	if !find("geom.go", "noalloc", "make allocates") {
		t.Error("noalloc regression: make inside an annotated kernel not caught")
	}
	if !find("geom.go", "noalloc", "composite literal") {
		t.Error("noalloc regression: composite literal inside an annotated kernel not caught")
	}
}

// TestJSONOutput checks the machine-readable mode round-trips and stays an
// array even when empty.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var empty []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil {
		t.Fatalf("empty output is not a JSON array: %v\n%s", err, buf.String())
	}
	if empty == nil || len(empty) != 0 {
		t.Fatalf("want empty array, got %v", empty)
	}

	buf.Reset()
	in := []Diagnostic{{Check: "noalloc", File: "a.go", Line: 3, Column: 7, Message: "m"}}
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round-trip mismatch: %+v", out)
	}
}

// TestDiagnosticOrdering checks Run's output is sorted by position, so runs
// are diffable in CI.
func TestDiagnosticOrdering(t *testing.T) {
	pkgs := loadFixture(t)
	diags := Run(pkgs, Analyzers())
	if len(diags) < 2 {
		t.Fatalf("fixture produced %d diagnostics; expected several", len(diags))
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column <= b.Column
	}) {
		t.Error("diagnostics are not sorted by file/line/column")
	}
}

// TestRepoIsClean lints the repository itself: go test ./... enforces the
// same gate as make lint, so a diagnostic can't land without either a fix
// or a reasoned ignore directive.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
