package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads the standalone fixture module under testdata once per
// test binary. The fixture is a real module (its own go.mod) so the loader
// path under test is exactly the one cmd/sthlint uses.
func loadFixture(t *testing.T) []*Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixture module loaded no packages")
	}
	return pkgs
}

var wantRe = regexp.MustCompile(`// want ([a-z ]+)$`)

// collectWants scans the fixture sources for "// want <check>..." comments.
// A trailing comment expects the diagnostics on its own line; a standalone
// comment line expects them on the line above (for diagnostics positioned on
// full-line comments, e.g. malformed directives). Returns a map from
// "file:line" to the sorted list of expected check names.
func collectWants(t *testing.T, pkgs []*Package) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(bytes.NewReader(src))
			line := 0
			for sc.Scan() {
				line++
				m := wantRe.FindStringSubmatch(sc.Text())
				if m == nil {
					continue
				}
				target := line
				if strings.HasPrefix(strings.TrimSpace(sc.Text()), "//") {
					target = line - 1 // standalone comment: expectation is for the line above
				}
				key := fmt.Sprintf("%s:%d", name, target)
				wants[key] = append(wants[key], strings.Fields(m[1])...)
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, w := range wants {
		sort.Strings(w)
	}
	return wants
}

// TestFixtureDiagnostics runs the full suite over the fixture module and
// requires the reported diagnostics to match the // want expectations
// exactly — every known-bad snippet caught, every known-good snippet
// accepted, every escape hatch honored.
func TestFixtureDiagnostics(t *testing.T) {
	pkgs := loadFixture(t)
	wants := collectWants(t, pkgs)

	got := make(map[string][]string)
	for _, d := range Run(pkgs, Analyzers()) {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		got[key] = append(got[key], d.Check)
	}
	for _, g := range got {
		sort.Strings(g)
	}

	for key, w := range wants {
		g := got[key]
		if strings.Join(g, " ") != strings.Join(w, " ") {
			t.Errorf("%s: want checks %v, got %v", key, w, g)
		}
	}
	for key, g := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostics %v", key, g)
		}
	}
}

// TestFixtureRegressions pins the two regressions the CI gate must catch:
// the WritePrometheus map-iteration exposition race and an allocation inside
// a //sthlint:noalloc geometry kernel.
func TestFixtureRegressions(t *testing.T) {
	pkgs := loadFixture(t)
	diags := Run(pkgs, Analyzers())

	find := func(file, check, fragment string) bool {
		for _, d := range diags {
			if filepath.Base(d.File) == file && d.Check == check && strings.Contains(d.Message, fragment) {
				return true
			}
		}
		return false
	}
	if !find("telemetry.go", "lockcheck", "r.fams") {
		t.Error("WritePrometheus regression: unlocked read of the family map not caught by lockcheck")
	}
	if !find("telemetry.go", "determinism", "map range") {
		t.Error("WritePrometheus regression: map-iteration-ordered exposition not caught by determinism")
	}
	if !find("geom.go", "noalloc", "make allocates") {
		t.Error("noalloc regression: make inside an annotated kernel not caught")
	}
	if !find("geom.go", "noalloc", "composite literal") {
		t.Error("noalloc regression: composite literal inside an annotated kernel not caught")
	}
}

// TestJSONOutput checks the machine-readable mode round-trips and stays an
// array even when empty.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var empty []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil {
		t.Fatalf("empty output is not a JSON array: %v\n%s", err, buf.String())
	}
	if empty == nil || len(empty) != 0 {
		t.Fatalf("want empty array, got %v", empty)
	}

	buf.Reset()
	in := []Diagnostic{{Check: "noalloc", File: "a.go", Line: 3, Column: 7, Message: "m"}}
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round-trip mismatch: %+v", out)
	}
}

// TestDiagnosticOrdering checks Run's output is sorted by position, so runs
// are diffable in CI.
func TestDiagnosticOrdering(t *testing.T) {
	pkgs := loadFixture(t)
	diags := Run(pkgs, Analyzers())
	if len(diags) < 2 {
		t.Fatalf("fixture produced %d diagnostics; expected several", len(diags))
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column <= b.Column
	}) {
		t.Error("diagnostics are not sorted by file/line/column")
	}
}

// TestRepoIsClean lints the repository itself: go test ./... enforces the
// same gate as make lint, so a diagnostic can't land without a fix, a
// reasoned ignore directive, or a committed baseline entry. Every baseline
// entry must still match a finding — stale entries mean the debt was paid
// and the baseline must be regenerated.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	base, err := LoadBaseline(filepath.Join(root, ".sthlint-baseline.json"))
	if err != nil {
		t.Fatalf("loading baseline: %v", err)
	}
	fresh, stale := base.Filter(root, diags)
	for _, d := range fresh {
		t.Errorf("non-baselined finding: %s", d)
	}
	if stale > 0 {
		t.Errorf("%d stale baseline entries; regenerate .sthlint-baseline.json to burn them down", stale)
	}
}

// TestBaselineRoundTrip writes a baseline from a diagnostic set and checks
// the subtraction semantics: baselined findings are filtered (line moves
// must not matter), new findings stay fresh, and paid-down entries count as
// stale.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	diags := []Diagnostic{
		{Check: "leakcheck", File: filepath.Join(root, "a", "a.go"), Line: 10, Message: "m1"},
		{Check: "errflow", File: filepath.Join(root, "b.go"), Line: 20, Message: "m2"},
	}
	path := filepath.Join(root, "base.json")
	if err := WriteBaseline(path, root, diags); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	moved := []Diagnostic{
		{Check: "leakcheck", File: filepath.Join(root, "a", "a.go"), Line: 99, Message: "m1"}, // same finding, new line
		{Check: "noalloc", File: filepath.Join(root, "c.go"), Line: 3, Message: "m3"},         // genuinely new
	}
	fresh, stale := base.Filter(root, moved)
	if len(fresh) != 1 || fresh[0].Check != "noalloc" {
		t.Fatalf("want only the new noalloc finding fresh, got %v", fresh)
	}
	if stale != 1 {
		t.Fatalf("want 1 stale entry (the paid-down errflow), got %d", stale)
	}

	empty, err := LoadBaseline(filepath.Join(root, "missing.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale = empty.Filter(root, moved)
	if len(fresh) != 2 || stale != 0 {
		t.Fatalf("missing baseline must pass everything through, got %d fresh %d stale", len(fresh), stale)
	}
}

// TestSARIFOutput checks the SARIF 2.1.0 envelope: every analyzer appears
// as a rule even on a clean run, results carry repo-relative URIs with the
// %SRCROOT% base, and the output parses as JSON.
func TestSARIFOutput(t *testing.T) {
	root := t.TempDir()
	diags := []Diagnostic{{Check: "walorder", File: filepath.Join(root, "x", "y.go"), Line: 4, Column: 2, Message: "m"}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, root, Analyzers(), diags); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one SARIF 2.1.0 run, got version %q runs %d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if len(run.Tool.Driver.Rules) < len(Analyzers()) {
		t.Errorf("want every analyzer listed as a rule, got %d rules", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 1 {
		t.Fatalf("want 1 result, got %d", len(run.Results))
	}
	res := run.Results[0]
	loc := res.Locations[0].PhysicalLocation
	if res.RuleID != "walorder" || loc.ArtifactLocation.URI != "x/y.go" ||
		loc.ArtifactLocation.URIBaseID != "%SRCROOT%" || loc.Region.StartLine != 4 {
		t.Errorf("result mismatch: %+v", res)
	}
}

// TestApplyFixes copies a broken source tree into a temp module, applies the
// suggested fixes, and re-lints: the fixed tree must come back clean. This
// is the -fix pipeline end to end, on the exact rewrites shipped to users.
func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	src := `package wal

import "os"

func Persist(f *os.File) {
	f.Sync()
	defer f.Close()
}
`
	writeFixModule(t, dir, src)
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())
	if len(diags) != 2 {
		t.Fatalf("want 2 errflow findings before fixing, got %v", diags)
	}
	if Fixable(diags) != 2 {
		t.Fatalf("want both findings fixable, got %d", Fixable(diags))
	}
	changed, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 {
		t.Fatalf("want 1 changed file, got %v", changed)
	}
	pkgs, err = Load(dir, "./...")
	if err != nil {
		t.Fatalf("fixed tree does not load: %v", err)
	}
	if diags := Run(pkgs, Analyzers()); len(diags) != 0 {
		t.Fatalf("fixed tree still reports %v", diags)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "wal.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"_ = f.Sync()", "defer func() { _ = f.Close() }()"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source missing %q:\n%s", want, fixed)
		}
	}
}

// writeFixModule lays out a one-file module named after the durability path
// so the errflow scope applies.
func writeFixModule(t *testing.T, dir, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module wal\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}
