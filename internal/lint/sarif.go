package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning ingests to
// annotate pull requests. Only the slice of the schema the suite needs is
// modeled; uriBaseId SRCROOT makes the repo-relative paths resolvable by the
// uploader without an absolute-path leak into the artifact.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diags as one SARIF 2.1.0 run. root relativizes file
// paths; analyzers supplies the rule metadata (every registered check appears
// as a rule even when clean, so code-scanning dashboards track all ten).
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{ID: "directive", ShortDescription: sarifText{Text: "malformed //sthlint:ignore directive"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: RelFile(root, d.File), URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sthlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
