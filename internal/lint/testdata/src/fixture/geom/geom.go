// Package geom is a lint fixture mimicking sthist's pure geometry package.
// Its package name places it in the determinism analyzer's pure set, and its
// annotated functions exercise every noalloc rule. Lines carrying a
// "// want <check>" comment must produce exactly that diagnostic.
package geom

import (
	"fmt"
	"math/rand"
	"time"
)

// Rect is a minimal stand-in for the real geometry kernel's rectangle.
type Rect struct {
	Lo, Hi []float64
}

// GoodKernel is the known-good shape: index writes into preallocated
// scratch, no allocating construct anywhere.
//
//sthlint:noalloc
func GoodKernel(r, s Rect, dst *Rect) bool {
	for d := range r.Lo {
		if s.Hi[d] < r.Lo[d] || s.Lo[d] > r.Hi[d] {
			return false
		}
	}
	for d := range r.Lo {
		dst.Lo[d] = max(r.Lo[d], s.Lo[d])
		dst.Hi[d] = min(r.Hi[d], s.Hi[d])
	}
	return true
}

// BadKernelAllocs is the regression fixture for "an allocation inside a
// noalloc geom kernel": every allocating construct the contract bans.
//
//sthlint:noalloc
func BadKernelAllocs(r Rect) Rect {
	out := Rect{}                       // want noalloc
	out.Lo = make([]float64, len(r.Lo)) // want noalloc
	out.Hi = append(out.Hi, r.Hi...)    // want noalloc
	f := func() {}                      // want noalloc
	f()
	return out
}

// BadKernelBoxing exercises the interface-conversion rules.
//
//sthlint:noalloc
func BadKernelBoxing(r Rect) {
	var sink any
	sink = r.Lo[0] // want noalloc
	_ = sink
	_ = fmt.Sprint(r.Lo[0], r.Hi[0]) // want noalloc noalloc noalloc
}

// BadKernelStrings exercises the string-allocation rules.
//
//sthlint:noalloc
func BadKernelStrings(name string, raw []byte) string {
	s := string(raw) // want noalloc
	return name + s  // want noalloc
}

// UnannotatedMayAllocate shows the marker is opt-in: no diagnostics here.
func UnannotatedMayAllocate(n int) []float64 {
	return make([]float64, n)
}

// ClockUser reads ambient entropy inside a pure package.
func ClockUser() (time.Time, float64) {
	now := time.Now()          // want determinism
	return now, rand.Float64() // want determinism
}

// SeededUser draws randomness from an explicit seed: legal in pure code.
func SeededUser(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// IgnoredClockUser shows the escape hatch suppressing a real finding.
func IgnoredClockUser() time.Time {
	//sthlint:ignore determinism fixture demonstrating the escape hatch
	return time.Now()
}

// BadDirectives carries malformed ignore directives, which are diagnostics
// in their own right and are never suppressible.
func BadDirectives() time.Time {
	//sthlint:ignore determinism
	// want directive
	//sthlint:ignore nosuchcheck because reasons
	// want directive
	return time.Now() // want determinism
}
