// Package trace is a lint-fixture stub of sthist's internal/trace: just
// enough surface for the spanend analyzer, which matches the Start* methods
// by name and by their *trace.Span result type. The package is itself named
// trace so the analyzer's self-exemption for the real implementation does
// NOT apply to clients importing it — only to this package's own bodies.
package trace

import "net/http"

// TraceparentHeader is the W3C propagation header.
const TraceparentHeader = "traceparent"

// SpanContext identifies a trace across processes.
type SpanContext struct {
	TraceID string
}

// Inject stamps the traceparent onto an outbound request. The ctxflow
// analyzer recognizes any trace-package call taking the request as
// propagation.
func Inject(sc SpanContext, req *http.Request) {
	if req == nil || sc.TraceID == "" {
		return
	}
	req.Header.Set(TraceparentHeader, sc.TraceID)
}

// Span is one traced operation.
type Span struct{}

// Tracer mints spans.
type Tracer struct{}

// StartRoot begins a fresh trace.
func (t *Tracer) StartRoot(name string) *Span { return &Span{} }

// StartRemote continues a propagated context.
func (t *Tracer) StartRemote(sc SpanContext, name string) *Span { return &Span{} }

// StartChild begins a child span.
func (s *Span) StartChild(name string) *Span { return &Span{} }

// End completes the span.
func (s *Span) End() {}

// SetError marks the span failed.
func (s *Span) SetError(msg string) {}
