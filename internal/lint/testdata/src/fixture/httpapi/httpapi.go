// Package httpapi is a lint fixture mimicking sthist's HTTP writer path:
// the walorder analyzer must require every estimator mutation to be
// dominated by a WAL append, and reseed swaps to journal a KindReseed
// record whose failure rejects the promotion.
package httpapi

import (
	"fixture/journal"
	"fixture/sthist"
	"fixture/wal"
)

// Server is the writer-path stand-in.
type Server struct {
	est *sthist.Estimator
	log *wal.Log
}

// GoodGated journals the reseed first and refuses the swap when the append
// fails: the correct shape.
func (s *Server) GoodGated(h *sthist.Histogram) error {
	if _, err := s.log.Append(wal.Record{Kind: wal.KindReseed}); err != nil {
		return err
	}
	s.est.AdoptHistogram(h)
	return nil
}

// GoodGatedSplit gates through the two-statement assign-then-check shape.
func (s *Server) GoodGatedSplit(h *sthist.Histogram) error {
	_, err := s.log.Append(wal.Record{Kind: wal.KindReseed})
	if err != nil {
		return err
	}
	s.est.AdoptHistogram(h)
	return nil
}

// GoodBatch journals the batch before applying it.
func (s *Server) GoodBatch(qs []float64) error {
	if _, err := s.log.AppendBatch([]wal.Record{{}}); err != nil {
		return err
	}
	s.est.FeedbackBatch(qs)
	return nil
}

// GoodHelperCovered reaches the journal through the helper package: the
// "appends" fact must cross the package boundary.
func (s *Server) GoodHelperCovered(h *sthist.Histogram) error {
	if err := journal.AppendReseed(s.log, 1); err != nil {
		return err
	}
	s.est.AdoptHistogram(h)
	return nil
}

// applyFeedback mutates without journaling itself; it is covered because
// its only caller journals first (dominance through call sites).
func (s *Server) applyFeedback(q, actual float64) {
	s.est.Feedback(q, actual)
}

// Apply journals, then delegates the mutation to the helper above.
func (s *Server) Apply(q, actual float64) error {
	if _, err := s.log.Append(wal.Record{}); err != nil {
		return err
	}
	s.applyFeedback(q, actual)
	return nil
}

// GoodRecovery replays from the log: LoadHistogram is the WAL's output and
// must not be asked to journal again.
func (s *Server) GoodRecovery(h *sthist.Histogram) {
	s.est.LoadHistogram(h)
}

// BadMutateFirst applies feedback before journaling it: a crash between the
// two serves state the replay does not contain.
func (s *Server) BadMutateFirst(q, actual float64) error {
	s.est.Feedback(q, actual) // want walorder
	_, err := s.log.Append(wal.Record{})
	return err
}

// BadUncovered mutates with no append on any path and no covering caller.
func (s *Server) BadUncovered(q, actual float64) {
	s.est.Feedback(q, actual) // want walorder
}

// BadUngatedReseed discards the append error: a failed journal write then
// serves a histogram recovery silently rolls back.
func (s *Server) BadUngatedReseed(h *sthist.Histogram) {
	_, _ = s.log.Append(wal.Record{Kind: wal.KindReseed})
	s.est.AdoptHistogram(h) // want walorder
}

// BadWrongRecord journals, but not a reseed record: replay cannot
// reconstruct the swap it gates.
func (s *Server) BadWrongRecord(h *sthist.Histogram) error {
	if _, err := s.log.Append(wal.Record{}); err != nil {
		return err
	}
	s.est.AdoptHistogram(h) // want walorder
	return nil
}

// BadIgnored records a reviewed exception through the escape hatch.
func (s *Server) BadIgnored(q, actual float64) {
	//sthlint:ignore walorder fixture: replayed from an upstream journal
	s.est.Feedback(q, actual)
}
