// Package leakdep provides cross-package goroutine targets for the
// leakcheck fixture: Drain's "stoppable" fact must flow across the package
// boundary, and Forever's absence of one must be reported at the spawn.
package leakdep

var spins uint64

// Forever runs until process exit: nothing can stop it.
func Forever() {
	for {
		spins++
	}
}

// Drain receives until the channel closes: stoppable, exported as a fact.
func Drain(ch <-chan int) {
	for range ch {
		spins++
	}
}
