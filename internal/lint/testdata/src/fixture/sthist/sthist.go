// Package sthist is a lint-fixture stub of the estimator surface the
// walorder analyzer matches: the mutating methods on Estimator (Feedback,
// FeedbackBatch, AdoptHistogram) and the recovery-only LoadHistogram, which
// must NOT be treated as a mutation.
package sthist

// Histogram is a served histogram stand-in.
type Histogram struct {
	Buckets int
}

// Estimator is the self-tuning estimator stand-in.
type Estimator struct {
	served *Histogram
}

// Feedback refines the served histogram with one observed cardinality.
func (e *Estimator) Feedback(q, actual float64) {}

// FeedbackBatch applies a batch of observations.
func (e *Estimator) FeedbackBatch(qs []float64) {}

// AdoptHistogram swaps the served histogram (a reseed).
func (e *Estimator) AdoptHistogram(h *Histogram) { e.served = h }

// LoadHistogram replays recovered state; it is the WAL's output, not input.
func (e *Estimator) LoadHistogram(h *Histogram) { e.served = h }

// Estimate reads the served state.
func (e *Estimator) Estimate(q float64) float64 { return 0 }
