// Package cluster is a lint fixture for the ctxflow analyzer (outbound
// requests must carry a context and traceparent injection; handlers must
// propagate the inbound context) and for errflow's response-body lifecycle
// rule (every minted *http.Response must be closed on every path).
package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"

	"fixture/trace"
)

// BadNewRequest builds a context-less request.
func BadNewRequest(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want ctxflow
}

// BadPackageGet uses the context-less package-level convenience.
func BadPackageGet(url string) (*http.Response, error) {
	return http.Get(url) // want ctxflow
}

// BadClientGet uses the context-less Client convenience.
func BadClientGet(c *http.Client, url string) (*http.Response, error) {
	return c.Get(url) // want ctxflow
}

// GoodHeaderRead shares the method name Get with the conveniences but sends
// nothing: it must not be flagged.
func GoodHeaderRead(resp *http.Response) string {
	return resp.Header.Get("Content-Type")
}

// BadNoInjection sends a request that never flows through traceparent
// injection: the hop breaks the trace.
func BadNoInjection(ctx context.Context, c *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil) // want ctxflow
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	return nil
}

// GoodInject propagates through the trace helper.
func GoodInject(ctx context.Context, c *http.Client, sc trace.SpanContext, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	trace.Inject(sc, req)
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	return nil
}

// GoodHeaderSet propagates with a direct traceparent Header.Set.
func GoodHeaderSet(ctx context.Context, c *http.Client, tp, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("traceparent", tp)
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	return nil
}

// GoodDelegated hands the request to a decorator before sending: the new
// owner is assumed to propagate.
func GoodDelegated(ctx context.Context, c *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	decorate(req)
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	return nil
}

func decorate(r *http.Request) {
	r.Header.Set(trace.TraceparentHeader, "00-fixture")
}

// BadHandler mints a fresh context inside a handler instead of propagating
// the inbound one: the trace and the client's cancellation are lost.
func BadHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want ctxflow
	_ = ctx
}

// GoodHandler derives from the inbound request context.
func GoodHandler(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_ = ctx
}

// BadIgnoredGet records a reviewed exception through the escape hatch.
func BadIgnoredGet(c *http.Client, url string) (*http.Response, error) {
	//sthlint:ignore ctxflow fixture: fire-and-forget warmup probe
	return c.Get(url)
}

// BadLeakedBody never closes the response: the connection leaks.
func BadLeakedBody(ctx context.Context, c *http.Client, sc trace.SpanContext, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	trace.Inject(sc, req)
	resp, err := c.Do(req) // want errflow
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// BadMissedReturn closes on the happy path but leaks on the bad-status
// return between the guard and the read.
func BadMissedReturn(ctx context.Context, c *http.Client, sc trace.SpanContext, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	trace.Inject(sc, req)
	resp, err := c.Do(req) // want errflow
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, errors.New("bad status")
	}
	b, rerr := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	return b, rerr
}

// GoodDeferClose covers every path with a defer after the nil-guard.
func GoodDeferClose(ctx context.Context, c *http.Client, sc trace.SpanContext, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	trace.Inject(sc, req)
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	return io.ReadAll(resp.Body)
}

// GoodHandoff returns the whole response: the caller owns the close.
func GoodHandoff(ctx context.Context, c *http.Client, sc trace.SpanContext, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	trace.Inject(sc, req)
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	return resp, nil
}
