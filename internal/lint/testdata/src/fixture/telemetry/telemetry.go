// Package telemetry is a lint fixture mimicking sthist's metrics plane. It
// carries the regression fixture for the PR 4 WritePrometheus bug: rendering
// the exposition by ranging the live family map without the registry lock.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// family is one metric family.
type family struct {
	name string
	help string
}

// Registry is a minimal stand-in for the real metrics registry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family // guarded by mu
}

// Counter registers a counter and returns its name (fixture stub).
func (r *Registry) Counter(name, help string, labels []string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fams[name] = &family{name: name, help: help}
	return name
}

// Gauge registers a gauge (fixture stub).
func (r *Registry) Gauge(name, help string, labels []string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fams[name] = &family{name: name, help: help}
	return name
}

// GoodRegistrations follow the sthist_* snake_case convention with help.
func GoodRegistrations(r *Registry) {
	r.Counter("sthist_feedback_rounds_total", "Feedback rounds processed.", nil)
	r.Gauge("sthist_histogram_buckets", "Buckets in the live histogram.", nil)
}

// BadRegistrations violate the naming and help contract.
func BadRegistrations(r *Registry, dynamic string) {
	r.Counter("sthistd_requests_total", "Wrong prefix.", nil)  // want errflow
	r.Counter("sthist_CamelCase_total", "Wrong case.", nil)    // want errflow
	r.Gauge("sthist_undocumented_series", "", nil)             // want errflow
	r.Counter(dynamic, "Name not statically enumerable.", nil) // want errflow
}

// BadWritePrometheus reintroduces the PR 4 exposition bug in both of its
// aspects: the family map is read without the registry lock (the scrape
// race) and the output is emitted in map iteration order (nondeterministic
// exposition, which broke scrape-diff alerting).
func (r *Registry) BadWritePrometheus(w io.Writer) {
	for _, f := range r.fams { // want lockcheck
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help) // want determinism
	}
}

// GoodWritePrometheus is the fixed shape: snapshot under the lock, then
// render the snapshot in sorted order.
func (r *Registry) GoodWritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	}
}
