// Package spanend is a lint fixture for the spanend analyzer: spans minted
// by StartRoot/StartRemote/StartChild must reach End() on every return path,
// unless ownership visibly moves elsewhere.
package spanend

import (
	"errors"

	"fixture/trace"
)

var errOp = errors.New("op failed")

// holder mimics the writer pipeline's request struct: it owns spans whose
// End happens in a later stage.
type holder struct {
	sp *trace.Span
}

func keep(sp *trace.Span) {}

// GoodDefer is the canonical shape: defer covers every path.
func GoodDefer(tr *trace.Tracer) {
	sp := tr.StartRoot("op")
	defer sp.End()
}

// GoodExplicit ends the span before each return.
func GoodExplicit(tr *trace.Tracer, fail bool) error {
	sp := tr.StartRoot("op")
	if fail {
		sp.SetError("boom")
		sp.End()
		return errOp
	}
	sp.End()
	return nil
}

// GoodConditional mirrors the HTTP middlewares: the span is minted inside a
// guard and the defer registers right there.
func GoodConditional(tr *trace.Tracer, on bool) {
	var sp *trace.Span
	if on {
		sp = tr.StartRoot("op")
		defer sp.End()
	}
	_ = sp
}

// GoodChildLoop ends each iteration's child with no returns in sight.
func GoodChildLoop(tr *trace.Tracer, n int) {
	root := tr.StartRoot("op")
	defer root.End()
	for i := 0; i < n; i++ {
		c := root.StartChild("step")
		c.End()
	}
}

// GoodEscapeField hands the span to a struct for a later stage to end.
func GoodEscapeField(tr *trace.Tracer, h *holder) {
	h.sp = tr.StartRoot("op")
}

// GoodEscapeCompositeAndArg moves ownership via a literal and a call.
func GoodEscapeCompositeAndArg(tr *trace.Tracer) *holder {
	sp := tr.StartRoot("op")
	keep(sp)
	child := sp.StartChild("stage")
	return &holder{sp: child}
}

// GoodEscapeReturn returns the span to the caller.
func GoodEscapeReturn(tr *trace.Tracer) *trace.Span {
	sp := tr.StartRoot("op")
	return sp
}

// BadLeak never ends the span at all.
func BadLeak(tr *trace.Tracer) {
	sp := tr.StartRoot("op") // want spanend
	sp.SetError("boom")
}

// BadEarlyReturn ends the happy path but leaks on the error path.
func BadEarlyReturn(tr *trace.Tracer, fail bool) error {
	sp := tr.StartRoot("op") // want spanend
	if fail {
		return errOp
	}
	sp.End()
	return nil
}

// BadDiscard drops the span on the floor as a bare statement.
func BadDiscard(tr *trace.Tracer) {
	tr.StartRoot("op") // want spanend
}

// BadBlank visibly discards, which still leaks the span.
func BadBlank(tr *trace.Tracer) {
	_ = tr.StartRoot("op") // want spanend
}

// BadChild leaks a child even though the root is covered.
func BadChild(tr *trace.Tracer) {
	root := tr.StartRoot("op")
	defer root.End()
	c := root.StartChild("stage") // want spanend
	c.SetError("boom")
}

// IgnoredLeak exercises the escape hatch: the directive suppresses the
// diagnostic because it names the check and carries a reason.
func IgnoredLeak(tr *trace.Tracer) {
	//sthlint:ignore spanend fixture exercises the suppression path
	tr.StartRoot("op")
}
