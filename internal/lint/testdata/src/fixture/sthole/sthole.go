// Package sthole is a lint fixture mimicking sthist's histogram package:
// the determinism analyzer must reject map-range loops that drive histogram
// mutation and accept order-independent iteration.
package sthole

import "sort"

// Histogram is a minimal stand-in for the real STHoles tree.
type Histogram struct {
	buckets map[string]*Bucket
	order   []string
}

// Bucket is a minimal stand-in for a histogram bucket.
type Bucket struct {
	freq float64
}

// Merge mutates the histogram (pointer receiver).
func (h *Histogram) Merge(name string) { delete(h.buckets, name) }

// Freq is a read (value receiver): never flagged.
func (h Histogram) Freq(name string) float64 { return h.buckets[name].freq }

// Scale mutates one bucket (pointer receiver).
func (b *Bucket) Scale(f float64) { b.freq *= f }

// BadMapDrivenMerge drives histogram mutation from map iteration order —
// the class of bug the determinism analyzer exists for.
func (h *Histogram) BadMapDrivenMerge() {
	for name := range h.buckets {
		h.Merge(name) // want determinism
	}
}

// BadMapDrivenBucketMutation mutates buckets in map iteration order.
func (h *Histogram) BadMapDrivenBucketMutation() {
	for _, b := range h.buckets {
		b.Scale(0.5) // want determinism
	}
}

// BadInsertWhileRanging inserts into the ranged map: the spec leaves it
// unspecified whether the new key is produced by the iteration.
func (h *Histogram) BadInsertWhileRanging() {
	for name := range h.buckets {
		h.buckets[name+"+"] = &Bucket{} // want determinism
	}
}

// BadDeleteOther deletes a key other than the current one mid-range.
func (h *Histogram) BadDeleteOther() {
	for name := range h.buckets {
		delete(h.buckets, name+"-old") // want determinism
	}
}

// GoodSortedMerge is the deterministic shape: extract keys, sort, then
// mutate in sorted order.
func (h *Histogram) GoodSortedMerge() {
	names := make([]string, 0, len(h.buckets))
	for name := range h.buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h.Merge(name)
	}
}

// GoodDeleteCurrent deletes only the current key: every key is processed
// exactly once regardless of order.
func (h *Histogram) GoodDeleteCurrent() {
	for name := range h.buckets {
		delete(h.buckets, name)
	}
}

// GoodIgnoredMutation shows the escape hatch on a provably
// order-independent site.
func (h *Histogram) GoodIgnoredMutation() {
	for name := range h.buckets {
		//sthlint:ignore determinism fixture: mutation is commutative across keys
		h.Merge(name)
	}
}

// GoodSliceRange ranges a slice, which iterates in index order.
func (h *Histogram) GoodSliceRange() {
	for _, name := range h.order {
		h.Merge(name)
	}
}
