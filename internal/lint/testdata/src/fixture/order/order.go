// Package order is a lint fixture for the lockorder analyzer: ordering
// cycles (including through call summaries), self-deadlocks, unmapped
// mutexes, and the consistent-nesting shape that must stay clean.
package order

import "sync"

// Shard is one half of the ordering-cycle demo.
type Shard struct {
	mu  sync.Mutex
	val int // guarded by mu
}

// Index is the other half.
type Index struct {
	mu  sync.Mutex
	seq int // guarded by mu
}

// LockBoth nests shard-then-index.
func LockBoth(s *Shard, ix *Index) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix.mu.Lock() // want lockorder
	defer ix.mu.Unlock()
	s.val++
	ix.seq++
}

// lockShard acquires the shard lock on behalf of its caller.
func lockShard(s *Shard) {
	s.mu.Lock()
	s.val++
	s.mu.Unlock()
}

// ReversedViaCall reaches the shard lock through a callee while holding the
// index lock: the call-summary edge closes the cycle with LockBoth.
func ReversedViaCall(s *Shard, ix *Index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	lockShard(s) // want lockorder
}

// Gauge demonstrates the self-deadlock check.
type Gauge struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Bump re-acquires a mutex the function already holds: guaranteed deadlock
// on a non-reentrant mutex.
func (g *Gauge) Bump() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mu.Lock() // want lockorder
	g.n++
	g.mu.Unlock()
}

// BumpIgnored records a reviewed exception through the escape hatch.
func (g *Gauge) BumpIgnored() {
	g.mu.Lock()
	defer g.mu.Unlock()
	//sthlint:ignore lockorder fixture: reviewed reentrancy shim
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Registry's mutex names nothing it guards: an unenforceable discipline.
type Registry struct {
	mu    sync.Mutex // want lockorder
	items map[string]int
}

// Meta and Data nest consistently package-wide: the acquisition graph stays
// acyclic and no diagnostic fires.
type Meta struct {
	mu  sync.Mutex
	gen int // guarded by mu
}

// Data is always acquired after Meta.
type Data struct {
	mu   sync.Mutex
	rows int // guarded by mu
}

// Snapshot nests meta-then-data.
func Snapshot(m *Meta, d *Data) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	return m.gen + d.rows
}

// Compact nests meta-then-data too: consistent, so no cycle.
func Compact(m *Meta, d *Data) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	m.gen++
	d.rows = 0
}
