// Package publish is a lint fixture mimicking sthist's snapshot estimator:
// the publish analyzer must reject writes to a snapshot after it was handed
// to an atomic.Pointer (or obtained from one) and accept the build-then-store
// discipline the real estimator uses.
package publish

import "sync/atomic"

// tree stands in for the published histogram.
type tree struct {
	total float64
}

// snapshot stands in for the estimator's immutable serving state.
type snapshot struct {
	hist  *tree
	count int
}

// estimator publishes snapshots for wait-free readers.
type estimator struct {
	snap atomic.Pointer[snapshot]
}

// GoodPublish is the sanctioned shape: build fully, then store.
func (e *estimator) GoodPublish() {
	s := &snapshot{hist: &tree{total: 1}}
	s.count = 2 // before the Store: still private
	e.snap.Store(s)
}

// BadWriteAfterStore mutates the snapshot after publication — a reader may
// already hold it.
func (e *estimator) BadWriteAfterStore() {
	s := &snapshot{}
	e.snap.Store(s)
	s.count = 3 // want publish
}

// BadDeepWriteAfterStore writes through a pointer nested in the published
// snapshot: everything reachable from it is frozen, not just the top level.
func (e *estimator) BadDeepWriteAfterStore() {
	s := &snapshot{hist: &tree{}}
	e.snap.Store(s)
	s.hist.total = 2 // want publish
}

// BadWriteAfterSwap: Swap publishes its argument exactly like Store.
func (e *estimator) BadWriteAfterSwap() *snapshot {
	s := &snapshot{}
	old := e.snap.Swap(s)
	s.count = 1 // want publish
	return old
}

// BadWriteAfterCompareAndSwap: the new value may be visible once CAS ran.
func (e *estimator) BadWriteAfterCompareAndSwap(old *snapshot) {
	s := &snapshot{}
	e.snap.CompareAndSwap(old, s)
	s.count = 4 // want publish
}

// BadWriteThroughLoad mutates the live snapshot other readers share.
func (e *estimator) BadWriteThroughLoad() {
	s := e.snap.Load()
	s.count++ // want publish
}

// BadWriteThroughInlineLoad writes through the Load call directly.
func (e *estimator) BadWriteThroughInlineLoad() {
	e.snap.Load().count = 5 // want publish
}

// BadDeepWriteThroughLoad reaches a nested pointer via an inline Load.
func (e *estimator) BadDeepWriteThroughLoad() {
	e.snap.Load().hist.total = 6 // want publish
}

// GoodReadThroughLoad reads freely; the loaded pointer is never written.
func (e *estimator) GoodReadThroughLoad() int {
	s := e.snap.Load()
	c := s.count
	c++ // local copy of a field, not the snapshot
	return c
}

// GoodValueCopyWrite mutates a struct copied by value out of the snapshot —
// the published object itself stays untouched.
func (e *estimator) GoodValueCopyWrite() snapshot {
	st := *e.snap.Load()
	st.count = 9
	return st
}

// GoodIgnoredRepair shows the escape hatch with a reason. (Rebinding a
// loaded variable to a private snapshot also lands here: the analysis is
// position-based, so the rebound variable stays frozen and the author must
// state why the write is safe.)
func (e *estimator) GoodIgnoredRepair() {
	s := e.snap.Load()
	//sthlint:ignore publish fixture: single-writer repairing its own snapshot
	s.count = 0
}
