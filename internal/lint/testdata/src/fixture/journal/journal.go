// Package journal is a lint-fixture helper: AppendReseed journals through
// the wal stub, so walorder's "appends" fact must flow from this package
// into the httpapi fixture across the package boundary.
package journal

import "fixture/wal"

// AppendReseed journals a reseed record and reports failure to the caller.
func AppendReseed(l *wal.Log, seq uint64) error {
	_, err := l.Append(wal.Record{Seq: seq, Kind: wal.KindReseed})
	return err
}
