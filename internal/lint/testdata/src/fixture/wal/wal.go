// Package wal is a lint fixture mimicking sthist's write-ahead log: the
// errflow analyzer must reject discarded durability errors, the lockcheck
// analyzer must enforce the "guarded by" annotations, and the determinism
// analyzer must reject WAL emission driven by map iteration.
package wal

import (
	"bytes"
	"os"
	"sync"
)

// Kind tags a record with the operation it journals.
type Kind uint8

// KindReseed marks a reseed swap record.
const KindReseed Kind = 7

// Record is one framed WAL record.
type Record struct {
	Seq  uint64
	Kind Kind
}

// Log is a minimal stand-in for the real write-ahead log.
type Log struct {
	mu      sync.RWMutex
	lastSeq uint64 // guarded by mu
	err     error  // guarded by mu
	dir     string // immutable after Open
}

// Append appends one record: the lock discipline is correct here.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastSeq++
	return l.lastSeq, l.err
}

// AppendBatch appends several records under one lock acquisition.
func (l *Log) AppendBatch(rs []Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastSeq += uint64(len(rs))
	return l.lastSeq, l.err
}

// Checkpoint rotates the log. Fixture stub; locks correctly.
func (l *Log) Checkpoint(snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.err = nil
	return nil
}

// LastSeq reads under the read lock: sufficient for a read.
func (l *Log) LastSeq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.lastSeq
}

// BadUnlockedRead reads a guarded field with no lock held.
func (l *Log) BadUnlockedRead() uint64 {
	return l.lastSeq // want lockcheck
}

// BadReadLockedWrite writes a guarded field holding only the read lock.
func (l *Log) BadReadLockedWrite() {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.lastSeq++ // want lockcheck
}

// BadBranchyLock locks on only one path: the access below the branch is not
// protected on every path from entry.
func (l *Log) BadBranchyLock(lock bool) uint64 {
	if lock {
		l.mu.Lock()
		defer l.mu.Unlock()
	}
	return l.lastSeq // want lockcheck
}

// GoodBranchTerminates locks on the surviving path; the unlocked branch
// returns early and does not reach the access.
func (l *Log) GoodBranchTerminates(ready bool) uint64 {
	if !ready {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// bumpLocked is exempt by the Locked-suffix convention: the caller holds mu.
func (l *Log) bumpLocked() {
	l.lastSeq++
}

// Open constructs a Log: accesses through the not-yet-published local are
// exempt from lock discipline.
func Open(dir string) *Log {
	l := &Log{dir: dir}
	l.lastSeq = 0
	return l
}

// BadIgnoredWithReason shows the escape hatch suppressing a lockcheck
// finding with a recorded justification.
func (l *Log) BadIgnoredWithReason() uint64 {
	//sthlint:ignore lockcheck fixture: snapshot read tolerated as stale
	return l.lastSeq
}

// BadDiscardedClose drops durability errors on the floor.
func BadDiscardedClose(f *os.File) {
	f.Close()      // want errflow
	defer f.Sync() // want errflow
}

// GoodExplicitDiscard makes the decision visible with a blank assignment.
func GoodExplicitDiscard(f *os.File) {
	_ = f.Close()
	defer func() { _ = f.Sync() }()
}

// GoodHandledClose consumes the error.
func GoodHandledClose(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// GoodBufferWrite: bytes.Buffer writes cannot fail and are exempt.
func GoodBufferWrite(b *bytes.Buffer) {
	b.WriteString("frame")
}

// BadMapDrivenAppend emits WAL records in map iteration order.
func BadMapDrivenAppend(l *Log, pending map[string]Record) {
	for _, r := range pending {
		l.Append(r) // want determinism
	}
}
