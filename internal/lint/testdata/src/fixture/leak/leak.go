// Package leak is a lint fixture for the leakcheck analyzer: goroutines
// with no reachable stop, the non-blocking shutdown join antipattern, and
// every stoppable shape the analyzer must accept.
package leak

import (
	"context"
	"net/http"
	"sync"

	"fixture/leakdep"
)

// Pump is a worker with a stop channel and a join.
type Pump struct {
	stop chan struct{}
	done chan struct{}
}

// Start runs the pump until the stop channel closes, then signals the join.
func (p *Pump) Start() {
	go func() {
		defer close(p.done)
		<-p.stop
	}()
}

// Stop blocks on the join: the goroutine is gone when it returns.
func (p *Pump) Stop() {
	close(p.stop)
	<-p.done
}

// Drain polls the join instead of blocking on it: it can return while the
// pump is still running, racing the caller's teardown.
func (p *Pump) Drain() {
	select {
	case <-p.done: // want leakcheck
	default:
	}
}

// BadSpin spawns a goroutine nothing can end.
func BadSpin() {
	go func() { // want leakcheck
		for {
		}
	}()
}

// BadClosureSpin resolves the body through a local closure variable.
func BadClosureSpin() {
	attempt := func() {
		for {
		}
	}
	go attempt() // want leakcheck
}

// BadForeign spawns a cross-package target that exports no stoppable fact.
func BadForeign() {
	go leakdep.Forever() // want leakcheck
}

// GoodForeign spawns a cross-package target whose stoppable fact its own
// package exported.
func GoodForeign(ch chan int) {
	go leakdep.Drain(ch)
}

// GoodCtx exits when the context is cancelled.
func GoodCtx(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

// Flush fans work out and joins it through the WaitGroup.
func Flush(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Scatter sends into a buffered channel sized in the enclosing function:
// the workers finish on their own.
func Scatter(n int) chan int {
	results := make(chan int, 8)
	for i := 0; i < n; i++ {
		go func(i int) {
			results <- i
		}(i)
	}
	return results
}

// Serve runs the listener in the background; Close below gives it an exit.
func Serve(srv *http.Server) {
	go func() {
		_ = srv.ListenAndServe()
	}()
}

// Close shuts the server down, ending the Serve goroutine.
func Close(ctx context.Context, srv *http.Server) error {
	return srv.Shutdown(ctx)
}

// BadIgnoredSpin records a reviewed exception through the escape hatch.
func BadIgnoredSpin() {
	//sthlint:ignore leakcheck fixture: process-lifetime metrics pump
	go func() {
		for {
		}
	}()
}
