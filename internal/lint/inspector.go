package lint

import "go/ast"

// This file is the driver's shared traversal. Before the typed driver,
// every analyzer walked each file's AST itself (nine ast.Inspect scans per
// package); now the package is flattened once into a preorder node slice and
// a function-declaration index, and analyzers iterate those. Per-function
// dataflow walks (lock states, span lifetimes) still recurse locally — the
// inspector replaces the discovery scans, not the algorithms.

// Nodes returns every AST node of the package in a single preorder flatten,
// built once and cached. Source order is preserved within each file and
// files keep go list's order, so position-sensitive scans can iterate
// directly.
func (p *Package) Nodes() []ast.Node {
	if p.nodes == nil {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if n != nil {
					p.nodes = append(p.nodes, n)
				}
				return true
			})
		}
		if p.nodes == nil {
			p.nodes = []ast.Node{}
		}
	}
	return p.nodes
}

// FuncDecls returns the package's function and method declarations in
// source order, built once and cached.
func (p *Package) FuncDecls() []*ast.FuncDecl {
	if p.funcs == nil {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					p.funcs = append(p.funcs, fd)
				}
			}
		}
		if p.funcs == nil {
			p.funcs = []*ast.FuncDecl{}
		}
	}
	return p.funcs
}

// fileOf returns the *ast.File containing pos, for analyzers that need
// file-scoped context (imports, comments) for a node found via Nodes().
func (p *Package) fileOf(n ast.Node) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= n.Pos() && n.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}
