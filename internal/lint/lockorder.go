package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The lockorder analyzer machine-checks the deadlock discipline the
// guarded-by annotations describe. It abstracts every mutex to a type-level
// key ("sthist/internal/httpapi.entry.qmu" — instances of the same field
// share a key) and walks each function with the set of held locks:
//
//   - acquiring k while holding h records the edge h→k; the whole-program
//     graph (assembled across packages in the Finish phase, with
//     call-summary edges imported from dependency packages) must be
//     acyclic, so qmu/jmu/wmu nesting is checked, not just documented;
//   - acquiring a mutex whose expression is already held is a guaranteed
//     self-deadlock and is reported immediately;
//   - a mutex struct field that no guarded-by annotation names is reported:
//     lockcheck and lockorder can only enforce what the annotations map, so
//     an unmapped lock is an unenforced discipline. Locks that protect a
//     code section rather than fields may say "guards <what>" in their own
//     comment instead.
//
// Branches are walked with copies of the held set and the pre-branch state
// continues afterwards; deferred unlocks keep the lock held to the return
// (matching lockcheck). Calls made while holding a lock contribute the
// callee's transitive acquisition summary, computed to a fixpoint within
// each package and exported across packages in dependency order.
func LockOrder() *Analyzer {
	st := &lockOrderState{
		acquires: make(map[string]map[string]bool),
		edges:    make(map[[2]string]lockEdge),
	}
	return &Analyzer{
		Name:   "lockorder",
		Doc:    "lock-acquisition graph from guarded-by annotations and observed orderings must be acyclic; every mutex must name what it guards",
		Run:    st.run,
		Finish: st.finish,
	}
}

// lockOrderState accumulates whole-program data across packages.
type lockOrderState struct {
	acquires map[string]map[string]bool // function symbol → lock keys it (transitively) acquires
	edges    map[[2]string]lockEdge     // (held, acquired) → first witness
}

type lockEdge struct {
	pos token.Position
	fn  string
}

// heldLock is one acquisition on the abstract stack.
type heldLock struct {
	key      string // type-level key ("" for locals, which carry no edges)
	instance string // textual instance (e.qmu) for self-deadlock detection
}

// pendingCall defers call-summary edge expansion until the package
// fixpoint has run.
type pendingCall struct {
	held []string
	sym  string
	pos  token.Pos
	fn   string
}

func (st *lockOrderState) run(pass *Pass) {
	st.checkUnmappedLocks(pass)

	direct := make(map[string]map[string]bool) // symbol → directly acquired keys
	calls := make(map[string][]string)         // symbol → callee symbols
	var pending []pendingCall
	for _, fd := range pass.FuncDecls() {
		if fd.Body == nil {
			continue
		}
		sym := SymbolOf(pass.Info.Defs[fd.Name])
		w := &lockWalk{pass: pass, state: st, fnName: fd.Name.Name, sym: sym}
		var held []heldLock
		w.stmts(fd.Body.List, &held)
		if sym != "" {
			direct[sym] = w.direct
			calls[sym] = w.callees
		}
		pending = append(pending, w.pending...)
	}

	// Transitive closure within the package; cross-package callees resolve
	// against summaries exported by dependencies (already in st.acquires).
	summary := make(map[string]map[string]bool, len(direct))
	for sym, keys := range direct {
		s := make(map[string]bool, len(keys))
		for k := range keys {
			s[k] = true
		}
		summary[sym] = s
	}
	for changed := true; changed; {
		changed = false
		for sym, callees := range calls {
			for _, callee := range callees {
				src := summary[callee]
				if src == nil {
					src = st.acquires[callee]
				}
				for k := range src {
					if !summary[sym][k] {
						summary[sym][k] = true
						changed = true
					}
				}
			}
		}
	}
	for sym, keys := range summary {
		st.acquires[sym] = keys
	}

	for _, pc := range pending {
		acq := summary[pc.sym]
		if acq == nil {
			acq = st.acquires[pc.sym]
		}
		for _, h := range pc.held {
			for k := range acq {
				if k != h {
					st.addEdge(pass, h, k, pc.pos, pc.fn)
				}
			}
		}
	}
}

func (st *lockOrderState) addEdge(pass *Pass, from, to string, pos token.Pos, fn string) {
	key := [2]string{from, to}
	if _, ok := st.edges[key]; !ok {
		st.edges[key] = lockEdge{pos: pass.Fset.Position(pos), fn: fn}
	}
}

// finish assembles the whole-program graph and reports every edge that sits
// on a cycle, at the position the ordering was observed.
func (st *lockOrderState) finish(report func(Diagnostic)) {
	adj := make(map[string][]string)
	for e := range st.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range adj[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	var cyclic [][2]string
	for e := range st.edges {
		if reaches(e[1], e[0]) {
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool {
		if cyclic[i][0] != cyclic[j][0] {
			return cyclic[i][0] < cyclic[j][0]
		}
		return cyclic[i][1] < cyclic[j][1]
	})
	for _, e := range cyclic {
		w := st.edges[e]
		report(Diagnostic{
			Check:   "lockorder",
			File:    w.pos.Filename,
			Line:    w.pos.Line,
			Column:  w.pos.Column,
			Message: fmt.Sprintf("lock order cycle: %s acquires %s while holding %s, but another path orders them the other way around (in %s)", w.fn, shortLockKey(e[1]), shortLockKey(e[0]), w.fn),
		})
	}
}

// shortLockKey trims the package path to its last element for messages.
func shortLockKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// checkUnmappedLocks reports package-level struct mutex fields that no
// guarded-by annotation names.
func (st *lockOrderState) checkUnmappedLocks(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				stype, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkStructLocks(pass, ts.Name.Name, stype)
			}
		}
	}
}

func checkStructLocks(pass *Pass, typeName string, stype *ast.StructType) {
	guarded := make(map[string]bool) // guard names referenced by annotations
	type mutexField struct {
		name string
		pos  token.Pos
		doc  string
	}
	var mutexes []mutexField
	for _, field := range stype.Fields.List {
		text := fieldCommentText(field)
		for _, m := range guardedByRe.FindAllStringSubmatch(text, -1) {
			guarded[m[1]] = true
		}
		t := pass.Info.Types[field.Type].Type
		if !namedTypeIn(t, "sync", "Mutex") && !namedTypeIn(t, "sync", "RWMutex") {
			continue
		}
		for _, name := range field.Names {
			mutexes = append(mutexes, mutexField{name: name.Name, pos: name.Pos(), doc: text})
		}
	}
	for _, m := range mutexes {
		if guarded[m.name] || strings.Contains(m.doc, "guards ") {
			continue
		}
		pass.Reportf("lockorder", m.pos, "mutex %s.%s guards no annotated fields; add `guarded by %s` to the fields it protects (or say what it guards in its own comment) so lockcheck and lockorder can enforce it", typeName, m.name, m.name)
	}
}

func fieldCommentText(field *ast.Field) string {
	var b strings.Builder
	if field.Doc != nil {
		b.WriteString(field.Doc.Text())
		b.WriteString(" ")
	}
	if field.Comment != nil {
		b.WriteString(field.Comment.Text())
	}
	return b.String()
}

// lockWalk carries the per-function traversal state.
type lockWalk struct {
	pass    *Pass
	state   *lockOrderState
	fnName  string
	sym     string
	direct  map[string]bool
	callees []string
	pending []pendingCall
}

// stmts walks a statement list in order, mutating held in place. Branch
// bodies get copies; the pre-branch state continues after the branch.
func (w *lockWalk) stmts(list []ast.Stmt, held *[]heldLock) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalk) stmt(s ast.Stmt, held *[]heldLock) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(st.List, held)
	case *ast.IfStmt:
		w.stmt(st.Init, held)
		w.exprs(st.Cond, held)
		body := copyHeld(*held)
		w.stmt(st.Body, &body)
		if st.Else != nil {
			alt := copyHeld(*held)
			w.stmt(st.Else, &alt)
		}
	case *ast.ForStmt:
		w.stmt(st.Init, held)
		w.exprs(st.Cond, held)
		body := copyHeld(*held)
		w.stmt(st.Body, &body)
	case *ast.RangeStmt:
		w.exprs(st.X, held)
		body := copyHeld(*held)
		w.stmt(st.Body, &body)
	case *ast.SwitchStmt:
		w.stmt(st.Init, held)
		w.exprs(st.Tag, held)
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				body := copyHeld(*held)
				w.stmts(cc.Body, &body)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init, held)
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				body := copyHeld(*held)
				w.stmts(cc.Body, &body)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				body := copyHeld(*held)
				if cc.Comm != nil {
					w.stmt(cc.Comm, &body)
				}
				w.stmts(cc.Body, &body)
			}
		}
	case *ast.GoStmt:
		// A new goroutine starts with nothing held. Function literals are
		// walked fresh; named targets contribute their summary with no
		// held set, i.e. nothing.
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			var fresh []heldLock
			w.stmt(lit.Body, &fresh)
		}
	case *ast.DeferStmt:
		// Deferred unlocks run at return: the lock stays held for the rest
		// of the function, which is exactly how the walk models not seeing
		// the Unlock. Deferred literals are walked with an empty held set.
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			var fresh []heldLock
			w.stmt(lit.Body, &fresh)
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	default:
		w.exprsFromStmt(s, held)
	}
}

// exprsFromStmt scans a simple statement's expressions for calls in source
// order.
func (w *lockWalk) exprsFromStmt(s ast.Stmt, held *[]heldLock) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals run later (or are walked by Go/Defer)
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.call(call, held)
		}
		return true
	})
}

// exprs scans one expression (cond, range operand) for calls.
func (w *lockWalk) exprs(e ast.Expr, held *[]heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.call(call, held)
		}
		return true
	})
}

// call classifies one call expression: a lock event, or a plain call whose
// acquisition summary matters while locks are held.
func (w *lockWalk) call(call *ast.CallExpr, held *[]heldLock) {
	if key, instance, op, ok := lockOpOf(w.pass, call); ok {
		switch op {
		case "Lock", "RLock":
			for _, h := range *held {
				if h.instance == instance {
					w.pass.Reportf("lockorder", call.Pos(), "%s acquires %s while this function already holds it: guaranteed self-deadlock on a non-reentrant mutex", w.fnName, instance)
				}
				if h.key != "" && key != "" && h.key != key {
					w.state.addEdge(w.pass, h.key, key, call.Pos(), w.fnName)
				}
			}
			if w.direct == nil {
				w.direct = make(map[string]bool)
			}
			if key != "" {
				w.direct[key] = true
			}
			*held = append(*held, heldLock{key: key, instance: instance})
		case "Unlock", "RUnlock":
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i].instance == instance {
					*held = append((*held)[:i], (*held)[i+1:]...)
					break
				}
			}
		}
		return
	}
	obj := calleeObject(w.pass.Info, call)
	if obj == nil {
		return
	}
	sym := SymbolOf(obj)
	if sym == "" {
		return
	}
	w.callees = append(w.callees, sym)
	if len(*held) > 0 {
		keys := make([]string, 0, len(*held))
		for _, h := range *held {
			if h.key != "" {
				keys = append(keys, h.key)
			}
		}
		if len(keys) > 0 {
			w.pending = append(w.pending, pendingCall{held: keys, sym: sym, pos: call.Pos(), fn: w.fnName})
		}
	}
}

// lockOpOf decodes m.Lock()/RLock()/Unlock()/RUnlock() into the mutex's
// type-level key and textual instance. Local mutexes yield key "" (no
// edges) but still participate in self-deadlock detection.
func lockOpOf(pass *Pass, call *ast.CallExpr) (key, instance, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	mu := ast.Unparen(sel.X)
	t := pass.Info.Types[mu].Type
	if !namedTypeIn(t, "sync", "Mutex") && !namedTypeIn(t, "sync", "RWMutex") {
		return "", "", "", false
	}
	return lockKeyOf(pass, mu), exprString(mu), sel.Sel.Name, true
}

// lockKeyOf renders the type-level key for a mutex expression: the owning
// named struct's field ("pkg.Type.field") or a package-level var
// ("pkg.var"). Locals have no stable key.
func lockKeyOf(pass *Pass, mu ast.Expr) string {
	switch x := ast.Unparen(mu).(type) {
	case *ast.SelectorExpr:
		base := pass.Info.Types[x.X].Type
		if base == nil {
			return ""
		}
		if ptr, isPtr := base.(*types.Pointer); isPtr {
			base = ptr.Elem()
		}
		if named, isNamed := base.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
		}
	case *ast.Ident:
		obj := pass.Info.Uses[x]
		if obj == nil {
			return ""
		}
		if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

func copyHeld(held []heldLock) []heldLock {
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}
