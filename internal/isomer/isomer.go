// Package isomer implements an ISOMER-style maximum-entropy feedback
// histogram (Srivastava, Haas, Markl, Kutsch, Tran — ICDE 2006, reference
// [27] of the paper). Where STHoles updates bucket frequencies locally and
// greedily, ISOMER keeps the set of observed query-feedback records as
// CONSTRAINTS and maintains the maximum-entropy distribution consistent with
// all of them.
//
// This implementation partitions the domain into rectangular atoms: every
// new feedback box splits the atoms it partially overlaps (box minus box
// decomposes into at most 2·dims slabs), so each atom is either fully inside
// or fully outside every active constraint. Bucket frequencies then follow
// from iterative proportional fitting (IPF) over the atoms, which from a
// uniform start converges to the maximum-entropy solution — ISOMER's
// defining property. Old constraints are evicted FIFO once the budget is
// reached, and atom growth is capped (further feedback still adjusts
// frequencies, it just stops refining the partition).
package isomer

import (
	"fmt"
	"math"

	"sthist/internal/geom"
)

// Config bounds the histogram's resource usage.
type Config struct {
	// MaxConstraints is the feedback-record budget (default 64; oldest
	// evicted first).
	MaxConstraints int
	// MaxAtoms caps the partition size (default 1024).
	MaxAtoms int
	// IPFSweeps bounds the fitting sweeps per feedback (default 32).
	IPFSweeps int
	// Tolerance stops fitting when every constraint is satisfied within
	// this relative error (default 1e-3).
	Tolerance float64
}

// DefaultConfig returns the defaults above.
func DefaultConfig() Config {
	return Config{MaxConstraints: 64, MaxAtoms: 1024, IPFSweeps: 32, Tolerance: 1e-3}
}

type atom struct {
	box  geom.Rect
	freq float64
}

type constraint struct {
	box   geom.Rect
	count float64
}

// Histogram is the max-entropy feedback histogram.
type Histogram struct {
	domain      geom.Rect
	cfg         Config
	atoms       []atom
	constraints []constraint
}

// New creates a histogram over the domain with totalTuples spread uniformly.
func New(domain geom.Rect, cfg Config, totalTuples float64) (*Histogram, error) {
	if domain.Dims() == 0 || domain.Volume() <= 0 {
		return nil, fmt.Errorf("isomer: domain has no volume")
	}
	if totalTuples < 0 || math.IsNaN(totalTuples) {
		return nil, fmt.Errorf("isomer: invalid total %g", totalTuples)
	}
	if cfg.MaxConstraints < 1 {
		return nil, fmt.Errorf("isomer: constraint budget must be >= 1")
	}
	if cfg.MaxAtoms < 1 {
		return nil, fmt.Errorf("isomer: atom budget must be >= 1")
	}
	if cfg.IPFSweeps < 1 {
		return nil, fmt.Errorf("isomer: need at least one IPF sweep")
	}
	if cfg.Tolerance <= 0 {
		return nil, fmt.Errorf("isomer: tolerance must be positive")
	}
	return &Histogram{
		domain: domain.Clone(),
		cfg:    cfg,
		atoms:  []atom{{box: domain.Clone(), freq: totalTuples}},
	}, nil
}

// MustNew panics on error.
func MustNew(domain geom.Rect, cfg Config, totalTuples float64) *Histogram {
	h, err := New(domain, cfg, totalTuples)
	if err != nil {
		panic(err)
	}
	return h
}

// Atoms returns the current partition size.
func (h *Histogram) Atoms() int { return len(h.atoms) }

// Constraints returns the number of active feedback constraints.
func (h *Histogram) Constraints() int { return len(h.constraints) }

// TotalTuples returns the stored mass.
func (h *Histogram) TotalTuples() float64 {
	s := 0.0
	for i := range h.atoms {
		s += h.atoms[i].freq
	}
	return s
}

// Estimate returns the estimated cardinality of q under per-atom uniformity.
func (h *Histogram) Estimate(q geom.Rect) float64 {
	if q.Dims() != h.domain.Dims() {
		return 0
	}
	est := 0.0
	for i := range h.atoms {
		a := &h.atoms[i]
		vol := a.box.Volume()
		if vol <= 0 {
			if q.Contains(a.box) {
				est += a.freq
			}
			continue
		}
		est += a.freq * a.box.IntersectionVolume(q) / vol
	}
	return est
}

// Feedback records the true cardinality of an executed query and refits the
// maximum-entropy distribution.
func (h *Histogram) Feedback(q geom.Rect, actual float64) {
	if q.Dims() != h.domain.Dims() || actual < 0 || math.IsNaN(actual) || math.IsInf(actual, 0) {
		return
	}
	qc, ok := q.Intersect(h.domain)
	if !ok || qc.Volume() <= 0 {
		return
	}
	h.refine(qc)
	h.constraints = append(h.constraints, constraint{box: qc, count: actual})
	if len(h.constraints) > h.cfg.MaxConstraints {
		h.constraints = h.constraints[len(h.constraints)-h.cfg.MaxConstraints:]
	}
	h.fit()
}

// refine splits atoms partially overlapping box so that afterwards every
// atom is fully inside or fully outside it (until the atom budget is hit).
func (h *Histogram) refine(box geom.Rect) {
	if len(h.atoms) >= h.cfg.MaxAtoms {
		return
	}
	out := make([]atom, 0, len(h.atoms)+8)
	for i, a := range h.atoms {
		remaining := len(h.atoms) - i - 1
		// A split adds up to 2*dims slabs; stop splitting once the budget
		// cannot absorb the still-unprocessed atoms plus this split.
		roomFor := h.cfg.MaxAtoms - len(out) - remaining - 1
		if !a.box.IntersectsOpen(box) || box.Contains(a.box) || roomFor < 2*a.box.Dims() {
			out = append(out, a)
			continue
		}
		out = append(out, splitAtom(a, box)...)
	}
	h.atoms = out
}

// splitAtom decomposes atom a into a∩box plus the remainder slabs, dividing
// the frequency by volume (uniformity within the atom).
func splitAtom(a atom, box geom.Rect) []atom {
	inter, ok := a.box.Intersect(box)
	if !ok {
		return []atom{a}
	}
	vol := a.box.Volume()
	var pieces []atom
	// Remainder: peel one slab per dimension side that sticks out.
	rest := a.box.Clone()
	for d := 0; d < a.box.Dims(); d++ {
		if rest.Lo[d] < inter.Lo[d] {
			slab := rest.Clone()
			slab.Hi[d] = inter.Lo[d]
			pieces = append(pieces, atom{box: slab})
			rest.Lo[d] = inter.Lo[d]
		}
		if rest.Hi[d] > inter.Hi[d] {
			slab := rest.Clone()
			slab.Lo[d] = inter.Hi[d]
			pieces = append(pieces, atom{box: slab})
			rest.Hi[d] = inter.Hi[d]
		}
	}
	pieces = append(pieces, atom{box: inter})
	if vol > 0 {
		for i := range pieces {
			pieces[i].freq = a.freq * pieces[i].box.Volume() / vol
		}
	} else {
		pieces[len(pieces)-1].freq = a.freq
	}
	return pieces
}

// fit runs IPF sweeps over the active constraints.
func (h *Histogram) fit() {
	for sweep := 0; sweep < h.cfg.IPFSweeps; sweep++ {
		worst := 0.0
		for _, c := range h.constraints {
			est := 0.0
			for i := range h.atoms {
				a := &h.atoms[i]
				vol := a.box.Volume()
				if vol <= 0 {
					if c.box.Contains(a.box) {
						est += a.freq
					}
					continue
				}
				est += a.freq * a.box.IntersectionVolume(c.box) / vol
			}
			var rel float64
			switch {
			case est <= 1e-9 && c.count == 0:
				continue
			case est <= 1e-9:
				// (Near-)zero mass where the constraint demands some: scaling
				// would need an astronomically large factor that overflows
				// the frequencies; re-seed the covered atoms instead.
				h.seed(c)
				rel = 1
			default:
				f := c.count / est
				// Clamp the correction factor: a single sweep never needs to
				// move mass by more than a few orders of magnitude, and
				// unbounded factors can overflow to Inf (and then to NaN via
				// Inf*0 in a later sweep).
				if f > 1e6 {
					f = 1e6
				}
				rel = math.Abs(f - 1)
				h.scale(c, f)
			}
			if rel > worst {
				worst = rel
			}
		}
		if worst <= h.cfg.Tolerance {
			return
		}
	}
}

// scale multiplies the portion of each atom inside the constraint box by f.
// Atoms are fully inside or outside active constraints except when the atom
// budget stopped refinement; those are scaled on their covered fraction.
func (h *Histogram) scale(c constraint, f float64) {
	for i := range h.atoms {
		a := &h.atoms[i]
		vol := a.box.Volume()
		if vol <= 0 {
			if c.box.Contains(a.box) {
				a.freq *= f
			}
			continue
		}
		cov := a.box.IntersectionVolume(c.box) / vol
		if cov <= 0 {
			continue
		}
		inside := a.freq * cov
		next := a.freq - inside + inside*f
		if math.IsNaN(next) || math.IsInf(next, 0) || next < 0 {
			next = 0
		}
		a.freq = next
	}
}

// seed distributes the constraint's count over its covered atoms by volume.
func (h *Histogram) seed(c constraint) {
	covered := 0.0
	for i := range h.atoms {
		covered += h.atoms[i].box.IntersectionVolume(c.box)
	}
	if covered <= 0 {
		return
	}
	for i := range h.atoms {
		a := &h.atoms[i]
		ov := a.box.IntersectionVolume(c.box)
		if ov > 0 {
			a.freq += c.count * ov / covered
		}
	}
}
