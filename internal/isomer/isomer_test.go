package isomer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sthist/internal/geom"
)

func dom2() geom.Rect { return geom.MustRect([]float64{0, 0}, []float64{100, 100}) }

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.MustRect([]float64{0}, []float64{0}), DefaultConfig(), 1); err == nil {
		t.Error("zero-volume domain accepted")
	}
	if _, err := New(dom2(), DefaultConfig(), -1); err == nil {
		t.Error("negative total accepted")
	}
	for _, cfg := range []Config{
		{MaxConstraints: 0, MaxAtoms: 10, IPFSweeps: 1, Tolerance: 0.1},
		{MaxConstraints: 1, MaxAtoms: 0, IPFSweeps: 1, Tolerance: 0.1},
		{MaxConstraints: 1, MaxAtoms: 10, IPFSweeps: 0, Tolerance: 0.1},
		{MaxConstraints: 1, MaxAtoms: 10, IPFSweeps: 1, Tolerance: 0},
	} {
		if _, err := New(dom2(), cfg, 1); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
}

func TestEstimateUniformStart(t *testing.T) {
	h := MustNew(dom2(), DefaultConfig(), 400)
	if got := h.Estimate(dom2()); math.Abs(got-400) > 1e-9 {
		t.Errorf("domain estimate = %g", got)
	}
	if got := h.Estimate(geom.MustRect([]float64{0, 0}, []float64{50, 50})); math.Abs(got-100) > 1e-9 {
		t.Errorf("quarter estimate = %g", got)
	}
	if got := h.Estimate(geom.MustRect([]float64{0}, []float64{1})); got != 0 {
		t.Errorf("dim mismatch estimate = %g", got)
	}
}

func TestFeedbackSatisfiesConstraint(t *testing.T) {
	h := MustNew(dom2(), DefaultConfig(), 1000)
	q := geom.MustRect([]float64{10, 10}, []float64{30, 30})
	h.Feedback(q, 600)
	if got := h.Estimate(q); math.Abs(got-600) > 600*0.01 {
		t.Errorf("constraint not satisfied: estimate %g, want 600", got)
	}
	// Total mass should be preserved only where constraints say otherwise;
	// the complement of q keeps its uniform share.
	if h.Atoms() < 2 {
		t.Errorf("no refinement happened: %d atoms", h.Atoms())
	}
	if h.Constraints() != 1 {
		t.Errorf("Constraints = %d", h.Constraints())
	}
}

func TestFeedbackMultipleConstraintsConsistent(t *testing.T) {
	// Two overlapping constraints: IPF must satisfy both simultaneously.
	h := MustNew(dom2(), DefaultConfig(), 1000)
	q1 := geom.MustRect([]float64{0, 0}, []float64{50, 100})  // left half: 800
	q2 := geom.MustRect([]float64{25, 0}, []float64{75, 100}) // middle: 500
	for i := 0; i < 3; i++ {
		h.Feedback(q1, 800)
		h.Feedback(q2, 500)
	}
	if got := h.Estimate(q1); math.Abs(got-800) > 800*0.05 {
		t.Errorf("q1 estimate %g, want ~800", got)
	}
	if got := h.Estimate(q2); math.Abs(got-500) > 500*0.05 {
		t.Errorf("q2 estimate %g, want ~500", got)
	}
}

func TestFeedbackZeroCount(t *testing.T) {
	h := MustNew(dom2(), DefaultConfig(), 1000)
	empty := geom.MustRect([]float64{60, 60}, []float64{90, 90})
	h.Feedback(empty, 0)
	if got := h.Estimate(empty); got > 1e-6 {
		t.Errorf("empty-region estimate %g after zero feedback", got)
	}
}

func TestFeedbackSeedsEmptyRegion(t *testing.T) {
	// Zero mass then positive feedback: the seeding path must re-introduce
	// mass.
	h := MustNew(dom2(), DefaultConfig(), 1000)
	box := geom.MustRect([]float64{60, 60}, []float64{90, 90})
	h.Feedback(box, 0)
	h.Feedback(box, 300)
	if got := h.Estimate(box); math.Abs(got-300) > 30 {
		t.Errorf("re-seeded estimate %g, want ~300", got)
	}
}

func TestConstraintEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConstraints = 4
	h := MustNew(dom2(), cfg, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		lo := geom.Point{rng.Float64() * 80, rng.Float64() * 80}
		q := geom.MustRect(lo, geom.Point{lo[0] + 10, lo[1] + 10})
		h.Feedback(q, rng.Float64()*100)
	}
	if h.Constraints() != 4 {
		t.Errorf("Constraints = %d, want 4 (budget)", h.Constraints())
	}
}

func TestAtomBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxAtoms = 16
	h := MustNew(dom2(), cfg, 1000)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		lo := geom.Point{rng.Float64() * 80, rng.Float64() * 80}
		q := geom.MustRect(lo, geom.Point{lo[0] + 15, lo[1] + 15})
		h.Feedback(q, 10)
	}
	if h.Atoms() > 16 {
		t.Errorf("Atoms = %d exceeds budget 16", h.Atoms())
	}
}

func TestLearnsCluster(t *testing.T) {
	// An idealized cluster; feedback queries tile the domain; ISOMER should
	// converge to low error on random probes.
	cluster := geom.MustRect([]float64{20, 30}, []float64{50, 70})
	truth := func(r geom.Rect) float64 {
		return 2000 * cluster.IntersectionVolume(r) / cluster.Volume()
	}
	h := MustNew(dom2(), DefaultConfig(), 2000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		q := geom.CubeAt(c, 20, dom2())
		h.Feedback(q, truth(q))
	}
	errSum, n := 0.0, 0
	for i := 0; i < 100; i++ {
		c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		q := geom.CubeAt(c, 15, dom2())
		errSum += math.Abs(h.Estimate(q) - truth(q))
		n++
	}
	if mean := errSum / float64(n); mean > 60 {
		t.Errorf("mean error %g after training; expected convergence", mean)
	}
}

func TestQuickSplitAtomPreservesMassAndVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		a := atom{box: geom.MustRect([]float64{0, 0}, []float64{10 + rng.Float64()*10, 10 + rng.Float64()*10}), freq: rng.Float64() * 100}
		lo := geom.Point{rng.Float64() * 8, rng.Float64() * 8}
		cut := geom.MustRect(lo, geom.Point{lo[0] + 1 + rng.Float64()*5, lo[1] + 1 + rng.Float64()*5})
		pieces := splitAtom(a, cut)
		var vol, mass float64
		for i, p := range pieces {
			vol += p.box.Volume()
			mass += p.freq
			if !a.box.Contains(p.box) {
				return false
			}
			for _, q := range pieces[i+1:] {
				if p.box.IntersectsOpen(q.box) {
					return false
				}
			}
		}
		return math.Abs(vol-a.box.Volume()) < 1e-9*a.box.Volume() &&
			math.Abs(mass-a.freq) < 1e-9*math.Max(a.freq, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickFeedbackKeepsNonNegativeMass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := MustNew(dom2(), DefaultConfig(), 500)
	f := func() bool {
		lo := geom.Point{rng.Float64() * 90, rng.Float64() * 90}
		q := geom.MustRect(lo, geom.Point{lo[0] + rng.Float64()*10, lo[1] + rng.Float64()*10})
		h.Feedback(q, rng.Float64()*200)
		if h.TotalTuples() < 0 {
			return false
		}
		probe := geom.CubeAt(geom.Point{rng.Float64() * 100, rng.Float64() * 100}, 10, dom2())
		return h.Estimate(probe) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFeedbackIgnoresNonFinite(t *testing.T) {
	h := MustNew(dom2(), DefaultConfig(), 100)
	h.Feedback(geom.MustRect([]float64{0, 0}, []float64{10, 10}), math.NaN())
	h.Feedback(geom.MustRect([]float64{0, 0}, []float64{10, 10}), math.Inf(1))
	if h.Constraints() != 0 {
		t.Errorf("non-finite feedback recorded %d constraints", h.Constraints())
	}
	if got := h.TotalTuples(); math.IsNaN(got) || math.Abs(got-100) > 1e-9 {
		t.Errorf("mass changed to %g", got)
	}
}

// TestQuickExtremeFeedbackStaysFinite: wildly varying feedback magnitudes
// (the failure seen in the baseline-selftuning sweep, where IPF factors
// overflowed to Inf and then NaN) must never leak non-finite values into
// estimates.
func TestQuickExtremeFeedbackStaysFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := MustNew(dom2(), DefaultConfig(), 1000)
	f := func() bool {
		lo := geom.Point{rng.Float64() * 95, rng.Float64() * 95}
		q := geom.MustRect(lo, geom.Point{lo[0] + 0.1 + rng.Float64()*30, lo[1] + 0.1 + rng.Float64()*30})
		var actual float64
		switch rng.Intn(4) {
		case 0:
			actual = 0
		case 1:
			actual = 1e12
		case 2:
			actual = rng.Float64() * 1e-6
		default:
			actual = rng.Float64() * 1000
		}
		h.Feedback(q, actual)
		est := h.Estimate(q)
		total := h.TotalTuples()
		return !math.IsNaN(est) && !math.IsInf(est, 0) && est >= 0 &&
			!math.IsNaN(total) && !math.IsInf(total, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
