// Package joinest estimates equi-join cardinalities from per-table
// histograms, completing the optimizer picture ([4] in the paper): given
// R ⋈ S on R.a = S.b, the expected join size under per-table independence
// of the non-join attributes is
//
//	|R ⋈ S| = ∫ fR(x) · fS(x) dx
//
// where fR and fS are the marginal frequency DENSITIES of the join
// attributes (tuples per unit of attribute value). The marginals are
// extracted from any Estimator by differencing prefix-range estimates on a
// regular grid; the integral is then a dot product of per-cell counts
// divided by the cell width.
//
// Discrete join attributes: the density model matches the classic
// per-bucket formula count_R * count_S / V (V = distinct values per bucket)
// only when a grid cell's width equals the key spacing. For integer keys,
// pass a domain of [min-0.5, max+0.5] with (max-min+1) steps so every cell
// is centered on one key with unit width.
package joinest

import (
	"fmt"
	"math"

	"sthist/internal/geom"
)

// Estimator supplies range-cardinality estimates for one table.
type Estimator interface {
	Estimate(q geom.Rect) float64
}

// Marginal is a per-attribute frequency vector over a regular grid.
type Marginal struct {
	Lo, Hi float64
	Counts []float64
}

// CellWidth returns the grid resolution.
func (m *Marginal) CellWidth() float64 {
	return (m.Hi - m.Lo) / float64(len(m.Counts))
}

// ExtractMarginal reads the marginal distribution of dimension dim from an
// estimator over the given domain, using steps grid cells: cell i holds the
// estimated number of tuples whose attribute value falls into that slice of
// the domain.
func ExtractMarginal(est Estimator, domain geom.Rect, dim, steps int) (*Marginal, error) {
	if dim < 0 || dim >= domain.Dims() {
		return nil, fmt.Errorf("joinest: dimension %d out of range for %d-dimensional domain", dim, domain.Dims())
	}
	if steps < 1 {
		return nil, fmt.Errorf("joinest: steps must be >= 1, got %d", steps)
	}
	lo, hi := domain.Lo[dim], domain.Hi[dim]
	if hi <= lo {
		return nil, fmt.Errorf("joinest: domain has no extent on dimension %d", dim)
	}
	m := &Marginal{Lo: lo, Hi: hi, Counts: make([]float64, steps)}
	width := (hi - lo) / float64(steps)
	// Prefix differencing keeps the cells disjoint even though range
	// estimates use closed intervals: cell i gets
	// est([lo, lo+(i+1)w]) - est([lo, lo+iw]), so a tuple sitting exactly on
	// a grid line is attributed to one cell only.
	slab := domain.Clone()
	prev := 0.0
	for i := 0; i < steps; i++ {
		slab.Lo[dim] = lo
		slab.Hi[dim] = lo + float64(i+1)*width
		cum := est.Estimate(slab)
		c := cum - prev
		prev = cum
		if c < 0 {
			c = 0
		}
		m.Counts[i] = c
	}
	return m, nil
}

// JoinSize estimates |R ⋈ S| on a single equi-join attribute from the two
// marginals, which must be re-gridded to a common range first (AlignGrids).
// Under within-cell uniformity the contribution of cell i is
// rCount[i]*sCount[i]/width.
func JoinSize(r, s *Marginal) (float64, error) {
	if len(r.Counts) != len(s.Counts) || r.Lo != s.Lo || r.Hi != s.Hi {
		return 0, fmt.Errorf("joinest: marginals not aligned (use AlignGrids)")
	}
	width := r.CellWidth()
	if width <= 0 {
		return 0, fmt.Errorf("joinest: degenerate grid")
	}
	total := 0.0
	for i := range r.Counts {
		total += r.Counts[i] * s.Counts[i] / width
	}
	return total, nil
}

// AlignGrids re-samples both marginals onto a shared grid covering the union
// of their ranges with the given number of steps (mass-preserving, assuming
// uniformity within source cells).
func AlignGrids(a, b *Marginal, steps int) (*Marginal, *Marginal, error) {
	if steps < 1 {
		return nil, nil, fmt.Errorf("joinest: steps must be >= 1")
	}
	lo := math.Min(a.Lo, b.Lo)
	hi := math.Max(a.Hi, b.Hi)
	if hi <= lo {
		return nil, nil, fmt.Errorf("joinest: empty union range")
	}
	return resample(a, lo, hi, steps), resample(b, lo, hi, steps), nil
}

// resample redistributes counts onto a new grid proportionally to interval
// overlap.
func resample(m *Marginal, lo, hi float64, steps int) *Marginal {
	out := &Marginal{Lo: lo, Hi: hi, Counts: make([]float64, steps)}
	outWidth := (hi - lo) / float64(steps)
	srcWidth := m.CellWidth()
	for i, c := range m.Counts {
		if c == 0 {
			continue
		}
		sLo := m.Lo + float64(i)*srcWidth
		sHi := sLo + srcWidth
		// Distribute c over out cells overlapping [sLo, sHi).
		first := int((sLo - lo) / outWidth)
		last := int((sHi - lo) / outWidth)
		if last >= steps {
			last = steps - 1
		}
		if first < 0 {
			first = 0
		}
		for j := first; j <= last; j++ {
			oLo := lo + float64(j)*outWidth
			oHi := oLo + outWidth
			l := math.Max(sLo, oLo)
			r := math.Min(sHi, oHi)
			if r <= l {
				continue
			}
			if srcWidth > 0 {
				out.Counts[j] += c * (r - l) / srcWidth
			} else {
				out.Counts[j] += c
			}
		}
	}
	return out
}

// EstimateEquiJoin is the one-call convenience: extract both marginals at
// the given resolution, align, and integrate.
func EstimateEquiJoin(r Estimator, rDomain geom.Rect, rDim int, s Estimator, sDomain geom.Rect, sDim int, steps int) (float64, error) {
	mr, err := ExtractMarginal(r, rDomain, rDim, steps)
	if err != nil {
		return 0, err
	}
	ms, err := ExtractMarginal(s, sDomain, sDim, steps)
	if err != nil {
		return 0, err
	}
	ar, as, err := AlignGrids(mr, ms, steps)
	if err != nil {
		return 0, err
	}
	return JoinSize(ar, as)
}
