package joinest

import (
	"math"
	"math/rand"
	"testing"

	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/index"
	"sthist/internal/metrics"
)

// exact wraps a k-d tree as an Estimator.
type exact struct{ idx *index.KDTree }

func (e exact) Estimate(q geom.Rect) float64 { return float64(e.idx.Count(q)) }

// trueJoinSize counts the equi-join |R ⋈ S| on integer-valued join columns
// by exact hashing.
func trueJoinSize(r *dataset.Table, rDim int, s *dataset.Table, sDim int) float64 {
	counts := map[float64]float64{}
	for i := 0; i < r.Len(); i++ {
		counts[r.Value(i, rDim)]++
	}
	total := 0.0
	for i := 0; i < s.Len(); i++ {
		total += counts[s.Value(i, sDim)]
	}
	return total
}

func TestExtractMarginalValidation(t *testing.T) {
	dom := geom.MustRect([]float64{0, 0}, []float64{10, 10})
	est := metrics.TrivialEstimator{Domain: dom, Total: 100}
	if _, err := ExtractMarginal(est, dom, 5, 4); err == nil {
		t.Error("out-of-range dimension accepted")
	}
	if _, err := ExtractMarginal(est, dom, 0, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := ExtractMarginal(est, geom.MustRect([]float64{0, 0}, []float64{0, 10}), 0, 4); err == nil {
		t.Error("degenerate dimension accepted")
	}
}

func TestExtractMarginalUniform(t *testing.T) {
	dom := geom.MustRect([]float64{0, 0}, []float64{10, 10})
	est := metrics.TrivialEstimator{Domain: dom, Total: 100}
	m, err := ExtractMarginal(est, dom, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.Counts {
		if math.Abs(c-25) > 1e-9 {
			t.Errorf("cell %d = %g, want 25", i, c)
		}
	}
	if m.CellWidth() != 2.5 {
		t.Errorf("CellWidth = %g", m.CellWidth())
	}
}

func TestJoinSizeRequiresAlignment(t *testing.T) {
	a := &Marginal{Lo: 0, Hi: 10, Counts: []float64{1, 2}}
	b := &Marginal{Lo: 0, Hi: 20, Counts: []float64{1, 2}}
	if _, err := JoinSize(a, b); err == nil {
		t.Error("misaligned marginals accepted")
	}
}

func TestAlignGridsPreservesMass(t *testing.T) {
	a := &Marginal{Lo: 0, Hi: 10, Counts: []float64{10, 30, 0, 60}}
	b := &Marginal{Lo: 5, Hi: 25, Counts: []float64{8, 8}}
	ar, br, err := AlignGrids(a, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(m *Marginal) float64 {
		s := 0.0
		for _, c := range m.Counts {
			s += c
		}
		return s
	}
	if math.Abs(sum(ar)-100) > 1e-9 || math.Abs(sum(br)-16) > 1e-9 {
		t.Errorf("mass not preserved: %g, %g", sum(ar), sum(br))
	}
	if ar.Lo != 0 || ar.Hi != 25 || br.Lo != 0 || br.Hi != 25 {
		t.Errorf("union range wrong: [%g,%g]", ar.Lo, ar.Hi)
	}
}

func TestEstimateEquiJoinAgainstTruth(t *testing.T) {
	// Two tables joining on an integer key 0..49 with ANTI-correlated skew:
	// R concentrates on high keys, S on low keys. The true join is far
	// smaller than the independence-flat prediction, so the trivial
	// estimator overshoots while exact marginals land close.
	rng := rand.New(rand.NewSource(1))
	r := dataset.MustNew("k", "x")
	for i := 0; i < 20000; i++ {
		k := rng.Intn(50)
		if rng.Float64() < 0.7 {
			k = 40 + rng.Intn(10) // skew toward high keys
		}
		r.MustAppend([]float64{float64(k), rng.Float64() * 100})
	}
	s := dataset.MustNew("k", "y")
	for i := 0; i < 10000; i++ {
		k := rng.Intn(50)
		if rng.Float64() < 0.7 {
			k = rng.Intn(10) // skew toward low keys
		}
		s.MustAppend([]float64{float64(k), rng.Float64() * 100})
	}
	rIdx, _ := index.BuildKDTree(r)
	sIdx, _ := index.BuildKDTree(s)
	// Integer keys: center the grid on the keys with unit cell width, so
	// each cell holds exactly one key and the per-cell width matches the
	// key spacing (see the package comment on discrete join attributes).
	rDom := geom.MustRect([]float64{-0.5, 0}, []float64{49.5, 100})
	sDom := geom.MustRect([]float64{-0.5, 0}, []float64{49.5, 100})

	got, err := EstimateEquiJoin(exact{rIdx}, rDom, 0, exact{sIdx}, sDom, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := trueJoinSize(r, 0, s, 0)
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("join estimate %g vs truth %g", got, want)
	}

	// The trivial (uniformity) estimator misses the anti-correlation and
	// overestimates badly.
	trivR := metrics.TrivialEstimator{Domain: rDom, Total: float64(r.Len())}
	trivS := metrics.TrivialEstimator{Domain: sDom, Total: float64(s.Len())}
	flat, err := EstimateEquiJoin(trivR, rDom, 0, trivS, sDom, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flat-want) < 2*math.Abs(got-want) {
		t.Errorf("trivial estimator (%g) suspiciously close to truth %g (marginals gave %g)", flat, want, got)
	}
}
