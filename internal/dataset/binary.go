package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary columnar format: a compact on-disk representation for tables that
// round-trips much faster than CSV and preserves float64 values exactly.
//
// Layout (little endian):
//
//	magic   [4]byte  "STH1"
//	dims    uint32
//	rows    uint64
//	names   dims x { uint16 length, bytes }
//	columns dims x rows x float64   (column-major)
const binaryMagic = "STH1"

// maxBinaryDims bounds the header so corrupt input cannot trigger huge
// allocations.
const maxBinaryDims = 1 << 12

// WriteBinary writes the table in the binary columnar format.
func (t *Table) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(t.Dims())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.Len())); err != nil {
		return err
	}
	for _, name := range t.names {
		if len(name) > math.MaxUint16 {
			return fmt.Errorf("dataset: column name %q too long", name[:32])
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, col := range t.cols {
		for _, v := range col {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary reads a table written by WriteBinary.
func ReadBinary(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var dims uint32
	if err := binary.Read(br, binary.LittleEndian, &dims); err != nil {
		return nil, fmt.Errorf("dataset: reading dims: %w", err)
	}
	if dims == 0 || dims > maxBinaryDims {
		return nil, fmt.Errorf("dataset: implausible dimensionality %d", dims)
	}
	var rows uint64
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, fmt.Errorf("dataset: reading row count: %w", err)
	}
	names := make([]string, dims)
	for d := range names {
		var n uint16
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("dataset: reading name length: %w", err)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("dataset: reading column name: %w", err)
		}
		names[d] = string(b)
	}
	t, err := New(names...)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8)
	for d := 0; d < int(dims); d++ {
		col := make([]float64, 0, min64(rows, 1<<20))
		for i := uint64(0); i < rows; i++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("dataset: reading column %q row %d: %w", names[d], i, err)
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(buf))
			if math.IsNaN(v) {
				return nil, fmt.Errorf("dataset: NaN in column %q row %d", names[d], i)
			}
			col = append(col, v)
		}
		t.cols[d] = col
	}
	return t, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
