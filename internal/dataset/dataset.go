// Package dataset provides the in-memory relation that plays the role of the
// DBMS storage layer in the reproduction: a column-oriented table of float64
// attributes with a schema, CSV round-trip, bounding-box computation and
// sampling. Categorical attributes are assumed to be pre-mapped to numbers,
// as the paper does (footnote 1).
package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"sthist/internal/geom"
)

// Table is a column-oriented relation. All columns have equal length.
type Table struct {
	names []string
	cols  [][]float64
}

// New creates an empty table with the given column names. At least one column
// is required.
func New(names ...string) (*Table, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("dataset: table needs at least one column")
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("dataset: empty column name")
		}
		if seen[n] {
			return nil, fmt.Errorf("dataset: duplicate column name %q", n)
		}
		seen[n] = true
	}
	t := &Table{names: append([]string(nil), names...), cols: make([][]float64, len(names))}
	return t, nil
}

// MustNew is New that panics on invalid input; for generators with known-good
// schemas.
func MustNew(names ...string) *Table {
	t, err := New(names...)
	if err != nil {
		panic(err)
	}
	return t
}

// GenericNames returns d column names x1..xd, the schema used by the
// synthetic generators.
func GenericNames(d int) []string {
	names := make([]string, d)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i+1)
	}
	return names
}

// Dims returns the number of columns.
func (t *Table) Dims() int { return len(t.cols) }

// Len returns the number of tuples.
func (t *Table) Len() int {
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0])
}

// Names returns the column names. The slice must not be modified.
func (t *Table) Names() []string { return t.names }

// Append adds one tuple. The tuple length must match the schema.
func (t *Table) Append(tuple []float64) error {
	if len(tuple) != len(t.cols) {
		return fmt.Errorf("dataset: tuple has %d values, schema has %d columns", len(tuple), len(t.cols))
	}
	for d, v := range tuple {
		if math.IsNaN(v) {
			return fmt.Errorf("dataset: NaN value in column %q", t.names[d])
		}
		t.cols[d] = append(t.cols[d], v)
	}
	return nil
}

// MustAppend is Append that panics on error; for generators.
func (t *Table) MustAppend(tuple []float64) {
	if err := t.Append(tuple); err != nil {
		panic(err)
	}
}

// Grow pre-allocates capacity for n additional tuples.
func (t *Table) Grow(n int) {
	for d := range t.cols {
		if cap(t.cols[d])-len(t.cols[d]) < n {
			grown := make([]float64, len(t.cols[d]), len(t.cols[d])+n)
			copy(grown, t.cols[d])
			t.cols[d] = grown
		}
	}
}

// Value returns the value of column d in row i.
func (t *Table) Value(i, d int) float64 { return t.cols[d][i] }

// Row copies tuple i into dst (allocating when dst is short) and returns it.
func (t *Table) Row(i int, dst []float64) []float64 {
	if cap(dst) < len(t.cols) {
		dst = make([]float64, len(t.cols))
	}
	dst = dst[:len(t.cols)]
	for d := range t.cols {
		dst[d] = t.cols[d][i]
	}
	return dst
}

// Point returns tuple i as a freshly allocated geom.Point.
func (t *Table) Point(i int) geom.Point {
	return geom.Point(t.Row(i, nil))
}

// Column returns the backing slice of column d. The slice must not be
// modified.
func (t *Table) Column(d int) []float64 { return t.cols[d] }

// Bounds returns the minimal bounding rectangle of all tuples. It reports an
// error for an empty table.
func (t *Table) Bounds() (geom.Rect, error) {
	if t.Len() == 0 {
		return geom.Rect{}, fmt.Errorf("dataset: bounds of empty table")
	}
	lo := make(geom.Point, t.Dims())
	hi := make(geom.Point, t.Dims())
	for d, col := range t.cols {
		mn, mx := col[0], col[0]
		for _, v := range col[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		lo[d], hi[d] = mn, mx
	}
	return geom.Rect{Lo: lo, Hi: hi}, nil
}

// CountIn returns the exact number of tuples inside r by scanning. This is
// the slow reference counter; use index.KDTree for repeated queries.
func (t *Table) CountIn(r geom.Rect) int {
	n := t.Len()
	count := 0
rows:
	for i := 0; i < n; i++ {
		for d := range t.cols {
			v := t.cols[d][i]
			if v < r.Lo[d] || v > r.Hi[d] {
				continue rows
			}
		}
		count++
	}
	return count
}

// Sample returns k row indices drawn uniformly without replacement using rng.
// If k >= Len, all indices are returned.
func (t *Table) Sample(k int, rng *rand.Rand) []int {
	n := t.Len()
	if k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	// Partial Fisher-Yates over an index permutation.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}

// Subset returns a new table containing the given rows, in order.
func (t *Table) Subset(rows []int) *Table {
	s := MustNew(t.names...)
	s.Grow(len(rows))
	buf := make([]float64, t.Dims())
	for _, i := range rows {
		s.MustAppend(t.Row(i, buf))
	}
	return s
}

// WriteCSV writes the table with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(t.names); err != nil {
		return err
	}
	rec := make([]string, t.Dims())
	for i := 0; i < t.Len(); i++ {
		for d := range t.cols {
			rec[d] = strconv.FormatFloat(t.cols[d][i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV reads a table written by WriteCSV (header row then float values).
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	t, err := New(header...)
	if err != nil {
		return nil, err
	}
	tuple := make([]float64, len(header))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		for d, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d column %q: %w", line, header[d], err)
			}
			tuple[d] = v
		}
		if err := t.Append(tuple); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
}
