package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := MustNew("ra", "dec", "z")
	for i := 0; i < 1000; i++ {
		tab.MustAppend([]float64{rng.NormFloat64() * 1e6, rng.Float64(), float64(i)})
	}
	var buf bytes.Buffer
	if err := tab.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tab.Len() || got.Dims() != tab.Dims() {
		t.Fatalf("size mismatch %dx%d", got.Len(), got.Dims())
	}
	for d, name := range tab.Names() {
		if got.Names()[d] != name {
			t.Errorf("column %d name %q, want %q", d, got.Names()[d], name)
		}
	}
	for i := 0; i < tab.Len(); i++ {
		for d := 0; d < tab.Dims(); d++ {
			if got.Value(i, d) != tab.Value(i, d) {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, d, got.Value(i, d), tab.Value(i, d))
			}
		}
	}
}

func TestBinaryRoundTripEmptyTable(t *testing.T) {
	tab := MustNew("x")
	var buf bytes.Buffer
	if err := tab.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Dims() != 1 {
		t.Errorf("empty round trip: %dx%d", got.Len(), got.Dims())
	}
}

func TestReadBinaryRejectsCorruptInput(t *testing.T) {
	cases := []string{
		"",                     // empty
		"NOPE",                 // bad magic
		"STH1",                 // truncated after magic
		"STH1\xff\xff\xff\xff", // implausible dims
		"STH1\x00\x00\x00\x00", // zero dims
	}
	for _, c := range cases {
		if _, err := ReadBinary(strings.NewReader(c)); err == nil {
			t.Errorf("corrupt input %q accepted", c)
		}
	}
	// Truncated column data.
	tab := MustNew("x")
	tab.MustAppend([]float64{1})
	tab.MustAppend([]float64{2})
	var buf bytes.Buffer
	if err := tab.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated column data accepted")
	}
}

func TestReadBinaryRejectsNaN(t *testing.T) {
	tab := MustNew("x")
	tab.MustAppend([]float64{1})
	var buf bytes.Buffer
	if err := tab.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	// Patch the stored value to NaN.
	b := buf.Bytes()
	nan := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		b[len(b)-8+i] = byte(nan >> (8 * i))
	}
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Error("NaN payload accepted")
	}
}
