package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV loader never panics and that every accepted
// table is structurally consistent.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n")
	f.Add("x\n")
	f.Add("a,a\n1,1\n")
	f.Add("a,b\n1\n")
	f.Add("a,b\nNaN,2\n")
	f.Add("\xff\xfe")
	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if tab.Dims() < 1 {
			t.Error("accepted table without columns")
		}
		for d := 0; d < tab.Dims(); d++ {
			if len(tab.Column(d)) != tab.Len() {
				t.Error("ragged columns accepted")
			}
		}
	})
}
