package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sthist/internal/geom"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := New("a", "a"); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := New("a", ""); err == nil {
		t.Error("empty column name accepted")
	}
	tab, err := New("a", "b")
	if err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if tab.Dims() != 2 || tab.Len() != 0 {
		t.Errorf("fresh table dims=%d len=%d", tab.Dims(), tab.Len())
	}
}

func TestAppendAndAccess(t *testing.T) {
	tab := MustNew("x", "y")
	if err := tab.Append([]float64{1}); err == nil {
		t.Error("short tuple accepted")
	}
	tab.MustAppend([]float64{1, 2})
	tab.MustAppend([]float64{3, 4})
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Value(1, 0) != 3 || tab.Value(0, 1) != 2 {
		t.Error("Value returned wrong cells")
	}
	row := tab.Row(1, nil)
	if row[0] != 3 || row[1] != 4 {
		t.Errorf("Row = %v", row)
	}
	p := tab.Point(0)
	if p[0] != 1 || p[1] != 2 {
		t.Errorf("Point = %v", p)
	}
}

func TestBoundsAndCount(t *testing.T) {
	tab := MustNew(GenericNames(2)...)
	if _, err := tab.Bounds(); err == nil {
		t.Error("bounds of empty table accepted")
	}
	pts := [][]float64{{0, 0}, {5, 1}, {2, -3}, {4, 4}}
	for _, p := range pts {
		tab.MustAppend(p)
	}
	b, err := tab.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	want := geom.MustRect([]float64{0, -3}, []float64{5, 4})
	if !b.Equal(want) {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
	if got := tab.CountIn(geom.MustRect([]float64{0, 0}, []float64{5, 5})); got != 3 {
		t.Errorf("CountIn = %d, want 3", got)
	}
	if got := tab.CountIn(b); got != 4 {
		t.Errorf("CountIn(bounds) = %d, want 4", got)
	}
}

func TestSample(t *testing.T) {
	tab := MustNew("x")
	for i := 0; i < 100; i++ {
		tab.MustAppend([]float64{float64(i)})
	}
	rng := rand.New(rand.NewSource(1))
	s := tab.Sample(10, rng)
	if len(s) != 10 {
		t.Fatalf("sample size = %d", len(s))
	}
	seen := map[int]bool{}
	for _, i := range s {
		if i < 0 || i >= 100 {
			t.Errorf("sample index %d out of range", i)
		}
		if seen[i] {
			t.Errorf("duplicate sample index %d", i)
		}
		seen[i] = true
	}
	if got := tab.Sample(1000, rng); len(got) != 100 {
		t.Errorf("oversample returned %d indices", len(got))
	}
}

func TestSubset(t *testing.T) {
	tab := MustNew("x", "y")
	for i := 0; i < 5; i++ {
		tab.MustAppend([]float64{float64(i), float64(-i)})
	}
	s := tab.Subset([]int{4, 0})
	if s.Len() != 2 || s.Value(0, 0) != 4 || s.Value(1, 1) != 0 {
		t.Errorf("Subset produced wrong rows")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := MustNew("ra", "dec")
	tab.MustAppend([]float64{1.5, -2.25})
	tab.MustAppend([]float64{0, 1e-9})
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tab.Len() || got.Dims() != tab.Dims() {
		t.Fatalf("round trip size mismatch")
	}
	for i := 0; i < tab.Len(); i++ {
		for d := 0; d < tab.Dims(); d++ {
			if got.Value(i, d) != tab.Value(i, d) {
				t.Errorf("cell (%d,%d) = %g, want %g", i, d, got.Value(i, d), tab.Value(i, d))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,notanumber\n")); err == nil {
		t.Error("non-numeric cell accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,a\n1,2\n")); err == nil {
		t.Error("duplicate header accepted")
	}
}

func TestQuickCountInMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := MustNew(GenericNames(3)...)
	for i := 0; i < 500; i++ {
		tab.MustAppend([]float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10})
	}
	f := func() bool {
		lo := make([]float64, 3)
		hi := make([]float64, 3)
		for d := range lo {
			a, b := rng.Float64()*10, rng.Float64()*10
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		r := geom.MustRect(lo, hi)
		want := 0
		for i := 0; i < tab.Len(); i++ {
			if r.ContainsPoint(tab.Point(i)) {
				want++
			}
		}
		return tab.CountIn(r) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
