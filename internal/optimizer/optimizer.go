// Package optimizer implements the slice of a cost-based query optimizer
// that selectivity estimates feed ([4] in the paper): access-path selection
// (sequential scan vs secondary-index range scan) for single-table
// conjunctive range queries, and build-side selection for binary hash
// joins. Plan quality is measured as REGRET: the true execution cost of the
// plan an estimator picks, divided by the true cost of the best plan — the
// quantity a better histogram actually improves.
package optimizer

import (
	"fmt"

	"sthist/internal/geom"
)

// Cost model (abstract units per tuple). Sequential access is cheap;
// index-driven random access pays a penalty per fetched tuple; the fixed
// probe cost covers index traversal.
const (
	CostSeqTuple  = 1.0
	CostRandTuple = 4.0
	CostProbe     = 50.0
	// Hash join: building the table costs more per tuple than probing.
	CostHashBuild = 2.0
	CostHashProbe = 1.0
)

// Estimator supplies cardinality estimates for one table.
type Estimator interface {
	Estimate(q geom.Rect) float64
}

// Table describes one relation to the optimizer.
type Table struct {
	Name   string
	Tuples float64
	Domain geom.Rect
	// IndexedDims are the dimensions with secondary range indexes.
	IndexedDims []int
	// Est estimates the cardinality of a range predicate.
	Est Estimator
}

// AccessPath identifies a single-table plan.
type AccessPath int

const (
	SeqScan AccessPath = iota
	IndexScan
)

// String names the path.
func (p AccessPath) String() string {
	if p == IndexScan {
		return "IndexScan"
	}
	return "SeqScan"
}

// ScanPlan is a chosen single-table plan.
type ScanPlan struct {
	Path     AccessPath
	IndexDim int // meaningful when Path == IndexScan
	EstRows  float64
	EstCost  float64
}

// String renders the plan.
func (p ScanPlan) String() string {
	if p.Path == IndexScan {
		return fmt.Sprintf("IndexScan(dim=%d, rows≈%.0f, cost≈%.0f)", p.IndexDim, p.EstRows, p.EstCost)
	}
	return fmt.Sprintf("SeqScan(rows≈%.0f, cost≈%.0f)", p.EstRows, p.EstCost)
}

// dimRestriction returns the query restricted to a single dimension of the
// table's domain — what a secondary index on that dimension can retrieve.
func dimRestriction(t Table, q geom.Rect, d int) geom.Rect {
	r := t.Domain.Clone()
	if q.Lo[d] > r.Lo[d] {
		r.Lo[d] = q.Lo[d]
	}
	if q.Hi[d] < r.Hi[d] {
		r.Hi[d] = q.Hi[d]
	}
	if r.Lo[d] > r.Hi[d] {
		r.Lo[d] = r.Hi[d]
	}
	return r
}

// ChooseScan picks the cheapest access path for predicate q under the
// table's estimator.
func ChooseScan(t Table, q geom.Rect) ScanPlan {
	rows := t.Est.Estimate(q)
	best := ScanPlan{Path: SeqScan, EstRows: rows, EstCost: t.Tuples * CostSeqTuple}
	for _, d := range t.IndexedDims {
		idxRows := t.Est.Estimate(dimRestriction(t, q, d))
		cost := CostProbe + idxRows*CostRandTuple
		if cost < best.EstCost {
			best = ScanPlan{Path: IndexScan, IndexDim: d, EstRows: rows, EstCost: cost}
		}
	}
	return best
}

// TrueScanCost returns the actual execution cost of a plan given exact
// cardinalities (truth plays the role of the executor).
func TrueScanCost(t Table, q geom.Rect, plan ScanPlan, truth Estimator) float64 {
	if plan.Path == SeqScan {
		return t.Tuples * CostSeqTuple
	}
	idxRows := truth.Estimate(dimRestriction(t, q, plan.IndexDim))
	return CostProbe + idxRows*CostRandTuple
}

// OptimalScanCost returns the cheapest true cost across all paths.
func OptimalScanCost(t Table, q geom.Rect, truth Estimator) float64 {
	best := t.Tuples * CostSeqTuple
	for _, d := range t.IndexedDims {
		idxRows := truth.Estimate(dimRestriction(t, q, d))
		if c := CostProbe + idxRows*CostRandTuple; c < best {
			best = c
		}
	}
	return best
}

// ScanRegret returns trueCost(chosen)/trueCost(optimal) >= 1 for the plan
// the estimator picks on q.
func ScanRegret(t Table, q geom.Rect, truth Estimator) float64 {
	plan := ChooseScan(t, q)
	chosen := TrueScanCost(t, q, plan, truth)
	opt := OptimalScanCost(t, q, truth)
	if opt <= 0 {
		return 1
	}
	return chosen / opt
}

// JoinPlan records the build-side decision of a hash join between two
// filtered inputs.
type JoinPlan struct {
	BuildLeft bool
	EstCost   float64
}

// ChooseJoinBuildSide picks which filtered input to build the hash table on
// (the smaller one, by estimate). Inputs are the per-table predicates.
func ChooseJoinBuildSide(left, right Table, ql, qr geom.Rect) JoinPlan {
	l := left.Est.Estimate(ql)
	r := right.Est.Estimate(qr)
	if l <= r {
		return JoinPlan{BuildLeft: true, EstCost: l*CostHashBuild + r*CostHashProbe}
	}
	return JoinPlan{BuildLeft: false, EstCost: r*CostHashBuild + l*CostHashProbe}
}

// TrueJoinCost evaluates a build-side decision with exact input sizes.
func TrueJoinCost(plan JoinPlan, trueLeft, trueRight float64) float64 {
	if plan.BuildLeft {
		return trueLeft*CostHashBuild + trueRight*CostHashProbe
	}
	return trueRight*CostHashBuild + trueLeft*CostHashProbe
}

// JoinRegret returns the regret of the estimator-driven build-side decision.
func JoinRegret(left, right Table, ql, qr geom.Rect, trueLeft, trueRight float64) float64 {
	plan := ChooseJoinBuildSide(left, right, ql, qr)
	chosen := TrueJoinCost(plan, trueLeft, trueRight)
	optA := TrueJoinCost(JoinPlan{BuildLeft: true}, trueLeft, trueRight)
	optB := TrueJoinCost(JoinPlan{BuildLeft: false}, trueLeft, trueRight)
	opt := optA
	if optB < opt {
		opt = optB
	}
	if opt <= 0 {
		return 1
	}
	return chosen / opt
}
