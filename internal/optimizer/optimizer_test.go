package optimizer

import (
	"math"
	"testing"

	"sthist/internal/geom"
)

// fixedEst returns preset estimates: full-dimension restrictions (index
// lookups) get perDim, the original query gets rows.
type funcEst func(q geom.Rect) float64

func (f funcEst) Estimate(q geom.Rect) float64 { return f(q) }

func table(est Estimator) Table {
	return Table{
		Name:        "t",
		Tuples:      10000,
		Domain:      geom.MustRect([]float64{0, 0}, []float64{100, 100}),
		IndexedDims: []int{0, 1},
		Est:         est,
	}
}

func TestChooseScanPrefersIndexForSelectivePredicate(t *testing.T) {
	// 50 matching rows on dim 0: index cost 50 + 50*4 = 250 << 10000 seq.
	est := funcEst(func(q geom.Rect) float64 {
		if q.Side(1) < 100 { // the full query
			return 10
		}
		return 50 // dim-0 restriction
	})
	plan := ChooseScan(table(est), geom.MustRect([]float64{10, 10}, []float64{12, 12}))
	if plan.Path != IndexScan {
		t.Fatalf("plan = %v, want IndexScan", plan)
	}
	if plan.EstCost >= 10000 {
		t.Errorf("index cost %g not below seq cost", plan.EstCost)
	}
}

func TestChooseScanPrefersSeqForWidePredicate(t *testing.T) {
	est := funcEst(func(q geom.Rect) float64 { return 9000 })
	plan := ChooseScan(table(est), geom.MustRect([]float64{0, 0}, []float64{90, 90}))
	if plan.Path != SeqScan {
		t.Fatalf("plan = %v, want SeqScan", plan)
	}
}

func TestScanRegretPerfectEstimatorIsOne(t *testing.T) {
	truth := funcEst(func(q geom.Rect) float64 {
		// 100 tuples per unit of dim-0 extent: selective dim-0 ranges pay
		// off, wide ones do not.
		return q.Side(0) * 100
	})
	tab := table(truth)
	for _, q := range []geom.Rect{
		geom.MustRect([]float64{10, 10}, []float64{11, 12}),
		geom.MustRect([]float64{0, 0}, []float64{95, 95}),
	} {
		if r := ScanRegret(tab, q, truth); math.Abs(r-1) > 1e-9 {
			t.Errorf("perfect estimator regret = %g on %v", r, q)
		}
	}
}

func TestScanRegretBadEstimatorPaysForIt(t *testing.T) {
	truth := funcEst(func(q geom.Rect) float64 { return q.Side(0) * 100 })
	// An estimator claiming everything is tiny: always picks the index,
	// even for the wide query where seq is optimal.
	liar := funcEst(func(q geom.Rect) float64 { return 1 })
	tab := table(liar)
	wide := geom.MustRect([]float64{0, 0}, []float64{95, 95})
	if r := ScanRegret(tab, wide, truth); r <= 1.5 {
		t.Errorf("lying estimator regret = %g, expected a clear penalty", r)
	}
}

func TestTrueScanCostMatchesModel(t *testing.T) {
	truth := funcEst(func(q geom.Rect) float64 { return 100 })
	tab := table(truth)
	q := geom.MustRect([]float64{0, 0}, []float64{10, 10})
	seq := TrueScanCost(tab, q, ScanPlan{Path: SeqScan}, truth)
	if seq != tab.Tuples*CostSeqTuple {
		t.Errorf("seq cost = %g", seq)
	}
	idx := TrueScanCost(tab, q, ScanPlan{Path: IndexScan, IndexDim: 0}, truth)
	if idx != CostProbe+100*CostRandTuple {
		t.Errorf("index cost = %g", idx)
	}
}

func TestJoinBuildSide(t *testing.T) {
	small := table(funcEst(func(geom.Rect) float64 { return 100 }))
	big := table(funcEst(func(geom.Rect) float64 { return 10000 }))
	q := geom.MustRect([]float64{0, 0}, []float64{50, 50})
	plan := ChooseJoinBuildSide(small, big, q, q)
	if !plan.BuildLeft {
		t.Error("should build on the smaller (left) input")
	}
	plan = ChooseJoinBuildSide(big, small, q, q)
	if plan.BuildLeft {
		t.Error("should build on the smaller (right) input")
	}
}

func TestJoinRegret(t *testing.T) {
	q := geom.MustRect([]float64{0, 0}, []float64{50, 50})
	// Perfect estimates: regret 1.
	exactSmall := table(funcEst(func(geom.Rect) float64 { return 100 }))
	exactBig := table(funcEst(func(geom.Rect) float64 { return 10000 }))
	if r := JoinRegret(exactSmall, exactBig, q, q, 100, 10000); math.Abs(r-1) > 1e-9 {
		t.Errorf("perfect join regret = %g", r)
	}
	// Swapped estimates: the wrong build side costs more.
	liarSmall := table(funcEst(func(geom.Rect) float64 { return 10000 }))
	liarBig := table(funcEst(func(geom.Rect) float64 { return 100 }))
	if r := JoinRegret(liarSmall, liarBig, q, q, 100, 10000); r <= 1 {
		t.Errorf("lying join regret = %g, want > 1", r)
	}
}

func TestStringRendering(t *testing.T) {
	p := ScanPlan{Path: IndexScan, IndexDim: 2, EstRows: 10, EstCost: 90}
	if p.String() == "" || SeqScan.String() != "SeqScan" || IndexScan.String() != "IndexScan" {
		t.Error("plan rendering broken")
	}
}
