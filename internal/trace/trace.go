// Package trace is the stdlib-only distributed tracing layer: spans with
// trace/span IDs and parent links, W3C traceparent propagation between
// sthload, sthproxy and sthistd, head sampling plus tail retention (slow and
// error traces are always kept), and a per-process fixed-ring span buffer
// scraped by GET /debug/trace/spans.
//
// The design follows the repo's telemetry idiom: a nil *Tracer and a nil
// *Span are fully functional no-ops, so call sites never branch on whether
// tracing is enabled; instruments are wired once and the disabled path costs
// a nil check.
//
// Retention model: every span belongs to the process-local subtree rooted at
// the span StartRoot or StartRemote created. Children buffer their finished
// SpanData in that root's local trace; when the root ends, the whole subtree
// is flushed at once — to the tail ring when any span errored or ran at or
// above the slow threshold (kept regardless of sampling, so error and slow
// traces survive head-sample churn), else to the sampled ring when the trace
// was head-sampled, else dropped. A child that ends after its root has
// flushed is dropped silently (hedge losers racing a finished request).
package trace

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Defaults for Options fields left zero.
const (
	// DefaultCapacity is the per-ring span retention.
	DefaultCapacity = 4096
	// DefaultSlowThreshold matches telemetry.DefaultSlowThreshold: spans at or
	// above it force tail retention of their trace.
	DefaultSlowThreshold = 50 * time.Millisecond
)

// Options configures New.
type Options struct {
	// Service names this process in every span it records ("sthistd:addr",
	// "sthproxy", "sthload").
	Service string
	// SampleRate is the head-sampling probability in [0, 1] for traces this
	// process originates. Propagated contexts carry their caller's decision.
	SampleRate float64
	// SlowThreshold forces tail retention of any trace containing a span at
	// or above this duration. Zero uses DefaultSlowThreshold; negative
	// disables slow retention.
	SlowThreshold time.Duration
	// Capacity is the span count each ring (sampled, tail) retains. Zero uses
	// DefaultCapacity.
	Capacity int
	// Seed makes ID generation and sampling reproducible in tests. Zero seeds
	// from the clock.
	Seed int64
}

// Attr is one span attribute. Short JSON keys keep scrapes compact.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A is shorthand for one attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// SpanData is the immutable, JSON-ready form of a finished span.
type SpanData struct {
	TraceID    string    `json:"trace_id"`
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Service    string    `json:"service"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"ns"`
	Attrs      []Attr    `json:"attrs,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// Tracer records spans for one process. Build with New; nil disables
// everything.
type Tracer struct {
	service string
	sample  float64
	slow    time.Duration

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu

	sampled *ring // head-sampled traces
	tail    *ring // error/slow traces, kept regardless of sampling
}

// New returns a tracer. The zero SampleRate records no head-sampled traces
// but still propagates IDs and retains error/slow traces.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.SlowThreshold == 0 {
		opts.SlowThreshold = DefaultSlowThreshold
	}
	if opts.SlowThreshold < 0 {
		opts.SlowThreshold = 0 // disables slow retention (checks > 0)
	}
	if opts.SampleRate < 0 {
		opts.SampleRate = 0
	}
	if opts.SampleRate > 1 {
		opts.SampleRate = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Tracer{
		service: opts.Service,
		sample:  opts.SampleRate,
		slow:    opts.SlowThreshold,
		rng:     rand.New(rand.NewSource(seed)),
		sampled: newRing(opts.Capacity),
		tail:    newRing(opts.Capacity),
	}
}

// SlowThreshold returns the tail-retention latency bar (0 when disabled or
// on a nil tracer).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// Service returns the configured service name ("" on nil).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// NewContext mints a fresh trace context with a head-sampling decision —
// what a client (loadgen) injects when it originates a request without
// recording local spans.
func (t *Tracer) NewContext() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sc SpanContext
	for sc.TraceID.IsZero() {
		fillID(t.rng, sc.TraceID[:])
	}
	for sc.SpanID.IsZero() {
		fillID(t.rng, sc.SpanID[:])
	}
	sc.Sampled = t.sample > 0 && t.rng.Float64() < t.sample
	return sc
}

// newSpanID mints a span ID.
func (t *Tracer) newSpanID() SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var id SpanID
	for id.IsZero() {
		fillID(t.rng, id[:])
	}
	return id
}

// fillID fills b with pseudo-random bytes. Caller holds t.mu.
func fillID(rng *rand.Rand, b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := rng.Uint64()
		for j := i; j < i+8 && j < len(b); j++ {
			b[j] = byte(v)
			v >>= 8
		}
	}
}

// StartRoot begins a new local trace with a fresh trace ID and this
// process's head-sampling decision.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.startLocal(t.NewContext(), SpanID{}, name)
}

// StartRemote continues the trace described by a propagated context (the
// parsed traceparent): the new span keeps the caller's trace ID and sampling
// decision and is parented under the caller's span. An invalid context
// (absent or malformed header) degrades to StartRoot.
func (t *Tracer) StartRemote(sc SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		return t.StartRoot(name)
	}
	local := SpanContext{TraceID: sc.TraceID, SpanID: t.newSpanID(), Sampled: sc.Sampled}
	return t.startLocal(local, sc.SpanID, name)
}

// startLocal builds the root span of a process-local subtree.
func (t *Tracer) startLocal(sc SpanContext, parent SpanID, name string) *Span {
	s := &Span{
		tracer: t,
		sc:     sc,
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	s.lt = &localTrace{root: s}
	return s
}

// localTrace buffers the finished spans of one process-local subtree until
// its root ends and the retention decision is made.
type localTrace struct {
	root *Span // immutable

	mu      sync.Mutex
	spans   []SpanData // guarded by mu
	keep    bool       // any error or slow span seen; guarded by mu
	flushed bool       // root ended, late spans are dropped; guarded by mu
}

// record adds one finished span; for the root span it also flushes the
// subtree to the retention rings.
func (lt *localTrace) record(t *Tracer, sd SpanData, isRoot bool) {
	slow := t.slow > 0 && time.Duration(sd.DurationNs) >= t.slow
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.flushed {
		return // late child (hedge loser after the request finished): dropped
	}
	lt.spans = append(lt.spans, sd)
	if sd.Error != "" || slow {
		lt.keep = true
	}
	if !isRoot {
		return
	}
	lt.flushed = true
	switch {
	case lt.keep:
		t.tail.add(lt.spans)
	case lt.root.sc.Sampled:
		t.sampled.add(lt.spans)
	}
	lt.spans = nil
}

// Span is one in-flight operation. Nil spans are no-ops, so unsampled and
// untraced paths need no branches at call sites.
type Span struct {
	tracer *Tracer
	lt     *localTrace
	sc     SpanContext // immutable
	parent SpanID      // immutable
	name   string      // immutable
	start  time.Time   // immutable

	mu     sync.Mutex
	attrs  []Attr // guarded by mu
	errMsg string // guarded by mu
	ended  bool   // guarded by mu
}

// Context returns the span's propagation context (inject it as traceparent
// for downstream calls). Zero on nil.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the 32-hex trace ID ("" on nil) — what X-Sthist-Trace-Id
// carries.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// SetAttr attaches one key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetError marks the span failed, which forces tail retention of its trace.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	if msg == "" {
		msg = "error"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errMsg = msg
}

// StartChild begins a sub-span sharing this span's trace and local subtree.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		tracer: s.tracer,
		lt:     s.lt,
		sc:     SpanContext{TraceID: s.sc.TraceID, SpanID: s.tracer.newSpanID(), Sampled: s.sc.Sampled},
		parent: s.sc.SpanID,
		name:   name,
		start:  time.Now(),
	}
	if len(attrs) > 0 {
		c.mu.Lock()
		c.attrs = append(c.attrs, attrs...)
		c.mu.Unlock()
	}
	return c
}

// Event records an already-completed child span from measured timings — the
// post-hoc form used by the writer goroutine, which learns stage durations
// (WAL append, fsync) only after the batched call returns. errMsg "" means
// success.
func (s *Span) Event(name string, start time.Time, d time.Duration, errMsg string, attrs ...Attr) {
	if s == nil {
		return
	}
	sd := SpanData{
		TraceID:    s.sc.TraceID.String(),
		SpanID:     s.tracer.newSpanID().String(),
		ParentID:   s.sc.SpanID.String(),
		Name:       name,
		Service:    s.tracer.service,
		Start:      start,
		DurationNs: int64(d),
		Error:      errMsg,
	}
	if len(attrs) > 0 {
		sd.Attrs = append([]Attr(nil), attrs...)
	}
	s.lt.record(s.tracer, sd, false)
}

// End finishes the span. The root span's End flushes the local subtree to
// the retention rings; a second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		TraceID:    s.sc.TraceID.String(),
		SpanID:     s.sc.SpanID.String(),
		Name:       s.name,
		Service:    s.tracer.service,
		Start:      s.start,
		DurationNs: int64(d),
		Attrs:      s.attrs,
		Error:      s.errMsg,
	}
	s.attrs = nil
	s.mu.Unlock()
	if !s.parent.IsZero() {
		sd.ParentID = s.parent.String()
	}
	s.lt.record(s.tracer, sd, s == s.lt.root)
}

// ring is a fixed-capacity span buffer: writers overwrite the oldest slot,
// readers snapshot under the same lock.
type ring struct {
	mu   sync.Mutex
	buf  []SpanData // guarded by mu
	next uint64     // total spans ever written; guarded by mu
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]SpanData, capacity)}
}

func (r *ring) add(spans []SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sd := range spans {
		r.buf[r.next%uint64(len(r.buf))] = sd
		r.next++
	}
}

// scan appends every retained span matching keep (nil keeps all) to out.
func (r *ring) scan(out []SpanData, keep func(*SpanData) bool) []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if n > uint64(len(r.buf)) {
		n = uint64(len(r.buf))
	}
	for i := uint64(0); i < n; i++ {
		sd := &r.buf[i]
		if keep == nil || keep(sd) {
			out = append(out, *sd)
		}
	}
	return out
}

// Spans returns every retained span of the given trace ID (32-hex), oldest
// first. Duplicate span IDs (a trace retained in both rings across
// re-records) are deduplicated.
func (t *Tracer) Spans(traceID string) []SpanData {
	if t == nil {
		return nil
	}
	match := func(sd *SpanData) bool { return sd.TraceID == traceID }
	out := t.tail.scan(nil, match)
	out = t.sampled.scan(out, match)
	return dedupeSorted(out)
}

// Recent returns the most recent n retained spans across both rings, oldest
// first. n <= 0 returns everything retained.
func (t *Tracer) Recent(n int) []SpanData {
	if t == nil {
		return nil
	}
	out := t.tail.scan(nil, nil)
	out = t.sampled.scan(out, nil)
	out = dedupeSorted(out)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// dedupeSorted sorts spans by start time (stable, then span ID for
// determinism) and drops duplicate span IDs.
func dedupeSorted(spans []SpanData) []SpanData {
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	seen := make(map[string]bool, len(spans))
	out := spans[:0]
	for _, sd := range spans {
		if sd.SpanID != "" && seen[sd.SpanID] {
			continue
		}
		seen[sd.SpanID] = true
		out = append(out, sd)
	}
	return out
}

// Merge combines span groups scraped from multiple processes into one
// deduplicated timeline, oldest first — the cross-process assembly sthproxy
// performs when it fans /debug/trace/spans?trace= out to its targets.
func Merge(groups ...[]SpanData) []SpanData {
	var out []SpanData
	for _, g := range groups {
		out = append(out, g...)
	}
	return dedupeSorted(out)
}

// ctxKey is the context key for the active span.
type ctxKey struct{}

// ContextWithSpan attaches the span to the request context so inner layers
// (handlers, the exemplar hook) can reach it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
