package trace

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Options{Service: "test", SampleRate: 1, Seed: 42})
	sc := tr.NewContext()
	if !sc.Valid() {
		t.Fatalf("NewContext returned invalid context: %+v", sc)
	}
	if !sc.Sampled {
		t.Fatalf("SampleRate 1 must sample every context")
	}
	h := sc.Traceparent()
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got != sc {
		t.Fatalf("round trip mismatch: sent %+v got %+v", sc, got)
	}
	// Unsampled contexts round-trip the flag too.
	unsampled := SpanContext{TraceID: sc.TraceID, SpanID: sc.SpanID, Sampled: false}
	got, err = ParseTraceparent(unsampled.Traceparent())
	if err != nil {
		t.Fatalf("unsampled round trip: %v", err)
	}
	if got.Sampled {
		t.Fatalf("flags 00 parsed as sampled")
	}
}

func TestTraceparentHeaderShape(t *testing.T) {
	sc := SpanContext{Sampled: true}
	sc.TraceID[0], sc.TraceID[15] = 0x0a, 0xff
	sc.SpanID[7] = 0x01
	got := sc.Traceparent()
	want := "00-0a0000000000000000000000000000ff-0000000000000001-01"
	if got != want {
		t.Fatalf("Traceparent() = %q, want %q", got, want)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	// A future version with a trailing field must still parse.
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	if _, err := ParseTraceparent(future); err != nil {
		t.Fatalf("future-version header rejected: %v", err)
	}
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",          // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // version 00 takes exactly 4 fields
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // reserved version
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",        // short version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",       // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",        // short trace-id
		"00-4bf92f3577b34da6a3ce929d0e0e47366-00f067aa0ba902b7-01",      // long trace-id
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // zero trace-id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // zero parent-id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902g7-01",       // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",       // bad flags
	}
	for _, h := range bad {
		if sc, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed header: %+v", h, sc)
		}
	}
}

func TestValidTraceIDString(t *testing.T) {
	if !ValidTraceIDString("4bf92f3577b34da6a3ce929d0e0e4736") {
		t.Fatalf("valid trace ID rejected")
	}
	for _, s := range []string{"", "zz", strings.Repeat("0", 32), strings.Repeat("A", 32), strings.Repeat("a", 31)} {
		if ValidTraceIDString(s) {
			t.Errorf("ValidTraceIDString(%q) = true", s)
		}
	}
}

// FuzzParseTraceparent asserts parse never panics and that every accepted
// header re-renders to a header that parses to the same context (inject ->
// extract is a fixed point after one round).
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-tail")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("")
	f.Add("00---")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add(strings.Repeat("-", 60))
	f.Add("\x00\xff-byte salad")
	f.Fuzz(func(t *testing.T, h string) {
		sc, err := ParseTraceparent(h)
		if err != nil {
			return
		}
		if !sc.Valid() {
			t.Fatalf("accepted header %q produced invalid context %+v", h, sc)
		}
		again, err := ParseTraceparent(sc.Traceparent())
		if err != nil {
			t.Fatalf("re-rendered header %q rejected: %v", sc.Traceparent(), err)
		}
		if again != sc {
			t.Fatalf("re-parse mismatch: %+v vs %+v", sc, again)
		}
	})
}
