package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Service() != "" || tr.Spans("x") != nil || tr.Recent(5) != nil {
		t.Fatalf("nil tracer leaked state")
	}
	if sc := tr.NewContext(); sc.Valid() {
		t.Fatalf("nil tracer minted a context")
	}
	sp := tr.StartRoot("root")
	if sp != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	// Every span method must be callable on nil.
	sp.SetAttr("k", "v")
	sp.SetError("boom")
	sp.Event("e", time.Now(), time.Millisecond, "")
	child := sp.StartChild("child")
	if child != nil {
		t.Fatalf("nil span returned non-nil child")
	}
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span trace ID %q", got)
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatalf("nil span stored in context")
	}
}

func TestSampledTraceRetained(t *testing.T) {
	tr := New(Options{Service: "svc", SampleRate: 1, Seed: 1})
	root := tr.StartRoot("root")
	child := root.StartChild("child", A("k", "v"))
	child.End()
	root.Event("posthoc", time.Now(), 3*time.Millisecond, "", A("stage", "wal"))
	root.End()

	spans := tr.Spans(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3: %+v", len(spans), spans)
	}
	byName := map[string]SpanData{}
	for _, sd := range spans {
		byName[sd.Name] = sd
		if sd.TraceID != root.TraceID() {
			t.Fatalf("span %q has trace %q, want %q", sd.Name, sd.TraceID, root.TraceID())
		}
		if sd.Service != "svc" {
			t.Fatalf("span %q service %q", sd.Name, sd.Service)
		}
	}
	rootID := byName["root"].SpanID
	if byName["child"].ParentID != rootID || byName["posthoc"].ParentID != rootID {
		t.Fatalf("children not parented under root: %+v", byName)
	}
	if byName["root"].ParentID != "" {
		t.Fatalf("local root has parent %q", byName["root"].ParentID)
	}
	if len(byName["child"].Attrs) != 1 || byName["child"].Attrs[0] != A("k", "v") {
		t.Fatalf("child attrs %+v", byName["child"].Attrs)
	}
	if byName["posthoc"].DurationNs != int64(3*time.Millisecond) {
		t.Fatalf("posthoc duration %d", byName["posthoc"].DurationNs)
	}
}

func TestUnsampledTraceDropped(t *testing.T) {
	tr := New(Options{Service: "svc", SampleRate: 0, Seed: 1})
	root := tr.StartRoot("root")
	root.StartChild("child").End()
	root.End()
	if spans := tr.Spans(root.TraceID()); len(spans) != 0 {
		t.Fatalf("unsampled clean trace retained: %+v", spans)
	}
}

func TestErrorTraceAlwaysKept(t *testing.T) {
	tr := New(Options{Service: "svc", SampleRate: 0, Seed: 1})
	root := tr.StartRoot("root")
	c := root.StartChild("attempt")
	c.SetError("connection refused")
	c.End()
	root.End()
	spans := tr.Spans(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("error trace not tail-retained: %+v", spans)
	}
	var found bool
	for _, sd := range spans {
		if sd.Name == "attempt" && sd.Error == "connection refused" {
			found = true
		}
	}
	if !found {
		t.Fatalf("error message lost: %+v", spans)
	}
}

func TestSlowTraceAlwaysKept(t *testing.T) {
	tr := New(Options{Service: "svc", SampleRate: 0, SlowThreshold: time.Millisecond, Seed: 1})
	root := tr.StartRoot("root")
	root.Event("slow-stage", time.Now(), 5*time.Millisecond, "")
	root.End()
	if spans := tr.Spans(root.TraceID()); len(spans) != 2 {
		t.Fatalf("slow trace not tail-retained: %+v", spans)
	}
}

func TestRemoteContinuationKeepsTraceAndSampling(t *testing.T) {
	client := New(Options{Service: "client", SampleRate: 1, Seed: 7})
	sc := client.NewContext()

	server := New(Options{Service: "server", SampleRate: 0, Seed: 8})
	parsed, err := ParseTraceparent(sc.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	sp := server.StartRemote(parsed, "node./estimate")
	if sp.TraceID() != sc.TraceID.String() {
		t.Fatalf("remote span trace %q, want %q", sp.TraceID(), sc.TraceID)
	}
	sp.End()
	// The upstream sampling decision overrides the server's 0 rate.
	spans := server.Spans(sc.TraceID.String())
	if len(spans) != 1 {
		t.Fatalf("propagated sampled trace dropped: %+v", spans)
	}
	if spans[0].ParentID != sc.SpanID.String() {
		t.Fatalf("remote span parent %q, want caller span %q", spans[0].ParentID, sc.SpanID)
	}

	// Invalid context degrades to a fresh root.
	orphan := server.StartRemote(SpanContext{}, "node./estimate")
	if orphan == nil || orphan.TraceID() == sc.TraceID.String() {
		t.Fatalf("invalid context did not mint a fresh trace")
	}
	orphan.End()
}

func TestLateChildAfterRootFlushIsDropped(t *testing.T) {
	tr := New(Options{Service: "svc", SampleRate: 1, Seed: 3})
	root := tr.StartRoot("root")
	loser := root.StartChild("hedge-loser")
	root.End()
	loser.End() // races in after the response went out
	for _, sd := range tr.Spans(root.TraceID()) {
		if sd.Name == "hedge-loser" {
			t.Fatalf("late child retained after flush")
		}
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := New(Options{Service: "svc", SampleRate: 1, Seed: 3})
	root := tr.StartRoot("root")
	c := root.StartChild("c")
	c.End()
	c.End()
	root.End()
	if spans := tr.Spans(root.TraceID()); len(spans) != 2 {
		t.Fatalf("double End duplicated span: %+v", spans)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Options{Service: "svc", SampleRate: 1, Capacity: 8, Seed: 5})
	var ids []string
	for i := 0; i < 16; i++ {
		sp := tr.StartRoot(fmt.Sprintf("r%d", i))
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	if got := tr.Spans(ids[0]); len(got) != 0 {
		t.Fatalf("oldest trace survived eviction")
	}
	if got := tr.Spans(ids[15]); len(got) != 1 {
		t.Fatalf("newest trace evicted")
	}
	if got := tr.Recent(4); len(got) != 4 {
		t.Fatalf("Recent(4) returned %d spans", len(got))
	}
}

func TestErrorTracesSurviveSampledChurn(t *testing.T) {
	tr := New(Options{Service: "svc", SampleRate: 1, Capacity: 8, Seed: 5})
	bad := tr.StartRoot("failed-request")
	bad.SetError("boom")
	bad.End()
	// A flood of healthy sampled traces must not evict the error trace.
	for i := 0; i < 100; i++ {
		sp := tr.StartRoot("ok")
		sp.End()
	}
	if got := tr.Spans(bad.TraceID()); len(got) != 1 {
		t.Fatalf("error trace evicted by sampled churn: %+v", got)
	}
}

// TestConcurrentRecordAndScrape hammers record and scrape paths together;
// run with -race this is the ring's data-race gate.
func TestConcurrentRecordAndScrape(t *testing.T) {
	tr := New(Options{Service: "svc", SampleRate: 1, Capacity: 64, Seed: 9})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				root := tr.StartRoot("root")
				c := root.StartChild("child", A("w", fmt.Sprint(w)))
				if i%7 == 0 {
					c.SetError("synthetic")
				}
				c.End()
				root.Event("stage", time.Now(), time.Microsecond, "")
				root.End()
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sd := range tr.Recent(32) {
					_ = tr.Spans(sd.TraceID)
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if len(tr.Recent(0)) == 0 {
		t.Fatalf("hammer retained nothing")
	}
}

func TestWALTapChainsAndTakes(t *testing.T) {
	var got []string
	next := &recordingObserver{log: &got}
	tap := &WALTap{Next: next}
	tap.ObserveAppend(2*time.Millisecond, nil)
	tap.ObserveSync(time.Millisecond, errors.New("sync fail"))
	tap.ObserveCheckpoint(time.Second, nil)

	tm := tap.Take()
	if !tm.HasAppend || tm.Append != 2*time.Millisecond || tm.AppendErr != nil {
		t.Fatalf("append timing %+v", tm)
	}
	if !tm.HasSync || tm.Sync != time.Millisecond || tm.SyncErr == nil {
		t.Fatalf("sync timing %+v", tm)
	}
	if again := tap.Take(); again.HasAppend || again.HasSync {
		t.Fatalf("Take did not reset: %+v", again)
	}
	want := []string{"append", "sync", "checkpoint"}
	if len(got) != len(want) {
		t.Fatalf("chained observer saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chained observer saw %v, want %v", got, want)
		}
	}
}

type recordingObserver struct{ log *[]string }

func (r *recordingObserver) ObserveAppend(time.Duration, error) { *r.log = append(*r.log, "append") }
func (r *recordingObserver) ObserveSync(time.Duration, error)   { *r.log = append(*r.log, "sync") }
func (r *recordingObserver) ObserveCheckpoint(time.Duration, error) {
	*r.log = append(*r.log, "checkpoint")
}
