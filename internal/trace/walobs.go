package trace

import (
	"sync"
	"time"
)

// WALObserver mirrors wal.Observer structurally (this package must not
// import internal/wal — the dependency points the other way at wiring time).
type WALObserver interface {
	ObserveAppend(d time.Duration, err error)
	ObserveSync(d time.Duration, err error)
	ObserveCheckpoint(d time.Duration, err error)
}

// WALTimings is one batch's durability timing as seen by a WALTap: the
// append (framing + write) and the fsync that followed it, if any.
type WALTimings struct {
	Append    time.Duration
	AppendErr error
	HasAppend bool
	Sync      time.Duration
	SyncErr   error
	HasSync   bool
}

// WALTap satisfies wal.Observer and remembers the latest append/fsync
// timings so the writer goroutine can convert them into spans right after
// wal.AppendBatch returns (the Observer callbacks run synchronously inside
// that call). Next, when non-nil, receives every callback unchanged — the
// tap chains in front of telemetry.WALMetrics without displacing it.
type WALTap struct {
	Next WALObserver // immutable after construction

	mu sync.Mutex
	t  WALTimings // guarded by mu
}

// ObserveAppend implements wal.Observer.
func (w *WALTap) ObserveAppend(d time.Duration, err error) {
	w.mu.Lock()
	w.t.Append, w.t.AppendErr, w.t.HasAppend = d, err, true
	w.mu.Unlock()
	if w.Next != nil {
		w.Next.ObserveAppend(d, err)
	}
}

// ObserveSync implements wal.Observer.
func (w *WALTap) ObserveSync(d time.Duration, err error) {
	w.mu.Lock()
	w.t.Sync, w.t.SyncErr, w.t.HasSync = d, err, true
	w.mu.Unlock()
	if w.Next != nil {
		w.Next.ObserveSync(d, err)
	}
}

// ObserveCheckpoint implements wal.Observer; checkpoints are not traced per
// request, so the tap only forwards.
func (w *WALTap) ObserveCheckpoint(d time.Duration, err error) {
	if w.Next != nil {
		w.Next.ObserveCheckpoint(d, err)
	}
}

// Take returns the timings recorded since the last Take and resets them.
func (w *WALTap) Take() WALTimings {
	w.mu.Lock()
	defer w.mu.Unlock()
	t := w.t
	w.t = WALTimings{}
	return t
}
