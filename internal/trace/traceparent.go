// W3C Trace Context propagation: the traceparent header ties one logical
// request together across sthload, sthproxy and sthistd processes. Only the
// header's version-00 form is emitted; parsing additionally tolerates
// higher versions with trailing fields, as the spec requires of forwards.
package trace

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
)

// TraceparentHeader is the canonical header name (HTTP headers are
// case-insensitive; the spec spells it lowercase).
const TraceparentHeader = "traceparent"

// TraceIDHeader is the response header every traced server stamps, so a
// client that never set a traceparent can still quote the ID when reporting
// a slow or failed request.
const TraceIDHeader = "X-Sthist-Trace-Id"

// TraceID identifies one end-to-end request across processes.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// String returns the 32-digit lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-digit lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports the invalid all-zeros ID (the spec forbids emitting it).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the invalid all-zeros ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext is the propagated slice of a span: enough to parent a remote
// child and to carry the head-sampling decision downstream.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the version-00 header value.
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// Inject stamps sc onto req as the traceparent header. Invalid contexts and
// nil requests are no-ops, so the call is safe to place unconditionally —
// including on the line after http.NewRequestWithContext, before the error
// check (the sthlint ctxflow autofix relies on exactly that).
func Inject(sc SpanContext, req *http.Request) {
	if req == nil || !sc.Valid() {
		return
	}
	req.Header.Set(TraceparentHeader, sc.Traceparent())
}

// InjectContext stamps the span carried by ctx (if any) onto req. With no
// span in ctx it is a no-op, so untraced callers can share traced helpers.
func InjectContext(ctx context.Context, req *http.Request) {
	if ctx == nil {
		return
	}
	Inject(FromContext(ctx).Context(), req)
}

// ParseTraceparent parses a traceparent header value. The zero SpanContext
// and an error come back for anything malformed: wrong field count, bad
// lengths, uppercase or non-hex digits, all-zero IDs, or the reserved
// version ff. Unknown future versions parse as long as their first four
// fields have the version-00 shape (per the W3C forward-compatibility rule).
func ParseTraceparent(h string) (SpanContext, error) {
	if h == "" {
		return SpanContext{}, fmt.Errorf("trace: empty traceparent")
	}
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return SpanContext{}, fmt.Errorf("trace: traceparent has %d fields, need 4", len(parts))
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if !isLowerHex(version, 2) {
		return SpanContext{}, fmt.Errorf("trace: bad traceparent version %q", version)
	}
	if version == "ff" {
		return SpanContext{}, fmt.Errorf("trace: reserved traceparent version ff")
	}
	if version == "00" && len(parts) != 4 {
		return SpanContext{}, fmt.Errorf("trace: version 00 traceparent has %d fields, need exactly 4", len(parts))
	}
	if !isLowerHex(traceID, 32) {
		return SpanContext{}, fmt.Errorf("trace: bad trace-id %q", traceID)
	}
	if !isLowerHex(spanID, 16) {
		return SpanContext{}, fmt.Errorf("trace: bad parent-id %q", spanID)
	}
	if !isLowerHex(flags, 2) {
		return SpanContext{}, fmt.Errorf("trace: bad trace-flags %q", flags)
	}
	var sc SpanContext
	_, _ = hex.Decode(sc.TraceID[:], []byte(traceID)) // validated above
	_, _ = hex.Decode(sc.SpanID[:], []byte(spanID))
	if sc.TraceID.IsZero() {
		return SpanContext{}, fmt.Errorf("trace: all-zero trace-id")
	}
	if sc.SpanID.IsZero() {
		return SpanContext{}, fmt.Errorf("trace: all-zero parent-id")
	}
	var fb [1]byte
	_, _ = hex.Decode(fb[:], []byte(flags))
	sc.Sampled = fb[0]&0x01 != 0
	return sc, nil
}

// ValidTraceIDString reports whether s is a well-formed (lowercase hex,
// non-zero) trace ID — the validation the /debug/trace/spans endpoints apply
// to their ?trace= parameter before scanning any ring.
func ValidTraceIDString(s string) bool {
	if !isLowerHex(s, 32) {
		return false
	}
	return strings.Trim(s, "0") != ""
}

// isLowerHex reports whether s is exactly n lowercase hex digits.
func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
