// Package genhist implements a GENHIST-style static histogram (Gunopulos,
// Kollios, Tsotras, Domeniconi — SIGMOD 2000, reference [8] of the paper):
// dense regions are carved out iteratively on progressively coarser grids.
// At each iteration the remaining points are bucketed on a regular grid,
// cells clearly denser than average become histogram buckets and their
// points are removed, then the grid coarsens; whatever remains ends up in a
// catch-all bucket spanning the domain. Because points are removed as
// buckets are created, bucket frequencies are disjoint even where boxes
// overlap, and estimation just sums per-bucket uniform contributions.
package genhist

import (
	"fmt"
	"sort"

	"sthist/internal/dataset"
	"sthist/internal/geom"
)

// Config tunes construction.
type Config struct {
	// MaxBuckets caps the bucket count, including the catch-all (default
	// 100).
	MaxBuckets int
	// InitialXi is the starting grid resolution per dimension (default 16).
	InitialXi int
	// XiDecay multiplies the resolution between iterations (default 0.5,
	// i.e. each iteration halves it) until it reaches 2.
	XiDecay float64
	// DensityFactor: a cell is carved out when its count exceeds this
	// multiple of the current average occupied-cell count (default 2).
	DensityFactor float64
}

// DefaultConfig returns the defaults above.
func DefaultConfig() Config {
	return Config{MaxBuckets: 100, InitialXi: 16, XiDecay: 0.5, DensityFactor: 2}
}

// Histogram is a built GENHIST synopsis.
type Histogram struct {
	domain  geom.Rect
	buckets []bucket
}

type bucket struct {
	box   geom.Rect
	count float64
}

// Build scans the table and constructs the histogram.
func Build(tab *dataset.Table, domain geom.Rect, cfg Config) (*Histogram, error) {
	if cfg.MaxBuckets < 1 {
		return nil, fmt.Errorf("genhist: maxBuckets must be >= 1")
	}
	if cfg.InitialXi < 2 {
		return nil, fmt.Errorf("genhist: initial xi must be >= 2")
	}
	if cfg.XiDecay <= 0 || cfg.XiDecay >= 1 {
		return nil, fmt.Errorf("genhist: xi decay must be in (0,1)")
	}
	if cfg.DensityFactor <= 0 {
		return nil, fmt.Errorf("genhist: density factor must be positive")
	}
	if tab.Len() == 0 {
		return nil, fmt.Errorf("genhist: empty table")
	}
	if tab.Dims() != domain.Dims() {
		return nil, fmt.Errorf("genhist: table dims %d != domain dims %d", tab.Dims(), domain.Dims())
	}
	dims := domain.Dims()
	h := &Histogram{domain: domain.Clone()}

	remaining := make([]int, tab.Len())
	for i := range remaining {
		remaining[i] = i
	}
	row := make([]float64, dims)
	for xi := cfg.InitialXi; xi >= 2 && len(remaining) > 0 && len(h.buckets) < cfg.MaxBuckets-1; xi = int(float64(xi) * cfg.XiDecay) {
		// Count remaining points per occupied cell.
		cells := make(map[string][]int)
		key := make([]byte, 2*dims)
		for _, r := range remaining {
			tab.Row(r, row)
			for d := 0; d < dims; d++ {
				c := 0
				if side := domain.Side(d); side > 0 {
					c = int(float64(xi) * (row[d] - domain.Lo[d]) / side)
				}
				if c < 0 {
					c = 0
				}
				if c >= xi {
					c = xi - 1
				}
				key[2*d] = byte(c >> 8)
				key[2*d+1] = byte(c)
			}
			cells[string(key)] = append(cells[string(key)], r)
		}
		avg := float64(len(remaining)) / float64(len(cells))
		// Deterministic order: densest cells first, ties by key.
		keys := make([]string, 0, len(cells))
		for k := range cells {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if len(cells[keys[i]]) != len(cells[keys[j]]) {
				return len(cells[keys[i]]) > len(cells[keys[j]])
			}
			return keys[i] < keys[j]
		})
		removed := make(map[int]bool)
		for _, k := range keys {
			rows := cells[k]
			if float64(len(rows)) < cfg.DensityFactor*avg {
				break // keys are sorted by density
			}
			if len(h.buckets) >= cfg.MaxBuckets-1 {
				break
			}
			box := cellBox(k, domain, xi)
			h.buckets = append(h.buckets, bucket{box: box, count: float64(len(rows))})
			for _, r := range rows {
				removed[r] = true
			}
		}
		if len(removed) > 0 {
			kept := remaining[:0]
			for _, r := range remaining {
				if !removed[r] {
					kept = append(kept, r)
				}
			}
			remaining = kept
		}
	}
	// Catch-all for the residue.
	h.buckets = append(h.buckets, bucket{box: domain.Clone(), count: float64(len(remaining))})
	return h, nil
}

// cellBox decodes a cell key back to its rectangle.
func cellBox(key string, domain geom.Rect, xi int) geom.Rect {
	dims := domain.Dims()
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		c := int(key[2*d])<<8 | int(key[2*d+1])
		w := domain.Side(d) / float64(xi)
		lo[d] = domain.Lo[d] + float64(c)*w
		hi[d] = lo[d] + w
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// Buckets returns the bucket count (including the catch-all).
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Total returns the captured tuple count.
func (h *Histogram) Total() float64 {
	s := 0.0
	for _, b := range h.buckets {
		s += b.count
	}
	return s
}

// Estimate sums per-bucket uniform contributions.
func (h *Histogram) Estimate(q geom.Rect) float64 {
	if q.Dims() != h.domain.Dims() {
		return 0
	}
	est := 0.0
	for i := range h.buckets {
		b := &h.buckets[i]
		vol := b.box.Volume()
		if vol <= 0 {
			if q.Contains(b.box) {
				est += b.count
			}
			continue
		}
		est += b.count * b.box.IntersectionVolume(q) / vol
	}
	return est
}
