package genhist

import (
	"math"
	"math/rand"
	"testing"

	"sthist/internal/datagen"
	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/index"
)

func TestBuildValidation(t *testing.T) {
	tab := dataset.MustNew("x", "y")
	dom := geom.MustRect([]float64{0, 0}, []float64{10, 10})
	if _, err := Build(tab, dom, DefaultConfig()); err == nil {
		t.Error("empty table accepted")
	}
	tab.MustAppend([]float64{1, 1})
	bad := []Config{
		{MaxBuckets: 0, InitialXi: 8, XiDecay: 0.5, DensityFactor: 2},
		{MaxBuckets: 10, InitialXi: 1, XiDecay: 0.5, DensityFactor: 2},
		{MaxBuckets: 10, InitialXi: 8, XiDecay: 1, DensityFactor: 2},
		{MaxBuckets: 10, InitialXi: 8, XiDecay: 0.5, DensityFactor: 0},
	}
	for i, cfg := range bad {
		if _, err := Build(tab, dom, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Build(tab, geom.MustRect([]float64{0}, []float64{1}), DefaultConfig()); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestBuildConservesMassAndBudget(t *testing.T) {
	ds := datagen.Cross(0.2, 1)
	cfg := DefaultConfig()
	cfg.MaxBuckets = 60
	h, err := Build(ds.Table, ds.Domain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() > 60 {
		t.Errorf("Buckets = %d exceeds budget", h.Buckets())
	}
	if math.Abs(h.Total()-float64(ds.Table.Len())) > 1e-9 {
		t.Errorf("Total = %g, want %d", h.Total(), ds.Table.Len())
	}
	if got := h.Estimate(ds.Domain); math.Abs(got-float64(ds.Table.Len())) > 1e-6*float64(ds.Table.Len()) {
		t.Errorf("domain estimate = %g", got)
	}
}

func TestBuildBeatsTrivialOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := dataset.MustNew("x", "y")
	for i := 0; i < 8000; i++ {
		tab.MustAppend([]float64{100 + rng.Float64()*150, 700 + rng.Float64()*150})
	}
	for i := 0; i < 800; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	dom := geom.MustRect([]float64{0, 0}, []float64{1000, 1000})
	h, err := Build(tab, dom, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	kt, _ := index.BuildKDTree(tab)
	total := float64(tab.Len())
	genErr, trivErr := 0.0, 0.0
	for i := 0; i < 200; i++ {
		c := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		q := geom.CubeAt(c, 120, dom)
		truth := float64(kt.Count(q))
		genErr += math.Abs(h.Estimate(q) - truth)
		trivErr += math.Abs(total*q.Volume()/dom.Volume() - truth)
	}
	if genErr > 0.5*trivErr {
		t.Errorf("GENHIST error %g not clearly below trivial %g", genErr, trivErr)
	}
}

func TestBuildSingleBucketDegenerates(t *testing.T) {
	tab := dataset.MustNew("x")
	for i := 0; i < 50; i++ {
		tab.MustAppend([]float64{float64(i)})
	}
	dom := geom.MustRect([]float64{0}, []float64{50})
	cfg := DefaultConfig()
	cfg.MaxBuckets = 1
	h, err := Build(tab, dom, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 1 {
		t.Errorf("Buckets = %d, want 1 (catch-all only)", h.Buckets())
	}
}
