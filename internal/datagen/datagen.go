// Package datagen produces the synthetic datasets of the paper's evaluation
// (§5.1) plus the synthetic stand-ins for datasets we cannot ship:
//
//   - Cross: 2-dimensional, two orthogonal one-dimensional bars crossing in
//     the middle of the domain (Fig. 9), 10,000 tuples per bar plus 2,000
//     noise tuples.
//   - CrossN: the 3/4/5-dimensional variants of Table 3 — n clusters, each
//     (n-1)-dimensional, with constant cluster density across dimensions.
//   - Gauss: 6-dimensional, Gaussian bells drawn in random k-dimensional
//     subspaces (2 <= k <= 5), 100,000 clustered + 10,000 noise tuples.
//   - SkySim: synthetic stand-in for the Sloan Digital Sky Survey dataset
//     (see DESIGN.md, Substitutions) — 7 dimensions, 20 clusters whose
//     unused-dimension signatures mirror Table 4 of the paper.
//   - ParticleSim: 18-dimensional stand-in for the tech report's particle
//     physics dataset.
//
// Every generator takes a deterministic seed and a scale factor; scale 1.0
// reproduces the paper's tuple counts, smaller scales shrink every cluster
// proportionally so the structure (and therefore the qualitative results)
// is preserved while tests stay fast.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"sthist/internal/dataset"
	"sthist/internal/geom"
)

// DomainSide is the extent of every attribute: all synthetic datasets live in
// [0, DomainSide]^d like the Cross plot in the paper (Fig. 9).
const DomainSide = 1000.0

// Domain returns the d-dimensional generation domain [0,1000]^d.
func Domain(d int) geom.Rect {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range hi {
		hi[i] = DomainSide
	}
	return geom.MustRect(lo, hi)
}

// ClusterSpec describes one generated cluster: the box that bounds it, the
// dimensions on which it is constrained (subspace dimensions; the cluster
// spans the full domain on the others), and how many tuples it received.
// Generators return these as ground truth for tests and for the Table 4
// comparison.
type ClusterSpec struct {
	Box        geom.Rect
	UsedDims   []int // dimensions the cluster is constrained on (0-based)
	UnusedDims []int // dimensions the cluster spans fully (0-based)
	Tuples     int
	Gaussian   bool // tuple placement inside the box: Gaussian vs uniform
}

// Dataset bundles a generated table with its ground truth.
type Dataset struct {
	Name     string
	Table    *dataset.Table
	Domain   geom.Rect
	Clusters []ClusterSpec
	Noise    int
}

// scaleCount scales a paper-scale tuple count, keeping at least 1 tuple for
// any positive input so no cluster disappears entirely at small scales.
func scaleCount(n int, scale float64) int {
	if n <= 0 {
		return 0
	}
	s := int(math.Round(float64(n) * scale))
	if s < 1 {
		s = 1
	}
	return s
}

// addNoise appends n uniform tuples over the domain.
func addNoise(tab *dataset.Table, dom geom.Rect, n int, rng *rand.Rand) {
	tab.Grow(n)
	tuple := make([]float64, dom.Dims())
	for i := 0; i < n; i++ {
		for d := range tuple {
			tuple[d] = dom.Lo[d] + rng.Float64()*dom.Side(d)
		}
		tab.MustAppend(tuple)
	}
}

// fillUniform appends n tuples distributed uniformly inside box, spanning the
// full domain on every dimension not in usedDims. usedDims == nil means all
// dimensions are constrained.
func fillUniform(tab *dataset.Table, dom, box geom.Rect, usedDims []int, n int, rng *rand.Rand) {
	used := make([]bool, dom.Dims())
	if usedDims == nil {
		for d := range used {
			used[d] = true
		}
	} else {
		for _, d := range usedDims {
			used[d] = true
		}
	}
	tab.Grow(n)
	tuple := make([]float64, dom.Dims())
	for i := 0; i < n; i++ {
		for d := range tuple {
			if used[d] {
				tuple[d] = box.Lo[d] + rng.Float64()*box.Side(d)
			} else {
				tuple[d] = dom.Lo[d] + rng.Float64()*dom.Side(d)
			}
		}
		tab.MustAppend(tuple)
	}
}

// fillGaussian appends n tuples from a truncated Gaussian centered in box
// (stddev = side/6, resampled until inside) on the used dimensions, uniform
// over the domain on the rest.
func fillGaussian(tab *dataset.Table, dom, box geom.Rect, usedDims []int, n int, rng *rand.Rand) {
	used := make([]bool, dom.Dims())
	if usedDims == nil {
		for d := range used {
			used[d] = true
		}
	} else {
		for _, d := range usedDims {
			used[d] = true
		}
	}
	tab.Grow(n)
	tuple := make([]float64, dom.Dims())
	for i := 0; i < n; i++ {
		for d := range tuple {
			if !used[d] {
				tuple[d] = dom.Lo[d] + rng.Float64()*dom.Side(d)
				continue
			}
			mean := (box.Lo[d] + box.Hi[d]) / 2
			sigma := box.Side(d) / 6
			v := mean + rng.NormFloat64()*sigma
			for v < box.Lo[d] || v > box.Hi[d] {
				v = mean + rng.NormFloat64()*sigma
			}
			tuple[d] = v
		}
		tab.MustAppend(tuple)
	}
}

// complement returns the 0-based dimensions of a d-dimensional space not
// present in used.
func complement(used []int, d int) []int {
	in := make([]bool, d)
	for _, u := range used {
		in[u] = true
	}
	var out []int
	for i := 0; i < d; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// Cross generates the 2-dimensional Cross dataset of Fig. 9: two bars of
// 10,000 tuples each crossing at the domain center, plus 2,000 noise tuples
// (22,000 total at scale 1).
func Cross(scale float64, seed int64) *Dataset {
	return CrossN(2, scale, seed)
}

// crossPaperPerCluster returns the per-cluster tuple count for the
// d-dimensional Cross variant at paper scale (Tables 1 and 3). The paper
// keeps cluster density constant while growing dimensionality, which makes
// the totals explode: 22,000 / 9,000 / 360,000 / 13,500,000 tuples for
// d = 2..5. Noise is sized to keep the clustered:noise ratio of the 2d
// version (10:1).
func crossPaperPerCluster(d int) (perCluster, noise int, err error) {
	switch d {
	case 2:
		return 10000, 2000, nil
	case 3:
		return 2700, 900, nil // 9,000 total
	case 4:
		return 81000, 36000, nil // 360,000 total
	case 5:
		return 2430000, 1350000, nil // 13,500,000 total
	default:
		return 0, 0, fmt.Errorf("datagen: Cross defined for 2..5 dimensions, got %d", d)
	}
}

// CrossN generates the d-dimensional Cross variant: d clusters, cluster i
// being a (d-1)-dimensional bar confined to a band of 5%% of the domain on
// dimension i and spanning the full domain elsewhere.
func CrossN(d int, scale float64, seed int64) *Dataset {
	perCluster, noise, err := crossPaperPerCluster(d)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	dom := Domain(d)
	tab := dataset.MustNew(dataset.GenericNames(d)...)
	ds := &Dataset{Name: fmt.Sprintf("Cross%dd", d), Table: tab, Domain: dom}

	const bandFrac = 0.05
	half := DomainSide * bandFrac / 2
	center := DomainSide / 2
	for i := 0; i < d; i++ {
		lo := make([]float64, d)
		hi := make([]float64, d)
		for j := 0; j < d; j++ {
			if j == i {
				lo[j], hi[j] = center-half, center+half
			} else {
				lo[j], hi[j] = 0, DomainSide
			}
		}
		box := geom.MustRect(lo, hi)
		n := scaleCount(perCluster, scale)
		fillUniform(tab, dom, box, []int{i}, n, rng)
		ds.Clusters = append(ds.Clusters, ClusterSpec{
			Box:        box,
			UsedDims:   []int{i},
			UnusedDims: complement([]int{i}, d),
			Tuples:     n,
		})
	}
	ds.Noise = scaleCount(noise, scale)
	addNoise(tab, dom, ds.Noise, rng)
	return ds
}

// Gauss generates the 6-dimensional Gauss dataset: 10 Gaussian bells, each
// drawn in a random k-dimensional subspace (2 <= k <= 5) and spanning the
// domain on the remaining dimensions; 100,000 clustered tuples plus 10,000
// noise tuples at scale 1.
func Gauss(scale float64, seed int64) *Dataset {
	const (
		dims        = 6
		numClusters = 10
		perCluster  = 10000
		noise       = 10000
	)
	rng := rand.New(rand.NewSource(seed))
	dom := Domain(dims)
	tab := dataset.MustNew(dataset.GenericNames(dims)...)
	ds := &Dataset{Name: "Gauss", Table: tab, Domain: dom}

	for c := 0; c < numClusters; c++ {
		k := 2 + rng.Intn(4) // subspace dimensionality in [2,5]
		used := rng.Perm(dims)[:k]
		lo := make([]float64, dims)
		hi := make([]float64, dims)
		for j := 0; j < dims; j++ {
			lo[j], hi[j] = 0, DomainSide
		}
		for _, j := range used {
			side := 60 + rng.Float64()*120 // bell diameter 60..180
			c0 := rng.Float64() * (DomainSide - side)
			lo[j], hi[j] = c0, c0+side
		}
		box := geom.MustRect(lo, hi)
		n := scaleCount(perCluster, scale)
		fillGaussian(tab, dom, box, used, n, rng)
		ds.Clusters = append(ds.Clusters, ClusterSpec{
			Box:        box,
			UsedDims:   append([]int(nil), used...),
			UnusedDims: complement(used, dims),
			Tuples:     n,
			Gaussian:   true,
		})
	}
	ds.Noise = scaleCount(noise, scale)
	addNoise(tab, dom, ds.Noise, rng)
	return ds
}

// skyClusterTemplate mirrors one row of Table 4 in the paper: the dimensions
// the cluster does NOT use (1-based, as printed in the paper) and its tuple
// count at paper scale.
type skyClusterTemplate struct {
	unused1Based []int
	tuples       int
}

// skyTemplates reproduces Table 4: 11 full-dimensional clusters and 9
// subspace clusters over the 7-dimensional Sky schema.
var skyTemplates = []skyClusterTemplate{
	{nil, 207377},                 // C0
	{nil, 178394},                 // C1
	{nil, 153161},                 // C2
	{nil, 121384},                 // C3
	{nil, 114699},                 // C4
	{nil, 83026},                  // C5
	{[]int{1}, 218770},            // C6
	{nil, 54760},                  // C7
	{nil, 50846},                  // C8
	{nil, 40067},                  // C9
	{[]int{1}, 98438},             // C10
	{nil, 21495},                  // C11
	{nil, 17522},                  // C12
	{[]int{1, 2}, 153311},         // C13
	{[]int{1}, 17437},             // C14
	{[]int{1, 2}, 77112},          // C15
	{[]int{1, 2}, 39799},          // C16
	{[]int{1, 2, 7}, 21913},       // C17
	{[]int{1, 2, 3, 7}, 24084},    // C18
	{[]int{1, 2, 3, 5, 6}, 19236}, // C19
}

// SkySimColumns is the schema of the synthetic Sky dataset: two sky
// coordinates followed by five filter magnitudes, like the SDSS extract the
// paper uses.
var SkySimColumns = []string{"ra", "dec", "u", "g", "r", "i", "z"}

// SkySim generates the synthetic stand-in for the paper's SDSS Sky dataset:
// 7 dimensions, 20 clusters whose subspace signatures and relative sizes
// follow Table 4 (≈1.71M tuples at scale 1) plus 2%% background noise.
// Cluster boxes are placed at random; full-dimensional clusters are Gaussian
// (dense sky regions), subspace clusters are uniform inside their bands.
func SkySim(scale float64, seed int64) *Dataset {
	const dims = 7
	rng := rand.New(rand.NewSource(seed))
	dom := Domain(dims)
	tab := dataset.MustNew(SkySimColumns...)
	ds := &Dataset{Name: "Sky", Table: tab, Domain: dom}

	clusteredTotal := 0
	for _, tpl := range skyTemplates {
		unused := make([]int, len(tpl.unused1Based))
		for i, u := range tpl.unused1Based {
			unused[i] = u - 1 // paper prints 1-based dimensions
		}
		used := complement(unused, dims)
		lo := make([]float64, dims)
		hi := make([]float64, dims)
		for j := 0; j < dims; j++ {
			lo[j], hi[j] = 0, DomainSide
		}
		for _, j := range used {
			side := 80 + rng.Float64()*160 // cluster extent 80..240 per used dim
			c0 := rng.Float64() * (DomainSide - side)
			lo[j], hi[j] = c0, c0+side
		}
		box := geom.MustRect(lo, hi)
		n := scaleCount(tpl.tuples, scale)
		gaussian := len(unused) == 0
		if gaussian {
			fillGaussian(tab, dom, box, used, n, rng)
		} else {
			fillUniform(tab, dom, box, used, n, rng)
		}
		clusteredTotal += n
		ds.Clusters = append(ds.Clusters, ClusterSpec{
			Box:        box,
			UsedDims:   used,
			UnusedDims: unused,
			Tuples:     n,
			Gaussian:   gaussian,
		})
	}
	ds.Noise = clusteredTotal / 50 // 2% background noise
	addNoise(tab, dom, ds.Noise, rng)
	return ds
}

// ParticleSim generates the 18-dimensional stand-in for the technical
// report's particle physics dataset (5M tuples at scale 1): 25 clusters in
// random 3..8-dimensional subspaces plus 4%% noise.
func ParticleSim(scale float64, seed int64) *Dataset {
	const (
		dims        = 18
		numClusters = 25
		paperTotal  = 5000000
	)
	rng := rand.New(rand.NewSource(seed))
	dom := Domain(dims)
	tab := dataset.MustNew(dataset.GenericNames(dims)...)
	ds := &Dataset{Name: "Particle", Table: tab, Domain: dom}

	perCluster := paperTotal * 96 / 100 / numClusters
	for c := 0; c < numClusters; c++ {
		k := 3 + rng.Intn(6)
		used := rng.Perm(dims)[:k]
		lo := make([]float64, dims)
		hi := make([]float64, dims)
		for j := 0; j < dims; j++ {
			lo[j], hi[j] = 0, DomainSide
		}
		for _, j := range used {
			side := 60 + rng.Float64()*140
			c0 := rng.Float64() * (DomainSide - side)
			lo[j], hi[j] = c0, c0+side
		}
		box := geom.MustRect(lo, hi)
		n := scaleCount(perCluster, scale)
		fillGaussian(tab, dom, box, used, n, rng)
		ds.Clusters = append(ds.Clusters, ClusterSpec{
			Box:        box,
			UsedDims:   append([]int(nil), used...),
			UnusedDims: complement(used, dims),
			Tuples:     n,
			Gaussian:   true,
		})
	}
	ds.Noise = scaleCount(paperTotal*4/100, scale)
	addNoise(tab, dom, ds.Noise, rng)
	return ds
}

// ByName returns the named dataset generator output. Recognized names:
// cross, cross3d, cross4d, cross5d, gauss, sky, particle.
func ByName(name string, scale float64, seed int64) (*Dataset, error) {
	switch name {
	case "cross", "cross2d":
		return Cross(scale, seed), nil
	case "cross3d":
		return CrossN(3, scale, seed), nil
	case "cross4d":
		return CrossN(4, scale, seed), nil
	case "cross5d":
		return CrossN(5, scale, seed), nil
	case "gauss":
		return Gauss(scale, seed), nil
	case "sky":
		return SkySim(scale, seed), nil
	case "particle":
		return ParticleSim(scale, seed), nil
	case "cars":
		return CarsSim(scale, seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
}

// CarsSimColumns is the schema of the paper's introductory Cars relation
// (§1), with categorical attributes mapped to integers (footnote 1).
var CarsSimColumns = []string{"model", "manufacturer", "year", "color"}

// CarsSim generates the Cars(model, manufacturer, year, color) relation of
// the paper's introduction with its LOCAL correlations: model determines
// manufacturer (model/25), one manufacturer's cars are mostly one color
// ("Ferraris are typically red"), and one model was built only until 2003
// ("the Beetle"). 60,000 tuples at scale 1.
//
// Ground truth lists the two local-correlation clusters: the red-Ferrari
// block (constrained on model, manufacturer and color) and the Beetle block
// (constrained on model, manufacturer and year).
func CarsSim(scale float64, seed int64) *Dataset {
	const (
		paperTuples   = 60000
		ferrariMaker  = 7   // models 175..199
		beetleModel   = 300 // manufacturer 12
		redColor      = 1
		beetleLastYr  = 2003
		modelsPerMake = 25
	)
	rng := rand.New(rand.NewSource(seed))
	tab := dataset.MustNew(CarsSimColumns...)
	dom := geom.MustRect(
		[]float64{0, 0, 1990, 0},
		[]float64{1000, 40, 2025, 12},
	)
	ds := &Dataset{Name: "Cars", Table: tab, Domain: dom}
	n := scaleCount(paperTuples, scale)
	tab.Grow(n)
	ferraris, beetles := 0, 0
	for i := 0; i < n; i++ {
		model := rng.Intn(1000)
		year := 1990 + rng.Float64()*35
		color := float64(rng.Intn(12))
		switch {
		case model/modelsPerMake == ferrariMaker:
			if rng.Float64() < 0.85 {
				color = redColor
				ferraris++
			}
		case model == beetleModel:
			year = 1990 + rng.Float64()*float64(beetleLastYr-1990)
			beetles++
		}
		tab.MustAppend([]float64{float64(model), float64(model / modelsPerMake), year, color})
	}
	ds.Clusters = []ClusterSpec{
		{
			Box: geom.MustRect(
				[]float64{float64(ferrariMaker * modelsPerMake), ferrariMaker, 1990, redColor},
				[]float64{float64((ferrariMaker+1)*modelsPerMake - 1), ferrariMaker, 2025, redColor},
			),
			UsedDims:   []int{0, 1, 3},
			UnusedDims: []int{2},
			Tuples:     ferraris,
		},
		{
			Box: geom.MustRect(
				[]float64{beetleModel, beetleModel / modelsPerMake, 1990, 0},
				[]float64{beetleModel, beetleModel / modelsPerMake, beetleLastYr, 12},
			),
			UsedDims:   []int{0, 1, 2},
			UnusedDims: []int{3},
			Tuples:     beetles,
		},
	}
	return ds
}
