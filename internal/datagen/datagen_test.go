package datagen

import (
	"testing"

	"sthist/internal/geom"
)

func TestCrossPaperScaleCounts(t *testing.T) {
	// Table 1: Cross has 22,000 tuples (2 x 10,000 + 2,000 noise).
	ds := Cross(1.0, 1)
	if got := ds.Table.Len(); got != 22000 {
		t.Errorf("Cross tuples = %d, want 22000", got)
	}
	if len(ds.Clusters) != 2 {
		t.Fatalf("Cross clusters = %d, want 2", len(ds.Clusters))
	}
	for i, c := range ds.Clusters {
		if c.Tuples != 10000 {
			t.Errorf("cluster %d tuples = %d, want 10000", i, c.Tuples)
		}
		if len(c.UsedDims) != 1 || len(c.UnusedDims) != 1 {
			t.Errorf("cluster %d dims: used=%v unused=%v", i, c.UsedDims, c.UnusedDims)
		}
	}
}

func TestCrossNTable3Counts(t *testing.T) {
	// Table 3 tuple counts at paper scale.
	want := map[int]int{3: 9000, 4: 360000}
	for d, total := range want {
		ds := CrossN(d, 1.0, 1)
		if got := ds.Table.Len(); got != total {
			t.Errorf("Cross%dd tuples = %d, want %d", d, got, total)
		}
		if ds.Table.Dims() != d {
			t.Errorf("Cross%dd dims = %d", d, ds.Table.Dims())
		}
		if len(ds.Clusters) != d {
			t.Errorf("Cross%dd clusters = %d, want %d", d, len(ds.Clusters), d)
		}
	}
	// Cross5d at full scale is 13.5M tuples; verify via arithmetic, not
	// generation.
	per, noise, err := crossPaperPerCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := 5*per + noise; got != 13500000 {
		t.Errorf("Cross5d paper-scale total = %d, want 13500000", got)
	}
	if _, _, err := crossPaperPerCluster(6); err == nil {
		t.Error("Cross6d accepted")
	}
}

func TestCrossClusterMembership(t *testing.T) {
	ds := Cross(0.1, 2)
	// The first 1000 tuples belong to cluster 0 and must lie inside its box.
	box := ds.Clusters[0].Box
	for i := 0; i < ds.Clusters[0].Tuples; i++ {
		if !box.ContainsPoint(ds.Table.Point(i)) {
			t.Fatalf("tuple %d outside cluster 0 box", i)
		}
	}
	// Cluster 0 spans the full domain on its unused dimension.
	unused := ds.Clusters[0].UnusedDims[0]
	if box.Lo[unused] != 0 || box.Hi[unused] != DomainSide {
		t.Errorf("cluster 0 does not span dimension %d fully: %v", unused, box)
	}
	// Every tuple is inside the domain.
	for i := 0; i < ds.Table.Len(); i++ {
		if !ds.Domain.ContainsPoint(ds.Table.Point(i)) {
			t.Fatalf("tuple %d escapes the domain", i)
		}
	}
}

func TestGaussStructure(t *testing.T) {
	ds := Gauss(0.05, 3) // 5,500 tuples
	if ds.Table.Dims() != 6 {
		t.Fatalf("Gauss dims = %d", ds.Table.Dims())
	}
	if len(ds.Clusters) != 10 {
		t.Fatalf("Gauss clusters = %d", len(ds.Clusters))
	}
	wantLen := 0
	for _, c := range ds.Clusters {
		wantLen += c.Tuples
		k := len(c.UsedDims)
		if k < 2 || k > 5 {
			t.Errorf("cluster subspace dimensionality %d outside [2,5]", k)
		}
		if len(c.UsedDims)+len(c.UnusedDims) != 6 {
			t.Errorf("used+unused = %d+%d != 6", len(c.UsedDims), len(c.UnusedDims))
		}
		if !c.Gaussian {
			t.Error("Gauss cluster not marked Gaussian")
		}
	}
	wantLen += ds.Noise
	if ds.Table.Len() != wantLen {
		t.Errorf("Gauss tuples = %d, want %d", ds.Table.Len(), wantLen)
	}
}

func TestGaussPaperScaleArithmetic(t *testing.T) {
	// Table 1: Gauss has 110,000 tuples. Verify by scale arithmetic on a
	// small generation (scale 0.01 -> 1100).
	ds := Gauss(0.01, 4)
	if got := ds.Table.Len(); got != 1100 {
		t.Errorf("Gauss scale=0.01 tuples = %d, want 1100", got)
	}
}

func TestSkySimMirrorsTable4(t *testing.T) {
	ds := SkySim(0.01, 5)
	if ds.Table.Dims() != 7 {
		t.Fatalf("Sky dims = %d", ds.Table.Dims())
	}
	if len(ds.Clusters) != 20 {
		t.Fatalf("Sky clusters = %d, want 20", len(ds.Clusters))
	}
	fullDim, subspace := 0, 0
	for i, c := range ds.Clusters {
		if len(c.UnusedDims) == 0 {
			fullDim++
		} else {
			subspace++
		}
		// Unused signature must match Table 4 (template is 1-based).
		tpl := skyTemplates[i]
		if len(c.UnusedDims) != len(tpl.unused1Based) {
			t.Errorf("cluster C%d unused dims = %v, template %v", i, c.UnusedDims, tpl.unused1Based)
			continue
		}
		for j, u := range c.UnusedDims {
			if u != tpl.unused1Based[j]-1 {
				t.Errorf("cluster C%d unused[%d] = %d, want %d", i, j, u, tpl.unused1Based[j]-1)
			}
		}
	}
	if fullDim != 11 || subspace != 9 {
		t.Errorf("full-dim=%d subspace=%d, want 11/9 as in Table 4", fullDim, subspace)
	}
}

func TestSkySimPaperScaleTotal(t *testing.T) {
	// Table 1: Sky has ~1.7M tuples. Sum the templates plus 2% noise.
	total := 0
	for _, tpl := range skyTemplates {
		total += tpl.tuples
	}
	withNoise := total + total/50
	if withNoise < 1650000 || withNoise > 1800000 {
		t.Errorf("paper-scale Sky total = %d, want ~1.7M", withNoise)
	}
}

func TestParticleSim(t *testing.T) {
	ds := ParticleSim(0.002, 6) // ~10k tuples
	if ds.Table.Dims() != 18 {
		t.Fatalf("Particle dims = %d", ds.Table.Dims())
	}
	if len(ds.Clusters) != 25 {
		t.Fatalf("Particle clusters = %d", len(ds.Clusters))
	}
	for _, c := range ds.Clusters {
		if k := len(c.UsedDims); k < 3 || k > 8 {
			t.Errorf("particle cluster subspace dims = %d, want [3,8]", k)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cross", "cross2d", "cross3d", "cross4d", "gauss", "sky"} {
		ds, err := ByName(name, 0.005, 7)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if ds.Table.Len() == 0 {
			t.Errorf("ByName(%q) produced an empty table", name)
		}
	}
	if _, err := ByName("nope", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := Gauss(0.01, 99)
	b := Gauss(0.01, 99)
	if a.Table.Len() != b.Table.Len() {
		t.Fatal("same seed produced different sizes")
	}
	for i := 0; i < a.Table.Len(); i++ {
		for d := 0; d < a.Table.Dims(); d++ {
			if a.Table.Value(i, d) != b.Table.Value(i, d) {
				t.Fatalf("same seed produced different tuple %d", i)
			}
		}
	}
	c := Gauss(0.01, 100)
	same := true
	for i := 0; i < a.Table.Len() && same; i++ {
		for d := 0; d < a.Table.Dims(); d++ {
			if a.Table.Value(i, d) != c.Table.Value(i, d) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestDomain(t *testing.T) {
	dom := Domain(3)
	want := geom.MustRect([]float64{0, 0, 0}, []float64{1000, 1000, 1000})
	if !dom.Equal(want) {
		t.Errorf("Domain(3) = %v", dom)
	}
}

func TestCarsSim(t *testing.T) {
	ds := CarsSim(0.2, 51) // 12,000 tuples
	if ds.Table.Dims() != 4 || ds.Table.Len() != 12000 {
		t.Fatalf("CarsSim shape %dx%d", ds.Table.Len(), ds.Table.Dims())
	}
	if len(ds.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(ds.Clusters))
	}
	// Every tuple respects model -> manufacturer.
	for i := 0; i < ds.Table.Len(); i++ {
		model := int(ds.Table.Value(i, 0))
		if int(ds.Table.Value(i, 1)) != model/25 {
			t.Fatalf("tuple %d breaks model->manufacturer", i)
		}
	}
	// Red-Ferrari correlation: most Ferraris are color 1.
	ferraris, red := 0, 0
	for i := 0; i < ds.Table.Len(); i++ {
		if int(ds.Table.Value(i, 1)) == 7 {
			ferraris++
			if ds.Table.Value(i, 3) == 1 {
				red++
			}
		}
	}
	if ferraris == 0 || float64(red)/float64(ferraris) < 0.8 {
		t.Errorf("red fraction among Ferraris = %d/%d", red, ferraris)
	}
	// Beetles end in 2003.
	for i := 0; i < ds.Table.Len(); i++ {
		if int(ds.Table.Value(i, 0)) == 300 && ds.Table.Value(i, 2) > 2003 {
			t.Fatalf("Beetle built after 2003 at row %d", i)
		}
	}
	if _, err := ByName("cars", 0.01, 1); err != nil {
		t.Errorf("ByName(cars): %v", err)
	}
}
