// Package mhist implements an MHIST-style static multidimensional histogram
// (Poosala & Ioannidis, VLDB 1997 — reference [23] of the paper): the data
// space is partitioned greedily by repeatedly splitting the "most critical"
// bucket along the dimension whose marginal distribution is most in need of
// partitioning (MaxDiff). Unlike STHoles it scans the full dataset at build
// time and never adapts — the static counterpoint the paper's introduction
// argues against.
package mhist

import (
	"fmt"
	"sort"

	"sthist/internal/dataset"
	"sthist/internal/geom"
)

// Histogram is a static MHIST-2 (MaxDiff) histogram: a flat list of disjoint
// buckets covering the domain.
type Histogram struct {
	domain  geom.Rect
	buckets []bucket
}

type bucket struct {
	box   geom.Rect
	count float64
	rows  []int // row indices, only kept during construction
}

// marginalBins is the resolution of the per-dimension marginal distribution
// used to pick split points.
const marginalBins = 64

// Build scans the table and constructs a histogram with at most maxBuckets
// buckets over the given domain.
func Build(tab *dataset.Table, domain geom.Rect, maxBuckets int) (*Histogram, error) {
	if maxBuckets < 1 {
		return nil, fmt.Errorf("mhist: maxBuckets must be >= 1, got %d", maxBuckets)
	}
	if tab.Len() == 0 {
		return nil, fmt.Errorf("mhist: empty table")
	}
	if tab.Dims() != domain.Dims() {
		return nil, fmt.Errorf("mhist: table dims %d != domain dims %d", tab.Dims(), domain.Dims())
	}
	if domain.Volume() <= 0 {
		return nil, fmt.Errorf("mhist: domain has no volume")
	}
	h := &Histogram{domain: domain.Clone()}
	rows := make([]int, tab.Len())
	for i := range rows {
		rows[i] = i
	}
	h.buckets = []bucket{{box: domain.Clone(), count: float64(len(rows)), rows: rows}}

	for len(h.buckets) < maxBuckets {
		// Pick the bucket/dimension with the largest MaxDiff criticality.
		bi, dim, split, ok := h.mostCritical(tab)
		if !ok {
			break
		}
		h.split(tab, bi, dim, split)
	}
	// Free construction state.
	for i := range h.buckets {
		h.buckets[i].rows = nil
	}
	return h, nil
}

// mostCritical returns the bucket index, split dimension and split value with
// the largest adjacent-bin marginal frequency difference.
func (h *Histogram) mostCritical(tab *dataset.Table) (bi, dim int, split float64, ok bool) {
	best := -1.0
	for i := range h.buckets {
		b := &h.buckets[i]
		if len(b.rows) < 2 {
			continue
		}
		for d := 0; d < tab.Dims(); d++ {
			side := b.box.Side(d)
			if side <= 0 {
				continue
			}
			bins := make([]int, marginalBins)
			for _, r := range b.rows {
				v := tab.Value(r, d)
				c := int(float64(marginalBins) * (v - b.box.Lo[d]) / side)
				if c < 0 {
					c = 0
				}
				if c >= marginalBins {
					c = marginalBins - 1
				}
				bins[c]++
			}
			for c := 0; c+1 < marginalBins; c++ {
				diff := float64(bins[c] - bins[c+1])
				if diff < 0 {
					diff = -diff
				}
				if diff > best {
					// Split between bins c and c+1.
					cand := b.box.Lo[d] + side*float64(c+1)/float64(marginalBins)
					// Reject splits that would produce an empty side (all
					// rows in one half).
					left := 0
					for _, r := range b.rows {
						if tab.Value(r, d) < cand {
							left++
						}
					}
					if left == 0 || left == len(b.rows) {
						continue
					}
					best = diff
					bi, dim, split, ok = i, d, cand, true
				}
			}
		}
	}
	return bi, dim, split, ok
}

// split divides bucket bi at value split on dimension dim.
func (h *Histogram) split(tab *dataset.Table, bi, dim int, split float64) {
	b := h.buckets[bi]
	loBox := b.box.Clone()
	hiBox := b.box.Clone()
	loBox.Hi[dim] = split
	hiBox.Lo[dim] = split
	var loRows, hiRows []int
	for _, r := range b.rows {
		if tab.Value(r, dim) < split {
			loRows = append(loRows, r)
		} else {
			hiRows = append(hiRows, r)
		}
	}
	h.buckets[bi] = bucket{box: loBox, count: float64(len(loRows)), rows: loRows}
	h.buckets = append(h.buckets, bucket{box: hiBox, count: float64(len(hiRows)), rows: hiRows})
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Total returns the tuple count captured by the histogram.
func (h *Histogram) Total() float64 {
	s := 0.0
	for _, b := range h.buckets {
		s += b.count
	}
	return s
}

// Estimate returns the estimated cardinality of q under per-bucket
// uniformity.
func (h *Histogram) Estimate(q geom.Rect) float64 {
	if q.Dims() != h.domain.Dims() {
		return 0
	}
	est := 0.0
	for i := range h.buckets {
		b := &h.buckets[i]
		vol := b.box.Volume()
		if vol <= 0 {
			if q.Contains(b.box) {
				est += b.count
			}
			continue
		}
		est += b.count * b.box.IntersectionVolume(q) / vol
	}
	return est
}

// BucketBoxes returns the bucket boxes sorted by descending count, for
// inspection.
func (h *Histogram) BucketBoxes() []geom.Rect {
	idx := make([]int, len(h.buckets))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.buckets[idx[a]].count > h.buckets[idx[b]].count })
	out := make([]geom.Rect, len(idx))
	for i, j := range idx {
		out[i] = h.buckets[j].box.Clone()
	}
	return out
}
