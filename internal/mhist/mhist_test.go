package mhist

import (
	"math"
	"math/rand"
	"testing"

	"sthist/internal/datagen"
	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/index"
)

func TestBuildValidation(t *testing.T) {
	tab := dataset.MustNew("x", "y")
	dom := geom.MustRect([]float64{0, 0}, []float64{10, 10})
	if _, err := Build(tab, dom, 10); err == nil {
		t.Error("empty table accepted")
	}
	tab.MustAppend([]float64{1, 1})
	if _, err := Build(tab, dom, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Build(tab, geom.MustRect([]float64{0}, []float64{10}), 4); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Build(tab, geom.MustRect([]float64{0, 0}, []float64{0, 10}), 4); err == nil {
		t.Error("zero-volume domain accepted")
	}
}

func TestBuildSingleBucket(t *testing.T) {
	tab := dataset.MustNew("x", "y")
	for i := 0; i < 100; i++ {
		tab.MustAppend([]float64{float64(i % 10), float64(i / 10)})
	}
	dom := geom.MustRect([]float64{0, 0}, []float64{10, 10})
	h, err := Build(tab, dom, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 1 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
	if got := h.Estimate(dom); math.Abs(got-100) > 1e-9 {
		t.Errorf("domain estimate = %g", got)
	}
}

func TestBuildCapturesCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := dataset.MustNew("x", "y")
	for i := 0; i < 5000; i++ {
		tab.MustAppend([]float64{200 + rng.Float64()*100, 600 + rng.Float64()*100})
	}
	for i := 0; i < 500; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	dom := geom.MustRect([]float64{0, 0}, []float64{1000, 1000})
	h, err := Build(tab, dom, 30)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() > 30 {
		t.Errorf("budget exceeded: %d", h.Buckets())
	}
	if math.Abs(h.Total()-5500) > 1e-9 {
		t.Errorf("Total = %g", h.Total())
	}
	// The static histogram should estimate the cluster box well.
	kt, _ := index.BuildKDTree(tab)
	q := geom.MustRect([]float64{200, 600}, []float64{300, 700})
	truth := float64(kt.Count(q))
	if got := h.Estimate(q); math.Abs(got-truth) > 0.2*truth {
		t.Errorf("cluster estimate %g vs truth %g", got, truth)
	}
	// Empty region stays near zero.
	empty := geom.MustRect([]float64{600, 100}, []float64{700, 200})
	if got := h.Estimate(empty); got > 50 {
		t.Errorf("empty-region estimate %g", got)
	}
}

func TestBucketsDisjointAndCovering(t *testing.T) {
	ds := datagen.Cross(0.1, 2)
	h, err := Build(ds.Table, ds.Domain, 40)
	if err != nil {
		t.Fatal(err)
	}
	boxes := h.BucketBoxes()
	if len(boxes) != h.Buckets() {
		t.Fatalf("BucketBoxes returned %d of %d", len(boxes), h.Buckets())
	}
	vol := 0.0
	for i, a := range boxes {
		vol += a.Volume()
		for _, b := range boxes[i+1:] {
			if a.IntersectsOpen(b) {
				t.Fatalf("buckets %v and %v overlap", a, b)
			}
		}
	}
	if math.Abs(vol-ds.Domain.Volume()) > 1e-6*ds.Domain.Volume() {
		t.Errorf("bucket volumes sum to %g, domain is %g", vol, ds.Domain.Volume())
	}
}

func TestEstimateMatchesTruthOnAverage(t *testing.T) {
	ds := datagen.Cross(0.1, 3)
	kt, err := index.BuildKDTree(ds.Table)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(ds.Table, ds.Domain, 60)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	// The static histogram must clearly beat the trivial estimator.
	trivialErr, mhistErr := 0.0, 0.0
	total := float64(ds.Table.Len())
	for i := 0; i < 100; i++ {
		c := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		q := geom.CubeAt(c, 100, ds.Domain)
		truth := float64(kt.Count(q))
		mhistErr += math.Abs(h.Estimate(q) - truth)
		trivialErr += math.Abs(total*q.Volume()/ds.Domain.Volume() - truth)
	}
	if mhistErr > 0.6*trivialErr {
		t.Errorf("MHIST error %g not clearly below trivial %g", mhistErr, trivialErr)
	}
}
