package wal

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sthist/internal/faultfs"
)

func rec(seq uint64, lo, hi []float64, actual float64) Record {
	return Record{Seq: seq, Lo: lo, Hi: hi, Actual: actual}
}

func TestFrameRoundTrip(t *testing.T) {
	records := []Record{
		rec(1, []float64{0, 0}, []float64{1, 1}, 42),
		rec(2, []float64{-3.5, 2.25}, []float64{7.125, 9.875}, 0.1),
		rec(3, []float64{1e-300}, []float64{1e300}, 1e18),
	}
	var buf []byte
	var err error
	for _, r := range records {
		buf, err = appendFrame(buf, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, cleanLen, skipped, torn := Replay(buf, StopAtCorrupt)
	if torn || skipped != 0 || cleanLen != int64(len(buf)) {
		t.Fatalf("torn=%v skipped=%d cleanLen=%d len=%d", torn, skipped, cleanLen, len(buf))
	}
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, records)
	}
}

func TestFrameRejectsBadRecords(t *testing.T) {
	if _, err := appendFrame(nil, rec(1, nil, nil, 0)); err == nil {
		t.Error("zero-dim record accepted")
	}
	if _, err := appendFrame(nil, rec(1, []float64{0}, []float64{1, 2}, 0)); err == nil {
		t.Error("lo/hi mismatch accepted")
	}
	if _, err := appendFrame(nil, rec(1, make([]float64, maxDims+1), make([]float64, maxDims+1), 0)); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestReplayTornTail(t *testing.T) {
	full, err := appendFrame(nil, rec(1, []float64{0}, []float64{1}, 5))
	if err != nil {
		t.Fatal(err)
	}
	whole := len(full)
	full, err = appendFrame(full, rec(2, []float64{2}, []float64{3}, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Cut the second frame at every possible offset: replay must always
	// recover exactly the first record and report the torn tail.
	for cut := whole + 1; cut < len(full); cut++ {
		got, cleanLen, _, torn := Replay(full[:cut], StopAtCorrupt)
		if len(got) != 1 || got[0].Seq != 1 {
			t.Fatalf("cut=%d: got %d records", cut, len(got))
		}
		if !torn {
			t.Fatalf("cut=%d: torn not reported", cut)
		}
		if cleanLen != int64(whole) {
			t.Fatalf("cut=%d: cleanLen=%d want %d", cut, cleanLen, whole)
		}
	}
}

func TestReplayCorruptionPolicies(t *testing.T) {
	var buf []byte
	var err error
	for i := 1; i <= 3; i++ {
		buf, err = appendFrame(buf, rec(uint64(i), []float64{float64(i)}, []float64{float64(i + 1)}, float64(i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	frame := len(buf) / 3
	// Corrupt a payload byte of the middle frame (past its header).
	bad := append([]byte(nil), buf...)
	bad[frame+frameHeader+10] ^= 0xFF

	got, cleanLen, skipped, torn := Replay(bad, StopAtCorrupt)
	if len(got) != 1 || !torn || skipped != 0 {
		t.Errorf("stop policy: records=%d torn=%v skipped=%d", len(got), torn, skipped)
	}
	if cleanLen != int64(frame) {
		t.Errorf("stop policy cleanLen = %d, want %d", cleanLen, frame)
	}

	got, cleanLen, skipped, torn = Replay(bad, SkipCorrupt)
	if len(got) != 2 || got[1].Seq != 3 || skipped != 1 || torn {
		t.Errorf("skip policy: records=%d skipped=%d torn=%v", len(got), skipped, torn)
	}
	if cleanLen != int64(len(bad)) {
		t.Errorf("skip policy cleanLen = %d, want %d", cleanLen, len(bad))
	}

	// Corrupt the length field itself: no safe resync even under SkipCorrupt.
	bad2 := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(bad2[frame:], MaxRecordBytes+1)
	got, _, _, torn = Replay(bad2, SkipCorrupt)
	if len(got) != 1 || !torn {
		t.Errorf("bad length: records=%d torn=%v", len(got), torn)
	}
}

func TestOpenFreshAppendReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "orders")
	l, rc, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Snapshot != nil || len(rc.Records) != 0 || rc.Torn {
		t.Fatalf("fresh recovery = %+v", rc)
	}
	for i := 0; i < 5; i++ {
		seq, err := l.Append(rec(0, []float64{float64(i)}, []float64{float64(i) + 1}, float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rc2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rc2.Records) != 5 || rc2.Torn {
		t.Fatalf("reopen recovery: %d records, torn=%v", len(rc2.Records), rc2.Torn)
	}
	if l2.LastSeq() != 5 {
		t.Errorf("LastSeq = %d", l2.LastSeq())
	}
	if seq, err := l2.Append(rec(0, []float64{9}, []float64{10}, 1)); err != nil || seq != 6 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestOpenTruncatesTornTailAndKeepsAppending(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t")
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(rec(0, []float64{0}, []float64{1}, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate a crash mid-append: chop 5 bytes off the segment, then append
	// garbage-free via a reopened log.
	seg := filepath.Join(dir, segName(1))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	l2, rc, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Records) != 2 || !rc.Torn {
		t.Fatalf("recovery after torn tail: %d records, torn=%v", len(rc.Records), rc.Torn)
	}
	if _, err := l2.Append(rec(0, []float64{5}, []float64{6}, 9)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, rc3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(rc3.Records) != 3 || rc3.Torn {
		t.Fatalf("final recovery: %d records, torn=%v", len(rc3.Records), rc3.Torn)
	}
	if rc3.Records[2].Actual != 9 {
		t.Errorf("post-truncation record = %+v", rc3.Records[2])
	}
}

func TestCheckpointRotatesAndRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t")
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(rec(0, []float64{0}, []float64{1}, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snapshot := []byte(`{"state":"after-4"}`)
	if err := l.Checkpoint(snapshot); err != nil {
		t.Fatal(err)
	}
	// Old generation files are gone.
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Errorf("old segment still present: %v", err)
	}
	if _, err := l.Append(rec(0, []float64{1}, []float64{2}, 40)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rc, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if string(rc.Snapshot) != string(snapshot) {
		t.Errorf("snapshot = %q", rc.Snapshot)
	}
	if len(rc.Records) != 1 || rc.Records[0].Actual != 40 {
		t.Fatalf("tail = %+v", rc.Records)
	}
	// Seq numbering is monotonic across the checkpoint and restart.
	if rc.Records[0].Seq != 5 {
		t.Errorf("tail seq = %d, want 5", rc.Records[0].Seq)
	}
	if seq, _ := l2.Append(rec(0, []float64{2}, []float64{3}, 41)); seq != 6 {
		t.Errorf("next seq = %d, want 6", seq)
	}
}

func TestAppendErrorIsStickyUntilCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t")
	// Sync #1 is the initial manifest commit, #2 the first append's fsync,
	// #3 the second append's — the one we fail.
	in := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{Op: faultfs.OpSync, Nth: 3, Mode: faultfs.Fail})
	l, _, err := Open(dir, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec(0, []float64{0}, []float64{1}, 1)); err != nil {
		t.Fatal(err) // sync 1 ok
	}
	if _, err := l.Append(rec(0, []float64{0}, []float64{1}, 2)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append with failing fsync: err = %v", err)
	}
	if l.Err() == nil {
		t.Fatal("sticky error not set")
	}
	// Further appends are rejected without touching the file.
	if _, err := l.Append(rec(0, []float64{0}, []float64{1}, 3)); err == nil {
		t.Fatal("append on failed log accepted")
	}
	// A checkpoint rotates to a fresh segment and heals the log.
	if err := l.Checkpoint([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if l.Err() != nil {
		t.Fatalf("error not cleared: %v", l.Err())
	}
	if _, err := l.Append(rec(0, []float64{0}, []float64{1}, 4)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rc, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if string(rc.Snapshot) != "snap" || len(rc.Records) != 1 || rc.Records[0].Actual != 4 {
		t.Fatalf("recovery = snapshot %q, records %+v", rc.Snapshot, rc.Records)
	}
}

func TestRecordPreservesFloatBits(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1e-323, math.MaxFloat64, 1.0000000000000002}
	for _, v := range vals {
		buf, err := appendFrame(nil, rec(1, []float64{v}, []float64{v}, v))
		if err != nil {
			t.Fatal(err)
		}
		got, _, _, _ := Replay(buf, StopAtCorrupt)
		if len(got) != 1 {
			t.Fatal("record lost")
		}
		if math.Float64bits(got[0].Actual) != math.Float64bits(v) ||
			math.Float64bits(got[0].Lo[0]) != math.Float64bits(v) {
			t.Errorf("bits changed for %g", v)
		}
	}
}
