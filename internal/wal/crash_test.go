package wal_test

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sthist"
	"sthist/internal/wal"
)

// crashTable builds the deterministic data the crash-recovery scenario
// serves: two Gaussian-ish clusters plus uniform background noise.
func crashTable(t *testing.T) *sthist.Table {
	t.Helper()
	tab, err := sthist.NewTable("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1200; i++ {
		tab.MustAppend([]float64{150 + rng.Float64()*80, 600 + rng.Float64()*90})
	}
	for i := 0; i < 800; i++ {
		tab.MustAppend([]float64{700 + rng.Float64()*60, 100 + rng.Float64()*70})
	}
	for i := 0; i < 400; i++ {
		tab.MustAppend([]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	return tab
}

func crashOpen(t *testing.T, tab *sthist.Table) *sthist.Estimator {
	t.Helper()
	est, err := sthist.Open(tab, sthist.Options{Buckets: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// probeQueries returns the evaluation workload used to compare estimators.
func probeQueries(rng *rand.Rand, n int) []sthist.Rect {
	out := make([]sthist.Rect, 0, n)
	for i := 0; i < n; i++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		w, h := 20+rng.Float64()*200, 20+rng.Float64()*200
		r, err := sthist.NewRect(
			[]float64{math.Max(0, cx-w/2), math.Max(0, cy-h/2)},
			[]float64{math.Min(1000, cx+w/2), math.Min(1000, cy+h/2)},
		)
		if err != nil {
			panic(err)
		}
		out = append(out, r)
	}
	return out
}

// TestCrashRecoveryBitIdentical is the headline durability test: a serving
// estimator WAL-logs every feedback and checkpoints part-way through; the
// "crash" truncates the live segment at an arbitrary byte offset (including
// mid-record); recovery restores the checkpoint snapshot and replays the
// surviving tail. The recovered estimator must return bit-identical
// estimates to an uninterrupted estimator that applied exactly the surviving
// feedback prefix — proving that snapshot + replay loses nothing and alters
// nothing beyond the records the crash destroyed.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	tab := crashTable(t)
	rng := rand.New(rand.NewSource(17))

	// The feedback workload, with exact counts as the observed truths.
	ref := crashOpen(t, tab)
	type fb struct {
		q      sthist.Rect
		actual float64
	}
	workload := make([]fb, 0, 120)
	for _, q := range probeQueries(rng, 120) {
		workload = append(workload, fb{q, ref.TrueCount(q)})
	}
	probes := probeQueries(rng, 50)
	const checkpointAt = 40 // feedbacks applied before the snapshot rotates

	// The durable run: log + apply every feedback, checkpoint mid-stream.
	dir := filepath.Join(t.TempDir(), "orders")
	l, rc, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Snapshot != nil || len(rc.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rc)
	}
	served := crashOpen(t, tab)
	for i, f := range workload {
		if _, err := l.Append(wal.Record{Lo: f.q.Lo, Hi: f.q.Hi, Actual: f.actual}); err != nil {
			t.Fatal(err)
		}
		if err := served.Feedback(f.q, f.actual); err != nil {
			t.Fatal(err)
		}
		if i+1 == checkpointAt {
			var buf bytes.Buffer
			if err := served.SaveHistogram(&buf); err != nil {
				t.Fatal(err)
			}
			if err := l.Checkpoint(buf.Bytes()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "wal-00000002.log")
	segData, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	snapData, err := os.ReadFile(filepath.Join(dir, "checkpoint-00000002.snap"))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}

	// Crash at arbitrary segment offsets, including 0 (right after the
	// checkpoint) and len (no tail loss), and mid-record in between.
	cuts := []int{0, 1, len(segData) / 3, len(segData) / 2, len(segData) - 1, len(segData)}
	for i := 0; i < 10; i++ {
		cuts = append(cuts, rng.Intn(len(segData)+1))
	}
	for _, cut := range cuts {
		crashDir := filepath.Join(t.TempDir(), "crashed")
		if err := os.MkdirAll(crashDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, "MANIFEST"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, "checkpoint-00000002.snap"), snapData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, "wal-00000002.log"), segData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		// Recover: snapshot + tail replay, the sthistd startup path.
		l2, rc2, err := wal.Open(crashDir, wal.Options{})
		if err != nil {
			t.Fatalf("cut=%d: recovery open: %v", cut, err)
		}
		if rc2.Snapshot == nil {
			t.Fatalf("cut=%d: snapshot lost", cut)
		}
		recovered := crashOpen(t, tab)
		if err := recovered.LoadHistogram(bytes.NewReader(rc2.Snapshot)); err != nil {
			t.Fatalf("cut=%d: loading snapshot: %v", cut, err)
		}
		for _, r := range rc2.Records {
			q, err := sthist.NewRect(r.Lo, r.Hi)
			if err != nil {
				t.Fatalf("cut=%d: bad replay rect: %v", cut, err)
			}
			if err := recovered.Feedback(q, r.Actual); err != nil {
				t.Fatalf("cut=%d: replay feedback: %v", cut, err)
			}
		}
		l2.Close()

		// The uninterrupted reference: a fresh estimator that applies
		// exactly the feedback prefix that survived the crash.
		survived := checkpointAt + len(rc2.Records)
		if survived > len(workload) {
			t.Fatalf("cut=%d: %d records survived a %d-feedback run", cut, survived, len(workload))
		}
		uninterrupted := crashOpen(t, tab)
		for _, f := range workload[:survived] {
			if err := uninterrupted.Feedback(f.q, f.actual); err != nil {
				t.Fatal(err)
			}
		}

		for pi, p := range probes {
			got := recovered.Estimate(p)
			want := uninterrupted.Estimate(p)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("cut=%d probe=%d: recovered %v (%x) != uninterrupted %v (%x), %d records survived",
					cut, pi, got, math.Float64bits(got), want, math.Float64bits(want), survived)
			}
		}
	}
}

// TestRecoveryWithoutCheckpoint covers the crash-before-first-checkpoint
// path: recovery rebuilds the cluster-seeded initial histogram (same data,
// same seed) and replays the whole surviving log.
func TestRecoveryWithoutCheckpoint(t *testing.T) {
	tab := crashTable(t)
	rng := rand.New(rand.NewSource(23))
	served := crashOpen(t, tab)

	dir := filepath.Join(t.TempDir(), "t")
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := probeQueries(rng, 30)
	for _, q := range queries {
		actual := served.TrueCount(q)
		if _, err := l.Append(wal.Record{Lo: q.Lo, Hi: q.Hi, Actual: actual}); err != nil {
			t.Fatal(err)
		}
		if err := served.Feedback(q, actual); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, rc, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rc.Snapshot != nil || len(rc.Records) != 30 {
		t.Fatalf("recovery = snapshot %v, %d records", rc.Snapshot != nil, len(rc.Records))
	}
	recovered := crashOpen(t, tab)
	for _, r := range rc.Records {
		q, err := sthist.NewRect(r.Lo, r.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := recovered.Feedback(q, r.Actual); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range probeQueries(rng, 40) {
		got, want := recovered.Estimate(p), served.Estimate(p)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("recovered %v != served %v", got, want)
		}
	}
}
