package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sthist/internal/faultfs"
)

// populate creates a log at dir with a committed snapshot and a tail of
// records, returning the log opened through fsys.
func populate(t *testing.T, dir string, fsys faultfs.FS) *Log {
	t.Helper()
	l, _, err := Open(dir, Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(rec(0, []float64{float64(i)}, []float64{float64(i) + 1}, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint([]byte("base-snapshot")); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 8; i++ {
		if _, err := l.Append(rec(0, []float64{float64(i)}, []float64{float64(i) + 1}, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

// TestCheckpointAtomicUnderFaults sweeps a failure over every mutating
// filesystem operation of the checkpoint protocol and verifies rotation is
// all-or-nothing: recovery afterwards sees either the old state (snapshot
// "base-snapshot" + 5 tail records) or the new state (snapshot "new-snapshot"
// + 0 tail records) — never a mixture and never silent loss.
func TestCheckpointAtomicUnderFaults(t *testing.T) {
	// Measure how many mutating ops a fault-free checkpoint performs.
	probeDir := filepath.Join(t.TempDir(), "probe")
	probe := faultfs.NewInjector(faultfs.OS{})
	l := populate(t, probeDir, probe)
	before := probe.Count(faultfs.OpAny)
	if err := l.Checkpoint([]byte("new-snapshot")); err != nil {
		t.Fatal(err)
	}
	totalOps := probe.Count(faultfs.OpAny) - before
	l.Close()
	if totalOps < 5 {
		t.Fatalf("checkpoint performed only %d mutating ops; protocol changed?", totalOps)
	}

	for k := 1; k <= totalOps; k++ {
		t.Run(fmt.Sprintf("fail-op-%d", k), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "t")
			// Build the pre-checkpoint state with a healthy filesystem.
			setup := populate(t, dir, faultfs.OS{})
			setup.Close()

			// Reopen through an injector that fails the k-th mutating op,
			// then attempt the checkpoint. Reopening performs no mutating
			// ops (the segment exists, tail is clean), so op counting starts
			// at the checkpoint.
			in := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{Op: faultfs.OpAny, Nth: k, Mode: faultfs.Fail})
			lf, rc, err := Open(dir, Options{FS: in})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if len(rc.Records) != 5 {
				t.Fatalf("pre-state: %d tail records", len(rc.Records))
			}
			ckErr := lf.Checkpoint([]byte("new-snapshot"))
			lf.Close()

			// Recover with a healthy filesystem: all-or-nothing.
			l2, rc2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer l2.Close()
			switch string(rc2.Snapshot) {
			case "base-snapshot":
				if len(rc2.Records) != 5 {
					t.Errorf("old state with %d tail records, want 5", len(rc2.Records))
				}
				if ckErr == nil && len(in.Fired()) > 0 {
					// A fired fault that still reports success may only
					// happen for post-commit cleanup ops — but then recovery
					// must see the NEW state, not the old one.
					t.Errorf("checkpoint reported success but old state recovered")
				}
			case "new-snapshot":
				if len(rc2.Records) != 0 {
					t.Errorf("new state with %d tail records, want 0", len(rc2.Records))
				}
			default:
				t.Errorf("recovered snapshot = %q, want base- or new-snapshot", rc2.Snapshot)
			}
			// Whatever happened, the log must still accept appends and make
			// them durable.
			if _, err := l2.Append(rec(0, []float64{9}, []float64{10}, 99)); err != nil {
				t.Errorf("append after recovery: %v", err)
			}
		})
	}
}

// TestCheckpointFailureKeepsOldSegmentLive verifies that when a checkpoint
// fails before its commit point, the log keeps appending to the old segment
// and nothing acknowledged is lost.
func TestCheckpointFailureKeepsOldSegmentLive(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t")
	setup := populate(t, dir, faultfs.OS{})
	setup.Close()

	// Fail the very first mutating op of the checkpoint (the temp snapshot
	// create).
	in := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{Op: faultfs.OpAny, Nth: 1, Mode: faultfs.Fail})
	l, _, err := Open(dir, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint([]byte("doomed")); err == nil {
		t.Fatal("checkpoint succeeded despite injected failure")
	}
	// Appends continue on the old segment.
	if _, err := l.Append(rec(0, []float64{8}, []float64{9}, 8)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, rc, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(rc.Snapshot) != "base-snapshot" || len(rc.Records) != 6 {
		t.Fatalf("recovery = snapshot %q, %d records; want base-snapshot, 6", rc.Snapshot, len(rc.Records))
	}
}

// TestCorruptedSnapshotSurfacedNotFatal verifies a damaged checkpoint file is
// reported via Recovery.SnapshotErr while the WAL tail is still delivered.
func TestCorruptedSnapshotSurfacedNotFatal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t")
	l := populate(t, dir, faultfs.OS{})
	l.Close()
	if err := os.Remove(filepath.Join(dir, snapName(2))); err != nil {
		t.Fatal(err)
	}
	_, rc, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with missing snapshot failed hard: %v", err)
	}
	if rc.SnapshotErr == nil {
		t.Error("missing snapshot not surfaced")
	}
	if len(rc.Records) != 5 {
		t.Errorf("tail records = %d, want 5", len(rc.Records))
	}
}
