package wal

// Snapshot shipping: a table's durable state (checkpoint MANIFEST + snapshot
// + live segment tail) serialized into one self-verifying stream, so a warm
// replica can restore it and recover bit-identically to the source.
//
// Archive layout (little-endian):
//
//	magic   "STHSHIP1"
//	frame*  nameLen:u16  name  dataLen:u32  crc:u32  data
//	end     nameLen:u16(=0xFFFF)  files:u32  crc:u32(over files field)
//
// The CRC of a file frame covers name + data, so any corruption — a flipped
// bit in transit, a short read, a reordered chunk — fails verification. The
// end frame carries the file count, so a stream cut between frames (the
// source died mid-ship) is detected as torn rather than accepted short.
//
// RestoreArchive mirrors the checkpoint protocol's commit discipline: data
// files are written and fsynced first, the MANIFEST is written last via
// temp + fsync + rename + dir-fsync. A restore that fails anywhere before
// the rename leaves no MANIFEST, which wal.Open treats as a fresh directory
// — the replica cleanly refuses to serve a torn restore.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"

	"sthist/internal/faultfs"
)

var shipMagic = []byte("STHSHIP1")

const (
	// endFrameName marks the archive trailer in the nameLen field; real
	// names are capped far below it.
	endFrameMark = 0xFFFF
	// maxShipName bounds a file name inside an archive.
	maxShipName = 255
	// MaxShipFileBytes bounds one shipped file. Checkpoint snapshots are
	// histogram JSON (well under a MB at the bucket budgets this repo runs);
	// 1 GiB is a corruption tripwire, not a real limit.
	MaxShipFileBytes = 1 << 30
)

// shipFrame writes one named file frame.
func shipFrame(w io.Writer, name string, data []byte) error {
	if len(name) == 0 || len(name) > maxShipName {
		return fmt.Errorf("wal: ship: bad file name %q", name)
	}
	if len(data) > MaxShipFileBytes {
		return fmt.Errorf("wal: ship: file %q is %d bytes, max %d", name, len(data), MaxShipFileBytes)
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(name)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE([]byte(name))
	crc = crc32.Update(crc, crc32.IEEETable, data)
	var meta [8]byte
	binary.LittleEndian.PutUint32(meta[0:], uint32(len(data)))
	binary.LittleEndian.PutUint32(meta[4:], crc)
	if _, err := w.Write(meta[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// shipEnd writes the archive trailer.
func shipEnd(w io.Writer, files int) error {
	var buf [10]byte
	binary.LittleEndian.PutUint16(buf[0:], endFrameMark)
	binary.LittleEndian.PutUint32(buf[2:], uint32(files))
	binary.LittleEndian.PutUint32(buf[6:], crc32.ChecksumIEEE(buf[2:6]))
	_, err := w.Write(buf[:])
	return err
}

// WriteArchive serializes the log's current durable state — a MANIFEST
// consistent with this instant, the live checkpoint snapshot (when one
// exists) and the active segment — into w. It holds the log's lock for the
// duration, so the archive is a consistent cut: no append or checkpoint can
// interleave. Callers that must also freeze the histogram against the WAL
// position (httpapi) hold their own outer lock, as for Append.
func (l *Log) WriteArchive(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := manifest{Version: 1, Gen: l.gen, Checkpoint: l.snap, WAL: l.seg, LastSeq: l.lastSeq}
	mdata, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wal: ship: encoding manifest: %w", err)
	}
	if _, err := w.Write(shipMagic); err != nil {
		return fmt.Errorf("wal: ship: %w", err)
	}
	files := 1
	if err := shipFrame(w, manifestName, mdata); err != nil {
		return fmt.Errorf("wal: ship: manifest: %w", err)
	}
	if l.snap != "" {
		snap, err := faultfs.ReadFile(l.fs, l.path(l.snap))
		if err != nil {
			return fmt.Errorf("wal: ship: reading checkpoint: %w", err)
		}
		if err := shipFrame(w, l.snap, snap); err != nil {
			return fmt.Errorf("wal: ship: checkpoint: %w", err)
		}
		files++
	}
	seg, err := faultfs.ReadFile(l.fs, l.path(l.seg))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: ship: reading segment: %w", err)
	}
	if err := shipFrame(w, l.seg, seg); err != nil {
		return fmt.Errorf("wal: ship: segment: %w", err)
	}
	files++
	if err := shipEnd(w, files); err != nil {
		return fmt.Errorf("wal: ship: trailer: %w", err)
	}
	return nil
}

// HasState reports whether dir already holds a committed MANIFEST — i.e.
// opening it would recover existing durable state rather than start fresh.
// Warm-start logic uses this to skip snapshot fetching when local state
// exists (RestoreArchive would refuse to clobber it anyway).
func HasState(dir string) bool {
	_, err := os.Stat(dir + string(os.PathSeparator) + manifestName)
	return err == nil
}

// shipFile is one decoded archive entry.
type shipFile struct {
	name string
	data []byte
}

// readArchive decodes and fully verifies an archive stream. Any truncation,
// checksum failure or structural anomaly is an error — a torn ship must
// never be partially believed.
func readArchive(r io.Reader) ([]shipFile, error) {
	magic := make([]byte, len(shipMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("wal: ship: reading magic: %w", err)
	}
	if !bytes.Equal(magic, shipMagic) {
		return nil, fmt.Errorf("wal: ship: bad magic %q", magic)
	}
	var files []shipFile
	for {
		var hdr [2]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("wal: ship: torn stream (missing trailer): %w", err)
		}
		nameLen := binary.LittleEndian.Uint16(hdr[:])
		if nameLen == endFrameMark {
			var end [8]byte
			if _, err := io.ReadFull(r, end[:]); err != nil {
				return nil, fmt.Errorf("wal: ship: torn trailer: %w", err)
			}
			count := binary.LittleEndian.Uint32(end[0:4])
			if crc32.ChecksumIEEE(end[0:4]) != binary.LittleEndian.Uint32(end[4:8]) {
				return nil, fmt.Errorf("wal: ship: trailer checksum mismatch")
			}
			if int(count) != len(files) {
				return nil, fmt.Errorf("wal: ship: trailer names %d files, stream carried %d", count, len(files))
			}
			return files, nil
		}
		if nameLen == 0 || nameLen > maxShipName {
			return nil, fmt.Errorf("wal: ship: bad name length %d", nameLen)
		}
		frame := make([]byte, int(nameLen)+8)
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil, fmt.Errorf("wal: ship: torn frame header: %w", err)
		}
		name := string(frame[:nameLen])
		if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
			return nil, fmt.Errorf("wal: ship: unsafe file name %q", name)
		}
		dataLen := binary.LittleEndian.Uint32(frame[nameLen : nameLen+4])
		wantCRC := binary.LittleEndian.Uint32(frame[nameLen+4 : nameLen+8])
		if dataLen > MaxShipFileBytes {
			return nil, fmt.Errorf("wal: ship: file %q claims %d bytes, max %d", name, dataLen, MaxShipFileBytes)
		}
		data := make([]byte, dataLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("wal: ship: torn file %q: %w", name, err)
		}
		crc := crc32.ChecksumIEEE(frame[:nameLen])
		crc = crc32.Update(crc, crc32.IEEETable, data)
		if crc != wantCRC {
			return nil, fmt.Errorf("wal: ship: checksum mismatch in %q", name)
		}
		files = append(files, shipFile{name: name, data: data})
	}
}

// RestoreArchive verifies the archive in r and materializes it into dir,
// which must not already hold a MANIFEST (a restore never clobbers live
// state). The MANIFEST is committed last, atomically, after every data file
// is durably written — so a failure at any point leaves either a fresh
// directory (no MANIFEST: wal.Open starts empty, the replica refuses to
// claim the state) or the complete state. On success wal.Open on dir
// recovers bit-identically to the source at the instant of WriteArchive.
func RestoreArchive(dir string, opts Options, r io.Reader) error {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	files, err := readArchive(r)
	if err != nil {
		return err
	}
	var m manifest
	var mdata []byte
	rest := make(map[string][]byte, len(files))
	for _, f := range files {
		if f.name == manifestName {
			if mdata != nil {
				return fmt.Errorf("wal: ship: duplicate manifest")
			}
			mdata = f.data
			if err := json.Unmarshal(f.data, &m); err != nil {
				return fmt.Errorf("wal: ship: corrupt manifest: %w", err)
			}
			continue
		}
		if _, dup := rest[f.name]; dup {
			return fmt.Errorf("wal: ship: duplicate file %q", f.name)
		}
		rest[f.name] = f.data
	}
	if mdata == nil {
		return fmt.Errorf("wal: ship: archive has no manifest")
	}
	if m.WAL == "" {
		return fmt.Errorf("wal: ship: manifest names no segment")
	}
	if _, ok := rest[m.WAL]; !ok {
		return fmt.Errorf("wal: ship: manifest names segment %q, absent from archive", m.WAL)
	}
	if m.Checkpoint != "" {
		if _, ok := rest[m.Checkpoint]; !ok {
			return fmt.Errorf("wal: ship: manifest names checkpoint %q, absent from archive", m.Checkpoint)
		}
	}
	if len(rest) > 2 {
		return fmt.Errorf("wal: ship: archive carries %d files beyond the manifest, want at most 2", len(rest))
	}

	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: ship: creating %s: %w", dir, err)
	}
	join := func(name string) string { return dir + string(os.PathSeparator) + name }
	if _, err := fsys.Stat(join(manifestName)); err == nil {
		return fmt.Errorf("wal: ship: %s already holds a manifest; refusing to clobber", dir)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("wal: ship: probing %s: %w", dir, err)
	}

	// Data files first, each durably. Deterministic order: segment, then
	// checkpoint (not map order).
	names := []string{m.WAL}
	if m.Checkpoint != "" {
		names = append(names, m.Checkpoint)
	}
	for _, name := range names {
		if err := writeFileSync(fsys, join(name), rest[name]); err != nil {
			return fmt.Errorf("wal: ship: writing %q: %w", name, err)
		}
	}
	// Commit point: MANIFEST last, atomically.
	tmp := join(manifestName + ".tmp")
	if err := writeFileSync(fsys, tmp, mdata); err != nil {
		return fmt.Errorf("wal: ship: writing manifest temp: %w", err)
	}
	if err := fsys.Rename(tmp, join(manifestName)); err != nil {
		return fmt.Errorf("wal: ship: committing manifest: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: ship: syncing %s: %w", dir, err)
	}
	return nil
}

// writeFileSync creates/truncates path with data and fsyncs it.
func writeFileSync(fsys faultfs.FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
