// Package wal gives the serving stack crash-safety: every accepted feedback
// record is appended to a checksummed, length-prefixed write-ahead log
// before it is applied to the histogram, and periodic checkpoints atomically
// rotate a histogram snapshot plus a fresh (empty) log segment so the tail
// that must be replayed after a crash stays short.
//
// Directory layout (one directory per table):
//
//	MANIFEST                  commit record: which checkpoint/segment are live
//	checkpoint-%08d.snap      histogram snapshot (sthist.SaveHistogram JSON)
//	wal-%08d.log              append-only segment of framed feedback records
//
// The MANIFEST is replaced by write-temp + fsync + rename + fsync(dir), so a
// crash anywhere during a checkpoint leaves the previous (checkpoint,
// segment) pair intact and fully replayable: rotation is all-or-nothing.
// Segment frames carry CRC-32 checksums; a torn final record (the crash
// interrupted an append) is detected and dropped, and anything beyond a
// corrupt frame is discarded or skipped per CorruptPolicy.
//
// All filesystem access goes through faultfs.FS, so the fault-injection
// tests can fail, short-write, or corrupt any single operation and verify
// the protocol's atomicity.
package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"sthist/internal/faultfs"
)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acknowledged record is lost
	// to a crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: an OS crash can lose the last few
	// records (a process crash cannot — the data is in the page cache).
	SyncNever
)

// Options configures Open.
type Options struct {
	// FS is the filesystem implementation; nil means the real one.
	FS faultfs.FS
	// Sync is the append fsync policy.
	Sync SyncPolicy
	// Corrupt is the replay policy for checksum failures.
	Corrupt CorruptPolicy
	// Observer, when non-nil, receives a timing callback per durability
	// operation. Callbacks run synchronously under the log's lock and must
	// not re-enter the Log.
	Observer Observer
}

// Observer receives the durability-path timings the telemetry plane exports:
// how long appends, fsyncs and checkpoint rotations take, and whether they
// failed. internal/telemetry's WALMetrics satisfies this interface.
type Observer interface {
	// ObserveAppend reports one record append (framing + write, excluding
	// the fsync, which is reported separately).
	ObserveAppend(d time.Duration, err error)
	// ObserveSync reports one append-path fsync.
	ObserveSync(d time.Duration, err error)
	// ObserveCheckpoint reports one checkpoint rotation attempt.
	ObserveCheckpoint(d time.Duration, err error)
}

// Recovery reports what Open reconstructed from the directory.
type Recovery struct {
	// Snapshot is the last durable checkpoint (nil when none was taken).
	Snapshot []byte
	// SnapshotErr is set when the manifest names a checkpoint that could not
	// be read. The caller decides whether to fail or rebuild from scratch.
	SnapshotErr error
	// Records is the replayable WAL tail: every feedback accepted after the
	// snapshot, in order.
	Records []Record
	// Torn reports that the segment ended in a torn or corrupt frame, which
	// was dropped (expected after a crash mid-append).
	Torn bool
	// Skipped counts corrupt frames skipped under SkipCorrupt.
	Skipped int
}

// manifest is the JSON commit record.
type manifest struct {
	Version    int    `json:"version"`
	Gen        uint64 `json:"gen"`
	Checkpoint string `json:"checkpoint,omitempty"`
	WAL        string `json:"wal"`
	LastSeq    uint64 `json:"last_seq"`
}

const manifestName = "MANIFEST"

func segName(gen uint64) string  { return fmt.Sprintf("wal-%08d.log", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("checkpoint-%08d.snap", gen) }

// Log is one table's write-ahead log. Methods are safe for concurrent use,
// though callers that need append/checkpoint ordering with respect to
// histogram mutation must provide their own outer lock.
type Log struct {
	mu      sync.Mutex
	fs      faultfs.FS   // immutable after Open
	dir     string       // immutable after Open
	opts    Options      // immutable after Open, except Observer (SetObserver); all access under mu
	f       faultfs.File // active segment, append mode; guarded by mu
	seg     string       // active segment file name; guarded by mu
	snap    string       // live checkpoint file name ("" when none); guarded by mu
	gen     uint64       // guarded by mu
	lastSeq uint64       // guarded by mu
	err     error        // sticky append-path error, cleared by Checkpoint; guarded by mu
	buf     []byte       // frame scratch; guarded by mu
}

// Open opens (creating if needed) the log directory and reconstructs the
// durable state: the last checkpoint snapshot plus the replayable segment
// tail. The returned Log appends to the live segment, truncating a torn
// tail first so new frames start at a clean boundary.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if opts.FS == nil {
		opts.FS = faultfs.OS{}
	}
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{fs: fsys, dir: dir, opts: opts}
	rec := &Recovery{}

	mdata, err := faultfs.ReadFile(fsys, l.path(manifestName))
	switch {
	case err == nil:
		var m manifest
		if jerr := json.Unmarshal(mdata, &m); jerr != nil {
			return nil, nil, fmt.Errorf("wal: corrupt manifest in %s: %w", dir, jerr)
		}
		l.gen, l.seg, l.snap, l.lastSeq = m.Gen, m.WAL, m.Checkpoint, m.LastSeq
		if l.snap != "" {
			snap, serr := faultfs.ReadFile(fsys, l.path(l.snap))
			if serr != nil {
				rec.SnapshotErr = serr
			} else {
				rec.Snapshot = snap
			}
		}
		data, rerr := faultfs.ReadFile(fsys, l.path(l.seg))
		if rerr != nil && !os.IsNotExist(rerr) {
			return nil, nil, fmt.Errorf("wal: reading segment %s: %w", l.seg, rerr)
		}
		var cleanLen int64
		rec.Records, cleanLen, rec.Skipped, rec.Torn = Replay(data, opts.Corrupt)
		if n := len(rec.Records); n > 0 && rec.Records[n-1].Seq > l.lastSeq {
			l.lastSeq = rec.Records[n-1].Seq
		}
		if cleanLen < int64(len(data)) {
			// Drop the torn/corrupt tail so appends resume at a frame
			// boundary.
			if terr := fsys.Truncate(l.path(l.seg), cleanLen); terr != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", l.seg, terr)
			}
		}
		// Reopen for append without O_CREATE when the segment exists, so a
		// healthy reopen performs no mutating filesystem operations.
		flags := os.O_WRONLY | os.O_APPEND
		if os.IsNotExist(rerr) {
			flags |= os.O_CREATE
		}
		f, oerr := fsys.OpenFile(l.path(l.seg), flags, 0o644)
		if oerr != nil {
			return nil, nil, fmt.Errorf("wal: opening segment %s: %w", l.seg, oerr)
		}
		l.f = f

	case os.IsNotExist(err):
		// Fresh directory: create segment 1 and commit a manifest for it.
		l.gen, l.seg = 1, segName(1)
		f, cerr := fsys.OpenFile(l.path(l.seg), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if cerr != nil {
			return nil, nil, fmt.Errorf("wal: creating segment: %w", cerr)
		}
		l.f = f
		if werr := l.writeManifestLocked(); werr != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("wal: committing initial manifest: %w", werr)
		}

	default:
		return nil, nil, fmt.Errorf("wal: reading manifest: %w", err)
	}
	return l, rec, nil
}

func (l *Log) path(name string) string { return l.dir + string(os.PathSeparator) + name }

// writeManifestLocked atomically replaces MANIFEST with the current state.
// The caller holds l.mu (or, in Open, exclusively owns the un-published Log).
func (l *Log) writeManifestLocked() error {
	m := manifest{Version: 1, Gen: l.gen, Checkpoint: l.snap, WAL: l.seg, LastSeq: l.lastSeq}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return l.atomicWrite(manifestName, data)
}

// atomicWrite writes name via temp file + fsync + rename + dir fsync.
func (l *Log) atomicWrite(name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := l.fs.OpenFile(l.path(tmp), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(l.path(tmp), l.path(name)); err != nil {
		return err
	}
	return l.fs.SyncDir(l.dir)
}

// Append frames r, writes it to the active segment and (per policy) fsyncs.
// The record's sequence number is assigned by the log — the passed Seq is
// ignored — and returned. After a write or sync failure the segment's tail
// integrity is unknown, so the error is sticky: further Appends fail until
// a successful Checkpoint rotates to a fresh segment.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var one [1]Record
	one[0] = r
	return l.appendBatchLocked(one[:])
}

// AppendBatch is the group-commit primitive: it frames every record in recs,
// writes all frames to the active segment with a single Write, and performs
// at most one fsync for the whole batch (per policy). Sequence numbers are
// assigned contiguously by the log — recs[i] becomes firstSeq+i, and the
// passed Seq fields are ignored. An empty batch is a no-op.
//
// On error nothing is acknowledged and the sticky-error rule applies
// exactly as for Append. As with a failed single append, a crash or write
// failure mid-batch can still leave a durable prefix of the batch's frames;
// recovery replays that prefix (and drops the torn frame that follows), so
// callers get at-least-once semantics either way. The Observer sees one
// ObserveAppend and at most one ObserveSync per batch — fsyncs-per-record
// under load is how group-commit effectiveness is measured.
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendBatchLocked(recs)
}

func (l *Log) appendBatchLocked(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	if l.err != nil {
		return 0, fmt.Errorf("wal: log is failed (checkpoint to recover): %w", l.err)
	}
	obs := l.opts.Observer
	var start time.Time
	if obs != nil {
		start = time.Now()
	}
	firstSeq := l.lastSeq + 1
	buf := l.buf[:0]
	var err error
	for i := range recs {
		r := recs[i]
		r.Seq = firstSeq + uint64(i)
		buf, err = appendFrame(buf, r)
		if err != nil {
			if obs != nil {
				obs.ObserveAppend(time.Since(start), err)
			}
			return 0, err
		}
	}
	l.buf = buf
	if _, err := l.f.Write(buf); err != nil {
		l.err = err
		if obs != nil {
			obs.ObserveAppend(time.Since(start), err)
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if obs != nil {
		obs.ObserveAppend(time.Since(start), nil)
	}
	if l.opts.Sync == SyncAlways {
		if obs != nil {
			start = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			l.err = err
			if obs != nil {
				obs.ObserveSync(time.Since(start), err)
			}
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		if obs != nil {
			obs.ObserveSync(time.Since(start), nil)
		}
	}
	l.lastSeq = firstSeq + uint64(len(recs)) - 1
	return firstSeq, nil
}

// SetObserver replaces the log's observer. The observability layers use it
// to interpose on an already-open log — e.g. chaining a per-request tracing
// tap in front of the metrics observer — without reopening. The swap is
// serialized against appends and checkpoints by the log's lock; callbacks on
// the new observer follow the same rules as Options.Observer (synchronous,
// under the lock, no re-entry).
func (l *Log) SetObserver(o Observer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.opts.Observer = o
}

// CurrentObserver returns the observer receiving durability callbacks, or
// nil. Lets a wrapper chain to whatever was installed before it.
func (l *Log) CurrentObserver() Observer {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.Observer
}

// Checkpoint makes snapshot the new recovery base and starts an empty
// segment, atomically: the manifest rename is the commit point, and until it
// happens recovery still sees the previous checkpoint plus the complete old
// segment. On success the previous checkpoint/segment files are deleted
// (best-effort) and any sticky append error is cleared — the snapshot
// captures the in-memory state the failed segment could not make durable.
func (l *Log) Checkpoint(snapshot []byte) (err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if obs := l.opts.Observer; obs != nil {
		start := time.Now()
		defer func() { obs.ObserveCheckpoint(time.Since(start), err) }()
	}
	newGen := l.gen + 1
	newSnap, newSeg := snapName(newGen), segName(newGen)

	if err := l.atomicWrite(newSnap, snapshot); err != nil {
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	f, err := l.fs.OpenFile(l.path(newSeg), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: syncing segment: %w", err)
	}

	oldSnap, oldSeg, oldGen := l.snap, l.seg, l.gen
	l.gen, l.snap, l.seg = newGen, newSnap, newSeg
	if err := l.writeManifestLocked(); err != nil {
		// Not committed: restore state, keep appending to the old segment.
		l.gen, l.snap, l.seg = oldGen, oldSnap, oldSeg
		_ = f.Close()
		return fmt.Errorf("wal: committing checkpoint: %w", err)
	}

	// Committed. Swap the active segment and clear any sticky error.
	if l.f != nil {
		_ = l.f.Close() // superseded segment; the new segment is already durable
	}
	l.f = f
	l.err = nil
	if oldSnap != "" {
		_ = l.fs.Remove(l.path(oldSnap)) // best-effort; stray files are ignored
	}
	if oldSeg != "" && oldSeg != newSeg {
		_ = l.fs.Remove(l.path(oldSeg))
	}
	return nil
}

// Err returns the sticky append-path error, or nil when the log is healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// LastSeq returns the sequence number of the last durably appended record
// (monotonic across checkpoints and restarts).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	serr := l.f.Sync()
	cerr := l.f.Close()
	l.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}
