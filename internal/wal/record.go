package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// A segment is a sequence of frames:
//
//	frame   := length:u32le  crc:u32le  payload
//	payload := seq:u64le  actual:f64le(bits)  dims:u32le
//	           lo[0..dims):f64le(bits)  hi[0..dims):f64le(bits)
//
// length covers the payload only; crc is CRC-32 (IEEE) of the payload.
// Floats are stored as their IEEE-754 bit patterns, so replay reconstructs
// the exact values fed to the estimator — bit-identical recovery depends on
// this. A frame that extends past the end of the segment is a torn tail
// (the crash interrupted the append) and replay stops cleanly before it.

const (
	frameHeader = 8 // length + crc

	// MaxRecordBytes bounds a single payload. A length field above this is
	// treated as corruption rather than an instruction to allocate.
	MaxRecordBytes = 1 << 20

	// maxDims bounds the dimensionality of a record; consistent with
	// MaxRecordBytes (20 + 16*dims <= MaxRecordBytes).
	maxDims = 4096
)

// Record is one accepted feedback observation: the query rectangle and the
// true cardinality the client reported. Seq is assigned by Log.Append and is
// strictly increasing across checkpoints.
type Record struct {
	Seq    uint64
	Lo, Hi []float64
	Actual float64
}

// payloadSize returns the encoded payload length for dims dimensions.
func payloadSize(dims int) int { return 8 + 8 + 4 + 16*dims }

// appendFrame appends the framed encoding of r to dst.
func appendFrame(dst []byte, r Record) ([]byte, error) {
	dims := len(r.Lo)
	if dims == 0 || dims != len(r.Hi) {
		return dst, fmt.Errorf("wal: record has lo/hi dims %d/%d", dims, len(r.Hi))
	}
	if dims > maxDims {
		return dst, fmt.Errorf("wal: record has %d dims, max %d", dims, maxDims)
	}
	n := payloadSize(dims)
	start := len(dst)
	dst = append(dst, make([]byte, frameHeader+n)...)
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint64(payload[0:], r.Seq)
	binary.LittleEndian.PutUint64(payload[8:], math.Float64bits(r.Actual))
	binary.LittleEndian.PutUint32(payload[16:], uint32(dims))
	off := 20
	for _, v := range r.Lo {
		binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
		off += 8
	}
	for _, v := range r.Hi {
		binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// decodePayload decodes a checksummed payload into a Record.
func decodePayload(payload []byte) (Record, error) {
	if len(payload) < 20 {
		return Record{}, fmt.Errorf("wal: payload too short (%d bytes)", len(payload))
	}
	dims := int(binary.LittleEndian.Uint32(payload[16:]))
	if dims == 0 || dims > maxDims {
		return Record{}, fmt.Errorf("wal: payload dims %d out of range", dims)
	}
	if len(payload) != payloadSize(dims) {
		return Record{}, fmt.Errorf("wal: payload length %d != %d for %d dims", len(payload), payloadSize(dims), dims)
	}
	r := Record{
		Seq:    binary.LittleEndian.Uint64(payload[0:]),
		Actual: math.Float64frombits(binary.LittleEndian.Uint64(payload[8:])),
		Lo:     make([]float64, dims),
		Hi:     make([]float64, dims),
	}
	off := 20
	for d := 0; d < dims; d++ {
		r.Lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	for d := 0; d < dims; d++ {
		r.Hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	return r, nil
}

// CorruptPolicy controls how replay treats a frame whose checksum or
// structure is invalid.
type CorruptPolicy int

const (
	// StopAtCorrupt ends replay at the first invalid frame. Everything after
	// it is discarded — the conservative default, since bytes after a
	// corruption are untrustworthy.
	StopAtCorrupt CorruptPolicy = iota
	// SkipCorrupt skips an invalid frame whose length field is still
	// plausible and keeps replaying. When the length field itself is
	// implausible (zero or beyond MaxRecordBytes) there is no safe resync
	// point and replay stops regardless.
	SkipCorrupt
)

// Replay decodes the frames of a segment.
//
// It returns the decoded records, cleanLen (the byte offset just past the
// last structurally complete frame — the safe truncation point for further
// appends), the number of corrupt frames skipped under SkipCorrupt, and
// torn=true when replay ended before the end of data (torn tail or
// corruption under StopAtCorrupt). Replay never fails: a damaged segment
// yields the longest trustworthy prefix.
func Replay(data []byte, policy CorruptPolicy) (recs []Record, cleanLen int64, skipped int, torn bool) {
	off := 0
	for {
		if off == len(data) {
			return recs, int64(off), skipped, false
		}
		if len(data)-off < frameHeader {
			return recs, int64(off), skipped, true // torn header
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		if length == 0 || length > MaxRecordBytes {
			return recs, int64(off), skipped, true // no safe resync
		}
		if len(data)-off-frameHeader < length {
			return recs, int64(off), skipped, true // torn payload
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		rec, derr := decodePayload(payload)
		if crc32.ChecksumIEEE(payload) != wantCRC || derr != nil {
			if policy == SkipCorrupt {
				skipped++
				off += frameHeader + length
				continue
			}
			return recs, int64(off), skipped, true
		}
		recs = append(recs, rec)
		off += frameHeader + length
	}
}
