package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// A segment is a sequence of frames:
//
//	frame    := length:u32le  crc:u32le  payload
//	payload  := feedback | reseed
//	feedback := seq:u64le  actual:f64le(bits)  dims:u32le
//	            lo[0..dims):f64le(bits)  hi[0..dims):f64le(bits)
//	reseed   := seq:u64le  zero:u64le  marker:u32le(=0xFFFFFFFF)  blob
//
// length covers the payload only; crc is CRC-32 (IEEE) of the payload.
// Floats are stored as their IEEE-754 bit patterns, so replay reconstructs
// the exact values fed to the estimator — bit-identical recovery depends on
// this. A frame that extends past the end of the segment is a torn tail
// (the crash interrupted the append) and replay stops cleanly before it.
//
// Reseed frames journal a wholesale histogram replacement (the drift
// adaptation loop promoting a re-clustered candidate): the blob is the
// serialized histogram exactly as promoted, so replay restores the same
// state the serving path switched to. They share the feedback payload's
// 20-byte prefix, with the dims field carved out as a kind marker —
// 0xFFFFFFFF can never be a real dimensionality (maxDims caps it far lower),
// so old feedback frames and reseed frames are unambiguous.

const (
	frameHeader = 8 // length + crc

	// MaxRecordBytes bounds a single payload. A length field above this is
	// treated as corruption rather than an instruction to allocate.
	MaxRecordBytes = 1 << 20

	// maxDims bounds the dimensionality of a record; consistent with
	// MaxRecordBytes (20 + 16*dims <= MaxRecordBytes).
	maxDims = 4096

	// reseedMarker occupies the dims field of a reseed payload.
	reseedMarker = 0xFFFFFFFF

	// MaxBlobBytes bounds a reseed blob so the whole payload stays within
	// MaxRecordBytes.
	MaxBlobBytes = MaxRecordBytes - 20
)

// Kind discriminates WAL record types.
type Kind uint8

const (
	// KindFeedback is one accepted feedback observation — the zero value,
	// so existing construction sites remain correct.
	KindFeedback Kind = iota
	// KindReseed journals an atomic histogram replacement: Blob holds the
	// serialized promoted histogram (sthist.SaveHistogram JSON).
	KindReseed
)

func (k Kind) String() string {
	switch k {
	case KindFeedback:
		return "feedback"
	case KindReseed:
		return "reseed"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Record is one WAL entry. For KindFeedback it carries the query rectangle
// and the true cardinality the client reported; for KindReseed it carries
// the serialized replacement histogram in Blob. Seq is assigned by
// Log.Append and is strictly increasing across checkpoints.
type Record struct {
	Seq    uint64
	Lo, Hi []float64
	Actual float64
	Kind   Kind
	Blob   []byte // KindReseed only
}

// payloadSize returns the encoded payload length for dims dimensions.
func payloadSize(dims int) int { return 8 + 8 + 4 + 16*dims }

// appendFrame appends the framed encoding of r to dst.
func appendFrame(dst []byte, r Record) ([]byte, error) {
	if r.Kind == KindReseed {
		return appendReseedFrame(dst, r)
	}
	if r.Kind != KindFeedback {
		return dst, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	dims := len(r.Lo)
	if dims == 0 || dims != len(r.Hi) {
		return dst, fmt.Errorf("wal: record has lo/hi dims %d/%d", dims, len(r.Hi))
	}
	if dims > maxDims {
		return dst, fmt.Errorf("wal: record has %d dims, max %d", dims, maxDims)
	}
	n := payloadSize(dims)
	start := len(dst)
	dst = append(dst, make([]byte, frameHeader+n)...)
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint64(payload[0:], r.Seq)
	binary.LittleEndian.PutUint64(payload[8:], math.Float64bits(r.Actual))
	binary.LittleEndian.PutUint32(payload[16:], uint32(dims))
	off := 20
	for _, v := range r.Lo {
		binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
		off += 8
	}
	for _, v := range r.Hi {
		binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// appendReseedFrame appends the framed encoding of a reseed record to dst.
func appendReseedFrame(dst []byte, r Record) ([]byte, error) {
	if len(r.Blob) == 0 {
		return dst, fmt.Errorf("wal: reseed record has empty blob")
	}
	if len(r.Blob) > MaxBlobBytes {
		return dst, fmt.Errorf("wal: reseed blob is %d bytes, max %d", len(r.Blob), MaxBlobBytes)
	}
	n := 20 + len(r.Blob)
	start := len(dst)
	dst = append(dst, make([]byte, frameHeader+n)...)
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint64(payload[0:], r.Seq)
	binary.LittleEndian.PutUint64(payload[8:], 0)
	binary.LittleEndian.PutUint32(payload[16:], reseedMarker)
	copy(payload[20:], r.Blob)
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// decodePayload decodes a checksummed payload into a Record.
func decodePayload(payload []byte) (Record, error) {
	if len(payload) < 20 {
		return Record{}, fmt.Errorf("wal: payload too short (%d bytes)", len(payload))
	}
	dims := int(binary.LittleEndian.Uint32(payload[16:]))
	if uint32(dims) == reseedMarker {
		if len(payload) == 20 {
			return Record{}, fmt.Errorf("wal: reseed payload has empty blob")
		}
		return Record{
			Seq:  binary.LittleEndian.Uint64(payload[0:]),
			Kind: KindReseed,
			Blob: append([]byte(nil), payload[20:]...),
		}, nil
	}
	if dims == 0 || dims > maxDims {
		return Record{}, fmt.Errorf("wal: payload dims %d out of range", dims)
	}
	if len(payload) != payloadSize(dims) {
		return Record{}, fmt.Errorf("wal: payload length %d != %d for %d dims", len(payload), payloadSize(dims), dims)
	}
	r := Record{
		Seq:    binary.LittleEndian.Uint64(payload[0:]),
		Actual: math.Float64frombits(binary.LittleEndian.Uint64(payload[8:])),
		Lo:     make([]float64, dims),
		Hi:     make([]float64, dims),
	}
	off := 20
	for d := 0; d < dims; d++ {
		r.Lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	for d := 0; d < dims; d++ {
		r.Hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	return r, nil
}

// CorruptPolicy controls how replay treats a frame whose checksum or
// structure is invalid.
type CorruptPolicy int

const (
	// StopAtCorrupt ends replay at the first invalid frame. Everything after
	// it is discarded — the conservative default, since bytes after a
	// corruption are untrustworthy.
	StopAtCorrupt CorruptPolicy = iota
	// SkipCorrupt skips an invalid frame whose length field is still
	// plausible and keeps replaying. When the length field itself is
	// implausible (zero or beyond MaxRecordBytes) there is no safe resync
	// point and replay stops regardless.
	SkipCorrupt
)

// Replay decodes the frames of a segment.
//
// It returns the decoded records, cleanLen (the byte offset just past the
// last structurally complete frame — the safe truncation point for further
// appends), the number of corrupt frames skipped under SkipCorrupt, and
// torn=true when replay ended before the end of data (torn tail or
// corruption under StopAtCorrupt). Replay never fails: a damaged segment
// yields the longest trustworthy prefix.
func Replay(data []byte, policy CorruptPolicy) (recs []Record, cleanLen int64, skipped int, torn bool) {
	off := 0
	for {
		if off == len(data) {
			return recs, int64(off), skipped, false
		}
		if len(data)-off < frameHeader {
			return recs, int64(off), skipped, true // torn header
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		if length == 0 || length > MaxRecordBytes {
			return recs, int64(off), skipped, true // no safe resync
		}
		if len(data)-off-frameHeader < length {
			return recs, int64(off), skipped, true // torn payload
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		rec, derr := decodePayload(payload)
		if crc32.ChecksumIEEE(payload) != wantCRC || derr != nil {
			if policy == SkipCorrupt {
				skipped++
				off += frameHeader + length
				continue
			}
			return recs, int64(off), skipped, true
		}
		recs = append(recs, rec)
		off += frameHeader + length
	}
}
