package wal

import (
	"bytes"
	"path/filepath"
	"testing"

	"sthist/internal/faultfs"
)

// TestReseedRecordRoundTrip appends a mix of feedback and reseed records and
// checks replay returns them in order with kinds, blobs and sequence numbers
// intact.
func TestReseedRecordRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t")
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"fake":"histogram"}`)
	if _, err := l.Append(Record{Lo: []float64{1, 2}, Hi: []float64{3, 4}, Actual: 5}); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(Record{Kind: KindReseed, Blob: blob})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("reseed seq = %d, want 2", seq)
	}
	if _, err := l.Append(Record{Lo: []float64{6, 7}, Hi: []float64{8, 9}, Actual: 10}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rc, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rc.Records))
	}
	kinds := []Kind{KindFeedback, KindReseed, KindFeedback}
	for i, r := range rc.Records {
		if r.Kind != kinds[i] {
			t.Errorf("record %d kind = %v, want %v", i, r.Kind, kinds[i])
		}
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	if !bytes.Equal(rc.Records[1].Blob, blob) {
		t.Errorf("reseed blob = %q, want %q", rc.Records[1].Blob, blob)
	}
	if rc.Records[2].Actual != 10 {
		t.Errorf("feedback after reseed lost its payload: %+v", rc.Records[2])
	}
}

func TestReseedRecordValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t")
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(Record{Kind: KindReseed}); err == nil {
		t.Error("empty reseed blob accepted")
	}
	if _, err := l.Append(Record{Kind: KindReseed, Blob: make([]byte, MaxBlobBytes+1)}); err == nil {
		t.Error("oversized reseed blob accepted")
	}
	if _, err := l.Append(Record{Kind: Kind(7), Lo: []float64{1}, Hi: []float64{2}}); err == nil {
		t.Error("unknown record kind accepted")
	}
	// Failed validation must not poison the log.
	if _, err := l.Append(Record{Lo: []float64{1}, Hi: []float64{2}, Actual: 3}); err != nil {
		t.Fatalf("append after rejected records: %v", err)
	}
}

// TestReseedTornBlobDropped crashes (via fault injection) in the middle of a
// reseed append and checks recovery drops the torn frame instead of serving
// a truncated histogram blob.
func TestReseedTornBlobDropped(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t")
	// Write 1 is the fresh manifest temp file; write 2 the first append;
	// short-write the reseed append (write 3).
	inj := faultfs.NewInjector(faultfs.OS{},
		faultfs.Fault{Op: faultfs.OpWrite, Nth: 3, Mode: faultfs.ShortWrite})
	l, _, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Lo: []float64{1}, Hi: []float64{2}, Actual: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Kind: KindReseed, Blob: bytes.Repeat([]byte("x"), 4096)}); err == nil {
		t.Fatal("short write not surfaced")
	}
	_ = l.Close()

	_, rc, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Torn {
		t.Error("torn reseed frame not reported")
	}
	if len(rc.Records) != 1 || rc.Records[0].Kind != KindFeedback {
		t.Fatalf("recovered %d records (%+v), want the single clean feedback record", len(rc.Records), rc.Records)
	}
}
