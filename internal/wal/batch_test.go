package wal

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sthist/internal/faultfs"
)

// countingObserver tallies durability-path callbacks; used to verify the
// group-commit contract of one write + one fsync per batch.
type countingObserver struct {
	mu      sync.Mutex
	appends int
	syncs   int
}

func (o *countingObserver) ObserveAppend(time.Duration, error) {
	o.mu.Lock()
	o.appends++
	o.mu.Unlock()
}

func (o *countingObserver) ObserveSync(time.Duration, error) {
	o.mu.Lock()
	o.syncs++
	o.mu.Unlock()
}

func (o *countingObserver) ObserveCheckpoint(time.Duration, error) {}

func (o *countingObserver) counts() (int, int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.appends, o.syncs
}

func batchRecs(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = rec(0, []float64{float64(i)}, []float64{float64(i) + 1}, float64(i))
	}
	return out
}

func TestAppendBatchContiguousSeqsAndReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "orders")
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := l.Append(rec(0, []float64{-1}, []float64{0}, 7)); err != nil || seq != 1 {
		t.Fatalf("single append: seq=%d err=%v", seq, err)
	}
	first, err := l.AppendBatch(batchRecs(4))
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("batch firstSeq = %d, want 2", first)
	}
	if l.LastSeq() != 5 {
		t.Fatalf("LastSeq after batch = %d, want 5", l.LastSeq())
	}
	// An interleaved single append continues the sequence.
	if seq, err := l.Append(rec(0, []float64{9}, []float64{10}, 3)); err != nil || seq != 6 {
		t.Fatalf("append after batch: seq=%d err=%v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rc, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rc.Records) != 6 || rc.Torn {
		t.Fatalf("recovery: %d records, torn=%v", len(rc.Records), rc.Torn)
	}
	for i, r := range rc.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if rc.Records[2].Actual != 1 { // batch element 1 landed at seq 3
		t.Errorf("batch payload misplaced: %+v", rc.Records[2])
	}
}

func TestAppendBatchOneFsyncPerBatch(t *testing.T) {
	obs := &countingObserver{}
	l, _, err := Open(filepath.Join(t.TempDir(), "t"), Options{Sync: SyncAlways, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendBatch(batchRecs(64)); err != nil {
		t.Fatal(err)
	}
	appends, syncs := obs.counts()
	if appends != 1 || syncs != 1 {
		t.Fatalf("batch of 64: appends=%d syncs=%d, want 1/1", appends, syncs)
	}
	for _, r := range batchRecs(8) {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	appends, syncs = obs.counts()
	if appends != 9 || syncs != 9 {
		t.Fatalf("after 8 singles: appends=%d syncs=%d, want 9/9", appends, syncs)
	}
}

func TestAppendBatchEmptyIsNoOp(t *testing.T) {
	obs := &countingObserver{}
	l, _, err := Open(filepath.Join(t.TempDir(), "t"), Options{Sync: SyncAlways, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seq, err := l.AppendBatch(nil)
	if err != nil || seq != 0 {
		t.Fatalf("empty batch: seq=%d err=%v", seq, err)
	}
	if appends, syncs := obs.counts(); appends != 0 || syncs != 0 {
		t.Fatalf("empty batch touched the file: appends=%d syncs=%d", appends, syncs)
	}
	if l.LastSeq() != 0 {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}
}

func TestAppendBatchFailureIsStickyAndTornTailRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t")
	// Write one clean batch, then short-write the second batch's frame block:
	// recovery must keep the first batch plus the durable prefix of the
	// failed batch, and drop the torn frame at the cut.
	inj := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{Op: faultfs.OpWrite, Nth: 3, Mode: faultfs.ShortWrite})
	// Nth 1 = initial manifest temp write, Nth 2 = first batch, Nth 3 = second.
	l, _, err := Open(dir, Options{FS: inj, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(batchRecs(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(batchRecs(5)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("short-written batch err = %v", err)
	}
	// The failure is sticky: nothing else is acknowledged on this segment.
	if _, err := l.Append(rec(0, []float64{0}, []float64{1}, 1)); err == nil {
		t.Fatal("append after failed batch succeeded")
	}
	if l.Err() == nil {
		t.Fatal("sticky error not reported")
	}
	_ = l.Close()

	l2, rc, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// The 3 acknowledged records must be there; the half-written batch may
	// contribute a durable prefix of complete frames (at-least-once), but
	// never more than was handed to AppendBatch, and never out of order.
	if n := len(rc.Records); n < 3 || n >= 3+5 {
		t.Fatalf("recovered %d records, want 3 <= n < 8", n)
	}
	if !rc.Torn {
		t.Error("torn tail not reported")
	}
	for i, r := range rc.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if l2.LastSeq() != uint64(len(rc.Records)) {
		t.Errorf("LastSeq after recovery = %d, want %d", l2.LastSeq(), len(rc.Records))
	}
	// The truncated segment accepts appends again at the next boundary.
	want := uint64(len(rc.Records)) + 1
	if seq, err := l2.Append(rec(0, []float64{4}, []float64{5}, 2)); err != nil || seq != want {
		t.Fatalf("append after recovery: seq=%d err=%v, want seq %d", seq, err, want)
	}
}
