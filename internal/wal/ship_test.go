package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sthist/internal/faultfs"
)

// buildShipSource creates a log with a checkpoint and a post-checkpoint tail
// so an archive carries all three file kinds.
func buildShipSource(t *testing.T, dir string) *Log {
	t.Helper()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := l.Append(Record{Lo: []float64{float64(i)}, Hi: []float64{float64(i + 1)}, Actual: float64(10 * i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint([]byte(`{"snapshot":"state-after-8"}`)); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 20; i++ {
		if _, err := l.Append(Record{Lo: []float64{float64(i), 0}, Hi: []float64{float64(i + 1), 2}, Actual: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

// recoveredState opens dir and returns the recovery plus last sequence — the
// complete durable state a promoted replica would serve from.
func recoveredState(t *testing.T, dir string) (*Recovery, uint64) {
	t.Helper()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("opening %s: %v", dir, err)
	}
	seq := l.LastSeq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return rec, seq
}

func assertBitIdentical(t *testing.T, srcDir, dstDir string) {
	t.Helper()
	srcRec, srcSeq := recoveredState(t, srcDir)
	dstRec, dstSeq := recoveredState(t, dstDir)
	if !bytes.Equal(srcRec.Snapshot, dstRec.Snapshot) {
		t.Fatalf("restored snapshot differs:\n src %q\n dst %q", srcRec.Snapshot, dstRec.Snapshot)
	}
	if !reflect.DeepEqual(srcRec.Records, dstRec.Records) {
		t.Fatalf("restored tail differs: src %d records, dst %d records", len(srcRec.Records), len(dstRec.Records))
	}
	if srcSeq != dstSeq {
		t.Fatalf("restored lastSeq %d != source %d", dstSeq, srcSeq)
	}
}

func TestShipRoundTrip(t *testing.T) {
	srcDir := t.TempDir()
	l := buildShipSource(t, srcDir)
	var buf bytes.Buffer
	if err := l.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	dstDir := filepath.Join(t.TempDir(), "replica")
	if err := RestoreArchive(dstDir, Options{}, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, srcDir, dstDir)
}

// A fresh log (no checkpoint yet) must still ship: manifest + segment only.
func TestShipRoundTripNoCheckpoint(t *testing.T) {
	srcDir := t.TempDir()
	l, _, err := Open(srcDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(Record{Lo: []float64{0}, Hi: []float64{float64(i + 1)}, Actual: 7}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := l.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	dstDir := filepath.Join(t.TempDir(), "replica")
	if err := RestoreArchive(dstDir, Options{}, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, srcDir, dstDir)
}

func TestShipRefusesToClobber(t *testing.T) {
	srcDir := t.TempDir()
	l := buildShipSource(t, srcDir)
	var buf bytes.Buffer
	if err := l.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Restoring over the source's own live directory must refuse.
	if err := RestoreArchive(srcDir, Options{}, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore over a live manifest succeeded")
	}
}

// The source dying at any byte of the ship stream must leave the replica
// either refusing cleanly (no MANIFEST, fresh on open) or — only for the
// complete stream — bit-identical. Sweeps every prefix length.
func TestShipTruncationSweep(t *testing.T) {
	srcDir := t.TempDir()
	l := buildShipSource(t, srcDir)
	var buf bytes.Buffer
	if err := l.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	archive := buf.Bytes()
	scratch := t.TempDir()
	for cut := 0; cut < len(archive); cut++ {
		dst := filepath.Join(scratch, "cut")
		err := RestoreArchive(dst, Options{}, bytes.NewReader(archive[:cut]))
		if err == nil {
			t.Fatalf("truncated archive (cut at %d of %d) restored without error", cut, len(archive))
		}
		if _, serr := os.Stat(filepath.Join(dst, manifestName)); serr == nil {
			t.Fatalf("cut at %d: refused restore left a MANIFEST behind (torn restore)", cut)
		}
		if rmerr := os.RemoveAll(dst); rmerr != nil {
			t.Fatal(rmerr)
		}
	}
	dst := filepath.Join(scratch, "full")
	if err := RestoreArchive(dst, Options{}, bytes.NewReader(archive)); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, srcDir, dst)
}

// Every single-bit corruption of the stream must be rejected (CRC over
// name+data, checksummed trailer) — or, if it lands somewhere truly inert,
// still restore bit-identically. Never a silently different state.
func TestShipCorruptionSweep(t *testing.T) {
	srcDir := t.TempDir()
	l := buildShipSource(t, srcDir)
	var buf bytes.Buffer
	if err := l.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	archive := buf.Bytes()
	scratch := t.TempDir()
	for off := 0; off < len(archive); off++ {
		mut := append([]byte(nil), archive...)
		mut[off] ^= 0x40
		dst := filepath.Join(scratch, "flip")
		err := RestoreArchive(dst, Options{}, bytes.NewReader(mut))
		if err == nil {
			// Accepting a flipped stream is only tolerable if the restored
			// state is still exactly the source state.
			assertBitIdentical(t, srcDir, dst)
			t.Fatalf("bit flip at offset %d accepted; archive framing left a byte unverified", off)
		}
		if _, serr := os.Stat(filepath.Join(dst, manifestName)); serr == nil {
			t.Fatalf("flip at %d: refused restore left a MANIFEST behind", off)
		}
		if rmerr := os.RemoveAll(dst); rmerr != nil {
			t.Fatal(rmerr)
		}
	}
}

// Restore-side crash sweep: fail every mutating filesystem operation of the
// restore protocol in turn. Outcome must be all-or-nothing: either the
// replica refuses (no MANIFEST) or the directory recovers bit-identically
// (a post-commit failure such as the final dir sync).
func TestShipRestoreFaultSweep(t *testing.T) {
	srcDir := t.TempDir()
	l := buildShipSource(t, srcDir)
	var buf bytes.Buffer
	if err := l.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	archive := buf.Bytes()

	// Fault-free run to count the protocol's mutating operations.
	probe := faultfs.NewInjector(faultfs.OS{})
	probeDir := filepath.Join(t.TempDir(), "probe")
	if err := RestoreArchive(probeDir, Options{FS: probe}, bytes.NewReader(archive)); err != nil {
		t.Fatal(err)
	}
	ops := probe.Count(faultfs.OpAny)
	if ops == 0 {
		t.Fatal("restore performed no mutating operations; sweep is vacuous")
	}

	scratch := t.TempDir()
	for nth := 1; nth <= ops; nth++ {
		inj := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{Op: faultfs.OpAny, Nth: nth, Mode: faultfs.Fail})
		dst := filepath.Join(scratch, "fault")
		err := RestoreArchive(dst, Options{FS: inj}, bytes.NewReader(archive))
		if err == nil {
			t.Fatalf("fault at op %d/%d: restore reported success despite injected failure", nth, ops)
		}
		if _, serr := os.Stat(filepath.Join(dst, manifestName)); serr == nil {
			// The commit rename already happened (the fault hit the final dir
			// sync): the state on disk must then be the complete state.
			assertBitIdentical(t, srcDir, dst)
		}
		if rmerr := os.RemoveAll(dst); rmerr != nil {
			t.Fatal(rmerr)
		}
	}
}
