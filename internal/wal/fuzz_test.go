package wal

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzReplay throws arbitrary bytes at the segment parser. Replay must never
// panic, must never return more bytes consumed than provided, and every
// record it does return must survive a re-encode/re-decode round trip (i.e.
// only checksum-valid, structurally sound frames are accepted). Run with
// `go test -fuzz=FuzzReplay`; the seed corpus below replays in the normal
// test suite.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// A valid two-record segment.
	seed, _ := appendFrame(nil, Record{Seq: 1, Lo: []float64{0, 1}, Hi: []float64{2, 3}, Actual: 7})
	seed, _ = appendFrame(seed, Record{Seq: 2, Lo: []float64{-1}, Hi: []float64{1}, Actual: math.Inf(1)})
	f.Add(seed)
	// The same segment with a flipped payload byte.
	bad := append([]byte(nil), seed...)
	if len(bad) > 12 {
		bad[12] ^= 0x10
	}
	f.Add(bad)
	// A frame header promising more bytes than exist (torn tail).
	torn := make([]byte, 8)
	binary.LittleEndian.PutUint32(torn, 100)
	f.Add(torn)
	// A frame with an absurd length field.
	huge := make([]byte, 16)
	binary.LittleEndian.PutUint32(huge, MaxRecordBytes+7)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, policy := range []CorruptPolicy{StopAtCorrupt, SkipCorrupt} {
			recs, cleanLen, skipped, torn := Replay(data, policy)
			if cleanLen < 0 || cleanLen > int64(len(data)) {
				t.Fatalf("cleanLen %d out of [0, %d]", cleanLen, len(data))
			}
			if skipped < 0 {
				t.Fatalf("negative skipped %d", skipped)
			}
			if policy == StopAtCorrupt && skipped != 0 {
				t.Fatalf("StopAtCorrupt skipped %d frames", skipped)
			}
			if !torn && policy == StopAtCorrupt && cleanLen != int64(len(data)) {
				t.Fatalf("clean replay consumed %d of %d bytes", cleanLen, len(data))
			}
			for _, r := range recs {
				buf, err := appendFrame(nil, r)
				if err != nil {
					t.Fatalf("accepted record does not re-encode: %+v: %v", r, err)
				}
				back, _, _, tornBack := Replay(buf, StopAtCorrupt)
				if tornBack || len(back) != 1 {
					t.Fatalf("re-encoded record does not re-decode: %+v", r)
				}
				if back[0].Seq != r.Seq || len(back[0].Lo) != len(r.Lo) ||
					math.Float64bits(back[0].Actual) != math.Float64bits(r.Actual) {
					t.Fatalf("round trip changed record: %+v -> %+v", r, back[0])
				}
			}
		}
	})
}
