// Package loadgen is the cluster load generator behind cmd/sthload: an
// aisloader-style mixed-workload driver that fires estimate and feedback
// traffic at a target (one sthistd, or the sthproxy tier) from a pool of
// workers, bounded by wall time and/or a total operation count, and reports
// latency percentiles computed from telemetry histograms.
//
// The workload is self-contained: each worker draws uniform range queries
// inside the table's advertised domain (GET /stats exposes it exactly for
// this), estimates them, and converts a configurable fraction of estimates
// into feedback by reporting the estimate back as the observed actual. That
// keeps the feedback stream well-formed without needing ground-truth data on
// the client, while still exercising the full durable write path.
//
// Backpressure is honored, not fought: a 429 or 503 carrying Retry-After
// makes the worker sleep the hinted duration (capped) and retry the
// operation, counted as retried rather than failed. Only operations that
// exhaust their retries — or fail without a retry hint — count as errors,
// which is precisely the "non-retried client error" the kill-a-node
// acceptance gate requires to be zero for estimates.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sthist/internal/telemetry"
	"sthist/internal/trace"
)

// Defaults for Options fields left zero.
const (
	DefaultWorkers       = 8
	DefaultDuration      = 10 * time.Second
	DefaultFeedbackRatio = 0.1
	DefaultOpTimeout     = 5 * time.Second
	// DefaultMaxOpRetries bounds how often one operation is retried on
	// backpressure before counting as an error.
	DefaultMaxOpRetries = 8
	// DefaultSlowestK is how many slowest-operation trace references the
	// report keeps when tracing is on.
	DefaultSlowestK = 5
	// maxFailedTraces caps the failed-operation trace list so a full outage
	// cannot balloon the report.
	maxFailedTraces = 32
	// maxRetryAfterSleep caps an upstream Retry-After hint so a hostile or
	// buggy header cannot park a worker for minutes.
	maxRetryAfterSleep = 2 * time.Second
)

// Load metric names (constant, sthist_* — enforced by sthlint).
const (
	metricLoadEstimateSeconds = "sthist_load_estimate_seconds"
	metricLoadFeedbackSeconds = "sthist_load_feedback_seconds"
)

// Options configures Run.
type Options struct {
	// BaseURL is the target: a sthistd or sthproxy base URL.
	BaseURL string
	// Tables to exercise. Empty discovers them via GET /tables.
	Tables []string
	// Workers is the concurrency. Zero uses DefaultWorkers.
	Workers int
	// Duration bounds wall time. Zero uses DefaultDuration (unless Total is
	// set, in which case zero means unbounded time).
	Duration time.Duration
	// Total bounds the operation count across all workers. Zero means
	// unbounded (Duration bounds the run).
	Total int64
	// FeedbackRatio is the fraction of estimates converted into feedback,
	// i.e. an estimate:feedback ratio of 1:FeedbackRatio. Zero uses
	// DefaultFeedbackRatio; negative disables feedback.
	FeedbackRatio float64
	// OpTimeout bounds one HTTP attempt. Zero uses DefaultOpTimeout.
	OpTimeout time.Duration
	// MaxOpRetries bounds backpressure retries per operation. Zero uses
	// DefaultMaxOpRetries; negative disables retries.
	MaxOpRetries int
	// Seed makes query generation reproducible. Zero seeds from the clock.
	Seed int64
	// Transport overrides the HTTP transport (tests, chaos). Nil uses
	// http.DefaultTransport.
	Transport http.RoundTripper
	// TraceSample, when > 0, makes every operation originate a W3C
	// traceparent with this head-sampling probability. The trace ID is reused
	// across an operation's backpressure retries, so one op is one trace even
	// when the proxy bounced it. The report then carries the trace IDs of the
	// slowest and all failed operations.
	TraceSample float64
	// SlowestK is how many slowest-operation traces the report keeps. Zero
	// uses DefaultSlowestK; negative disables. Only meaningful with
	// TraceSample > 0.
	SlowestK int
}

// TraceRef points one reported operation at its distributed trace: quote the
// ID to GET /debug/trace/spans?trace= on the proxy for the assembled timeline.
type TraceRef struct {
	Op      string  `json:"op"`
	TraceID string  `json:"trace_id"`
	Ms      float64 `json:"ms"`
}

// OpStats is the per-operation-type slice of a Report.
type OpStats struct {
	Count   uint64  `json:"count"`
	Errors  uint64  `json:"errors"`  // non-retried failures
	Retries uint64  `json:"retries"` // backpressure retries honored
	P50Ms   float64 `json:"p50_ms"`
	P90Ms   float64 `json:"p90_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MeanMs  float64 `json:"mean_ms"`
}

// Report is the run summary cmd/sthload emits as JSON.
type Report struct {
	Target     string   `json:"target"`
	Tables     []string `json:"tables"`
	Workers    int      `json:"workers"`
	DurationMs float64  `json:"duration_ms"`
	Ops        uint64   `json:"ops"`
	OpsPerSec  float64  `json:"ops_per_sec"`
	Estimate   OpStats  `json:"estimate"`
	Feedback   OpStats  `json:"feedback"`
	// Slowest and Failed carry trace references when TraceSample > 0:
	// the K slowest successful operations and up to maxFailedTraces failed
	// ones, each resolvable via /debug/trace/spans?trace=.
	Slowest []TraceRef `json:"slowest,omitempty"`
	Failed  []TraceRef `json:"failed_traces,omitempty"`
}

// tableDomain is what a worker needs to generate queries for one table.
type tableDomain struct {
	name string
	lo   []float64
	hi   []float64
}

// Runner drives one load run. Build with New, then Run.
type Runner struct {
	opts   Options
	client *http.Client
	tracer *trace.Tracer // nil when TraceSample <= 0; mints contexts, records no spans

	estHist *telemetry.Histogram
	fbHist  *telemetry.Histogram

	ops        atomic.Int64
	estErrs    atomic.Uint64
	estRetries atomic.Uint64
	fbErrs     atomic.Uint64
	fbRetries  atomic.Uint64
	estCount   atomic.Uint64
	fbCount    atomic.Uint64

	traceMu sync.Mutex
	slowest []TraceRef // top-K by Ms, unsorted; guarded by traceMu
	failed  []TraceRef // capped at maxFailedTraces; guarded by traceMu
}

// New validates opts and prepares a runner.
func New(opts Options) (*Runner, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.Duration <= 0 && opts.Total <= 0 {
		opts.Duration = DefaultDuration
	}
	if opts.FeedbackRatio == 0 {
		opts.FeedbackRatio = DefaultFeedbackRatio
	}
	if opts.FeedbackRatio < 0 {
		opts.FeedbackRatio = 0
	}
	if opts.FeedbackRatio > 1 {
		return nil, fmt.Errorf("loadgen: FeedbackRatio %v > 1", opts.FeedbackRatio)
	}
	if opts.OpTimeout <= 0 {
		opts.OpTimeout = DefaultOpTimeout
	}
	if opts.MaxOpRetries == 0 {
		opts.MaxOpRetries = DefaultMaxOpRetries
	}
	if opts.MaxOpRetries < 0 {
		opts.MaxOpRetries = 0
	}
	if opts.Seed == 0 {
		opts.Seed = time.Now().UnixNano()
	}
	if opts.TraceSample > 1 {
		opts.TraceSample = 1
	}
	if opts.SlowestK == 0 {
		opts.SlowestK = DefaultSlowestK
	}
	if opts.SlowestK < 0 {
		opts.SlowestK = 0
	}
	transport := opts.Transport
	if transport == nil {
		// Every worker talks to one target; DefaultTransport's 2 idle conns
		// per host would churn TCP under any real worker count.
		if base, ok := http.DefaultTransport.(*http.Transport); ok {
			t := base.Clone()
			t.MaxIdleConnsPerHost = DefaultWorkers * 8
			t.MaxIdleConns = 0
			transport = t
		} else {
			transport = http.DefaultTransport
		}
	}
	var tracer *trace.Tracer
	if opts.TraceSample > 0 {
		tracer = trace.New(trace.Options{
			Service:    "sthload",
			SampleRate: opts.TraceSample,
			Seed:       opts.Seed,
		})
	}
	reg := telemetry.NewRegistry()
	return &Runner{
		opts:   opts,
		client: &http.Client{Transport: transport, Timeout: opts.OpTimeout},
		tracer: tracer,
		estHist: reg.Histogram(metricLoadEstimateSeconds,
			"Client-observed estimate latency in seconds.", telemetry.LatencyBuckets(), nil),
		fbHist: reg.Histogram(metricLoadFeedbackSeconds,
			"Client-observed feedback latency in seconds.", telemetry.LatencyBuckets(), nil),
	}, nil
}

// discoverTables fetches GET /tables.
func (r *Runner) discoverTables(ctx context.Context) ([]string, error) {
	body, _, err := r.get(ctx, "/tables")
	if err != nil {
		return nil, fmt.Errorf("loadgen: discovering tables: %w", err)
	}
	var names []string
	if err := json.Unmarshal(body, &names); err != nil {
		return nil, fmt.Errorf("loadgen: decoding /tables: %w", err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("loadgen: target serves no tables")
	}
	return names, nil
}

// fetchDomain reads the table's domain from GET /stats.
func (r *Runner) fetchDomain(ctx context.Context, table string) (tableDomain, error) {
	body, _, err := r.get(ctx, "/stats?table="+table)
	if err != nil {
		return tableDomain{}, fmt.Errorf("loadgen: stats for %q: %w", table, err)
	}
	var stats struct {
		Domain struct {
			Lo []float64 `json:"lo"`
			Hi []float64 `json:"hi"`
		} `json:"domain"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		return tableDomain{}, fmt.Errorf("loadgen: decoding stats for %q: %w", table, err)
	}
	if len(stats.Domain.Lo) == 0 || len(stats.Domain.Lo) != len(stats.Domain.Hi) {
		return tableDomain{}, fmt.Errorf("loadgen: table %q advertises no usable domain", table)
	}
	return tableDomain{name: table, lo: stats.Domain.Lo, hi: stats.Domain.Hi}, nil
}

func (r *Runner) get(ctx context.Context, pathq string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.BaseURL+pathq, nil)
	trace.InjectContext(ctx, req)
	if err != nil {
		return nil, 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return body, resp.StatusCode, fmt.Errorf("GET %s returned %d", pathq, resp.StatusCode)
	}
	return body, resp.StatusCode, nil
}

// Run executes the load and returns the report. It respects ctx cancellation
// on top of the configured bounds.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	tables := r.opts.Tables
	if len(tables) == 0 {
		var err error
		tables, err = r.discoverTables(ctx)
		if err != nil {
			return nil, err
		}
	}
	domains := make([]tableDomain, 0, len(tables))
	for _, tbl := range tables {
		d, err := r.fetchDomain(ctx, tbl)
		if err != nil {
			return nil, err
		}
		domains = append(domains, d)
	}

	runCtx := ctx
	var cancel context.CancelFunc
	if r.opts.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, r.opts.Duration)
		defer cancel()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < r.opts.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.worker(runCtx, rand.New(rand.NewSource(r.opts.Seed+int64(id))), domains)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Target:     r.opts.BaseURL,
		Tables:     tables,
		Workers:    r.opts.Workers,
		DurationMs: float64(elapsed) / float64(time.Millisecond),
		Estimate:   r.opStats(r.estHist, r.estCount.Load(), r.estErrs.Load(), r.estRetries.Load()),
		Feedback:   r.opStats(r.fbHist, r.fbCount.Load(), r.fbErrs.Load(), r.fbRetries.Load()),
	}
	rep.Ops = rep.Estimate.Count + rep.Feedback.Count
	if secs := elapsed.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(rep.Ops) / secs
	}
	r.traceMu.Lock()
	rep.Slowest = append([]TraceRef(nil), r.slowest...)
	rep.Failed = append([]TraceRef(nil), r.failed...)
	r.traceMu.Unlock()
	sort.Slice(rep.Slowest, func(i, j int) bool { return rep.Slowest[i].Ms > rep.Slowest[j].Ms })
	return rep, nil
}

func (r *Runner) opStats(h *telemetry.Histogram, count, errs, retries uint64) OpStats {
	st := OpStats{Count: count, Errors: errs, Retries: retries}
	if n := h.Count(); n > 0 {
		st.P50Ms = h.Quantile(0.50) * 1e3
		st.P90Ms = h.Quantile(0.90) * 1e3
		st.P99Ms = h.Quantile(0.99) * 1e3
		st.MeanMs = h.Sum() / float64(n) * 1e3
	}
	return st
}

// worker runs the op loop until the context ends or the total bound trips.
func (r *Runner) worker(ctx context.Context, rng *rand.Rand, domains []tableDomain) {
	for {
		if ctx.Err() != nil {
			return
		}
		if r.opts.Total > 0 && r.ops.Add(1) > r.opts.Total {
			return
		}
		d := domains[rng.Intn(len(domains))]
		lo, hi := d.query(rng)
		est, ok := r.estimate(ctx, d.name, lo, hi)
		if ok && r.opts.FeedbackRatio > 0 && rng.Float64() < r.opts.FeedbackRatio {
			if r.opts.Total > 0 && r.ops.Add(1) > r.opts.Total {
				return
			}
			r.feedback(ctx, d.name, lo, hi, est)
		}
	}
}

// query draws a uniform random range inside the domain.
func (d tableDomain) query(rng *rand.Rand) (lo, hi []float64) {
	lo = make([]float64, len(d.lo))
	hi = make([]float64, len(d.lo))
	for i := range d.lo {
		a := d.lo[i] + rng.Float64()*(d.hi[i]-d.lo[i])
		b := d.lo[i] + rng.Float64()*(d.hi[i]-d.lo[i])
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return lo, hi
}

// opOutcome classifies one operation: success, hard failure, or interrupted
// by the run ending. Interrupted ops are neither errors nor successes — the
// run boundary cut them off, the target did not fail them.
type opOutcome int

const (
	opOK opOutcome = iota
	opFailed
	opCancelled
)

// estimate runs one estimate op (with backpressure retries) and returns the
// estimated cardinality.
func (r *Runner) estimate(ctx context.Context, table string, lo, hi []float64) (float64, bool) {
	r.estCount.Add(1)
	body, err := json.Marshal(map[string]any{"table": table, "lo": lo, "hi": hi})
	if err != nil {
		r.estErrs.Add(1)
		return 0, false
	}
	respBody, outcome := r.post(ctx, "/estimate", body, r.estHist, &r.estRetries)
	if outcome != opOK {
		if outcome == opFailed {
			r.estErrs.Add(1)
		}
		return 0, false
	}
	var est struct {
		Estimate float64 `json:"estimate"`
	}
	if err := json.Unmarshal(respBody, &est); err != nil {
		r.estErrs.Add(1)
		return 0, false
	}
	return est.Estimate, true
}

// feedback reports the estimate back as the observed actual.
func (r *Runner) feedback(ctx context.Context, table string, lo, hi []float64, actual float64) {
	r.fbCount.Add(1)
	body, err := json.Marshal(map[string]any{"table": table, "lo": lo, "hi": hi, "actual": actual})
	if err != nil {
		r.fbErrs.Add(1)
		return
	}
	if _, outcome := r.post(ctx, "/feedback", body, r.fbHist, &r.fbRetries); outcome == opFailed {
		r.fbErrs.Add(1)
	}
}

// post performs one operation with Retry-After-honoring retries. The latency
// of every attempt is observed into hist (a retried op costs what the client
// actually waited, not just the winning attempt). With tracing on, the op
// mints one trace context up front and reuses it across retries — one
// operation is one trace, however many times backpressure bounced it.
func (r *Runner) post(ctx context.Context, path string, body []byte, hist *telemetry.Histogram, retries *atomic.Uint64) ([]byte, opOutcome) {
	sc := r.tracer.NewContext()
	opStart := time.Now()
	for attempt := 0; ; attempt++ {
		start := time.Now()
		respBody, status, retryAfter, err := r.postOnce(ctx, path, body, sc)
		hist.Observe(time.Since(start).Seconds())
		if err == nil && status == http.StatusOK {
			r.noteSlowest(path, sc, time.Since(opStart))
			return respBody, opOK
		}
		if ctx.Err() != nil {
			// The run ended while this op was in flight or about to retry:
			// the boundary cut it off, it is not a target failure.
			return nil, opCancelled
		}
		// Retry only transient conditions and only within budget.
		transient := err != nil || status == http.StatusTooManyRequests || status >= 500
		if !transient || attempt >= r.opts.MaxOpRetries {
			r.noteFailed(path, sc, time.Since(opStart))
			return nil, opFailed
		}
		retries.Add(1)
		t := time.NewTimer(retryAfterHint(retryAfter, attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, opCancelled
		case <-t.C:
		}
	}
}

// noteSlowest keeps the top-K slowest successful ops by evicting the current
// minimum — K is small, so a scan beats a heap.
func (r *Runner) noteSlowest(op string, sc trace.SpanContext, d time.Duration) {
	if !sc.Valid() || r.opts.SlowestK <= 0 {
		return
	}
	ref := TraceRef{Op: op, TraceID: sc.TraceID.String(), Ms: float64(d) / float64(time.Millisecond)}
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if len(r.slowest) < r.opts.SlowestK {
		r.slowest = append(r.slowest, ref)
		return
	}
	min := 0
	for i := 1; i < len(r.slowest); i++ {
		if r.slowest[i].Ms < r.slowest[min].Ms {
			min = i
		}
	}
	if ref.Ms > r.slowest[min].Ms {
		r.slowest[min] = ref
	}
}

// noteFailed records a failed op's trace reference (capped).
func (r *Runner) noteFailed(op string, sc trace.SpanContext, d time.Duration) {
	if !sc.Valid() {
		return
	}
	ref := TraceRef{Op: op, TraceID: sc.TraceID.String(), Ms: float64(d) / float64(time.Millisecond)}
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if len(r.failed) < maxFailedTraces {
		r.failed = append(r.failed, ref)
	}
}

// postOnce fires one HTTP POST (injecting the op's traceparent when tracing)
// and returns body, status and the Retry-After header (empty when absent).
func (r *Runner) postOnce(ctx context.Context, path string, body []byte, sc trace.SpanContext) ([]byte, int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.opts.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	trace.Inject(sc, req)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, 0, "", err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	cerr := resp.Body.Close()
	retryAfter := resp.Header.Get("Retry-After")
	if err != nil {
		return nil, resp.StatusCode, retryAfter, err
	}
	if cerr != nil {
		return nil, resp.StatusCode, retryAfter, cerr
	}
	return data, resp.StatusCode, retryAfter, nil
}

// retryAfterHint converts a Retry-After header (possibly empty) plus the
// attempt number into a sleep: honor the hint when present (capped), else
// back off exponentially from 10ms.
func retryAfterHint(header string, attempt int) time.Duration {
	if header != "" {
		if secs, err := strconv.Atoi(header); err == nil && secs >= 0 {
			d := time.Duration(secs) * time.Second
			if d == 0 {
				d = 50 * time.Millisecond // "Retry-After: 0" means immediately-ish
			}
			if d > maxRetryAfterSleep {
				d = maxRetryAfterSleep
			}
			return d
		}
	}
	d := 10 * time.Millisecond << uint(attempt)
	if d > maxRetryAfterSleep {
		d = maxRetryAfterSleep
	}
	return d
}
