package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTarget mimics the sthistd surface the load generator touches: table
// discovery, domain stats, estimates and feedback.
func fakeTarget(t *testing.T, failFeedbackFirst int64) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var estimates, feedbacks atomic.Int64
	var feedbackAttempts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/tables", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode([]string{"orders"})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("table") != "orders" {
			http.Error(w, `{"error":"unknown table"}`, http.StatusBadRequest)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"domain": map[string][]float64{"lo": {0, 0}, "hi": {100, 100}},
		})
	})
	mux.HandleFunc("/estimate", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Table string    `json:"table"`
			Lo    []float64 `json:"lo"`
			Hi    []float64 `json:"hi"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Table != "orders" {
			http.Error(w, `{"error":"bad estimate"}`, http.StatusBadRequest)
			return
		}
		for i := range req.Lo {
			if req.Lo[i] < 0 || req.Hi[i] > 100 || req.Lo[i] > req.Hi[i] {
				http.Error(w, `{"error":"query outside advertised domain"}`, http.StatusBadRequest)
				return
			}
		}
		estimates.Add(1)
		_ = json.NewEncoder(w).Encode(map[string]float64{"estimate": 42, "selectivity": 0.1})
	})
	mux.HandleFunc("/feedback", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Table  string    `json:"table"`
			Lo     []float64 `json:"lo"`
			Hi     []float64 `json:"hi"`
			Actual *float64  `json:"actual"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Actual == nil {
			http.Error(w, `{"error":"bad feedback"}`, http.StatusBadRequest)
			return
		}
		if feedbackAttempts.Add(1) <= failFeedbackFirst {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		feedbacks.Add(1)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &estimates, &feedbacks
}

func TestRunTotalBoundedMix(t *testing.T) {
	ts, estimates, feedbacks := fakeTarget(t, 0)
	r, err := New(Options{
		BaseURL:       ts.URL,
		Workers:       4,
		Total:         200,
		FeedbackRatio: 0.3,
		Seed:          17,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Ops > 200 {
		t.Fatalf("ops = %d, want (0, 200]", rep.Ops)
	}
	if rep.Estimate.Count == 0 {
		t.Fatal("no estimates ran")
	}
	if rep.Feedback.Count == 0 {
		t.Fatal("FeedbackRatio 0.3 produced no feedback")
	}
	if rep.Estimate.Errors != 0 || rep.Feedback.Errors != 0 {
		t.Fatalf("healthy target produced errors: %+v %+v", rep.Estimate, rep.Feedback)
	}
	if estimates.Load() == 0 || feedbacks.Load() == 0 {
		t.Fatal("server saw no traffic")
	}
	// The mix should be roughly 30% feedback (loose bounds; seeded rand).
	ratio := float64(rep.Feedback.Count) / float64(rep.Estimate.Count)
	if ratio < 0.1 || ratio > 0.6 {
		t.Fatalf("feedback/estimate ratio = %v, want ~0.3", ratio)
	}
	if rep.Estimate.P50Ms <= 0 || rep.Estimate.P50Ms > rep.Estimate.P99Ms {
		t.Fatalf("latency percentiles inconsistent: %+v", rep.Estimate)
	}
	if rep.OpsPerSec <= 0 {
		t.Fatalf("ops/sec = %v", rep.OpsPerSec)
	}
}

func TestRunDurationBounded(t *testing.T) {
	ts, _, _ := fakeTarget(t, 0)
	r, err := New(Options{
		BaseURL:       ts.URL,
		Workers:       2,
		Duration:      150 * time.Millisecond,
		FeedbackRatio: -1, // estimates only
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("duration-bounded run took %v", elapsed)
	}
	if rep.Feedback.Count != 0 {
		t.Fatalf("FeedbackRatio < 0 still sent %d feedbacks", rep.Feedback.Count)
	}
	if rep.Estimate.Count == 0 {
		t.Fatal("no estimates in a 150ms run")
	}
}

// Backpressure with Retry-After must be absorbed as retries, not errors.
func TestRunHonorsRetryAfter(t *testing.T) {
	ts, _, feedbacks := fakeTarget(t, 3)
	r, err := New(Options{
		BaseURL:       ts.URL,
		Workers:       1,
		Total:         40,
		FeedbackRatio: 1, // every estimate feeds back
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feedback.Errors != 0 {
		t.Fatalf("backpressured feedback counted as %d errors, want retries", rep.Feedback.Errors)
	}
	if rep.Feedback.Retries == 0 {
		t.Fatal("503+Retry-After produced no counted retries")
	}
	if feedbacks.Load() == 0 {
		t.Fatal("no feedback ever landed after backpressure lifted")
	}
}

func TestRetryAfterHint(t *testing.T) {
	if d := retryAfterHint("1", 0); d != time.Second {
		t.Fatalf("Retry-After 1 -> %v", d)
	}
	if d := retryAfterHint("3600", 0); d != maxRetryAfterSleep {
		t.Fatalf("huge Retry-After not capped: %v", d)
	}
	if d := retryAfterHint("0", 0); d <= 0 || d > time.Second {
		t.Fatalf("Retry-After 0 -> %v", d)
	}
	if d := retryAfterHint("", 0); d != 10*time.Millisecond {
		t.Fatalf("no header, attempt 0 -> %v", d)
	}
	if d := retryAfterHint("", 20); d != maxRetryAfterSleep {
		t.Fatalf("deep attempt backoff not capped: %v", d)
	}
	if d := retryAfterHint("soon", 1); d != 20*time.Millisecond {
		t.Fatalf("unparseable header should fall back to backoff, got %v", d)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := New(Options{BaseURL: "http://x", FeedbackRatio: 1.5}); err == nil {
		t.Fatal("FeedbackRatio > 1 accepted")
	}
}
