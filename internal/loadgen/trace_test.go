package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sthist/internal/trace"
)

// tracingTarget records the traceparent header of every /feedback attempt and
// fails the first failFirst of them with a retryable 503.
func tracingTarget(t *testing.T, failFirst int) (*httptest.Server, func() []string) {
	t.Helper()
	var mu sync.Mutex
	var fbParents []string
	attempts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/tables", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode([]string{"orders"})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{
			"domain": map[string][]float64{"lo": {0, 0}, "hi": {100, 100}},
		})
	})
	mux.HandleFunc("/estimate", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]float64{"estimate": 42})
	})
	mux.HandleFunc("/feedback", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		fbParents = append(fbParents, r.Header.Get(trace.TraceparentHeader))
		attempts++
		fail := attempts <= failFirst
		mu.Unlock()
		if fail {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), fbParents...)
	}
}

// With TraceSample on, every op injects a traceparent, the trace ID survives
// the op's backpressure retries, and the report quotes the slowest ops.
func TestRunInjectsTraceparentAndReportsSlowest(t *testing.T) {
	ts, parents := tracingTarget(t, 1) // first feedback attempt bounces, retry succeeds
	r, err := New(Options{
		BaseURL:       ts.URL,
		Workers:       1,
		Total:         40,
		FeedbackRatio: 1,
		Seed:          17,
		TraceSample:   1,
		SlowestK:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feedback.Errors != 0 {
		t.Fatalf("retried feedback counted as error: %+v", rep.Feedback)
	}
	got := parents()
	if len(got) < 2 {
		t.Fatalf("target saw %d feedback attempts, want >= 2", len(got))
	}
	for i, tp := range got {
		sc, err := trace.ParseTraceparent(tp)
		if err != nil || !sc.Valid() {
			t.Fatalf("attempt %d carried bad traceparent %q: %v", i, tp, err)
		}
	}
	// The bounced attempt and its retry share one trace ID.
	sc0, _ := trace.ParseTraceparent(got[0])
	sc1, _ := trace.ParseTraceparent(got[1])
	if sc0.TraceID != sc1.TraceID {
		t.Errorf("retry minted a fresh trace: %s vs %s", sc0.TraceID, sc1.TraceID)
	}
	if len(rep.Slowest) == 0 || len(rep.Slowest) > 3 {
		t.Fatalf("slowest = %d refs, want 1..3", len(rep.Slowest))
	}
	for i, ref := range rep.Slowest {
		if !trace.ValidTraceIDString(ref.TraceID) {
			t.Errorf("slowest[%d] has bad trace ID %q", i, ref.TraceID)
		}
		if i > 0 && ref.Ms > rep.Slowest[i-1].Ms {
			t.Errorf("slowest not sorted descending at %d", i)
		}
	}
}

// Operations that exhaust retries land in the failed-trace list.
func TestRunReportsFailedTraces(t *testing.T) {
	ts, _ := tracingTarget(t, 1<<30) // feedback always fails
	r, err := New(Options{
		BaseURL:       ts.URL,
		Workers:       1,
		Total:         20,
		FeedbackRatio: 1,
		MaxOpRetries:  -1, // fail fast, no retries
		Seed:          5,
		TraceSample:   0.5, // even unsampled ops must still report their trace ID
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feedback.Errors == 0 {
		t.Fatal("always-failing feedback produced no errors")
	}
	if len(rep.Failed) == 0 {
		t.Fatal("failed ops left no trace references")
	}
	for _, ref := range rep.Failed {
		if ref.Op != "/feedback" {
			t.Errorf("failed ref op = %q", ref.Op)
		}
		if !trace.ValidTraceIDString(ref.TraceID) {
			t.Errorf("failed ref has bad trace ID %q", ref.TraceID)
		}
	}
}

// Without tracing the report carries no trace references and no headers leak.
func TestRunWithoutTracingInjectsNothing(t *testing.T) {
	ts, parents := tracingTarget(t, 0)
	r, err := New(Options{BaseURL: ts.URL, Workers: 1, Total: 10, FeedbackRatio: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Slowest) != 0 || len(rep.Failed) != 0 {
		t.Fatalf("untraced run reported trace refs: %+v %+v", rep.Slowest, rep.Failed)
	}
	for _, tp := range parents() {
		if tp != "" {
			t.Fatalf("untraced run injected traceparent %q", tp)
		}
	}
}
