package drift

import (
	"fmt"
	"math"

	"sthist/internal/geom"
	"sthist/internal/isomer"
	"sthist/internal/sthole"
)

// Shadow scores a candidate histogram against the live estimator on the
// feedback stream during probation. Three arms see every observation:
//
//   - live: the serving estimator (its estimate is taken BEFORE the feedback
//     is applied, and passed in by the embedder);
//   - cand: the re-seeded candidate, which estimates first and then drills
//     the same feedback, so it keeps learning while on trial;
//   - refine: a fresh ISOMER-style max-entropy histogram that learns from
//     the probation feedback alone — the arm the query-feedback line of work
//     (Markl et al., arXiv:1111.7295's lineage) would field. It is
//     informational: it shows whether re-clustering beats merely restarting
//     refinement, but never wins promotion itself.
//
// The promotion decision compares only cand vs live.
//
// Not concurrency-safe; the embedder's single writer owns it.
type Shadow struct {
	cand   *sthole.Histogram
	refine *isomer.Histogram

	rounds    int
	sumLive   float64
	sumCand   float64
	sumRefine float64
	sumTriv   float64
}

// NewShadow starts a probation for cand. The shadow takes ownership of cand
// (it drills it on every observation); domain and totalTuples seed the
// refine arm.
func NewShadow(cand *sthole.Histogram, domain geom.Rect, totalTuples float64) (*Shadow, error) {
	if cand == nil {
		return nil, fmt.Errorf("drift: nil candidate")
	}
	if cand.Dims() != domain.Dims() {
		return nil, fmt.Errorf("drift: candidate has %d dims, domain %d", cand.Dims(), domain.Dims())
	}
	ref, err := isomer.New(domain, isomer.DefaultConfig(), totalTuples)
	if err != nil {
		return nil, fmt.Errorf("drift: refine arm: %w", err)
	}
	return &Shadow{cand: cand, refine: ref}, nil
}

// Observe scores one feedback round. liveEst is the serving estimator's
// pre-apply estimate for q, trivial the single-bucket estimate (the NAE
// denominator term), actual the reported true cardinality. The candidate
// and refine arms estimate before learning from the same observation.
func (s *Shadow) Observe(q geom.Rect, liveEst, trivial, actual float64) {
	s.rounds++
	s.sumLive += math.Abs(liveEst - actual)
	s.sumCand += math.Abs(s.cand.Estimate(q) - actual)
	s.sumRefine += math.Abs(s.refine.Estimate(q) - actual)
	s.sumTriv += math.Abs(trivial - actual)
	vol := q.Volume()
	s.cand.Drill(q, func(r geom.Rect) float64 {
		if vol <= 0 {
			return actual
		}
		return actual * q.IntersectionVolume(r) / vol
	})
	s.refine.Feedback(q, actual)
}

// Rounds returns how many observations have been scored.
func (s *Shadow) Rounds() int { return s.rounds }

// Candidate returns the candidate histogram under trial (still owned by the
// shadow until promotion).
func (s *Shadow) Candidate() *sthole.Histogram { return s.cand }

// Scores is the probation scoreboard: per-arm absolute-error sums and their
// NAE normalization over the probation window.
type Scores struct {
	Rounds    int     `json:"rounds"`
	LiveAbs   float64 `json:"live_abs"`
	CandAbs   float64 `json:"cand_abs"`
	RefineAbs float64 `json:"refine_abs"`
	TrivAbs   float64 `json:"triv_abs"`
	LiveNAE   float64 `json:"live_nae"`
	CandNAE   float64 `json:"cand_nae"`
	RefineNAE float64 `json:"refine_nae"`
}

// Scores returns the current scoreboard. NAE fields are zero when the
// trivial arm made no error (nothing to normalize by).
func (s *Shadow) Scores() Scores {
	sc := Scores{
		Rounds:    s.rounds,
		LiveAbs:   s.sumLive,
		CandAbs:   s.sumCand,
		RefineAbs: s.sumRefine,
		TrivAbs:   s.sumTriv,
	}
	if s.sumTriv > 0 {
		sc.LiveNAE = s.sumLive / s.sumTriv
		sc.CandNAE = s.sumCand / s.sumTriv
		sc.RefineNAE = s.sumRefine / s.sumTriv
	}
	return sc
}

// Promote decides the probation: the candidate wins when its absolute-error
// sum is at most ratio times the live arm's. The abs-error comparison is the
// NAE comparison (both arms share the trivial denominator) but stays defined
// when the trivial arm happens to be exact. A perfect live arm is never
// displaced by a merely-equal candidate.
func (sc Scores) Promote(ratio float64) bool {
	if sc.Rounds == 0 || sc.LiveAbs == 0 {
		return false
	}
	return sc.CandAbs <= ratio*sc.LiveAbs
}
