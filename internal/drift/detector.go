// Package drift closes the adaptation loop the paper leaves open: the
// initialized histogram tracks the workload through STHoles refinement, but a
// genuine distribution shift leaves the bucket *structure* stale — refinement
// alone repairs frequencies faster than shape. This package watches the
// rolling normalized absolute error (Eq. 10 over a sliding window), and when
// it stays above threshold, re-runs the paper's own recipe — MineClus over a
// reservoir of recent feedback, then cluster-seeded initialization — to build
// a candidate histogram. The candidate is shadow-scored against the live
// estimator (and an ISOMER-style learning-from-feedback-alone arm, the
// comparison the max-entropy line of work would make) for a probation window
// and promoted only if it wins.
//
// The package holds the pure, deterministic primitives: the detector state
// machine, the candidate builder, and the shadow scorer. Wiring them to a
// live serving path (reservoir upkeep, background builds, atomic promotion,
// WAL journaling) is the embedder's job — see internal/httpapi.
package drift

import "fmt"

// Config tunes the whole adaptation loop. The zero value of any field means
// "use the default"; Sanitize fills defaults and validates.
type Config struct {
	// NAEThreshold is the rolling NAE above which the workload is considered
	// drifted. NAE is normalized by the trivial single-bucket histogram, so
	// 1.0 means "no better than knowing only the row count"; the default 0.5
	// fires well before the estimator degrades to useless.
	NAEThreshold float64
	// Sustain is the number of CONSECUTIVE over-threshold observations
	// required to fire (hysteresis: one bad window of queries is not drift).
	Sustain int
	// MinRounds is the minimum number of feedback rounds the rolling window
	// must cover before the detector arms — rolling NAE over a handful of
	// rounds is noise.
	MinRounds int
	// Cooldown is the number of observations ignored after a probation
	// resolves (either way) before the detector can fire again, so a
	// rejected candidate is not immediately rebuilt from the same reservoir.
	Cooldown int
	// Probation is the shadow-scoring window length in feedback rounds.
	Probation int
	// PromoteRatio is the edge the candidate must show: it is promoted when
	// its probation abs-error sum is <= PromoteRatio * the live arm's. Below
	// 1.0 demands a strict win, so ties keep the incumbent.
	PromoteRatio float64
	// ReservoirSize is the capacity of the feedback reservoir the candidate
	// is built from.
	ReservoirSize int
	// MinReservoir is the minimum number of reservoir observations required
	// before a build is attempted.
	MinReservoir int
	// SyntheticPoints is the size of the point cloud synthesized from the
	// reservoir for re-clustering.
	SyntheticPoints int
	// ClusterWidthFrac is the MineClus medoid width used when re-clustering,
	// as a fraction of each domain side. Smaller resolves finer structure
	// from the feedback cloud at the cost of more, smaller clusters.
	ClusterWidthFrac float64
}

// DefaultConfig returns the defaults used when a field is zero.
func DefaultConfig() Config {
	return Config{
		NAEThreshold:     0.5,
		Sustain:          3,
		MinRounds:        64,
		Cooldown:         128,
		Probation:        64,
		PromoteRatio:     0.9,
		ReservoirSize:    512,
		MinReservoir:     32,
		SyntheticPoints:  2048,
		ClusterWidthFrac: 0.06,
	}
}

// Sanitize fills zero fields with defaults and validates the rest.
func (c *Config) Sanitize() error {
	def := DefaultConfig()
	if c.NAEThreshold == 0 {
		c.NAEThreshold = def.NAEThreshold
	}
	if c.Sustain == 0 {
		c.Sustain = def.Sustain
	}
	if c.MinRounds == 0 {
		c.MinRounds = def.MinRounds
	}
	if c.Cooldown == 0 {
		c.Cooldown = def.Cooldown
	}
	if c.Probation == 0 {
		c.Probation = def.Probation
	}
	if c.PromoteRatio == 0 {
		c.PromoteRatio = def.PromoteRatio
	}
	if c.ReservoirSize == 0 {
		c.ReservoirSize = def.ReservoirSize
	}
	if c.MinReservoir == 0 {
		c.MinReservoir = def.MinReservoir
	}
	if c.SyntheticPoints == 0 {
		c.SyntheticPoints = def.SyntheticPoints
	}
	if c.ClusterWidthFrac == 0 {
		c.ClusterWidthFrac = def.ClusterWidthFrac
	}
	switch {
	case c.NAEThreshold < 0:
		return fmt.Errorf("drift: NAE threshold must be positive, got %g", c.NAEThreshold)
	case c.Sustain < 0 || c.MinRounds < 0 || c.Cooldown < 0:
		return fmt.Errorf("drift: sustain/min-rounds/cooldown must be non-negative")
	case c.Probation < 1:
		return fmt.Errorf("drift: probation must be >= 1 round, got %d", c.Probation)
	case c.PromoteRatio < 0 || c.PromoteRatio > 1:
		return fmt.Errorf("drift: promote ratio must be in (0,1], got %g", c.PromoteRatio)
	case c.ReservoirSize < 1:
		return fmt.Errorf("drift: reservoir size must be >= 1, got %d", c.ReservoirSize)
	case c.MinReservoir < 1 || c.MinReservoir > c.ReservoirSize:
		return fmt.Errorf("drift: min reservoir %d must be in [1, reservoir size %d]", c.MinReservoir, c.ReservoirSize)
	case c.SyntheticPoints < c.MinReservoir:
		return fmt.Errorf("drift: synthetic points %d below min reservoir %d", c.SyntheticPoints, c.MinReservoir)
	case c.ClusterWidthFrac < 0 || c.ClusterWidthFrac > 1:
		return fmt.Errorf("drift: cluster width fraction %g outside (0, 1]", c.ClusterWidthFrac)
	}
	return nil
}

// Detector is the trigger half of the loop: fed one rolling-NAE observation
// per feedback round, it fires when the error stays above threshold for
// Sustain consecutive rounds, subject to the min-feedback floor and the
// post-probation cooldown. After firing it stays suppressed until Rearm —
// the embedder calls Rearm when the resulting probation resolves, which
// starts the cooldown.
//
// Not concurrency-safe; the embedder's single writer owns it.
type Detector struct {
	cfg        Config
	streak     int
	cooldown   int
	suppressed bool
	triggers   uint64
}

// NewDetector builds a detector. cfg is sanitized in place.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.Sanitize(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Config returns the sanitized configuration.
func (d *Detector) Config() Config { return d.cfg }

// Observe feeds one detector tick: rounds is the number of feedback rounds
// the rolling window currently covers, nae the rolling NAE. It returns true
// exactly when drift fires; the detector then suppresses itself until Rearm.
func (d *Detector) Observe(rounds int, nae float64) bool {
	if d.suppressed {
		return false
	}
	if d.cooldown > 0 {
		d.cooldown--
		return false
	}
	if rounds < d.cfg.MinRounds {
		d.streak = 0
		return false
	}
	if nae <= d.cfg.NAEThreshold {
		d.streak = 0
		return false
	}
	d.streak++
	if d.streak < d.cfg.Sustain {
		return false
	}
	d.streak = 0
	d.suppressed = true
	d.triggers++
	return true
}

// Rearm ends the suppression that firing started and begins the cooldown.
// The embedder calls it when the probation triggered by the last firing
// resolves (promotion or rejection), or when the build was abandoned.
func (d *Detector) Rearm() {
	if !d.suppressed {
		return
	}
	d.suppressed = false
	d.cooldown = d.cfg.Cooldown
	d.streak = 0
}

// Suppressed reports whether the detector fired and has not been rearmed.
func (d *Detector) Suppressed() bool { return d.suppressed }

// Cooldown returns how many observations the post-probation cooldown will
// still swallow.
func (d *Detector) Cooldown() int { return d.cooldown }

// Triggers returns the number of times the detector has fired.
func (d *Detector) Triggers() uint64 { return d.triggers }
