package drift

import (
	"math"
	"testing"

	"sthist/internal/datagen"
	"sthist/internal/geom"
	"sthist/internal/sthole"
	"sthist/internal/workload"
)

func TestConfigSanitize(t *testing.T) {
	c := Config{}
	if err := c.Sanitize(); err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if c != DefaultConfig() {
		t.Fatalf("zero config did not sanitize to defaults: %+v", c)
	}
	bad := []Config{
		{NAEThreshold: -1},
		{Sustain: -1},
		{Probation: -1},
		{PromoteRatio: 1.5},
		{ReservoirSize: 4, MinReservoir: 8},
		{MinReservoir: 64, SyntheticPoints: 32},
	}
	for i, c := range bad {
		if err := c.Sanitize(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestDetectorHysteresisAndFloor(t *testing.T) {
	d, err := NewDetector(Config{NAEThreshold: 0.5, Sustain: 3, MinRounds: 10, Cooldown: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Below the min-feedback floor nothing fires, however bad the NAE.
	for i := 0; i < 5; i++ {
		if d.Observe(i, 99) {
			t.Fatalf("fired below min rounds at observation %d", i)
		}
	}
	// Above the floor: two bad rounds, one good, then three bad. The good
	// round must reset the streak (hysteresis), so firing happens exactly at
	// the third consecutive bad round.
	seq := []float64{2, 2, 0.1, 2, 2, 2}
	want := []bool{false, false, false, false, false, true}
	for i, nae := range seq {
		if got := d.Observe(100, nae); got != want[i] {
			t.Fatalf("observation %d (nae=%g): fired=%v, want %v", i, nae, got, want[i])
		}
	}
	if d.Triggers() != 1 {
		t.Fatalf("triggers = %d, want 1", d.Triggers())
	}
	// Suppressed until rearmed.
	for i := 0; i < 10; i++ {
		if d.Observe(100, 99) {
			t.Fatal("fired while suppressed")
		}
	}
	if !d.Suppressed() {
		t.Fatal("not suppressed after firing")
	}
	// Rearm starts the cooldown: 5 observations are swallowed, then 3 bad
	// rounds fire again.
	d.Rearm()
	fired := 0
	for i := 0; i < 5+3; i++ {
		if d.Observe(100, 99) {
			fired++
		}
	}
	if fired != 1 || d.Triggers() != 2 {
		t.Fatalf("after cooldown: fired=%d triggers=%d, want 1 and 2", fired, d.Triggers())
	}
}

func TestDetectorBelowThresholdNeverFires(t *testing.T) {
	d, err := NewDetector(Config{NAEThreshold: 0.5, Sustain: 2, MinRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if d.Observe(50, 0.49) {
			t.Fatal("fired below threshold")
		}
	}
}

// driftQueries draws a data-following workload over the dataset (1% volume
// queries centered on tuples — the regime where drift hurts most).
func driftQueries(t *testing.T, ds *datagen.Dataset, n int, seed int64) []geom.Rect {
	t.Helper()
	qs, err := workload.Generate(ds.Domain, workload.Config{
		VolumeFraction: 0.01, Centers: workload.DataCenters, N: n, Seed: seed,
	}, ds.Table)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

// driftObservations synthesizes feedback observations against a known
// dataset: workload boxes with their true counts.
func driftObservations(t *testing.T, ds *datagen.Dataset, n int, seed int64) []Observation {
	t.Helper()
	qs := driftQueries(t, ds, n, seed)
	obs := make([]Observation, n)
	for i, q := range qs {
		obs[i] = Observation{Query: q, Actual: float64(ds.Table.CountIn(q))}
	}
	return obs
}

func TestBuildCandidateValidation(t *testing.T) {
	domain := mustRect(t, []float64{0, 0}, []float64{100, 100})
	cfg := DefaultConfig()
	if _, err := BuildCandidate(nil, domain, 50, 1000, cfg, 1); err == nil {
		t.Error("empty reservoir accepted")
	}
	// Observations entirely outside the domain carry no usable mass.
	out := make([]Observation, 64)
	for i := range out {
		out[i] = Observation{Query: mustRect(t, []float64{200, 200}, []float64{300, 300}), Actual: 10}
	}
	if _, err := BuildCandidate(out, domain, 50, 1000, cfg, 1); err == nil {
		t.Error("out-of-domain reservoir accepted")
	}
	// Zero-mass observations likewise.
	zero := make([]Observation, 64)
	for i := range zero {
		zero[i] = Observation{Query: mustRect(t, []float64{1, 1}, []float64{2, 2}), Actual: 0}
	}
	if _, err := BuildCandidate(zero, domain, 50, 1000, cfg, 1); err == nil {
		t.Error("zero-mass reservoir accepted")
	}
}

func TestBuildCandidateDeterministicAndAccurate(t *testing.T) {
	ds, err := datagen.ByName("cross", 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	obs := driftObservations(t, ds, 200, 7)
	cfg := DefaultConfig()
	total := float64(ds.Table.Len())

	c1, err := BuildCandidate(obs, ds.Domain, 60, total, cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildCandidate(obs, ds.Domain, 60, total, cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Clusters != c2.Clusters || c1.Points != c2.Points || c1.Records != c2.Records {
		t.Fatalf("nondeterministic build: %+v vs %+v", c1, c2)
	}
	qs := driftQueries(t, ds, 100, 13)
	for _, q := range qs {
		if e1, e2 := c1.Hist.Estimate(q), c2.Hist.Estimate(q); e1 != e2 {
			t.Fatalf("nondeterministic estimates: %g vs %g", e1, e2)
		}
	}
	if c1.Clusters == 0 {
		t.Fatal("no clusters mined from a clustered workload")
	}

	// The candidate must beat the trivial uniform model on the workload the
	// reservoir described (that is the whole point of re-seeding).
	sumCand, sumTriv := 0.0, 0.0
	dvol := ds.Domain.Volume()
	for _, q := range driftQueries(t, ds, 200, 21) {
		actual := float64(ds.Table.CountIn(q))
		triv := total * ds.Domain.IntersectionVolume(q) / dvol
		sumCand += math.Abs(c1.Hist.Estimate(q) - actual)
		sumTriv += math.Abs(triv - actual)
	}
	if sumCand >= sumTriv {
		t.Fatalf("candidate NAE %.3f >= 1 (abs %g vs trivial %g)", sumCand/sumTriv, sumCand, sumTriv)
	}
}

func TestShadowPrefersBetterArm(t *testing.T) {
	ds, err := datagen.ByName("cross", 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(ds.Table.Len())
	obs := driftObservations(t, ds, 150, 11)

	cand, err := BuildCandidate(obs, ds.Domain, 60, total, DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}

	// Live arm A: a deliberately terrible estimator (always answers 0).
	// Live arm B: the candidate's own twin (equally good).
	shadowA, err := NewShadow(cand.Hist.Clone(), ds.Domain, total)
	if err != nil {
		t.Fatal(err)
	}
	twin := cand.Hist.Clone()
	shadowB, err := NewShadow(cand.Hist.Clone(), ds.Domain, total)
	if err != nil {
		t.Fatal(err)
	}
	dvol := ds.Domain.Volume()
	for _, o := range driftObservations(t, ds, 100, 17) {
		triv := total * ds.Domain.IntersectionVolume(o.Query) / dvol
		shadowA.Observe(o.Query, 0, triv, o.Actual)
		twinEst := twin.Estimate(o.Query)
		shadowB.Observe(o.Query, twinEst, triv, o.Actual)
		q, actual := o.Query, o.Actual
		vol := q.Volume()
		twin.Drill(q, func(r geom.Rect) float64 {
			if vol <= 0 {
				return actual
			}
			return actual * q.IntersectionVolume(r) / vol
		})
	}
	scA, scB := shadowA.Scores(), shadowB.Scores()
	if !scA.Promote(0.9) {
		t.Fatalf("candidate not promoted over zero estimator: %+v", scA)
	}
	if scB.Promote(0.9) {
		t.Fatalf("candidate promoted over its own twin at ratio 0.9: %+v", scB)
	}
	if scA.Rounds != 100 || scB.Rounds != 100 {
		t.Fatalf("rounds = %d/%d, want 100", scA.Rounds, scB.Rounds)
	}
	if scA.CandNAE <= 0 || scA.LiveNAE <= 0 || scA.RefineNAE <= 0 {
		t.Fatalf("NAE fields not populated: %+v", scA)
	}
}

func TestShadowZeroRoundsNeverPromotes(t *testing.T) {
	h, err := sthole.New(mustRect(t, []float64{0}, []float64{1}), 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShadow(h, mustRect(t, []float64{0}, []float64{1}), 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Scores().Promote(1) {
		t.Fatal("promoted with zero probation rounds")
	}
}

func mustRect(t *testing.T, lo, hi []float64) geom.Rect {
	t.Helper()
	r, err := geom.NewRect(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
