package drift

import (
	"fmt"
	"math"
	"math/rand"

	"sthist/internal/core"
	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/mineclus"
	"sthist/internal/sthole"
)

// Observation is one retained feedback round: the executed range predicate
// and its observed true cardinality. The reservoir the embedder maintains
// holds these.
type Observation struct {
	Query  geom.Rect
	Actual float64
}

// Candidate is the output of a re-seed build: a fresh cluster-initialized
// histogram plus provenance for logging and /stats.
type Candidate struct {
	Hist *sthole.Histogram
	// Clusters is how many subspace clusters MineClus mined from the cloud.
	Clusters int
	// Points is the size of the synthesized point cloud.
	Points int
	// Records is how many reservoir observations carried mass into the cloud.
	Records int
}

// BuildCandidate re-runs the paper's initialization recipe over retained
// feedback instead of base data. The estimator has no access to the shifted
// relation — only to what queries reported — so the builder synthesizes a
// point cloud from the reservoir: each observation contributes points
// proportional to its reported cardinality, placed uniformly inside its
// query rectangle (the same uniformity assumption scalar feedback already
// makes when drilling). MineClus then mines subspace clusters from the
// cloud, the cluster-seeded histogram is initialized with counts rescaled
// from point mass to tuple mass, and finally the reservoir feedback itself
// is replayed into the candidate so its frequencies reflect observed counts
// rather than the cloud's uniform smear.
//
// Deterministic given (obs order, seed). Returns an error when the reservoir
// holds too little usable mass to cluster.
func BuildCandidate(obs []Observation, domain geom.Rect, maxBuckets int, totalTuples float64, cfg Config, seed int64) (*Candidate, error) {
	if err := cfg.Sanitize(); err != nil {
		return nil, err
	}
	dims := domain.Dims()
	if dims == 0 {
		return nil, fmt.Errorf("drift: empty domain")
	}
	if maxBuckets < 1 {
		return nil, fmt.Errorf("drift: bucket budget must be >= 1, got %d", maxBuckets)
	}
	if totalTuples <= 0 || math.IsNaN(totalTuples) || math.IsInf(totalTuples, 0) {
		return nil, fmt.Errorf("drift: total tuples %g not positive and finite", totalTuples)
	}

	// Clamp each observation to the domain and collect its weight.
	type clamped struct {
		box    geom.Rect
		weight float64
	}
	usable := make([]clamped, 0, len(obs))
	totalWeight := 0.0
	for _, o := range obs {
		if o.Query.Dims() != dims || o.Actual <= 0 || math.IsNaN(o.Actual) || math.IsInf(o.Actual, 0) {
			continue
		}
		box := o.Query.Clone()
		ok := true
		for d := 0; d < dims; d++ {
			if box.Lo[d] < domain.Lo[d] {
				box.Lo[d] = domain.Lo[d]
			}
			if box.Hi[d] > domain.Hi[d] {
				box.Hi[d] = domain.Hi[d]
			}
			if box.Hi[d] < box.Lo[d] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		usable = append(usable, clamped{box: box, weight: o.Actual})
		totalWeight += o.Actual
	}
	if len(usable) < cfg.MinReservoir {
		return nil, fmt.Errorf("drift: only %d usable reservoir observations, need %d", len(usable), cfg.MinReservoir)
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("drift: reservoir carries no mass")
	}

	// Synthesize the cloud: points per observation proportional to reported
	// cardinality, at least one per observation so rare-but-real regions are
	// represented.
	rng := rand.New(rand.NewSource(seed))
	tab := dataset.MustNew(dataset.GenericNames(dims)...)
	tuple := make([]float64, dims)
	points := 0
	for _, c := range usable {
		n := int(math.Round(float64(cfg.SyntheticPoints) * c.weight / totalWeight))
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			for d := 0; d < dims; d++ {
				side := c.box.Hi[d] - c.box.Lo[d]
				tuple[d] = c.box.Lo[d] + rng.Float64()*side
			}
			tab.MustAppend(tuple)
		}
		points += n
	}

	// Mine subspace clusters with per-dimension medoid widths at the
	// configured fraction of the domain extent.
	mcfg := mineclus.DefaultConfig()
	mcfg.Width = 0
	mcfg.Widths = make([]float64, dims)
	for d := 0; d < dims; d++ {
		mcfg.Widths[d] = cfg.ClusterWidthFrac * domain.Side(d)
	}
	mcfg.Seed = seed
	mcfg.MaxClusters = maxBuckets
	clusters, err := mineclus.Run(tab, mcfg)
	if err != nil {
		return nil, fmt.Errorf("drift: re-clustering: %w", err)
	}

	h, err := sthole.New(domain, maxBuckets, totalTuples)
	if err != nil {
		return nil, fmt.Errorf("drift: candidate histogram: %w", err)
	}
	// No exact-count index exists for the drifted data, so initialization
	// falls back to the cumulative cluster model; CountScale maps the
	// cloud's point mass back to tuple mass.
	iopts := core.Options{
		Box:        core.ExtendedBR,
		Order:      core.ByImportance,
		CountScale: totalTuples / float64(points),
	}
	if err := core.Initialize(h, clusters, domain, iopts); err != nil {
		return nil, fmt.Errorf("drift: candidate initialization: %w", err)
	}

	// Replay the retained feedback so the candidate's frequencies reflect
	// the observed counts, not just the cloud's uniformity smear. Same
	// scalar interpolation the live Feedback path uses.
	for _, c := range usable {
		box, actual := c.box, c.weight
		vol := box.Volume()
		h.Drill(box, func(r geom.Rect) float64 {
			if vol <= 0 {
				return actual
			}
			return actual * box.IntersectionVolume(r) / vol
		})
	}
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("drift: candidate failed validation: %w", err)
	}
	return &Candidate{Hist: h, Clusters: len(clusters), Points: points, Records: len(usable)}, nil
}
