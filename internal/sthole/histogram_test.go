package sthole

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sthist/internal/geom"
)

func rect2(x0, y0, x1, y1 float64) geom.Rect {
	return geom.MustRect([]float64{x0, y0}, []float64{x1, y1})
}

// addChild is a test helper that grafts a bucket into the tree directly,
// bypassing Drill.
func (h *Histogram) addChild(parent *Bucket, box geom.Rect, freq float64) *Bucket {
	b := &Bucket{box: box, freq: freq, seq: h.nextSeq()}
	parent.attach(b)
	h.count++
	h.touch(parent)
	return b
}

func TestNewValidation(t *testing.T) {
	dom := rect2(0, 0, 10, 10)
	if _, err := New(dom, 0, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := New(dom, 5, -1); err == nil {
		t.Error("negative total accepted")
	}
	if _, err := New(dom, 5, math.NaN()); err == nil {
		t.Error("NaN total accepted")
	}
	if _, err := New(rect2(0, 0, 0, 10), 5, 0); err == nil {
		t.Error("zero-volume domain accepted")
	}
	h, err := New(dom, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if h.BucketCount() != 0 || h.MaxBuckets() != 5 || h.Dims() != 2 {
		t.Errorf("fresh histogram count=%d max=%d dims=%d", h.BucketCount(), h.MaxBuckets(), h.Dims())
	}
	if h.TotalTuples() != 100 {
		t.Errorf("TotalTuples = %g", h.TotalTuples())
	}
}

func TestEstimateTrivial(t *testing.T) {
	// A single root bucket with 100 tuples over [0,10]^2: a query covering a
	// quarter of the domain estimates 25 tuples.
	h := MustNew(rect2(0, 0, 10, 10), 5, 100)
	if got := h.Estimate(rect2(0, 0, 5, 5)); math.Abs(got-25) > 1e-9 {
		t.Errorf("Estimate(quarter) = %g, want 25", got)
	}
	if got := h.Estimate(rect2(0, 0, 10, 10)); math.Abs(got-100) > 1e-9 {
		t.Errorf("Estimate(domain) = %g, want 100", got)
	}
	if got := h.Estimate(rect2(20, 20, 30, 30)); got != 0 {
		t.Errorf("Estimate(outside) = %g, want 0", got)
	}
	if got := h.Estimate(geom.MustRect([]float64{0}, []float64{1})); got != 0 {
		t.Errorf("Estimate(wrong dims) = %g, want 0", got)
	}
}

func TestEstimateWithHole(t *testing.T) {
	// Root holds 90 tuples over [0,10]^2 minus a hole [0,5]x[0,5] that holds
	// 10. Own volume of root = 75, hole volume = 25.
	h := MustNew(rect2(0, 0, 10, 10), 5, 90)
	h.addChild(h.root, rect2(0, 0, 5, 5), 10)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Query = hole box exactly: estimates the hole's 10 tuples.
	if got := h.Estimate(rect2(0, 0, 5, 5)); math.Abs(got-10) > 1e-9 {
		t.Errorf("Estimate(hole) = %g, want 10", got)
	}
	// Query covering everything returns all 100 tuples.
	if got := h.Estimate(rect2(0, 0, 10, 10)); math.Abs(got-100) > 1e-9 {
		t.Errorf("Estimate(all) = %g, want 100", got)
	}
	// Query [5,10]x[5,10] lies entirely in root's own region: 90 * 25/75.
	if got, want := h.Estimate(rect2(5, 5, 10, 10)), 30.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Estimate(own region part) = %g, want %g", got, want)
	}
	// Query [0,5]x[0,10]: half the hole is wrong — full hole (10) plus root
	// own overlap ([0,5]x[5,10] = 25) => 10 + 90*25/75 = 40.
	if got, want := h.Estimate(rect2(0, 0, 5, 10)), 40.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Estimate(mixed) = %g, want %g", got, want)
	}
}

func TestEstimateNestedAndDegenerate(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 50)
	mid := h.addChild(h.root, rect2(2, 2, 8, 8), 20)
	h.addChild(mid, rect2(4, 4, 6, 6), 30)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.Estimate(rect2(0, 0, 10, 10)); math.Abs(got-100) > 1e-9 {
		t.Errorf("Estimate(all) = %g, want 100", got)
	}
	if got := h.Estimate(rect2(4, 4, 6, 6)); math.Abs(got-30) > 1e-9 {
		t.Errorf("Estimate(inner) = %g, want 30", got)
	}
	// A degenerate bucket (zero volume) acts as a point mass.
	h2 := MustNew(rect2(0, 0, 10, 10), 5, 0)
	h2.addChild(h2.root, rect2(3, 3, 3, 7), 40)
	if got := h2.Estimate(rect2(0, 0, 10, 10)); math.Abs(got-40) > 1e-9 {
		t.Errorf("Estimate over point-mass bucket = %g, want 40", got)
	}
	if got := h2.Estimate(rect2(5, 0, 10, 10)); got != 0 {
		t.Errorf("Estimate missing point-mass = %g, want 0", got)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 10)
	b := h.addChild(h.root, rect2(1, 1, 4, 4), 5)
	if err := h.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	// Overlapping sibling.
	h.addChild(h.root, rect2(3, 3, 6, 6), 5)
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlapping siblings not detected: %v", err)
	}
	h.root.children = h.root.children[:1]
	h.count = 1
	// Negative frequency.
	b.freq = -1
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "frequency") {
		t.Errorf("negative frequency not detected: %v", err)
	}
	b.freq = 5
	// Child escaping parent.
	b.box = rect2(5, 5, 11, 11)
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Errorf("escaping child not detected: %v", err)
	}
	b.box = rect2(1, 1, 4, 4)
	// Count mismatch.
	h.count = 7
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "count") {
		t.Errorf("count mismatch not detected: %v", err)
	}
}

func TestSubspaceBuckets(t *testing.T) {
	dom := geom.MustRect([]float64{0, 0, 0}, []float64{10, 10, 10})
	h := MustNew(dom, 10, 100)
	// Full-span on dim 0 and 2, constrained on dim 1: a subspace bucket.
	sub := h.addChild(h.root, geom.MustRect([]float64{0, 4, 0}, []float64{10, 6, 10}), 10)
	// Constrained on all dims: not a subspace bucket.
	h.addChild(h.root, geom.MustRect([]float64{1, 7, 1}, []float64{2, 8, 2}), 5)
	got := h.SubspaceBuckets()
	if len(got) != 1 || got[0] != sub {
		t.Fatalf("SubspaceBuckets = %d buckets", len(got))
	}
	dims := h.SubspaceDims(sub)
	if len(dims) != 2 || dims[0] != 0 || dims[1] != 2 {
		t.Errorf("SubspaceDims = %v, want [0 2]", dims)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 50)
	mid := h.addChild(h.root, rect2(2, 2, 8, 8), 20)
	h.addChild(mid, rect2(4, 4, 6, 6), 30)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.BucketCount() != 2 || back.MaxBuckets() != 5 {
		t.Errorf("round trip count=%d max=%d", back.BucketCount(), back.MaxBuckets())
	}
	for _, q := range []geom.Rect{rect2(0, 0, 10, 10), rect2(1, 1, 5, 5), rect2(4, 4, 6, 6)} {
		if a, b := h.Estimate(q), back.Estimate(q); math.Abs(a-b) > 1e-9 {
			t.Errorf("estimate mismatch after round trip on %v: %g vs %g", q, a, b)
		}
	}
	if err := back.Validate(); err != nil {
		t.Errorf("deserialized histogram invalid: %v", err)
	}
	// Corrupted input is rejected.
	var bad Histogram
	if err := json.Unmarshal([]byte(`{"max_buckets":0,"root":{"lo":[0],"hi":[1],"freq":1}}`), &bad); err == nil {
		t.Error("invalid budget accepted")
	}
	if err := json.Unmarshal([]byte(`{"max_buckets":5,"root":{"lo":[1],"hi":[0],"freq":1}}`), &bad); err == nil {
		t.Error("inverted box accepted")
	}
}

func TestClone(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 50)
	h.addChild(h.root, rect2(2, 2, 8, 8), 20)
	c := h.Clone()
	if c.BucketCount() != h.BucketCount() {
		t.Fatal("clone count mismatch")
	}
	// Mutating the clone must not affect the original.
	c.root.children[0].freq = 999
	if h.root.children[0].freq != 20 {
		t.Error("clone shares bucket storage with original")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDump(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 50)
	h.addChild(h.root, rect2(2, 2, 8, 8), 20)
	var buf bytes.Buffer
	h.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "freq=50.0") || !strings.Contains(out, "freq=20.0") {
		t.Errorf("Dump output missing frequencies:\n%s", out)
	}
}

func TestFrozen(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 0)
	h.SetFrozen(true)
	if !h.Frozen() {
		t.Error("Frozen() = false after SetFrozen(true)")
	}
	h.Drill(rect2(0, 0, 5, 5), func(geom.Rect) float64 { return 10 })
	if h.BucketCount() != 0 || h.Stats.Queries != 0 {
		t.Error("frozen histogram still learned")
	}
	h.SetFrozen(false)
	h.Drill(rect2(0, 0, 5, 5), func(geom.Rect) float64 { return 10 })
	if h.BucketCount() != 1 {
		t.Error("unfrozen histogram did not learn")
	}
}

func TestGobRoundTrip(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 50)
	mid := h.addChild(h.root, rect2(2, 2, 8, 8), 20)
	h.addChild(mid, rect2(4, 4, 6, 6), 30)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.BucketCount() != 2 {
		t.Errorf("gob round trip count = %d", back.BucketCount())
	}
	q := rect2(1, 1, 9, 9)
	if a, b := h.Estimate(q), back.Estimate(q); math.Abs(a-b) > 1e-9 {
		t.Errorf("estimate mismatch after gob round trip: %g vs %g", a, b)
	}
}

func TestSetMaxBuckets(t *testing.T) {
	h := MustNew(rect2(0, 0, 100, 100), 20, 1000)
	rng := rand.New(rand.NewSource(33))
	count := uniformCluster(rect2(20, 20, 60, 60), 1000)
	for i := 0; i < 80; i++ {
		c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		h.Drill(geom.CubeAt(c, 10, h.root.box), count)
	}
	if h.BucketCount() == 0 {
		t.Fatal("no buckets after training")
	}
	if err := h.SetMaxBuckets(0); err == nil {
		t.Error("budget 0 accepted")
	}
	// Shrink: compacts immediately.
	if err := h.SetMaxBuckets(3); err != nil {
		t.Fatal(err)
	}
	if h.BucketCount() > 3 {
		t.Errorf("BucketCount = %d after shrinking to 3", h.BucketCount())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Grow: future drills may use the head room.
	if err := h.SetMaxBuckets(50); err != nil {
		t.Fatal(err)
	}
	before := h.BucketCount()
	for i := 0; i < 40; i++ {
		c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		h.Drill(geom.CubeAt(c, 8, h.root.box), count)
	}
	if h.BucketCount() <= before {
		t.Errorf("histogram did not grow after budget increase: %d -> %d", before, h.BucketCount())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorruptTree(t *testing.T) {
	// Overlapping children and a child escaping its parent must be rejected
	// by the Validate pass inside UnmarshalJSON.
	var h Histogram
	overlapping := `{"max_buckets":5,"root":{"lo":[0,0],"hi":[10,10],"freq":1,
		"children":[
			{"lo":[1,1],"hi":[5,5],"freq":1},
			{"lo":[4,4],"hi":[8,8],"freq":1}
		]}}`
	if err := json.Unmarshal([]byte(overlapping), &h); err == nil {
		t.Error("overlapping children accepted")
	}
	escaping := `{"max_buckets":5,"root":{"lo":[0,0],"hi":[10,10],"freq":1,
		"children":[{"lo":[5,5],"hi":[11,11],"freq":1}]}}`
	if err := json.Unmarshal([]byte(escaping), &h); err == nil {
		t.Error("escaping child accepted")
	}
	negative := `{"max_buckets":5,"root":{"lo":[0,0],"hi":[10,10],"freq":-3}}`
	if err := json.Unmarshal([]byte(negative), &h); err == nil {
		t.Error("negative frequency accepted")
	}
	overBudget := `{"max_buckets":1,"root":{"lo":[0,0],"hi":[10,10],"freq":1,
		"children":[
			{"lo":[1,1],"hi":[2,2],"freq":1},
			{"lo":[3,3],"hi":[4,4],"freq":1}
		]}}`
	if err := json.Unmarshal([]byte(overBudget), &h); err == nil {
		t.Error("over-budget tree accepted")
	}
}
