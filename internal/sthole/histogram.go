// Package sthole implements the STHoles multidimensional self-tuning
// histogram of Bruno, Chaudhuri and Gravano (SIGMOD 2001), the data
// structure the paper under reproduction builds on.
//
// An STHoles histogram partitions the data space into a tree of rectangular
// buckets. Each bucket b carries a frequency n(b): the number of tuples that
// fall into b's box but not into any of its children ("holes"). Cardinality
// estimation uses the uniformity assumption within each bucket's own region
// (Eq. 1 of the paper). The histogram refines itself from query feedback by
// drilling new holes (drill.go) and stays within its bucket budget by
// merging similar buckets (merge.go).
//
// Budget convention: following the paper ("when we say that the bucket limit
// is one bucket we mean it is one bucket plus this root"), MaxBuckets counts
// non-root buckets; the root that spans the whole data space is always
// present and free.
package sthole

import (
	"fmt"
	"math"

	"sthist/internal/geom"
)

// Bucket is a node of the STHoles bucket tree.
type Bucket struct {
	box      geom.Rect
	freq     float64 // tuples in box excluding children ("own" tuples)
	parent   *Bucket
	children []*Bucket
	seq      uint64 // creation order, tie-breaker for merge scheduling
}

// Box returns the bucket's bounding box.
func (b *Bucket) Box() geom.Rect { return b.box }

// Freq returns the bucket's own tuple count (excluding children).
func (b *Bucket) Freq() float64 { return b.freq }

// Parent returns the bucket's parent, or nil for the root.
func (b *Bucket) Parent() *Bucket { return b.parent }

// Children returns the bucket's children. The slice must not be modified.
func (b *Bucket) Children() []*Bucket { return b.children }

// ownVolume returns the volume of the bucket's own region: its box minus the
// boxes of its children.
func (b *Bucket) ownVolume() float64 {
	v := b.box.Volume()
	for _, c := range b.children {
		v -= c.box.Volume()
	}
	if v < 0 {
		// Guard against floating-point drift; children are disjoint and
		// contained, so own volume is mathematically >= 0.
		v = 0
	}
	return v
}

// subtreeFreq returns the total tuples stored in b's subtree.
func (b *Bucket) subtreeFreq() float64 {
	total := b.freq
	for _, c := range b.children {
		total += c.subtreeFreq()
	}
	return total
}

// subtreeSize returns the number of buckets in b's subtree, including b.
func (b *Bucket) subtreeSize() int {
	n := 1
	for _, c := range b.children {
		n += c.subtreeSize()
	}
	return n
}

// detach removes child c from b.children. It panics if c is not a child —
// that would mean the tree is corrupted.
func (b *Bucket) detach(c *Bucket) {
	for i, ch := range b.children {
		if ch == c {
			b.children = append(b.children[:i], b.children[i+1:]...)
			c.parent = nil
			return
		}
	}
	panic("sthole: detach of non-child bucket")
}

// attach adds c as a child of b.
func (b *Bucket) attach(c *Bucket) {
	c.parent = b
	b.children = append(b.children, c)
}

// Histogram is an STHoles histogram.
type Histogram struct {
	root       *Bucket
	maxBuckets int // budget, excluding the root
	count      int // live non-root buckets
	dims       int
	frozen     bool // when true, Drill is a no-op (Fig. 17 experiment)

	// merge bookkeeping (merge.go): cached penalties, the buckets whose
	// entries must be recomputed before the next merge selection, the
	// lazy-deletion candidate heap over the cache entries, and the bucket
	// creation counter behind the deterministic tie-break order.
	mergeCache map[*Bucket]*parentMergeEntry
	sibCache   map[*Bucket]*siblingMergeEntry
	dirty      map[*Bucket]struct{}
	merges     candidateHeap
	seqCounter uint64

	// crossCheck makes performBestMerge verify every heap-scheduled merge
	// selection against the naive full-scan reference (slow.go); the first
	// divergence is recorded in crossCheckErr. Used by the equivalence tests.
	crossCheck    bool
	crossCheckErr error

	// scratch is reused by Drill for its pre-drill snapshot to avoid one
	// O(buckets) allocation per query. qcScratch and candScratch are the
	// reusable rectangles of the drill hot path; boxScratch and partScratch
	// back the sibling-merge box extension (merge.go).
	scratch       []*Bucket
	qcScratch     geom.Rect
	candScratch   geom.Rect
	boxScratch    geom.Rect
	partScratch   []*Bucket
	centerScratch []float64 // flat k×dims center buffer for bestSiblingMerge

	// Flattened per-parent child geometry (dim-0 interval and box volume),
	// shared by every pair evaluation of one bestSiblingMerge call so the
	// sibling scan reads contiguous arrays instead of chasing bucket
	// pointers. structGen increments on every tree mutation (touch/forget);
	// the arrays are valid iff they were built for the same parent at the
	// current generation.
	structGen      uint64
	sibArrParent   *Bucket
	sibArrGen      uint64
	sibLo, sibHi   []float64 // dims×k, per-dim contiguous: sibLo[d*k+i]
	sibVol         []float64
	sibOwnVol      float64 // parent's ownVolume(), pair-invariant
	partIdxScratch []int

	// mergeObs, when non-nil, receives one callback per executed merge
	// (merge.go). Not copied by Clone and not serialized.
	mergeObs MergeObserver

	// Stats accumulates maintenance counters for the experiments.
	Stats Stats
}

// Stats counts maintenance events for diagnostics and the experiments in
// §5.3 (e.g. how many merges a subspace bucket survives).
type Stats struct {
	Queries            int // feedback queries processed
	Drills             int // holes drilled
	ParentChildMerges  int
	SiblingMerges      int
	SkippedExactDrills int // candidates skipped because the estimate was already exact
}

// New creates an empty histogram over the given domain with the given budget
// of non-root buckets. The root bucket spans the domain and initially holds
// totalTuples tuples (pass 0 if unknown; the first feedback query that spans
// the domain will correct it).
func New(domain geom.Rect, maxBuckets int, totalTuples float64) (*Histogram, error) {
	if maxBuckets < 1 {
		return nil, fmt.Errorf("sthole: bucket budget must be >= 1, got %d", maxBuckets)
	}
	if totalTuples < 0 || math.IsNaN(totalTuples) {
		return nil, fmt.Errorf("sthole: invalid total tuple count %g", totalTuples)
	}
	if domain.Volume() <= 0 {
		return nil, fmt.Errorf("sthole: domain %v has zero volume", domain)
	}
	h := &Histogram{
		root:       &Bucket{box: domain.Clone(), freq: totalTuples},
		maxBuckets: maxBuckets,
		dims:       domain.Dims(),
	}
	h.resetMergeState()
	return h, nil
}

// nextSeq returns a fresh bucket sequence number.
func (h *Histogram) nextSeq() uint64 {
	s := h.seqCounter
	h.seqCounter++
	return s
}

// resetMergeState rebuilds the merge scheduling state from the bucket tree:
// fresh caches, an empty candidate heap, pre-order sequence numbers, and
// every bucket marked dirty so the next merge selection recomputes all
// candidates. Called when a tree is (re)built wholesale (New, Clone,
// UnmarshalJSON).
func (h *Histogram) resetMergeState() {
	h.mergeCache = make(map[*Bucket]*parentMergeEntry)
	h.sibCache = make(map[*Bucket]*siblingMergeEntry)
	h.dirty = make(map[*Bucket]struct{})
	h.merges = h.merges[:0]
	h.seqCounter = 0
	h.sibArrParent = nil // flattened sibling arrays may describe a stale tree
	var walk func(b *Bucket)
	walk = func(b *Bucket) {
		b.seq = h.nextSeq()
		h.dirty[b] = struct{}{}
		for _, c := range b.children {
			walk(c)
		}
	}
	walk(h.root)
}

// MustNew is New that panics on error, for tests and generators.
func MustNew(domain geom.Rect, maxBuckets int, totalTuples float64) *Histogram {
	h, err := New(domain, maxBuckets, totalTuples)
	if err != nil {
		panic(err)
	}
	return h
}

// Root returns the root bucket.
func (h *Histogram) Root() *Bucket { return h.root }

// Dims returns the dimensionality of the histogram.
func (h *Histogram) Dims() int { return h.dims }

// BucketCount returns the number of non-root buckets currently held.
func (h *Histogram) BucketCount() int { return h.count }

// MaxBuckets returns the non-root bucket budget.
func (h *Histogram) MaxBuckets() int { return h.maxBuckets }

// SetMaxBuckets changes the bucket budget at run time, the operation a
// SASH-style memory manager performs when reallocating space between
// histograms ([18] in the paper). Shrinking below the current bucket count
// compacts immediately via lowest-penalty merges; growing simply allows
// future drills to keep more buckets. Budgets below 1 are rejected.
func (h *Histogram) SetMaxBuckets(n int) error {
	if n < 1 {
		return fmt.Errorf("sthole: bucket budget must be >= 1, got %d", n)
	}
	h.maxBuckets = n
	h.enforceBudget()
	return nil
}

// TotalTuples returns the tuple count currently stored across all buckets.
func (h *Histogram) TotalTuples() float64 { return h.root.subtreeFreq() }

// Depth returns the maximum depth of the bucket tree (0 for a bare root).
// Tree depth bounds both the estimation descent and the drill candidate
// scan, so it is the structural health number the telemetry plane exports.
func (h *Histogram) Depth() int { return subtreeDepth(h.root) }

func subtreeDepth(b *Bucket) int {
	max := 0
	for _, c := range b.children {
		if d := subtreeDepth(c) + 1; d > max {
			max = d
		}
	}
	return max
}

// SetFrozen stops (true) or resumes (false) self-tuning: while frozen, Drill
// records nothing. Used by the Fig. 17 experiment, which cuts off learning
// after the training workload.
func (h *Histogram) SetFrozen(frozen bool) { h.frozen = frozen }

// Frozen reports whether self-tuning is disabled.
func (h *Histogram) Frozen() bool { return h.frozen }

// Estimate returns the estimated number of tuples in query rectangle q using
// the uniformity assumption (Eq. 1):
//
//	est(q) = sum over buckets b of n(b) * vol(q ∩ own(b)) / vol(own(b))
//
// Buckets with zero own volume contribute their full frequency when q covers
// their box (point-mass semantics) and nothing otherwise.
//
//sthlint:noalloc
func (h *Histogram) Estimate(q geom.Rect) float64 {
	if q.Dims() != h.dims {
		return 0
	}
	return estimateBucket(h.root, q)
}

// estimateBucket evaluates Eq. 1 over b's subtree by recursive descent.
// Child boxes are contained in their parent's box, so a subtree whose root
// box misses the query contributes nothing and is pruned without visiting
// it: on a trained tree the descent touches only the buckets overlapping q
// instead of all B buckets. The pruned terms are exact zeros, so the result
// is bit-identical to the naive full walk (estimateSlow in slow.go).
//
//sthlint:noalloc
func estimateBucket(b *Bucket, q geom.Rect) float64 {
	interBox := b.box.IntersectionVolume(q)
	if interBox <= 0 {
		// q misses the whole subtree.
		if b.box.Intersects(q) {
			// Zero-volume overlap (shared boundary) or degenerate bucket box.
			if q.Contains(b.box) {
				return b.subtreeFreq()
			}
		}
		return 0
	}
	est := 0.0
	interOwn := interBox
	ownVol := b.box.Volume()
	for _, c := range b.children {
		ownVol -= c.box.Volume()
		iv := c.box.IntersectionVolume(q)
		if iv > 0 {
			interOwn -= iv
			est += estimateBucket(c, q)
		} else if c.box.Intersects(q) {
			// Zero-volume overlap: only the point-mass case inside the child
			// can contribute.
			est += estimateBucket(c, q)
		}
	}
	if interOwn < 0 {
		interOwn = 0
	}
	if ownVol > 0 {
		est += b.freq * interOwn / ownVol
	} else if q.Contains(b.box) {
		est += b.freq
	}
	return est
}

// Buckets returns all buckets in depth-first pre-order, root first. The
// returned slice is a snapshot; later drills/merges do not affect it.
func (h *Histogram) Buckets() []*Bucket {
	return h.appendBuckets(make([]*Bucket, 0, h.count+1))
}

// appendBuckets appends the pre-order bucket walk to dst.
func (h *Histogram) appendBuckets(dst []*Bucket) []*Bucket {
	return appendSubtree(dst, h.root)
}

// appendSubtree appends b's subtree to dst in pre-order. A plain recursive
// function (no closure) so the drill hot path stays allocation-free.
func appendSubtree(dst []*Bucket, b *Bucket) []*Bucket {
	dst = append(dst, b)
	for _, c := range b.children {
		dst = appendSubtree(dst, c)
	}
	return dst
}

// appendIntersecting appends, in pre-order, the buckets of b's subtree whose
// boxes share positive volume with q. Because every child box is contained
// in its parent's box, a subtree whose root misses q contains no bucket that
// intersects q and is pruned wholesale — this is what makes Drill's
// candidate collection near-logarithmic on trained trees instead of O(B).
func appendIntersecting(dst []*Bucket, b *Bucket, q geom.Rect) []*Bucket {
	if !b.box.IntersectsOpen(q) {
		return dst
	}
	dst = append(dst, b)
	for _, c := range b.children {
		dst = appendIntersecting(dst, c, q)
	}
	return dst
}

// inTree reports whether b is still reachable from the root. Drilling uses
// this to skip buckets that a concurrent merge removed.
func (h *Histogram) inTree(b *Bucket) bool {
	for x := b; x != nil; x = x.parent {
		if x == h.root {
			return true
		}
	}
	return false
}

// Validate checks the structural invariants of the bucket tree and returns
// an error describing the first violation found:
//
//   - every child box is contained in its parent's box,
//   - sibling boxes have pairwise disjoint interiors,
//   - frequencies are non-negative and finite,
//   - the cached bucket count matches the tree,
//   - the budget is respected,
//   - the merge scheduling state covers the tree: every bucket that needs a
//     merge-candidate entry either has a cached one backed by a live heap
//     item, or is queued in the dirty set for recomputation.
func (h *Histogram) Validate() error {
	seen := 0
	var walk func(b *Bucket) error
	walk = func(b *Bucket) error {
		if b != h.root {
			seen++
		}
		if b.freq < 0 || math.IsNaN(b.freq) || math.IsInf(b.freq, 0) {
			return fmt.Errorf("sthole: bucket %v has invalid frequency %g", b.box, b.freq)
		}
		for i, c := range b.children {
			if c.parent != b {
				return fmt.Errorf("sthole: bucket %v has broken parent pointer", c.box)
			}
			if !b.box.Contains(c.box) {
				return fmt.Errorf("sthole: child %v escapes parent %v", c.box, b.box)
			}
			for _, d := range b.children[i+1:] {
				if c.box.IntersectsOpen(d.box) {
					return fmt.Errorf("sthole: siblings %v and %v overlap", c.box, d.box)
				}
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(h.root); err != nil {
		return err
	}
	if seen != h.count {
		return fmt.Errorf("sthole: bucket count cache %d != tree count %d", h.count, seen)
	}
	if h.count > h.maxBuckets {
		return fmt.Errorf("sthole: bucket count %d exceeds budget %d", h.count, h.maxBuckets)
	}
	return h.validateMergeState()
}
