package sthole

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/index"
)

// counterFunc adapts an index.Counter to CountFunc.
func counterFunc(c index.Counter) CountFunc {
	return func(r geom.Rect) float64 { return float64(c.Count(r)) }
}

// uniformCluster returns a CountFunc describing an idealized continuous
// uniform cluster: count(r) = freq * vol(r ∩ box) / vol(box).
func uniformCluster(box geom.Rect, freq float64) CountFunc {
	return func(r geom.Rect) float64 {
		return freq * box.IntersectionVolume(r) / box.Volume()
	}
}

func TestDrillFirstQuery(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 100)
	q := rect2(0, 0, 5, 5)
	h.Drill(q, func(geom.Rect) float64 { return 80 })
	if h.BucketCount() != 1 {
		t.Fatalf("BucketCount = %d, want 1", h.BucketCount())
	}
	b := h.root.children[0]
	if !b.box.Equal(q) {
		t.Errorf("drilled box = %v, want %v", b.box, q)
	}
	if b.freq != 80 {
		t.Errorf("drilled freq = %g, want 80", b.freq)
	}
	if h.root.freq != 20 {
		t.Errorf("root freq = %g, want 20", h.root.freq)
	}
	if got := h.Estimate(q); math.Abs(got-80) > 1e-9 {
		t.Errorf("Estimate(q) = %g after drilling", got)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDrillSkipsExactEstimates(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 100)
	// The estimate for this query is exactly 25 under uniformity; feedback
	// agreeing with it must not spend a bucket.
	h.Drill(rect2(0, 0, 5, 5), func(geom.Rect) float64 { return 25 })
	if h.BucketCount() != 0 {
		t.Errorf("BucketCount = %d, want 0 (drill should be skipped)", h.BucketCount())
	}
	if h.Stats.SkippedExactDrills == 0 {
		t.Error("skip counter not incremented")
	}
}

func TestDrillWholeDomainRefreshesRoot(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 0)
	h.Drill(rect2(0, 0, 10, 10), func(geom.Rect) float64 { return 500 })
	if h.BucketCount() != 0 {
		t.Errorf("BucketCount = %d, want 0 (whole-bucket refresh)", h.BucketCount())
	}
	if h.root.freq != 500 {
		t.Errorf("root freq = %g, want 500", h.root.freq)
	}
}

func TestDrillShrinksAgainstChildren(t *testing.T) {
	// Existing hole [0,4]x[0,4]; query [2,6]x[0,4] partially overlaps it.
	// The candidate in the root must be shrunk to [4,6]x[0,4].
	h := MustNew(rect2(0, 0, 10, 10), 5, 90)
	h.addChild(h.root, rect2(0, 0, 4, 4), 10)
	counts := func(r geom.Rect) float64 {
		// 10 tuples uniform in the hole, 90 uniform in the rest.
		inHole := 10 * r.IntersectionVolume(rect2(0, 0, 4, 4)) / 16
		rest := 90 * (r.Volume() - r.IntersectionVolume(rect2(0, 0, 4, 4))) / 84
		return inHole + rest
	}
	h.Drill(rect2(2, 0, 6, 4), counts)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// The new bucket (if any) must not overlap the pre-existing hole.
	hole := rect2(0, 0, 4, 4)
	for _, b := range h.Buckets() {
		if b == h.root || b.box.Equal(hole) {
			continue
		}
		if b.box.IntersectsOpen(hole) {
			t.Errorf("drilled bucket %v overlaps existing hole", b.box)
		}
		if !rect2(4, 0, 6, 4).Contains(b.box) {
			t.Errorf("drilled bucket %v outside shrunk candidate [4,6]x[0,4]", b.box)
		}
	}
}

func TestDrillMovesEnclosedChildren(t *testing.T) {
	// An existing small hole inside the query area becomes a child of the
	// new bucket.
	h := MustNew(rect2(0, 0, 10, 10), 5, 90)
	small := h.addChild(h.root, rect2(1, 1, 2, 2), 10)
	h.Drill(rect2(0, 0, 5, 5), func(r geom.Rect) float64 {
		// All 100 tuples inside [0,5]x[0,5]: 10 in the small hole, 90 around.
		if r.Contains(rect2(0, 0, 5, 5)) || r.Equal(rect2(0, 0, 5, 5)) {
			return 100
		}
		in := 10 * r.IntersectionVolume(rect2(1, 1, 2, 2))
		out := 90 * (r.IntersectionVolume(rect2(0, 0, 5, 5)) - r.IntersectionVolume(rect2(1, 1, 2, 2))) / 24
		return in + out
	})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if small.parent == h.root {
		t.Error("enclosed child was not moved under the new bucket")
	}
	if small.parent == nil || !small.parent.box.Equal(rect2(0, 0, 5, 5)) {
		t.Errorf("small hole re-parented to %v", small.parent)
	}
	// New bucket freq excludes the moved child's tuples: 100 - 10 = 90.
	if got := small.parent.freq; math.Abs(got-90) > 1e-9 {
		t.Errorf("new bucket freq = %g, want 90", got)
	}
}

func TestDrillRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := dataset.MustNew("x", "y")
	for i := 0; i < 2000; i++ {
		tab.MustAppend([]float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	kt, err := index.BuildKDTree(tab)
	if err != nil {
		t.Fatal(err)
	}
	h := MustNew(rect2(0, 0, 10, 10), 8, float64(tab.Len()))
	count := counterFunc(kt)
	for i := 0; i < 200; i++ {
		c := geom.Point{rng.Float64() * 10, rng.Float64() * 10}
		q := geom.CubeAt(c, 1+rng.Float64()*2, rect2(0, 0, 10, 10))
		h.Drill(q, count)
		if h.BucketCount() > h.MaxBuckets() {
			t.Fatalf("budget violated after query %d: %d > %d", i, h.BucketCount(), h.MaxBuckets())
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("after query %d: %v", i, err)
		}
	}
	if h.Stats.Drills == 0 || h.Stats.Queries != 200 {
		t.Errorf("stats: %+v", h.Stats)
	}
}

func TestDrillLearnsUniformCluster(t *testing.T) {
	// A single dense cluster with idealized uniform feedback: after training
	// with queries that tile the cluster, the estimate for the cluster
	// improves dramatically over the untrained histogram.
	dom := rect2(0, 0, 100, 100)
	cluster := rect2(40, 40, 60, 60)
	count := uniformCluster(cluster, 10000)
	h := MustNew(dom, 20, 10000)
	before := math.Abs(h.Estimate(cluster) - 10000)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		h.Drill(geom.CubeAt(c, 10, dom), count)
	}
	after := math.Abs(h.Estimate(cluster) - 10000)
	if after > before/4 {
		t.Errorf("error before=%g after=%g: self-tuning failed to learn the cluster", before, after)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDrillOutsideDomainIgnored(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 100)
	h.Drill(rect2(20, 20, 30, 30), func(geom.Rect) float64 { return 50 })
	if h.BucketCount() != 0 || h.Stats.Queries != 0 {
		t.Error("query outside the domain was processed")
	}
	h.Drill(geom.MustRect([]float64{0}, []float64{1}), func(geom.Rect) float64 { return 1 })
	if h.Stats.Queries != 0 {
		t.Error("dimension-mismatched query was processed")
	}
}

func TestDrillNegativeFeedbackClamped(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 10)
	h.Drill(rect2(0, 0, 5, 5), func(geom.Rect) float64 { return -3 })
	if err := h.Validate(); err != nil {
		t.Errorf("negative feedback corrupted the histogram: %v", err)
	}
}

// TestGoldenDrillSequence pins the exact tree produced by a fixed drill
// sequence, guarding the drilling/merging implementation against silent
// behavioral drift.
func TestGoldenDrillSequence(t *testing.T) {
	h := MustNew(rect2(0, 0, 100, 100), 3, 1000)
	cluster := rect2(20, 20, 60, 60)
	count := uniformCluster(cluster, 1000)
	for _, q := range []geom.Rect{
		rect2(0, 0, 50, 50),
		rect2(25, 25, 75, 75),
		rect2(10, 10, 30, 30),
		rect2(40, 40, 80, 80),
		rect2(20, 20, 60, 60),
	} {
		h.Drill(q, count)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	h.Dump(&buf)
	got := buf.String()
	want := `[0,100]x[0,100] freq=187.5
  [0,50]x[0,50] freq=0.0
    [20,50]x[20,50] freq=562.5
  [50,60]x[20,60] freq=250.0
` // pinned from the current, validated implementation
	if got != want {
		t.Errorf("tree drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestDrillIgnoresNonFiniteFeedback(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 5, 100)
	h.Drill(rect2(0, 0, 5, 5), func(geom.Rect) float64 { return math.NaN() })
	h.Drill(rect2(5, 5, 9, 9), func(geom.Rect) float64 { return math.Inf(1) })
	if h.BucketCount() != 0 {
		t.Errorf("non-finite feedback created %d buckets", h.BucketCount())
	}
	if err := h.Validate(); err != nil {
		t.Errorf("non-finite feedback corrupted the histogram: %v", err)
	}
	if got := h.Estimate(rect2(0, 0, 10, 10)); math.IsNaN(got) {
		t.Error("NaN leaked into estimates")
	}
}

// TestDrillAdversarialFeedback: a feedback source returning contradictory
// garbage (counts inconsistent across overlapping queries, larger than the
// table, wildly varying) must never violate the structural invariants.
func TestDrillAdversarialFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	dom := rect2(0, 0, 100, 100)
	h := MustNew(dom, 12, 500)
	adversary := func(r geom.Rect) float64 {
		switch rng.Intn(4) {
		case 0:
			return -1e9
		case 1:
			return 1e12
		case 2:
			return rng.Float64()
		default:
			return rng.NormFloat64() * 1e6
		}
	}
	for i := 0; i < 300; i++ {
		c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		h.Drill(geom.CubeAt(c, 1+rng.Float64()*40, dom), adversary)
		if err := h.Validate(); err != nil {
			t.Fatalf("after adversarial query %d: %v", i, err)
		}
	}
	if est := h.Estimate(dom); est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
		t.Errorf("estimate degenerated to %g", est)
	}
}
