package sthole

import (
	"fmt"
	"math/rand"
	"testing"

	"sthist/internal/geom"
)

// These tests pin the optimized maintenance path (pruned Estimate descent,
// heap-scheduled merge selection, scratch-rectangle drill geometry) to the
// naive reference implementations in slow.go: estimates must be
// bit-identical and the merge schedule must be exactly the same, workload by
// workload.

// randomDomain returns [0,100]^dims.
func randomDomain(dims int) geom.Rect {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := range hi {
		hi[d] = 100
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// randomQuery returns a random cube inside dom.
func randomQuery(rng *rand.Rand, dom geom.Rect, minSide, maxSide float64) geom.Rect {
	c := make(geom.Point, dom.Dims())
	for d := range c {
		c[d] = dom.Lo[d] + rng.Float64()*dom.Side(d)
	}
	return geom.CubeAt(c, minSide+rng.Float64()*(maxSide-minSide), dom)
}

// randomClusterCount returns idealized uniform-cluster feedback over a
// random sub-box of dom.
func randomClusterCount(rng *rand.Rand, dom geom.Rect) CountFunc {
	lo := make(geom.Point, dom.Dims())
	hi := make(geom.Point, dom.Dims())
	for d := range lo {
		a := rng.Float64() * 60
		lo[d] = a
		hi[d] = a + 10 + rng.Float64()*30
	}
	cl := geom.Rect{Lo: lo, Hi: hi}
	freq := 100 + rng.Float64()*2000
	return uniformCluster(cl, freq)
}

// TestEquivalenceRandomWorkloads drives 500 random drill workloads (2–5
// dims, fixed seed) with merge cross-checking enabled: every heap-scheduled
// merge selection is compared against the full-scan reference as it happens,
// and after each workload the optimized Estimate must agree bit-for-bit
// with the unpruned reference walk on a batch of random queries.
func TestEquivalenceRandomWorkloads(t *testing.T) {
	const workloads = 500
	rng := rand.New(rand.NewSource(2026))
	for w := 0; w < workloads; w++ {
		dims := 2 + w%4 // cycle 2..5 dims deterministically
		dom := randomDomain(dims)
		budget := 2 + rng.Intn(9)
		h := MustNew(dom, budget, 500+rng.Float64()*1000)
		h.crossCheck = true
		count := randomClusterCount(rng, dom)
		queries := 15 + rng.Intn(25)
		for i := 0; i < queries; i++ {
			h.Drill(randomQuery(rng, dom, 5, 50), count)
			if h.crossCheckErr != nil {
				t.Fatalf("workload %d (dims=%d budget=%d) query %d: %v", w, dims, budget, i, h.crossCheckErr)
			}
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("workload %d: %v", w, err)
		}
		for i := 0; i < 20; i++ {
			q := randomQuery(rng, dom, 1, 70)
			fast := h.Estimate(q)
			slow := h.estimateSlow(q)
			if fast != slow {
				t.Fatalf("workload %d query %v: pruned estimate %v != reference %v", w, q, fast, slow)
			}
		}
	}
}

// TestEquivalenceMergeToOneBucket cross-checks the merge schedule while
// collapsing drilled histograms all the way down to a single bucket — the
// regime where every selection matters and the candidate heap churns most.
func TestEquivalenceMergeToOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		dims := 2 + trial%4
		dom := randomDomain(dims)
		h := MustNew(dom, 60, 1000)
		h.crossCheck = true
		count := randomClusterCount(rng, dom)
		for i := 0; i < 30; i++ {
			h.Drill(randomQuery(rng, dom, 5, 40), count)
		}
		for h.BucketCount() > 1 {
			h.performBestMerge()
			if h.crossCheckErr != nil {
				t.Fatalf("trial %d: %v", trial, h.crossCheckErr)
			}
			if err := h.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

// TestDrillSteadyStateZeroAllocs asserts the allocation-free invariant of
// the feedback round: when the feedback source agrees with the histogram
// (every candidate drill is skipped), Drill performs zero heap allocations.
func TestDrillSteadyStateZeroAllocs(t *testing.T) {
	h, dom, _ := trained(100, 400)
	steady := func(r geom.Rect) float64 { return h.Estimate(r) }
	qs := benchQueries(dom, 64, 9)
	for _, q := range qs { // warm up the scratch buffers
		h.Drill(q, steady)
	}
	drills := h.Stats.Drills
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		h.Drill(qs[i%len(qs)], steady)
		i++
	})
	if h.Stats.Drills != drills {
		t.Fatalf("feedback rounds drilled %d new holes; not a steady state", h.Stats.Drills-drills)
	}
	if allocs != 0 {
		t.Errorf("steady-state Drill allocates %g times per round, want 0", allocs)
	}
}

// TestEstimateZeroAllocs asserts the optimizer-facing path never allocates.
func TestEstimateZeroAllocs(t *testing.T) {
	h, dom, _ := trained(100, 400)
	qs := benchQueries(dom, 64, 10)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		h.Estimate(qs[i%len(qs)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Estimate allocates %g times per call, want 0", allocs)
	}
}

// TestHeapStaysCompact guards the lazy-deletion heap against unbounded
// growth: after heavy drill/merge churn the heap must stay within a small
// factor of the live candidate count.
func TestHeapStaysCompact(t *testing.T) {
	h, dom, count := trained(50, 400)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		h.Drill(randomQuery(rng, dom, 30, 130), count)
	}
	live := len(h.mergeCache) + len(h.sibCache)
	if max := 2*live + 64 + live; len(h.merges) > max {
		t.Errorf("candidate heap holds %d items for %d live candidates", len(h.merges), live)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

// TestEstimatePrunesDisjointSubtrees is the regression test for the
// unconditional child recursion: a query overlapping only one child must
// not descend into the disjoint siblings' subtrees.
func TestEstimatePrunesDisjointSubtrees(t *testing.T) {
	h := MustNew(rect2(0, 0, 100, 100), 20, 1000)
	left := h.addChild(h.root, rect2(0, 0, 40, 100), 200)
	right := h.addChild(h.root, rect2(60, 0, 100, 100), 300)
	for i := 0; i < 4; i++ {
		x := float64(i * 10)
		h.addChild(left, rect2(x, 10, x+5, 20), 10)
		h.addChild(right, rect2(62+x, 10, 66+x, 20), 10)
	}
	q := rect2(1, 1, 30, 90) // overlaps left's subtree only
	if fast, slow := h.Estimate(q), h.estimateSlow(q); fast != slow {
		t.Fatalf("pruned estimate %v != reference %v", fast, slow)
	}
	// A query on the shared boundary of a degenerate bucket still sees its
	// point mass.
	hd := MustNew(rect2(0, 0, 10, 10), 5, 0)
	hd.addChild(hd.root, rect2(3, 3, 3, 7), 40)
	for _, q := range []geom.Rect{rect2(0, 0, 10, 10), rect2(3, 0, 10, 10), rect2(0, 0, 3, 10), rect2(4, 0, 10, 10)} {
		if fast, slow := hd.Estimate(q), hd.estimateSlow(q); fast != slow {
			t.Fatalf("degenerate case %v: pruned %v != reference %v", q, fast, slow)
		}
	}
}

// TestMergeScheduleGolden pins one concrete merge schedule end to end, so a
// change in tie-breaking or invalidation is caught even if it is internally
// consistent between the fast and slow paths.
func TestMergeScheduleGolden(t *testing.T) {
	h := MustNew(rect2(0, 0, 100, 100), 50, 1000)
	count := uniformCluster(rect2(20, 20, 60, 60), 1000)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 25; i++ {
		h.Drill(randomQuery(rng, h.Root().Box(), 5, 35), count)
	}
	var schedule []string
	for h.BucketCount() > 0 {
		c := h.selectBestMerge()
		if c.kind == kindParentChild {
			schedule = append(schedule, fmt.Sprintf("pc:%v", c.c.box))
			h.mergeParentChild(c.p, c.c)
		} else {
			schedule = append(schedule, fmt.Sprintf("sib:%v+%v", c.s1.box, c.s2.box))
			h.mergeSiblings(c.p, c.s1, c.s2)
		}
	}
	if len(schedule) == 0 {
		t.Fatal("no merges recorded")
	}
	// Replay the same workload and collapse via the reference selector: the
	// schedules must be identical.
	h2 := MustNew(rect2(0, 0, 100, 100), 50, 1000)
	rng2 := rand.New(rand.NewSource(13))
	for i := 0; i < 25; i++ {
		h2.Drill(randomQuery(rng2, h2.Root().Box(), 5, 35), count)
	}
	for i := 0; h2.BucketCount() > 0; i++ {
		c := h2.bestMergeSlow()
		var step string
		if c.kind == kindParentChild {
			step = fmt.Sprintf("pc:%v", c.c.box)
			h2.mergeParentChild(c.p, c.c)
		} else {
			step = fmt.Sprintf("sib:%v+%v", c.s1.box, c.s2.box)
			h2.mergeSiblings(c.p, c.s1, c.s2)
		}
		if i >= len(schedule) || schedule[i] != step {
			t.Fatalf("merge %d: heap schedule %q, reference %q", i, schedule[i:], step)
		}
	}
}
