package sthole

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/index"
)

// TestQuickDrillSequencesKeepInvariants: arbitrary drill sequences against a
// real dataset never corrupt the tree, violate the budget, or produce
// negative/overflowing estimates.
func TestQuickDrillSequencesKeepInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tab := dataset.MustNew(dataset.GenericNames(3)...)
	for i := 0; i < 4000; i++ {
		// Clustered + noisy data.
		if i%4 == 0 {
			tab.MustAppend([]float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100})
		} else {
			tab.MustAppend([]float64{30 + rng.Float64()*20, 60 + rng.Float64()*10, rng.Float64() * 100})
		}
	}
	kt, err := index.BuildKDTree(tab)
	if err != nil {
		t.Fatal(err)
	}
	count := counterFunc(kt)
	dom := kt.Bounds()
	total := float64(tab.Len())

	f := func() bool {
		budget := 1 + rng.Intn(12)
		h := MustNew(dom, budget, total)
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			c := make(geom.Point, 3)
			for d := range c {
				c[d] = dom.Lo[d] + rng.Float64()*dom.Side(d)
			}
			q := geom.CubeAt(c, 2+rng.Float64()*40, dom)
			h.Drill(q, count)
			if h.Validate() != nil || h.BucketCount() > budget {
				return false
			}
		}
		// Estimates are non-negative and bounded by the stored total.
		for i := 0; i < 20; i++ {
			c := make(geom.Point, 3)
			for d := range c {
				c[d] = dom.Lo[d] + rng.Float64()*dom.Side(d)
			}
			q := geom.CubeAt(c, 1+rng.Float64()*60, dom)
			est := h.Estimate(q)
			if est < -1e-9 || est > h.TotalTuples()+1e-6 {
				return false
			}
		}
		// The root query recovers the stored total exactly.
		return math.Abs(h.Estimate(dom)-h.TotalTuples()) < 1e-6*math.Max(1, h.TotalTuples())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickEstimateMonotone: growing the query rectangle never shrinks the
// estimate (the density function is non-negative).
func TestQuickEstimateMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	dom := rect2(0, 0, 100, 100)
	h := MustNew(dom, 15, 1000)
	// Give the histogram some structure via idealized feedback.
	cl := rect2(20, 20, 50, 70)
	count := uniformCluster(cl, 1000)
	for i := 0; i < 100; i++ {
		c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		h.Drill(geom.CubeAt(c, 5+rng.Float64()*20, dom), count)
	}
	f := func() bool {
		lo := geom.Point{rng.Float64() * 80, rng.Float64() * 80}
		inner := geom.MustRect(lo, geom.Point{lo[0] + rng.Float64()*10, lo[1] + rng.Float64()*10})
		grow := 1 + rng.Float64()*10
		outer := geom.MustRect(
			geom.Point{math.Max(0, inner.Lo[0]-grow), math.Max(0, inner.Lo[1]-grow)},
			geom.Point{math.Min(100, inner.Hi[0]+grow), math.Min(100, inner.Hi[1]+grow)},
		)
		return h.Estimate(outer) >= h.Estimate(inner)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeSequenceTerminates: merging all the way down to one bucket
// always terminates and preserves validity from arbitrary drilled states.
func TestQuickMergeSequenceTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	dom := rect2(0, 0, 100, 100)
	f := func() bool {
		h := MustNew(dom, 50, 500)
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
			q := geom.CubeAt(c, 2+rng.Float64()*30, dom)
			v := rng.Float64() * 200
			h.Drill(q, func(r geom.Rect) float64 { return v * r.Volume() / math.Max(q.Volume(), 1e-12) })
		}
		for h.BucketCount() > 0 {
			before := h.BucketCount()
			h.performBestMerge()
			if h.BucketCount() >= before {
				return false
			}
			if h.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickEstimateAdditiveOverSplits: the estimate is the integral of a
// density function, so splitting a query box along any axis must preserve
// the total: est(box) == est(left) + est(right).
func TestQuickEstimateAdditiveOverSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	dom := rect2(0, 0, 100, 100)
	h := MustNew(dom, 20, 1000)
	count := uniformCluster(rect2(10, 40, 70, 90), 1000)
	for i := 0; i < 120; i++ {
		c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		h.Drill(geom.CubeAt(c, 5+rng.Float64()*25, dom), count)
	}
	f := func() bool {
		lo := geom.Point{rng.Float64() * 80, rng.Float64() * 80}
		box := geom.MustRect(lo, geom.Point{lo[0] + 1 + rng.Float64()*19, lo[1] + 1 + rng.Float64()*19})
		axis := rng.Intn(2)
		cut := box.Lo[axis] + rng.Float64()*box.Side(axis)
		left := box.Clone()
		left.Hi[axis] = cut
		right := box.Clone()
		right.Lo[axis] = cut
		whole := h.Estimate(box)
		parts := h.Estimate(left) + h.Estimate(right)
		return math.Abs(whole-parts) < 1e-6*math.Max(1, whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
