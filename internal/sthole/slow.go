package sthole

import (
	"math"

	"sthist/internal/geom"
)

// This file keeps the naive O(B) reference implementations of the two
// maintenance-path decisions that histogram.go/merge.go optimize with
// subtree pruning and the candidate heap. They exist so the equivalence
// tests (and performBestMerge's crossCheck mode) can assert that the fast
// paths are observationally identical — bit-identical estimates, identical
// merge schedules — to the straightforward implementations.

// estimateSlow evaluates Eq. 1 by walking every bucket of the tree,
// recursing into children unconditionally. estimateBucket prunes subtrees
// whose boxes miss the query; the pruned terms are exact zeros, so both
// walks must agree bit-for-bit.
func (h *Histogram) estimateSlow(q geom.Rect) float64 {
	if q.Dims() != h.dims {
		return 0
	}
	return estimateBucketSlow(h.root, q)
}

func estimateBucketSlow(b *Bucket, q geom.Rect) float64 {
	interBox := b.box.IntersectionVolume(q)
	if interBox <= 0 {
		if b.box.Intersects(q) {
			if q.Contains(b.box) {
				return b.subtreeFreq()
			}
		}
		return 0
	}
	est := 0.0
	interOwn := interBox
	ownVol := b.box.Volume()
	for _, c := range b.children {
		interOwn -= c.box.IntersectionVolume(q)
		ownVol -= c.box.Volume()
		est += estimateBucketSlow(c, q)
	}
	if interOwn < 0 {
		interOwn = 0
	}
	if ownVol > 0 {
		est += b.freq * interOwn / ownVol
	} else if q.Contains(b.box) {
		est += b.freq
	}
	return est
}

// bestMergeSlow selects the cheapest merge by a full fresh scan: every
// non-root bucket's parent-child penalty and every parent's best sibling
// merge are recomputed from scratch, no caches or heap involved, and the
// minimum is taken under the same strict total order (penalty, creation
// sequence, kind) the heap uses. performBestMerge's crossCheck mode compares
// its heap-scheduled selection against this on every merge.
func (h *Histogram) bestMergeSlow() mergeChoice {
	best := mergeChoice{penalty: math.Inf(1)}
	found := false
	better := func(cand mergeChoice) bool {
		if !found {
			return true
		}
		if cand.penalty != best.penalty {
			return cand.penalty < best.penalty
		}
		if cand.seq != best.seq {
			return cand.seq < best.seq
		}
		return cand.kind < best.kind
	}
	var walk func(b *Bucket)
	walk = func(b *Bucket) {
		if b != h.root {
			cand := mergeChoice{kind: kindParentChild, penalty: parentChildPenalty(b.parent, b), seq: b.seq, p: b.parent, c: b}
			if better(cand) {
				best, found = cand, true
			}
		}
		if len(b.children) >= 2 {
			if e := h.bestSiblingMerge(b); e.b1 != nil {
				cand := mergeChoice{kind: kindSibling, penalty: e.penalty, seq: b.seq, p: b, s1: e.b1, s2: e.b2}
				if better(cand) {
					best, found = cand, true
				}
			}
		}
		for _, c := range b.children {
			walk(c)
		}
	}
	walk(h.root)
	if !found {
		panic("sthole: no merge candidate in reference scan")
	}
	return best
}
