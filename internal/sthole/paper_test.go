package sthole

// Tests in this file reproduce the analytical claims of §3 and §4 of the
// paper: stagnation on simple clusters (Lemmas 2 and 3), stability of an
// initialized bucket (Lemma 4), and sensitivity to the order of learning
// queries (Example 1 / Definition 1).

import (
	"math"
	"math/rand"
	"testing"

	"sthist/internal/dataset"
	"sthist/internal/geom"
	"sthist/internal/index"
)

// evalError computes the mean absolute estimation error of h over a set of
// evaluation queries with exact counts from count.
func evalError(h *Histogram, queries []geom.Rect, count CountFunc) float64 {
	sum := 0.0
	for _, q := range queries {
		sum += math.Abs(h.Estimate(q) - count(q))
	}
	return sum / float64(len(queries))
}

// unitCells returns all axis-aligned unit-volume cells of the integer grid
// covering [0,n]x[0,n] — the query model of §3.2.
func unitCells(n int) []geom.Rect {
	var out []geom.Rect
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out = append(out, rect2(float64(i), float64(j), float64(i+1), float64(j+1)))
		}
	}
	return out
}

// TestLemma2Stagnation: a uniform m x k cluster has storage threshold 1 but
// detectability threshold 2. With a budget of a single bucket the histogram
// stagnates at a high error no matter how long it trains, while a histogram
// initialized with the cluster's box has zero error.
func TestLemma2Stagnation(t *testing.T) {
	dom := rect2(0, 0, 10, 10)
	cluster := rect2(3, 3, 7, 7) // 4x4 uniform cluster
	const clusterTuples = 1600   // density 100 per unit cell
	count := uniformCluster(cluster, clusterTuples)
	cells := unitCells(10)

	// Uninitialized, budget 1: train for many epochs over all unit cells.
	h := MustNew(dom, 1, clusterTuples)
	rng := rand.New(rand.NewSource(3))
	var errAfter5, errAfter10 float64
	for epoch := 1; epoch <= 10; epoch++ {
		perm := rng.Perm(len(cells))
		for _, i := range perm {
			h.Drill(cells[i], count)
		}
		if epoch == 5 {
			errAfter5 = evalError(h, cells, count)
		}
		if epoch == 10 {
			errAfter10 = evalError(h, cells, count)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}

	// Initialized with the cluster's exact box: zero error (sigma = 1).
	hi := MustNew(dom, 1, 0)
	hi.addChild(hi.root, cluster, clusterTuples)
	errInit := evalError(hi, cells, count)
	if errInit > 1e-9 {
		t.Errorf("initialized error = %g, want 0 (storage threshold is 1 bucket)", errInit)
	}

	// The uninitialized histogram stagnates: the reducible error (relative
	// to the 1-bucket optimum, which is 0) stays large and does not shrink
	// with more training.
	if errAfter10 < 10 {
		t.Errorf("budget-1 histogram reached error %g; Lemma 2 says a single bucket cannot capture the cluster", errAfter10)
	}
	if errAfter10 < errAfter5*0.7 {
		t.Errorf("error still falling between epochs (%g -> %g); expected stagnation", errAfter5, errAfter10)
	}
}

// TestLemma3DenseCore: once the dense core of a cluster is captured in its
// own bucket, a 2-bucket budget can no longer detect the surrounding
// cluster, because the core bucket never merges with cluster fragments
// (gamma > 3 makes every such merge expensive).
func TestLemma3DenseCore(t *testing.T) {
	dom := rect2(0, 0, 12, 12)
	cluster := rect2(3, 3, 9, 9)      // 6x6, unit density outside the core
	core := rect2(5.5, 5.5, 6.5, 6.5) // unit-volume core
	const gamma = 10.0                // core density (> 3)
	clusterArea := cluster.Volume() - 1
	count := func(r geom.Rect) float64 {
		inCore := gamma * r.IntersectionVolume(core)
		inCluster := r.IntersectionVolume(cluster) - r.IntersectionVolume(core)
		return inCore + inCluster
	}
	totalTuples := gamma + clusterArea

	// Budget 2, the workload queries the core first.
	h := MustNew(dom, 2, totalTuples)
	h.Drill(core, count)
	coreCaptured := false
	for _, b := range h.Buckets() {
		if b != h.root && b.box.Equal(core) {
			coreCaptured = true
		}
	}
	if !coreCaptured {
		t.Fatal("core query did not create a core bucket")
	}

	cells := unitCells(12)
	rng := rand.New(rand.NewSource(4))
	var errEarly, errLate float64
	for epoch := 1; epoch <= 8; epoch++ {
		perm := rng.Perm(len(cells))
		for _, i := range perm {
			h.Drill(cells[i], count)
		}
		if epoch == 2 {
			errEarly = evalError(h, cells, count)
		}
	}
	errLate = evalError(h, cells, count)

	// The core bucket survives all training: gamma > 3 makes merging it with
	// cluster fragments too expensive.
	coreSurvives := false
	for _, b := range h.Buckets() {
		if b != h.root && b.box.Equal(core) {
			coreSurvives = true
		}
	}
	if !coreSurvives {
		t.Error("core bucket was merged away; Lemma 3 predicts it survives")
	}

	// Initialized with cluster + core (the storage-optimal layout): error 0.
	hi := MustNew(dom, 2, 0)
	cb := hi.addChild(hi.root, cluster, clusterArea)
	hi.addChild(cb, core, gamma)
	errInit := evalError(hi, cells, count)
	if errInit > 1e-9 {
		t.Errorf("initialized error = %g, want 0", errInit)
	}
	// Stagnation (Definition 6): after the core is captured the error stops
	// improving — six further epochs change nothing — and the reducible
	// error stays large compared to the 2-bucket optimum (which is 0).
	if math.Abs(errLate-errEarly) > 0.01*errEarly {
		t.Errorf("error still moving between epoch 2 (%g) and epoch 8 (%g); expected stagnation", errEarly, errLate)
	}
	if errLate < 0.1 {
		t.Errorf("trained error %g too low; Lemma 3 predicts a stuck local optimum with reducible error", errLate)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

// TestLemma4InitStability: a histogram initialized with a bucket exactly
// covering a uniform cluster keeps zero error under any subsequent workload
// — drills are skipped because every estimate is already exact, and the
// bucket itself is never merged away.
func TestLemma4InitStability(t *testing.T) {
	dom := rect2(0, 0, 100, 100)
	cluster := rect2(20, 30, 60, 80)
	const freq = 5000.0
	count := uniformCluster(cluster, freq)

	h := MustNew(dom, 10, 0)
	b0 := h.addChild(h.root, cluster, freq)

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		side := 1 + rng.Float64()*30
		h.Drill(geom.CubeAt(c, side, dom), count)
	}
	if !h.inTree(b0) {
		t.Fatal("initialized bucket was merged away")
	}
	// Error is zero (within floating point) for arbitrary query rectangles.
	for i := 0; i < 200; i++ {
		lo := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		hi := geom.Point{lo[0] + rng.Float64()*(100-lo[0]), lo[1] + rng.Float64()*(100-lo[1])}
		q := geom.MustRect(lo, hi)
		if diff := math.Abs(h.Estimate(q) - count(q)); diff > 1e-6*freq {
			t.Fatalf("query %v: estimate %g vs true %g", q, h.Estimate(q), count(q))
		}
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

// TestExample1OrderSensitivity: permuting the training workload changes the
// final estimation error of an uninitialized histogram by a non-trivial
// delta (Definition 1). This reproduces the effect of Fig. 4 on a small
// clustered dataset.
func TestExample1OrderSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := dataset.MustNew("x", "y")
	// Two dense clusters plus background noise.
	for i := 0; i < 300; i++ {
		tab.MustAppend([]float64{1 + rng.Float64()*2, 1 + rng.Float64()*2})
	}
	for i := 0; i < 300; i++ {
		tab.MustAppend([]float64{6 + rng.Float64()*2, 6 + rng.Float64()*2})
	}
	for i := 0; i < 60; i++ {
		tab.MustAppend([]float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	kt, err := index.BuildKDTree(tab)
	if err != nil {
		t.Fatal(err)
	}
	count := counterFunc(kt)
	dom := rect2(0, 0, 10, 10)

	// A small training workload and a fixed evaluation workload.
	train := make([]geom.Rect, 8)
	for i := range train {
		c := geom.Point{rng.Float64() * 10, rng.Float64() * 10}
		train[i] = geom.CubeAt(c, 1.5+rng.Float64()*2.5, dom)
	}
	eval := make([]geom.Rect, 100)
	for i := range eval {
		c := geom.Point{rng.Float64() * 10, rng.Float64() * 10}
		eval[i] = geom.CubeAt(c, 2, dom)
	}

	runOrder := func(order []int) float64 {
		h := MustNew(dom, 3, float64(tab.Len()))
		for _, i := range order {
			h.Drill(train[i], count)
		}
		return evalError(h, eval, count)
	}

	identity := make([]int, len(train))
	for i := range identity {
		identity[i] = i
	}
	base := runOrder(identity)
	var lo, hi = base, base
	for trial := 0; trial < 20; trial++ {
		e := runOrder(rng.Perm(len(train)))
		lo = math.Min(lo, e)
		hi = math.Max(hi, e)
	}
	mean := (lo + hi) / 2
	if spread := hi - lo; spread < 0.02*mean {
		t.Errorf("error spread across permutations = %g (errors %g..%g); expected delta-sensitivity", spread, lo, hi)
	}
}
