package sthole

import (
	"math"
	"math/rand"
	"testing"

	"sthist/internal/geom"
)

// density returns the histogram's density function at point p: the frequency
// of the deepest bucket containing p divided by that bucket's own volume.
// This is the integrand of the merge penalty (Eq. 2) and of the absolute
// error metric (Eq. 4).
func density(h *Histogram, p geom.Point) float64 {
	b := h.root
	if !b.box.ContainsPoint(p) {
		return 0
	}
descend:
	for {
		for _, c := range b.children {
			if c.box.ContainsPoint(p) {
				b = c
				continue descend
			}
		}
		break
	}
	v := b.ownVolume()
	if v <= 0 {
		return 0
	}
	return b.freq / v
}

// mcPenalty Monte-Carlo-integrates |density_before - density_after| over the
// domain: samples points before the merge, records densities, applies the
// merge via apply, then compares.
func mcPenalty(h *Histogram, samples int, seed int64, apply func()) float64 {
	rng := rand.New(rand.NewSource(seed))
	dom := h.root.box
	pts := make([]geom.Point, samples)
	before := make([]float64, samples)
	for i := range pts {
		p := make(geom.Point, dom.Dims())
		for d := range p {
			p[d] = dom.Lo[d] + rng.Float64()*dom.Side(d)
		}
		pts[i] = p
		before[i] = density(h, p)
	}
	apply()
	sum := 0.0
	for i, p := range pts {
		sum += math.Abs(before[i] - density(h, p))
	}
	return sum / float64(samples) * dom.Volume()
}

func TestParentChildPenaltyMatchesIntegral(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 10, 60)
	c := h.addChild(h.root, rect2(2, 2, 6, 6), 40)
	want := parentChildPenalty(h.root, c)
	got := mcPenalty(h, 200000, 1, func() { h.mergeParentChild(h.root, c) })
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("parent-child penalty: closed form %g vs MC %g (rel %g)", want, got, rel)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestParentChildMergePromotesGrandchildren(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 10, 50)
	c := h.addChild(h.root, rect2(1, 1, 8, 8), 30)
	gc := h.addChild(c, rect2(2, 2, 4, 4), 20)
	total := h.TotalTuples()
	h.mergeParentChild(h.root, c)
	if gc.parent != h.root {
		t.Error("grandchild not promoted to root")
	}
	if h.BucketCount() != 1 {
		t.Errorf("BucketCount = %d, want 1", h.BucketCount())
	}
	if math.Abs(h.TotalTuples()-total) > 1e-9 {
		t.Errorf("merge changed total tuples: %g -> %g", total, h.TotalTuples())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSiblingPenaltyMatchesIntegral(t *testing.T) {
	h := MustNew(rect2(0, 0, 10, 10), 10, 50)
	b1 := h.addChild(h.root, rect2(1, 1, 3, 3), 30)
	b2 := h.addChild(h.root, rect2(4, 1, 6, 3), 5)
	want, ok := h.siblingPenalty(h.root, b1, b2)
	if !ok {
		t.Fatal("sibling penalty infeasible")
	}
	got := mcPenalty(h, 300000, 2, func() { h.mergeSiblings(h.root, b1, b2) })
	if rel := math.Abs(got-want) / math.Max(want, 1e-9); rel > 0.07 {
		t.Errorf("sibling penalty: closed form %g vs MC %g (rel %g)", want, got, rel)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSiblingMergeExtension(t *testing.T) {
	// Fig. 3: merging b1 and b2 whose enclosing box partially intersects b3
	// must extend the box to swallow b3, which stays as a child of the new
	// bucket.
	h := MustNew(rect2(0, 0, 20, 20), 10, 100)
	b1 := h.addChild(h.root, rect2(1, 1, 4, 4), 10)
	b2 := h.addChild(h.root, rect2(8, 1, 11, 4), 10)
	b3 := h.addChild(h.root, rect2(5, 2, 7, 6), 10) // sticks out above the b1-b2 box
	box, parts := h.extendedSiblingBox(h.root, b1, b2)
	if !box.Contains(b3.box) {
		t.Fatalf("extended box %v does not include b3", box)
	}
	if len(parts) != 3 {
		t.Fatalf("participants = %d, want 3", len(parts))
	}
	total := h.TotalTuples()
	h.mergeSiblings(h.root, b1, b2)
	if h.BucketCount() != 2 { // b123 + b3
		t.Errorf("BucketCount = %d, want 2", h.BucketCount())
	}
	if b3.parent == h.root || b3.parent == nil {
		t.Error("b3 should have been re-parented under the merged bucket")
	}
	if math.Abs(h.TotalTuples()-total) > 1e-9 {
		t.Errorf("merge changed total tuples: %g -> %g", total, h.TotalTuples())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSiblingMergeAdoptsChildrenOfMerged(t *testing.T) {
	h := MustNew(rect2(0, 0, 20, 20), 10, 100)
	b1 := h.addChild(h.root, rect2(1, 1, 4, 4), 10)
	b2 := h.addChild(h.root, rect2(5, 1, 8, 4), 10)
	gc := h.addChild(b1, rect2(2, 2, 3, 3), 5)
	h.mergeSiblings(h.root, b1, b2)
	if gc.parent == nil || gc.parent == h.root {
		t.Error("grandchild of merged sibling lost")
	}
	if !gc.parent.box.Contains(gc.box) {
		t.Error("grandchild escapes adopted parent")
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEnforceBudgetPrefersCheapMerge(t *testing.T) {
	// Two buckets with identical density as the root (penalty ~0) and one
	// with wildly different density: the cheap ones must merge first.
	h := MustNew(rect2(0, 0, 10, 10), 2, 92)
	// Root density = 92/(100-4-1-1) ≈ 0.9787.
	dense := h.addChild(h.root, rect2(6, 6, 8, 8), 500) // density 125
	sameA := h.addChild(h.root, rect2(1, 1, 2, 2), 1)   // density 1
	sameB := h.addChild(h.root, rect2(3, 3, 4, 4), 1)   // density 1
	h.enforceBudget()
	if h.BucketCount() != 2 {
		t.Fatalf("BucketCount = %d, want 2", h.BucketCount())
	}
	if !h.inTree(dense) {
		t.Error("the informative dense bucket was merged away")
	}
	_ = sameA
	_ = sameB
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMergePreservesTotalTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		h := MustNew(rect2(0, 0, 100, 100), 50, rng.Float64()*1000)
		// Random non-overlapping children via drilling idealized feedback.
		for i := 0; i < 20; i++ {
			c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
			q := geom.CubeAt(c, 5+rng.Float64()*20, h.root.box)
			h.Drill(q, func(r geom.Rect) float64 { return rng.Float64() * 100 })
		}
		total := h.TotalTuples()
		for h.BucketCount() > 1 {
			h.performBestMerge()
			if err := h.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		if math.Abs(h.TotalTuples()-total) > 1e-6*math.Max(1, total) {
			t.Fatalf("trial %d: merges changed totals %g -> %g", trial, total, h.TotalTuples())
		}
	}
}

func TestNearestNeighborSiblingPath(t *testing.T) {
	// More children than exhaustivePairLimit exercises the nearest-neighbor
	// candidate path.
	h := MustNew(rect2(0, 0, 1000, 1000), 100, 1000)
	for i := 0; i < exhaustivePairLimit+8; i++ {
		x := float64(i%8)*120 + 10
		y := float64(i/8)*120 + 10
		h.addChild(h.root, rect2(x, y, x+50, y+50), 10)
	}
	e := h.bestSiblingMerge(h.root)
	if e.b1 == nil {
		t.Fatal("no sibling merge found on the nearest-neighbor path")
	}
	h.mergeSiblings(h.root, e.b1, e.b2)
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

// TestMergeCacheCoherence: every cached merge penalty must equal the freshly
// computed one after arbitrary drill/merge sequences — stale cache entries
// would silently pick wrong merges.
func TestMergeCacheCoherence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dom := rect2(0, 0, 100, 100)
	for trial := 0; trial < 15; trial++ {
		h := MustNew(dom, 6, 1000)
		cl := rect2(rng.Float64()*40, rng.Float64()*40, 60+rng.Float64()*40, 60+rng.Float64()*40)
		count := uniformCluster(cl, 1000)
		for i := 0; i < 60; i++ {
			c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
			h.Drill(geom.CubeAt(c, 3+rng.Float64()*25, dom), count)
		}
		for _, b := range h.Buckets() {
			if b != h.root {
				if e, ok := h.mergeCache[b]; ok {
					fresh := parentChildPenalty(b.parent, b)
					if math.Abs(e.penalty-fresh) > 1e-9*math.Max(1, fresh) {
						t.Fatalf("trial %d: stale parent-child cache %g vs fresh %g", trial, e.penalty, fresh)
					}
				}
			}
			if e, ok := h.sibCache[b]; ok && e.b1 != nil {
				fresh := h.bestSiblingMerge(b)
				if fresh.b1 == nil || math.Abs(e.penalty-fresh.penalty) > 1e-9*math.Max(1, fresh.penalty) {
					t.Fatalf("trial %d: stale sibling cache %g vs fresh %g", trial, e.penalty, fresh.penalty)
				}
			}
		}
	}
}
