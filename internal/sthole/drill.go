package sthole

import (
	"math"

	"sthist/internal/geom"
)

// CountFunc supplies the exact number of tuples inside a rectangle. During
// simulation this is backed by the range-count index (the stand-in for "the
// query execution engine streamed the result and we counted per-bucket
// intersections", which is how STHoles gathers feedback in a real DBMS).
//
// The rectangle passed to a CountFunc is a scratch buffer that the drill
// loop reuses across calls; implementations must not retain it (Clone it if
// it has to outlive the call).
type CountFunc func(geom.Rect) float64

// Drill refines the histogram with the feedback of one executed query q.
// For every bucket whose box intersects q it computes the candidate hole
// (the intersection, shrunk until it no longer partially overlaps any child
// bucket), asks count for the true tuple count inside the candidate, and
// drills a new hole when the current estimate is off. Afterwards the bucket
// budget is re-established by merging (merge.go).
//
// The pre-drill snapshot is collected by recursive descent that prunes any
// subtree whose box misses q (child boxes are contained in their parent's
// box), and the candidate geometry runs on reusable scratch rectangles: a
// feedback round that drills nothing performs zero heap allocations.
//
// Drill is a no-op while the histogram is frozen.
//
//sthlint:noalloc
func (h *Histogram) Drill(q geom.Rect, count CountFunc) {
	if h.frozen || q.Dims() != h.dims {
		return
	}
	if h.mergeCache == nil {
		// Snapshot() copies trees without merge scheduling state; build it on
		// the first drill instead of on every publication.
		h.resetMergeState()
	}
	if !q.IntersectInto(h.root.box, &h.qcScratch) || h.qcScratch.Volume() <= 0 {
		return
	}
	qc := h.qcScratch
	h.Stats.Queries++
	// Work over a pre-drill snapshot: buckets created by this query's own
	// drills must not be drilled again, and buckets removed by merges are
	// skipped via inTree. The scratch buffer is reused across queries, and
	// only subtrees overlapping qc are visited.
	h.scratch = appendIntersecting(h.scratch[:0], h.root, qc)
	for _, b := range h.scratch {
		if !h.inTree(b) {
			continue
		}
		h.drillBucket(b, qc, count)
	}
	// Do not retain bucket pointers beyond the call (they pin merged-away
	// subtrees otherwise).
	for i := range h.scratch {
		h.scratch[i] = nil
	}
	h.enforceBudget()
}

// drillBucket processes the candidate hole of one bucket for query q.
func (h *Histogram) drillBucket(b *Bucket, q geom.Rect, count CountFunc) {
	if !b.box.IntersectInto(q, &h.candScratch) || h.candScratch.Volume() <= 0 {
		return
	}
	cand := h.candScratch
	// Shrink the candidate until no child partially intersects it (children
	// fully inside the candidate are fine: they become children of the new
	// hole). A child that covers the candidate collapses it to zero volume,
	// meaning q's overlap with b lies entirely inside that child and the
	// child's own drill handles it.
	for {
		shrunk := false
		for _, c := range b.children {
			if cand.IntersectsOpen(c.box) && !cand.Contains(c.box) {
				cand.ShrinkInto(c.box, &cand)
				if cand.Volume() <= 0 {
					return
				}
				shrunk = true
			}
		}
		if !shrunk {
			break
		}
	}

	actual := count(cand)
	if math.IsNaN(actual) || math.IsInf(actual, 0) {
		// A broken feedback source must not poison the tree; ignore the
		// candidate entirely.
		return
	}
	if actual < 0 {
		actual = 0
	}
	// Skip the drill when the histogram already estimates the candidate to
	// within half a tuple: drilling would spend a bucket without information
	// gain. The candidate lies inside box(b) and sibling interiors are
	// disjoint, so only b's subtree contributes to its estimate — no need to
	// walk the whole tree.
	if est := estimateBucket(b, cand); est-actual < 0.5 && actual-est < 0.5 {
		h.Stats.SkippedExactDrills++
		return
	}
	h.Stats.Drills++

	if cand.Equal(b.box) {
		// The candidate covers the whole bucket: refresh its frequency with
		// exact feedback instead of adding a redundant child.
		childFreq := 0.0
		for _, c := range b.children {
			childFreq += c.subtreeFreq()
		}
		b.freq = actual - childFreq
		if b.freq < 0 {
			b.freq = 0
		}
		h.touch(b)
		return
	}

	// Drill a new hole: move the children of b that lie inside the candidate
	// under the new bucket, then split the frequencies. The candidate is a
	// scratch rectangle, so the new bucket clones it.
	bn := &Bucket{box: cand.Clone(), seq: h.nextSeq()}
	movedFreq := 0.0
	kept := b.children[:0]
	for _, c := range b.children {
		if cand.Contains(c.box) {
			movedFreq += c.subtreeFreq()
			bn.attach(c)
		} else {
			kept = append(kept, c)
		}
	}
	b.children = kept
	bn.freq = actual - movedFreq
	if bn.freq < 0 {
		bn.freq = 0
	}
	b.freq -= bn.freq
	if b.freq < 0 {
		b.freq = 0
	}
	b.attach(bn)
	h.count++
	h.touch(b)
	h.touch(bn)
}
